#!/usr/bin/env python
"""Climate-archive scenario: compress a CESM-ATM snapshot with every variant.

CESM's community needs ~10:1 reduction (paper §1).  This example runs all
six synthetic CESM-ATM fields through GhostSZ, waveSZ (both lossless
configurations) and SZ-1.4, prints the per-field and average ratios/PSNRs
— a working miniature of the paper's Tables 1/7/8 — and shows the
round-trip file workflow on SDRB-style raw dumps.

Run:  python examples/climate_compression.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    GhostSZCompressor,
    SZ14Compressor,
    WaveSZCompressor,
    load_field,
    psnr,
)
from repro.data import DATASETS
from repro.io import read_raw_field, write_raw_field

VARIANTS = {
    "GhostSZ": GhostSZCompressor(),
    "waveSZ(G*)": WaveSZCompressor(),
    "waveSZ(H*G*)": WaveSZCompressor(use_huffman=True),
    "SZ-1.4": SZ14Compressor(),
}


def main() -> None:
    spec = DATASETS["CESM-ATM"]
    print(f"dataset: {spec.name} — paper dims {spec.paper_dims} "
          f"({spec.paper_fields} fields), repro dims {spec.repro_dims}")
    header = f"{'field':<10}" + "".join(f"{v:>14}" for v in VARIANTS)
    print("\ncompression ratio at VR-REL 1e-3:")
    print(header)
    sums = {v: [] for v in VARIANTS}
    psnrs = {v: [] for v in VARIANTS}
    for fname in spec.field_names:
        x = load_field("CESM-ATM", fname)
        row = f"{fname:<10}"
        for vname, comp in VARIANTS.items():
            cf = comp.compress(x, 1e-3, "vr_rel")
            out = comp.decompress(cf)
            assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute
            sums[vname].append(cf.stats.ratio)
            psnrs[vname].append(psnr(x, out))
            row += f"{cf.stats.ratio:>14.1f}"
        print(row)
    print(f"{'average':<10}" + "".join(
        f"{np.mean(sums[v]):>14.1f}" for v in VARIANTS))
    print("\naverage PSNR (dB):")
    print(f"{'':<10}" + "".join(
        f"{np.mean(psnrs[v]):>14.1f}" for v in VARIANTS))

    # File workflow, as in the artifact: raw .f32 dump -> compress -> store.
    with tempfile.TemporaryDirectory() as tmp:
        raw = Path(tmp) / "CLDLOW.f32"
        x = load_field("CESM-ATM", "CLDLOW")
        write_raw_field(raw, x)
        comp = WaveSZCompressor(use_huffman=True)
        cf = comp.compress(read_raw_field(raw, x.shape), 1e-3, "vr_rel")
        archive = Path(tmp) / "CLDLOW.wsz"
        archive.write_bytes(cf.payload)
        print(f"\nfile workflow: {raw.name} ({raw.stat().st_size} B) -> "
              f"{archive.name} ({archive.stat().st_size} B)")
        restored = comp.decompress(archive.read_bytes())
        print(f"restored max error: "
              f"{np.abs(restored.astype(np.float64) - x).max():.3e}")


if __name__ == "__main__":
    main()
