#!/usr/bin/env python
"""Tiled archive with random access — the multi-lane / OpenMP decomposition.

A post-analysis tool rarely needs a whole snapshot: it wants one slab.
This example compresses a Hurricane-like temperature volume as independent
bands (the same decomposition Figure 8's parallelism axis uses — one band
per FPGA lane or OpenMP thread), then reconstructs a single band without
touching the rest, and quantifies the seam overhead of the decomposition.

Run:  python examples/random_access_archive.py
"""

import numpy as np

from repro import SZ14Compressor, load_field
from repro.parallel import decompress_tile, tile_compress, tile_decompress


def main() -> None:
    x = load_field("Hurricane", "TCf48")
    comp = SZ14Compressor()
    print(f"field: Hurricane/TCf48 {x.shape} ({x.nbytes} bytes)")

    mono = comp.compress(x, 1e-3, "vr_rel")
    print(f"monolithic: ratio {mono.stats.ratio:.1f}x")

    print(f"\n{'bands':>6} {'ratio':>7} {'vs mono':>9}   per-band ratios")
    for n in (2, 4, 8):
        res = tile_compress(comp, x, 1e-3, "vr_rel", n_tiles=n)
        per_band = " ".join(f"{r:.1f}" for r in res.tile_ratios)
        print(f"{n:>6} {res.ratio:>7.1f} "
              f"{100 * res.ratio / mono.stats.ratio:>8.1f}%   {per_band}")

    # Random access: reconstruct only band 2 of 4.
    res = tile_compress(comp, x, 1e-3, "vr_rel", n_tiles=4)
    band = decompress_tile(comp, res.payload, 2)
    full = tile_decompress(comp, res.payload)
    lo = 2 * x.shape[0] // 4
    assert (band == full[lo : lo + band.shape[0]]).all()
    vr = float(x.max() - x.min())
    assert np.abs(full.astype(np.float64) - x).max() <= 1e-3 * vr
    print(f"\nrandom access: band 2/4 = slab {band.shape} reconstructed "
          f"standalone ({band.nbytes} of {x.nbytes} bytes touched)")
    print("error bound verified on the full tiled reconstruction.")


if __name__ == "__main__":
    main()
