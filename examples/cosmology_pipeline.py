#!/usr/bin/env python
"""Cosmology streaming scenario: size an FPGA deployment for NYX output.

HACC/NYX-scale simulations emit hundreds of TB per snapshot (paper §1);
instruments like LCLS-II stream at up to 250 GB/s.  This example combines
the functional compressor (what ratio do we get on NYX-like data?) with
the hardware model (how many waveSZ lanes, at what modelled throughput,
behind which PCIe generation?) to answer a deployment question end to end.

Run:  python examples/cosmology_pipeline.py
"""

import numpy as np

from repro import WaveSZCompressor, load_field
from repro.data import DATASETS
from repro.fpga import (
    PCIE_GEN2_X4,
    PCIE_GEN3_X4,
    ZC706,
    ghostsz_throughput,
    max_lanes_by_bram,
    scale_lanes,
    wavesz_resources,
    wavesz_throughput,
)


def main() -> None:
    spec = DATASETS["NYX"]
    paper_shape = spec.paper_dims

    # --- functional side: measure the achievable ratio on NYX-like data.
    comp = WaveSZCompressor(use_huffman=True)
    ratios = []
    for fname in spec.field_names:
        x = load_field("NYX", fname)
        cf = comp.compress(x, 1e-3, "vr_rel")
        out = comp.decompress(cf)
        assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute
        ratios.append(cf.stats.ratio)
        print(f"  {fname:<22} ratio {cf.stats.ratio:6.1f}x  "
              f"(bound 2^{cf.bound.exponent})")
    avg_ratio = float(np.mean(ratios))
    print(f"average waveSZ (H*G*) ratio on NYX-like fields: {avg_ratio:.1f}x")

    # --- hardware side: modelled per-lane throughput at paper-scale dims.
    per_lane = wavesz_throughput(paper_shape, dataset="NYX")
    ghost = ghostsz_throughput(paper_shape, dataset="NYX")
    print(f"\nmodelled per-lane throughput at {paper_shape}: "
          f"waveSZ {per_lane.mb_per_s:.0f} MB/s "
          f"(GhostSZ would do {ghost.mb_per_s:.0f} MB/s)")

    res = wavesz_resources(lanes=3)
    util = res.utilization(ZC706)
    print(f"3-lane PQD utilization on {ZC706.name}: "
          + ", ".join(f"{k} {v:.2f}%" for k, v in util.items()))
    lanes_fit = max_lanes_by_bram(per_lane_bram=3)
    print(f"BRAM budget (incl. 303 BRAM gzip per lane): {lanes_fit} lanes fit")

    print("\ndeployment throughput vs lane count:")
    print(f"{'lanes':>6}{'gen2 x4':>12}{'gen3 x4':>12}   limit(gen2)")
    for n in (1, 2, 3, 4, 8):
        g2 = scale_lanes("waveSZ", per_lane.mb_per_s, n, pcie=PCIE_GEN2_X4)
        g3 = scale_lanes("waveSZ", per_lane.mb_per_s, n, pcie=PCIE_GEN3_X4)
        print(f"{n:>6}{g2.mb_per_s:>12.0f}{g3.mb_per_s:>12.0f}   "
              f"{g2.limited_by}")

    # --- the deployment answer: boards needed for a target ingest rate.
    target_gb_s = 10.0
    board = scale_lanes("waveSZ", per_lane.mb_per_s, lanes_fit,
                        pcie=PCIE_GEN2_X4)
    boards = int(np.ceil(target_gb_s * 1000 / board.mb_per_s))
    snapshot_gb = np.prod(paper_shape) * 4 * spec.paper_fields / 1e9
    print(f"\nto ingest {target_gb_s:.0f} GB/s of simulation output: "
          f"{boards} ZC706 boards ({board.mb_per_s:.0f} MB/s each, "
          f"{board.limited_by}-limited)")
    print(f"a {snapshot_gb:.1f} GB NYX snapshot shrinks to "
          f"~{1000 * snapshot_gb / avg_ratio:.0f} MB at the measured ratio")


if __name__ == "__main__":
    main()
