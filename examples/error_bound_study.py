#!/usr/bin/env python
"""Rate-distortion study: sweep the error bound and map the trade-offs.

Scientific users pick the loosest bound their analysis tolerates (paper
§2.1: 'recent studies show that users often require a relatively high
precision').  This example sweeps VR-REL bounds from 1e-1 to 1e-5 on a
Hurricane-like wind field, for SZ-1.4 and waveSZ, reporting ratio, PSNR,
bit rate and the unpredictable-point fraction — and shows where base-2
tightening sits relative to the requested decimal bound.

Run:  python examples/error_bound_study.py
"""

import numpy as np

from repro import SZ14Compressor, WaveSZCompressor, load_field, psnr

BOUNDS = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]


def main() -> None:
    x = load_field("Hurricane", "Uf48")
    print(f"field: Hurricane/Uf48 {x.shape}, "
          f"range [{x.min():.1f}, {x.max():.1f}] m/s\n")
    print(f"{'eb (VR-REL)':>12} {'variant':>10} {'enforced':>11} "
          f"{'ratio':>7} {'bits/pt':>8} {'PSNR':>7} {'unpred %':>9}")
    for eb in BOUNDS:
        for comp in (SZ14Compressor(), WaveSZCompressor(use_huffman=True)):
            cf = comp.compress(x, eb, "vr_rel")
            out = comp.decompress(cf)
            err = np.abs(out.astype(np.float64) - x).max()
            assert err <= cf.bound.absolute
            s = cf.stats
            print(f"{eb:>12g} {comp.name:>10} {cf.bound.absolute:>11.2e} "
                  f"{s.ratio:>7.1f} {s.bit_rate:>8.2f} "
                  f"{psnr(x, out):>7.1f} "
                  f"{100 * s.unpredictable_fraction:>9.3f}")
        print()

    print("observations:")
    print(" - ratio falls and PSNR rises ~20 dB per decade of bound, the")
    print("   classic SZ rate-distortion slope;")
    print(" - waveSZ's enforced bound is the nearest power of two below the")
    print("   request, so its PSNR is always >= SZ-1.4's at the same request;")
    print(" - at very tight bounds the unpredictable fraction grows — the")
    print("   regime where the paper notes lossy compressors degrade.")


if __name__ == "__main__":
    main()
