#!/usr/bin/env python
"""Hardware-design walkthrough: the co-design artifacts, end to end.

Reproduces the paper's §3 narrative as executable output: the wavefront
transform on a small grid, the Listing-1 head/body/tail schedule with its
HLS report, the event-driven timing check against Figure 6's closed
forms, the base-2 Table 3, and the Table 5/6 model numbers.

Run:  python examples/hardware_design_report.py
"""

import numpy as np

from repro.core.base2 import TABLE3_BASES, binary_representation, pow2_tighten
from repro.core.kernel import wavefront_pqd
from repro.core.layout import LoopPartition
from repro.core.pipeline import pqd_latency, wavesz_pqd_stages
from repro.core.wavefront import to_wavefront
from repro.config import QuantizerConfig
from repro.fpga import (
    ZC706,
    ghostsz_resources,
    wavesz_resources,
    wavesz_throughput,
)
from repro.fpga.hls import HLSLoopNest, simulate_columns
from repro.sz.pqd import pqd_compress


def main() -> None:
    # --- §3.1: the wavefront layout on a demo grid.
    rng = np.random.default_rng(0)
    grid = np.cumsum(rng.normal(size=(6, 10)), axis=1).astype(np.float32)
    stream, layout = to_wavefront(grid)
    print("wavefront layout of a 6x10 grid (columns = Manhattan levels):")
    for t in range(layout.n_cols):
        cells = [divmod(int(f), 10) for f in layout.column(t)]
        print(f"  L1={t:2d}: " + " ".join(f"({i},{j})" for i, j in cells))

    # --- §3.2: head/body/tail split and the zero-stall body.
    part = LoopPartition(6, 10)
    print(f"\nloop partition: Λ={part.lam}, spans={part.spans()}")
    sim = simulate_columns([part.lam] * len(part.body_columns), delta=part.lam)
    print(f"event-driven body simulation: {sim.total_cycles} cycles, "
          f"{sim.stall_cycles} stalls (pII=1 met)")
    for nest in (
        HLSLoopNest("HeadV", trip_count=3, latency=part.lam,
                    dependence_distance=3),
        HLSLoopNest("BodyV", trip_count=part.lam, latency=part.lam,
                    dependence_distance=part.lam),
    ):
        print("  " + nest.report())

    # --- order-invariance: the scheduled kernel equals raster SZ.
    p = 2.0**-8
    q = QuantizerConfig()
    oracle = wavefront_pqd(grid, p, q)
    engine = pqd_compress(grid, p, q, border="verbatim")
    same = (oracle.codes_raster() == engine.codes).all()
    print(f"\nListing-1 kernel == raster-order SZ codes: {same}")

    # --- §3.3: base-2 operation (Table 3) and its pipeline effect.
    print("\nTable 3 — binary representations of decimal bounds:")
    for b in TABLE3_BASES:
        mant, exp = binary_representation(b)
        t, k = pow2_tighten(b)
        print(f"  {b:>6g} = ({mant}...)_2 x 2^{exp:<4d} -> tighten to 2^{k}")
    print(f"PQD latency: base-10 {pqd_latency(wavesz_pqd_stages(False))} cy "
          f"-> base-2 {pqd_latency(wavesz_pqd_stages(True))} cy "
          f"(divider and overbound check gone)")

    # --- Tables 5/6: the modelled hardware numbers.
    print("\nmodelled single-lane throughput (Table 5):")
    for name, shape in (("CESM-ATM", (1800, 3600)),
                        ("Hurricane", (100, 500, 500)),
                        ("NYX", (512, 512, 512))):
        r = wavesz_throughput(shape, dataset=name)
        print(f"  {name:<10} {r.mb_per_s:7.1f} MB/s "
              f"({r.points_per_cycle:.2f} pts/cycle)")
    w, g = wavesz_resources(), ghostsz_resources()
    print("\nresource model (Table 6):")
    for r in (w, g):
        u = r.utilization(ZC706)
        print(f"  {r.design:<16} BRAM {r.bram_18k:>3}  DSP {r.dsp48e:>3}  "
              f"FF {r.ff:>6}  LUT {r.lut:>6}  "
              f"(LUT {u['LUT']:.2f} %)")


if __name__ == "__main__":
    main()
