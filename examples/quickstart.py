#!/usr/bin/env python
"""Quickstart: compress one scientific field with waveSZ.

Generates a CESM-ATM-like cloud-fraction field, compresses it with waveSZ
under a value-range-relative 1e-3 error bound (the paper's evaluation
setting), verifies the bound pointwise, and prints what the container
holds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import WaveSZCompressor, load_field, psnr, verify_error_bound


def main() -> None:
    # 1. A scientific field (synthetic SDRB stand-in; float32, 180x360).
    field = load_field("CESM-ATM", "CLDLOW")
    print(f"field: CESM-ATM/CLDLOW {field.shape} {field.dtype}, "
          f"range [{field.min():.3f}, {field.max():.3f}]")

    # 2. Compress. waveSZ tightens 1e-3 x range to the nearest power of
    #    two (base-2 operation) and runs the wavefront-scheduled Lorenzo
    #    PQD pipeline; use_huffman=True adds the customized Huffman stage
    #    (the paper's H*G* configuration).
    wavesz = WaveSZCompressor(use_huffman=True)
    compressed = wavesz.compress(field, eb=1e-3, mode="vr_rel")
    s = compressed.stats
    print(f"compressed: {s.original_bytes} -> {s.compressed_bytes} bytes "
          f"(ratio {s.ratio:.1f}x, {s.bit_rate:.2f} bits/point)")
    print(f"error bound: requested 1e-3 x range, enforced "
          f"{compressed.bound.absolute:.3e} (= 2^{compressed.bound.exponent})")
    print(f"unpredictable points: {s.n_unpredictable} "
          f"({100 * s.unpredictable_fraction:.2f} %, incl. {s.n_border} border)")

    # 3. Decompress and verify the hard guarantee |d - d'| <= eb.
    restored = wavesz.decompress(compressed)
    verify_error_bound(field, restored, compressed.bound.absolute)
    print(f"verified: max error {np.abs(restored - field).max():.3e} "
          f"<= bound, PSNR {psnr(field, restored):.1f} dB")


if __name__ == "__main__":
    main()
