"""Unit tests for the shared result dataclasses."""

import pytest

from repro.config import ErrorBoundMode, QuantizerConfig, resolve_error_bound
import numpy as np

from repro.types import CompressedField, CompressionStats, ThroughputReport


def _stats(**kw):
    base = dict(
        original_bytes=4000,
        compressed_bytes=400,
        encoded_code_bytes=300,
        outlier_bytes=60,
        border_bytes=40,
        n_points=1000,
        n_unpredictable=25,
        n_border=20,
    )
    base.update(kw)
    return CompressionStats(**base)


class TestCompressionStats:
    def test_ratio(self):
        assert _stats().ratio == pytest.approx(10.0)

    def test_bit_rate(self):
        assert _stats().bit_rate == pytest.approx(3.2)

    def test_unpredictable_fraction(self):
        assert _stats().unpredictable_fraction == pytest.approx(0.025)


class TestThroughputReport:
    def _report(self, cycles=1000.0, n_points=500):
        return ThroughputReport(
            design="x", dataset="d", lanes=1, cycles=cycles,
            frequency_hz=1e8, n_points=n_points, bytes_per_point=4,
            mb_per_s=123.0,
        )

    def test_points_per_cycle(self):
        assert self._report().points_per_cycle == pytest.approx(0.5)

    def test_zero_cycles_is_infinite_rate(self):
        assert self._report(cycles=0.0).points_per_cycle == float("inf")


class TestCompressedField:
    def test_meta_defaults_empty(self):
        bound = resolve_error_bound(np.array([0.0, 1.0]), 1e-3, "abs")
        cf = CompressedField(
            variant="x", shape=(2,), dtype="float32", bound=bound,
            quant=QuantizerConfig(), payload=b"p", stats=_stats(),
        )
        assert cf.meta == {}
        assert cf.bound.mode is ErrorBoundMode.ABS
