"""Unit tests for the online SZ/ZFP selector (ref [53])."""

import numpy as np
import pytest

from repro import SZ14Compressor
from repro.errors import ConfigError, ContainerError
from repro.selector import OnlineSelector
from repro.zfp import ZFPCompressor


@pytest.fixture(scope="module")
def selector():
    return OnlineSelector([SZ14Compressor(), ZFPCompressor()])


class TestSelection:
    def test_selects_and_roundtrips(self, selector, smooth2d):
        res = selector.select(smooth2d, 1e-3, "vr_rel")
        assert res.chosen in ("SZ-1.4", "ZFP-like")
        assert set(res.estimates) == {"SZ-1.4", "ZFP-like"}
        out = selector.decompress(res.compressed)
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= (
            res.compressed.bound.absolute
        )

    def test_picks_the_better_candidate(self, selector, smooth2d):
        res = selector.select(smooth2d, 1e-3, "vr_rel", sample_step=1)
        full = {
            c.name: c.compress(smooth2d, 1e-3, "vr_rel").stats.ratio
            for c in (SZ14Compressor(), ZFPCompressor())
        }
        assert res.chosen == max(full, key=full.get)

    def test_sample_estimates_track_full_ratios(self, selector, smooth2d):
        res = selector.select(smooth2d, 1e-3, "vr_rel", sample_step=4)
        full = SZ14Compressor().compress(smooth2d, 1e-3, "vr_rel").stats.ratio
        est = res.estimates["SZ-1.4"]
        assert 0.3 * full < est < 3 * full

    def test_selector_never_below_both(self, selector, smooth3d):
        res = selector.select(smooth3d, 1e-3, "vr_rel")
        ratios = {
            c.name: c.compress(smooth3d, 1e-3, "vr_rel").stats.ratio
            for c in (SZ14Compressor(), ZFPCompressor())
        }
        assert res.compressed.stats.ratio >= min(ratios.values()) * 0.99

    def test_decompress_dispatches_on_variant(self, selector, smooth2d):
        cf = ZFPCompressor().compress(smooth2d, 1e-3)
        out = selector.decompress(cf.payload)
        assert out.shape == smooth2d.shape

    def test_decompress_unknown_variant_rejected(self, smooth2d):
        sel = OnlineSelector([ZFPCompressor()])
        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        with pytest.raises(ContainerError):
            sel.decompress(cf.payload)

    def test_empty_selector_rejected(self):
        with pytest.raises(ConfigError):
            OnlineSelector([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            OnlineSelector([SZ14Compressor(), SZ14Compressor()])


class TestRegistryCandidates:
    def test_candidates_by_registry_name(self, smooth2d):
        sel = OnlineSelector(["sz14", "zfp-like"])
        res = sel.select(smooth2d, 1e-3, "vr_rel")
        assert res.chosen in ("SZ-1.4", "ZFP-like")
        out = sel.decompress(res.compressed)
        assert out.shape == smooth2d.shape

    def test_mixed_names_and_instances(self, smooth2d):
        sel = OnlineSelector([SZ14Compressor(), "zfp-like"])
        res = sel.select(smooth2d, 1e-3, "vr_rel")
        assert set(res.estimates) == {"SZ-1.4", "ZFP-like"}

    def test_unknown_candidate_name_rejected(self):
        with pytest.raises(ContainerError):
            OnlineSelector(["sz3000"])


class TestShapeSkip:
    def test_incompatible_candidate_skipped_not_scored(self, ramp1d):
        """waveSZ cannot take 1D data: it is excluded, not scored 0.0."""
        sel = OnlineSelector(["wavesz", "sz14"])
        res = sel.select(ramp1d, 1e-3, "vr_rel")
        assert res.skipped == ("waveSZ",)
        assert "waveSZ" not in res.estimates
        assert res.chosen == "SZ-1.4"

    def test_no_skips_on_compatible_field(self, selector, smooth2d):
        res = selector.select(smooth2d, 1e-3, "vr_rel")
        assert res.skipped == ()

    def test_all_candidates_incompatible_raises(self, ramp1d):
        sel = OnlineSelector(["wavesz", "zfp-like"])
        with pytest.raises(ConfigError, match="no candidate"):
            sel.select(ramp1d, 1e-3, "vr_rel")
