"""Unit tests for the service job model."""

import numpy as np
import pytest

from repro.errors import ConfigError, ContainerError, DTypeError
from repro.service.jobs import CompressionJob, JobState, make_job


class TestJobValidation:
    def test_make_job_assigns_ids(self, smooth2d):
        a = make_job("sz14", smooth2d)
        b = make_job("sz14", smooth2d)
        assert a.job_id != b.job_id

    def test_any_registry_name_accepted(self, smooth2d):
        for name in ("sz14", "SZ-1.4", "SZ-2.0+", "wavesz-g"):
            assert make_job(name, smooth2d).codec == name

    def test_unknown_codec_rejected(self, smooth2d):
        with pytest.raises(ContainerError, match="sz3000"):
            make_job("sz3000", smooth2d)

    def test_compress_needs_data(self):
        with pytest.raises(ConfigError, match="data"):
            CompressionJob(job_id="x", codec="sz14")

    def test_int_data_rejected(self):
        with pytest.raises(DTypeError):
            make_job("sz14", np.zeros((8, 8), dtype=np.int32))

    def test_bad_bound_rejected(self, smooth2d):
        with pytest.raises(ConfigError, match="bound"):
            make_job("sz14", smooth2d, eb=0.0)

    def test_bad_deadline_rejected(self, smooth2d):
        with pytest.raises(ConfigError, match="deadline"):
            make_job("sz14", smooth2d, deadline_s=-1.0)

    def test_decompress_needs_payload(self):
        with pytest.raises(ConfigError, match="payload"):
            make_job("auto", op="decompress")

    def test_unknown_op_rejected(self, smooth2d):
        with pytest.raises(ConfigError, match="op"):
            make_job("sz14", smooth2d, op="transmogrify")

    def test_bad_n_tiles_rejected(self, smooth2d):
        with pytest.raises(ConfigError, match="n_tiles"):
            make_job("sz14", smooth2d, n_tiles=0)

    def test_tiles_need_a_compress_job(self):
        with pytest.raises(ConfigError, match="compress"):
            make_job("auto", op="decompress", payload=b"x", n_tiles=2)

    def test_tiles_need_a_2d_field(self):
        with pytest.raises(ConfigError, match="2D"):
            make_job("wavesz-dp", np.zeros(64, dtype=np.float32), n_tiles=2)

    def test_tiled_compress_job_accepted(self, smooth2d):
        assert make_job("wavesz-dp", smooth2d, n_tiles=4).n_tiles == 4

    def test_metrics_key(self, smooth2d):
        assert make_job("wavesz-g", smooth2d).metrics_key == "wavesz-g"
        j = make_job("auto", op="decompress", payload=b"x")
        assert j.metrics_key == "decompress"

    def test_input_bytes(self, smooth2d):
        assert make_job("sz14", smooth2d).input_bytes == smooth2d.nbytes
        j = make_job("auto", op="decompress", payload=b"abcd")
        assert j.input_bytes == 4


class TestJobState:
    def test_terminal_states(self):
        terminal = {
            JobState.DONE, JobState.FAILED, JobState.EXPIRED,
            JobState.REJECTED,
        }
        for s in JobState:
            assert s.terminal == (s in terminal)
