"""Unit tests for base-2 operation (Table 3, §3.3)."""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.core.base2 import (
    TABLE3_BASES,
    binary_representation,
    pow2_tighten,
    quantize_base2_vector,
)
from repro.errors import ConfigError
from repro.sz.quantizer import quantize_vector

Q = QuantizerConfig()


class TestTable3:
    # The rows of paper Table 3, verbatim.
    EXPECTED = {
        1e-1: ("1.1001100110011", -4),
        1e-2: ("1.0100011110101", -7),
        1e-3: ("1.0000011000100", -10),
        1e-4: ("1.1010001101101", -14),
        1e-5: ("1.0100111110001", -17),
        1e-6: ("1.0000110001101", -20),
        1e-7: ("1.1010110101111", -24),
    }

    @pytest.mark.parametrize("base", TABLE3_BASES)
    def test_binary_representation_matches_paper(self, base):
        mant, exp = binary_representation(base)
        exp_mant, exp_exp = self.EXPECTED[base]
        assert mant == exp_mant
        assert exp == exp_exp

    def test_power_of_two_has_clean_mantissa(self):
        mant, exp = binary_representation(0.25)
        assert mant == "1." + "0" * 13
        assert exp == -2

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            binary_representation(0.0)


class TestPow2Tighten:
    def test_table3_exponents(self):
        """1e-3 -> 2^-10 (the paper's worked example)."""
        t, k = pow2_tighten(1e-3)
        assert k == -10 and t == 2.0**-10

    @pytest.mark.parametrize("eb", [1e-1, 0.7, 3.3, 1e-6, 5e-4])
    def test_tightened_bound_never_looser(self, eb):
        t, k = pow2_tighten(eb)
        assert t <= eb < 2 * t
        assert t == 2.0**k

    def test_exact_powers_unchanged(self):
        for k in (-20, -3, 0, 4):
            t, kk = pow2_tighten(2.0**k)
            assert kk == k and t == 2.0**k

    def test_rejects_bad(self):
        for bad in (0.0, -1.0, float("inf")):
            with pytest.raises(ConfigError):
                pow2_tighten(bad)


class TestExponentOnlyQuantization:
    def test_bitwise_equal_to_generic_quantizer(self):
        """The exponent-only path is exactly Algorithm 1 at p = 2^k."""
        rng = np.random.default_rng(0)
        for k in (-10, -6, -14):
            p = 2.0**k
            pred = rng.normal(size=3000)
            d = pred + rng.normal(size=3000) * 8 * p
            c1, o1 = quantize_vector(d, pred, p, Q, np.float32)
            c2, o2 = quantize_base2_vector(d, pred, k, Q, np.float32)
            assert (c1 == c2).all()
            assert (o1 == o2).all()

    def test_bound_held(self):
        rng = np.random.default_rng(1)
        k = -10
        pred = rng.normal(size=2000)
        d = pred + rng.normal(size=2000) * 5 * 2.0**k
        codes, out = quantize_base2_vector(d, pred, k, Q, np.float32)
        ok = codes != 0
        assert (np.abs(out[ok].astype(np.float64) - d[ok]) <= 2.0**k).all()

    def test_no_division_needed(self):
        """ldexp scaling equals division by a power of two exactly."""
        x = np.array([3.7, -0.002, 1e5])
        assert (np.ldexp(x, 10) == x / 2.0**-10).all()
