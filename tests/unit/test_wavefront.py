"""Unit tests for the wavefront memory-layout transform (Figure 5)."""

import numpy as np
import pytest

from repro.core.wavefront import build_layout, from_wavefront, to_wavefront
from repro.errors import ShapeError
from repro.sz.wavefront_index import manhattan_grid


class TestLayout:
    @pytest.mark.parametrize("shape", [(2, 2), (6, 10), (10, 6), (1, 5), (5, 1)])
    def test_bijection(self, shape):
        rng = np.random.default_rng(0)
        data = rng.normal(size=shape).astype(np.float32)
        stream, layout = to_wavefront(data)
        assert (from_wavefront(stream, layout) == data).all()

    def test_column_count(self):
        layout = build_layout((6, 10))
        assert layout.n_cols == 15  # d0 + d1 - 1

    def test_columns_group_by_manhattan_distance(self):
        shape = (6, 10)
        layout = build_layout(shape)
        md = manhattan_grid(shape).reshape(-1)
        for t in range(layout.n_cols):
            col = layout.column(t)
            assert (md[col] == t).all()

    def test_figure5_example(self):
        """The 6x10 grid of Figure 5a: column 7 holds (0,7)...(5,2)."""
        layout = build_layout((6, 10))
        col = layout.column(7)
        ij = [divmod(int(f), 10) for f in col]
        assert ij == [(0, 7), (1, 6), (2, 5), (3, 4), (4, 3), (5, 2)]

    def test_within_column_ordered_by_row(self):
        layout = build_layout((5, 8))
        for t in range(layout.n_cols):
            rows = layout.column(t) // 8
            assert (np.diff(rows) == 1).all() or rows.size == 1

    def test_column_lengths_sum_to_n(self):
        layout = build_layout((7, 9))
        total = sum(layout.column_length(t) for t in range(layout.n_cols))
        assert total == 63

    def test_inverse_permutation(self):
        layout = build_layout((4, 6))
        inv = layout.inverse()
        assert (layout.flat_order[inv[layout.flat_order]] == layout.flat_order).all()
        assert (inv[layout.flat_order] == np.arange(24)).all()

    def test_no_dependencies_within_column(self):
        """Points in a wavefront column never depend on each other (§3.1):
        no Lorenzo neighbour offset connects two same-column points."""
        shape = (6, 10)
        layout = build_layout(shape)
        from repro.sz.lorenzo import neighbor_offsets

        offsets, _ = neighbor_offsets(shape)
        for t in range(layout.n_cols):
            col = set(layout.column(t).tolist())
            for f in col:
                for off in offsets:
                    assert (f - off) not in col

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            to_wavefront(np.zeros(5, dtype=np.float32))
        with pytest.raises(ShapeError):
            to_wavefront(np.zeros((2, 2, 2), dtype=np.float32))

    def test_stream_length_validated(self):
        layout = build_layout((3, 3))
        with pytest.raises(ShapeError):
            from_wavefront(np.zeros(8), layout)

    def test_caching(self):
        assert build_layout((5, 6)) is build_layout((5, 6))
