"""Unit tests for the Listing-1 wavefront kernel (oracle) and its
equivalence with the vectorized engine — the paper's core claim that the
wavefront schedule changes *order*, not *results*."""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.core.kernel import listing1_indices, wavefront_order_codes, wavefront_pqd
from repro.core.wavefront import build_layout
from repro.errors import ShapeError
from repro.sz.pqd import pqd_compress

Q = QuantizerConfig()


class TestListing1Indices:
    def test_every_interior_point_issued_once(self):
        d0, d1 = 6, 9
        gis = [gi for *_ , gi in listing1_indices(d0, d1)]
        assert len(gis) == (d0 - 1) * (d1 - 1)
        assert len(set(gis)) == len(gis)

    def test_neighbours_are_correct_grid_points(self):
        d0, d1 = 5, 8
        layout = build_layout((d0, d1))
        pos_to_ij = {}
        for t in range(layout.n_cols):
            for f in layout.column(t):
                s = int(np.where(layout.flat_order == f)[0][0])
                pos_to_ij[s] = divmod(int(f), d1)
        for _, nw, n_, w_, gi in listing1_indices(d0, d1):
            i, j = pos_to_ij[gi]
            assert pos_to_ij[n_] == (i - 1, j)
            assert pos_to_ij[w_] == (i, j - 1)
            assert pos_to_ij[nw] == (i - 1, j - 1)

    def test_columns_issued_in_order(self):
        cols = [t for t, *_ in listing1_indices(4, 7)]
        assert cols == sorted(cols)

    def test_dependencies_precede_issue(self):
        """NW/N/W positions are always issued (or border) before gi."""
        d0, d1 = 6, 9
        layout = build_layout((d0, d1))
        border_positions = set()
        inv = {}
        for t in range(layout.n_cols):
            for f in layout.column(t):
                pass
        # border positions: stream positions of first row/col points
        for s, f in enumerate(layout.flat_order):
            i, j = divmod(int(f), d1)
            inv[s] = (i, j)
            if i == 0 or j == 0:
                border_positions.add(s)
        done = set(border_positions)
        for _, nw, n_, w_, gi in listing1_indices(d0, d1):
            assert {nw, n_, w_} <= done
            done.add(gi)

    def test_rejects_degenerate(self):
        with pytest.raises(ShapeError):
            list(listing1_indices(1, 5))


class TestOracleEquivalence:
    @pytest.mark.parametrize("shape", [(8, 12), (12, 12), (5, 20)])
    def test_codes_identical_to_vectorized_engine(self, shape):
        rng = np.random.default_rng(42)
        data = np.cumsum(rng.normal(size=shape), axis=1).astype(np.float32)
        data /= max(np.abs(data).max(), 1)
        p = 2.0**-10
        oracle = wavefront_pqd(data, p, Q)
        engine = pqd_compress(data, p, Q, border="verbatim")
        assert (oracle.codes_raster() == engine.codes).all()
        assert (oracle.decompressed == engine.decompressed).all()

    def test_base2_oracle_matches_too(self):
        rng = np.random.default_rng(43)
        data = np.cumsum(rng.normal(size=(10, 14)), axis=0).astype(np.float32)
        data /= max(np.abs(data).max(), 1)
        oracle = wavefront_pqd(data, 2.0**-9, Q, base2_exponent=-9)
        engine = pqd_compress(data, 2.0**-9, Q, border="verbatim")
        assert (oracle.codes_raster() == engine.codes).all()

    def test_issue_order_is_wavefront_order(self):
        rng = np.random.default_rng(44)
        data = rng.normal(size=(6, 8)).astype(np.float32)
        oracle = wavefront_pqd(data, 1e-2, Q)
        assert (np.diff(oracle.issue_order) > 0).all()


class TestWavefrontOrderCodes:
    def test_permutation_matches_layout(self, smooth2d):
        res = pqd_compress(smooth2d, 1e-3, Q, border="verbatim")
        stream = wavefront_order_codes(res.codes)
        layout = build_layout(smooth2d.shape)
        assert (stream == res.codes.reshape(-1)[layout.flat_order]).all()

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            wavefront_order_codes(np.zeros(5, dtype=np.int64))
