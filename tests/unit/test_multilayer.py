"""Unit tests for the multi-layer Lorenzo option (SZ-1.4 feature)."""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.errors import ShapeError
from repro.sz import SZ14Compressor
from repro.sz.lorenzo import lorenzo_predict, neighbor_offsets
from repro.sz.pqd import pqd_compress, pqd_decompress
from repro.sz.wavefront_index import interior_wavefronts

Q = QuantizerConfig()


class TestLayer2Stencil:
    def test_offsets_count_2d(self):
        offsets, signs = neighbor_offsets((10, 10), layers=2)
        assert offsets.size == 8  # 3x3 box minus the point itself

    def test_offsets_count_3d(self):
        offsets, signs = neighbor_offsets((10, 10, 10), layers=2)
        assert offsets.size == 26

    def test_coefficients_sum_to_one(self):
        """Any Lorenzo stencil reproduces constants: coefficients sum to 1."""
        for layers in (1, 2, 3):
            _, signs = neighbor_offsets((20, 20), layers=layers)
            assert signs.sum() == pytest.approx(1.0)

    def test_binomial_coefficients_2d(self):
        offsets, signs = neighbor_offsets((10, 10), layers=2)
        stencil = dict(zip(offsets.tolist(), signs.tolist()))
        # (di,dj)=(1,1): -C(2,1)C(2,1) = -4;  (2,2): -C(2,2)C(2,2)... sign
        # (-1)^(4+1) = -1 -> -1;  (1,0): +2;  (2,0): -1.
        assert stencil[10 + 1] == -4.0  # (1,1)
        assert stencil[10] == 2.0  # (1,0)
        assert stencil[20] == -1.0  # (2,0)
        assert stencil[22] == -1.0  # (2,2)

    def test_noise_amplification_grows_with_layers(self):
        """Why layer 1 usually wins: deeper stencils amplify the quantization
        noise of the neighbours they read."""
        _, s1 = neighbor_offsets((20, 20), layers=1)
        _, s2 = neighbor_offsets((20, 20), layers=2)
        assert np.abs(s2).sum() > 3 * np.abs(s1).sum()

    def test_open_loop_exact_on_quadratics(self):
        i, j = np.mgrid[0:20, 0:25]
        quad = 0.5 * i * i - 0.2 * j * j + 0.3 * i * j + i - 2 * j + 5
        pred = lorenzo_predict(quad, layers=2)
        err = (quad - pred)[2:, 2:]
        assert np.abs(err).max() < 1e-8

    def test_layer1_not_exact_on_quadratics(self):
        i, j = np.mgrid[0:20, 0:25]
        quad = 0.3 * i * j
        pred = lorenzo_predict(quad, layers=1)
        assert np.abs((quad - pred)[1:, 1:]).max() > 0.2

    def test_open_loop_border_is_nan(self):
        pred = lorenzo_predict(np.ones((8, 8)), layers=2)
        assert np.isnan(pred[:2, :]).all()
        assert np.isnan(pred[:, :2]).all()
        assert not np.isnan(pred[2:, 2:]).any()

    def test_rejects_bad_layers(self):
        with pytest.raises(ShapeError):
            neighbor_offsets((5, 5), layers=0)
        with pytest.raises(ShapeError):
            lorenzo_predict(np.ones((8, 8)), layers=4)
        with pytest.raises(ShapeError):
            lorenzo_predict(np.ones((2, 8)), layers=2)  # too small


class TestWavefrontMargin:
    @pytest.mark.parametrize("shape", [(8, 10), (5, 6, 7)])
    def test_margin2_covers_interior_once(self, shape):
        groups = interior_wavefronts(shape, 2)
        all_idx = np.concatenate(groups)
        expected = int(np.prod([n - 2 for n in shape]))
        assert all_idx.size == expected
        assert np.unique(all_idx).size == all_idx.size

    def test_margin2_dependencies_resolved(self):
        shape = (8, 10)
        offsets, _ = neighbor_offsets(shape, layers=2)
        done = np.zeros(80, dtype=bool)
        grid = np.indices(shape)
        done[np.flatnonzero((grid < 2).any(axis=0).reshape(-1))] = True
        for group in interior_wavefronts(shape, 2):
            for off in offsets:
                assert done[group - off].all()
            done[group] = True
        assert done.all()


class TestEngineLayer2:
    @pytest.mark.parametrize("layers", [1, 2, 3])
    def test_roundtrip_2d(self, smooth2d, layers):
        res = pqd_compress(smooth2d, 1e-3, Q, border="padded", layers=layers)
        rec = pqd_decompress(
            res.codes, res.border_values, res.outlier_values,
            precision=1e-3, quant=Q, dtype=np.float32,
            border="padded", layers=layers,
        )
        assert (rec == res.decompressed).all()
        assert np.abs(rec.astype(np.float64) - smooth2d).max() <= 1e-3

    def test_roundtrip_3d(self, smooth3d):
        res = pqd_compress(smooth3d, 1e-3, Q, border="padded", layers=2)
        rec = pqd_decompress(
            res.codes, res.border_values, res.outlier_values,
            precision=1e-3, quant=Q, dtype=np.float32,
            border="padded", layers=2,
        )
        assert (rec == res.decompressed).all()

    def test_layers_require_padded(self, smooth2d):
        with pytest.raises(ShapeError):
            pqd_compress(smooth2d, 1e-3, Q, border="verbatim", layers=2)

    def test_sz14_layers_end_to_end(self, smooth2d):
        c = SZ14Compressor(layers=2)
        cf = c.compress(smooth2d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute
