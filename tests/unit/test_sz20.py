"""Unit tests for the SZ-2.0 hybrid compressor."""

import numpy as np
import pytest

from repro.errors import ContainerError, ShapeError
from repro.sz import SZ14Compressor, SZ20Compressor


@pytest.fixture(scope="module")
def planes2d():
    i, j = np.mgrid[0:48, 0:72]
    return (0.5 * i + 0.2 * j + 8 * np.sin(i / 24)).astype(np.float32)


class TestRoundtrip:
    def test_2d(self, smooth2d):
        c = SZ20Compressor()
        cf = c.compress(smooth2d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert out.shape == smooth2d.shape and out.dtype == smooth2d.dtype
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute

    def test_3d(self, smooth3d):
        c = SZ20Compressor()
        cf = c.compress(smooth3d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - smooth3d).max() <= cf.bound.absolute

    def test_ragged_blocks(self):
        """Field dims not divisible by the block size."""
        rng = np.random.default_rng(0)
        x = np.cumsum(rng.normal(size=(17, 23)), axis=1).astype(np.float32)
        c = SZ20Compressor(block_size=6)
        cf = c.compress(x, 1e-2, "vr_rel")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute

    def test_saturated(self, saturated2d):
        c = SZ20Compressor()
        cf = c.compress(saturated2d, 1e-3)
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - saturated2d).max() <= cf.bound.absolute

    def test_rough_with_outliers(self, rough2d):
        c = SZ20Compressor()
        cf = c.compress(rough2d, 1e-7, "abs")
        out = c.decompress(cf)
        assert cf.stats.n_unpredictable > 0
        assert np.abs(out.astype(np.float64) - rough2d).max() <= 1e-7

    def test_decompress_from_bytes(self, smooth2d):
        c = SZ20Compressor()
        cf = c.compress(smooth2d, 1e-3)
        assert (c.decompress(cf.payload) == c.decompress(cf)).all()


class TestHybridSelection:
    def test_planes_select_regression(self, planes2d):
        cf = SZ20Compressor().compress(planes2d, 1e-4, "vr_rel")
        assert cf.meta["regression_fraction"] > 0.05

    def test_regression_helps_on_planes(self, planes2d):
        r20 = SZ20Compressor().compress(planes2d, 1e-3).stats.ratio
        r14 = SZ14Compressor().compress(planes2d, 1e-3).stats.ratio
        assert r20 > 0.9 * r14  # at least competitive, typically better

    def test_sz14_competitive_at_low_bounds(self, smooth2d):
        """§2.1: at low error bounds SZ-2.0 is 'very similar (or slightly
        worse)' than SZ-1.4 — the rationale for basing waveSZ on 1.4."""
        r20 = SZ20Compressor().compress(smooth2d, 1e-4).stats.ratio
        r14 = SZ14Compressor().compress(smooth2d, 1e-4).stats.ratio
        assert r14 > 0.8 * r20

    def test_block_size_configurable(self, smooth2d):
        for bs in (4, 8):
            c = SZ20Compressor(block_size=bs)
            cf = c.compress(smooth2d, 1e-3)
            out = c.decompress(cf)
            assert np.abs(out.astype(np.float64) - smooth2d).max() <= (
                cf.bound.absolute
            )


class TestValidation:
    def test_rejects_1d(self, ramp1d):
        with pytest.raises(ShapeError):
            SZ20Compressor().compress(ramp1d, 1e-3, "abs")

    def test_rejects_pw_rel(self, smooth2d):
        with pytest.raises(ShapeError):
            SZ20Compressor().compress(smooth2d, 1e-3, "pw_rel")

    def test_wrong_variant_rejected(self, smooth2d):
        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        with pytest.raises(ContainerError):
            SZ20Compressor().decompress(cf)
