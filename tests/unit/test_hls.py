"""Unit tests for the HLS loop scheduler and the column pipeline simulator."""

import numpy as np
import pytest

from repro.core.layout import end_cycle, start_cycle
from repro.errors import ModelError
from repro.fpga.hls import HLSLoopNest, simulate_columns


class TestHLSLoopNest:
    def test_pii_1_met_when_dependence_far(self):
        """The body loop: dependence distance Λ >= Δ lets pII = 1 hold."""
        nest = HLSLoopNest("BodyV", trip_count=100, latency=50,
                           dependence_distance=100)
        assert nest.achieved_pii == 1

    def test_pii_relaxed_when_dependence_close(self):
        """§3.3: 'the synthesis tool will relax the restriction of pII=1 to
        the smallest value'."""
        nest = HLSLoopNest("HeadV", trip_count=10, latency=50,
                           dependence_distance=10)
        assert nest.achieved_pii == 5

    def test_no_dependence_keeps_target(self):
        nest = HLSLoopNest("free", trip_count=10, latency=99)
        assert nest.achieved_pii == 1

    def test_cycles_formula(self):
        nest = HLSLoopNest("L", trip_count=10, latency=8)
        assert nest.cycles == 8 + 9  # fill + (n-1) issues

    def test_zero_trip_loop(self):
        assert HLSLoopNest("empty", trip_count=0, latency=5).cycles == 0

    def test_report_mentions_achieved_ii(self):
        nest = HLSLoopNest("BodyV", trip_count=4, latency=8,
                           dependence_distance=2)
        assert "II(achieved)=4" in nest.report()

    def test_validation(self):
        with pytest.raises(ModelError):
            HLSLoopNest("bad", trip_count=-1, latency=1)


class TestColumnSimulator:
    def test_ideal_case_matches_figure6_closed_forms(self):
        """With Δ = Λ and all columns full, start(r,c) = c*Λ + r and
        end(r,c) = (c+1)*Λ + r - 1 — Figure 6 exactly."""
        lam = 8
        ncols = 6
        sim = simulate_columns([lam] * ncols, delta=lam)
        for c in range(ncols):
            for r in range(lam):
                assert sim.start[c][r] == start_cycle(r, c, lam)
                assert sim.finish[c][r] == end_cycle(r, c, lam) + 1

    def test_body_is_stall_free(self):
        lam = 10
        sim = simulate_columns([lam] * 20, delta=lam)
        assert sim.stall_cycles == 0

    def test_short_columns_stall(self):
        """Λ < Δ forces Δ-Λ stall cycles per column (the Hurricane case)."""
        lam, delta = 5, 12
        ncols = 10
        sim = simulate_columns([lam] * ncols, delta=delta)
        assert sim.stall_cycles > 0
        # Total ~ sum of max(len, delta): column switch dominated by delta.
        assert sim.total_cycles >= (ncols - 1) * delta + lam

    def test_total_cycles_close_to_closed_form(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 30, size=40).tolist()
        delta = 12
        sim = simulate_columns(lengths, delta=delta)
        closed = sum(max(l, delta) for l in lengths) + delta
        # The event-driven result never exceeds the closed form and stays
        # within one drain of it.
        assert sim.total_cycles <= closed
        assert sim.total_cycles >= closed - 2 * delta

    def test_pii_scales_issue_rate(self):
        one = simulate_columns([16] * 8, delta=16, pii=1)
        two = simulate_columns([16] * 8, delta=16, pii=2)
        assert two.total_cycles > one.total_cycles

    def test_empty_columns(self):
        sim = simulate_columns([], delta=5)
        assert sim.total_cycles == 0

    def test_validation(self):
        with pytest.raises(ModelError):
            simulate_columns([3], delta=0)
