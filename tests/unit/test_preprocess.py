"""Unit tests for the pointwise-relative logarithmic preprocessing."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError, DTypeError
from repro.sz import SZ14Compressor
from repro.sz.preprocess import (
    LogTransform,
    forward_log2,
    inverse_log2,
    pw_rel_abs_bound,
)


class TestTransform:
    def test_forward_inverse_identity_without_quantization(self):
        x = np.array([1.0, -2.5, 0.0, 1e-6, -1e6], dtype=np.float64)
        t = forward_log2(x)
        back = inverse_log2(t.log_values, t.negative, t.zero)
        assert back[2] == 0.0
        nz = x != 0
        assert np.allclose(back[nz], x[nz], rtol=1e-12)

    def test_signs_and_zeros_recorded(self):
        x = np.array([[1.0, -1.0], [0.0, 4.0]], dtype=np.float32)
        t = forward_log2(x)
        assert t.negative.tolist() == [[False, True], [False, False]]
        assert t.zero.tolist() == [[False, False], [True, False]]

    def test_zero_filler_is_smooth_minimum(self):
        x = np.array([4.0, 0.0, 0.25], dtype=np.float32)
        t = forward_log2(x)
        assert t.log_values[1] == t.log_values[2] == -2.0  # log2(0.25)

    def test_mask_serialization_roundtrip(self):
        x = np.array([[1.0, -1.0, 0.0]] * 3, dtype=np.float32)
        t = forward_log2(x)
        neg, zero = t.masks_to_bytes()
        n2, z2 = LogTransform.masks_from_bytes(neg, zero, x.shape)
        assert (n2 == t.negative).all()
        assert (z2 == t.zero).all()

    def test_rejects_nonfinite(self):
        with pytest.raises(DTypeError):
            forward_log2(np.array([1.0, np.inf], dtype=np.float32))

    def test_rejects_int(self):
        with pytest.raises(DTypeError):
            forward_log2(np.array([1, 2]))


class TestBoundMath:
    def test_bound_below_log2_1p(self):
        for eb in (1e-1, 1e-2, 1e-3, 1e-4):
            b = pw_rel_abs_bound(eb)
            assert 0 < b < math.log2(1 + eb)

    def test_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigError):
                pw_rel_abs_bound(bad)


class TestSZ14PwRel:
    @pytest.fixture(scope="class")
    def signed_field(self):
        rng = np.random.default_rng(11)
        x = (np.cumsum(rng.normal(size=(40, 60)), axis=1) * 10).astype(np.float32)
        x[np.abs(x) < 0.4] = 0.0
        return x

    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3])
    def test_relative_bound_strict(self, signed_field, eb):
        c = SZ14Compressor()
        cf = c.compress(signed_field, eb, "pw_rel")
        out = c.decompress(cf)
        nz = signed_field != 0
        rel = np.abs(out[nz].astype(np.float64) / signed_field[nz] - 1.0)
        assert rel.max() <= eb

    def test_zeros_exact_and_signs_preserved(self, signed_field):
        c = SZ14Compressor()
        out = c.decompress(c.compress(signed_field, 1e-2, "pw_rel"))
        assert (out[signed_field == 0] == 0).all()
        nz = signed_field != 0
        assert (np.sign(out[nz]) == np.sign(signed_field[nz])).all()

    def test_looser_bound_higher_ratio(self, signed_field):
        c = SZ14Compressor()
        loose = c.compress(signed_field, 1e-1, "pw_rel").stats.ratio
        tight = c.compress(signed_field, 1e-3, "pw_rel").stats.ratio
        assert loose > tight

    def test_wide_dynamic_range_advantage(self):
        """PW_REL's point: on data spanning decades, a relative bound
        preserves small values that a VR-REL bound would flatten."""
        rng = np.random.default_rng(12)
        base = np.exp(rng.normal(size=(40, 60)) * 3).astype(np.float32)
        c = SZ14Compressor()
        out_pw = c.decompress(c.compress(base, 1e-2, "pw_rel"))
        out_vr = c.decompress(c.compress(base, 1e-2, "vr_rel"))
        small = base < np.percentile(base, 10)
        rel_pw = np.abs(out_pw[small] / base[small] - 1).max()
        rel_vr = np.abs(out_vr[small] / base[small] - 1).max()
        assert rel_pw <= 1e-2
        assert rel_vr > rel_pw  # VR-REL ruins the small values
