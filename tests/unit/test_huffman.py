"""Unit tests for the customized canonical Huffman codec."""

import numpy as np
import pytest

from repro.encoding import HuffmanCodec, HuffmanTable, entropy_bits, symbol_histogram
from repro.errors import HuffmanError


def _codec_for(symbols):
    table = HuffmanTable.from_symbols(np.asarray(symbols))
    return HuffmanCodec(table)


class TestTableConstruction:
    def test_two_symbols_get_one_bit_each(self):
        t = HuffmanTable.from_frequencies(np.array([7, 9]), np.array([100, 50]))
        assert list(t.lengths) == [1, 1]

    def test_skewed_distribution_orders_lengths(self):
        t = HuffmanTable.from_frequencies(
            np.array([1, 2, 3, 4]), np.array([100, 30, 10, 1])
        )
        # Most frequent symbol gets the shortest code.
        by_symbol = dict(zip(t.symbols.tolist(), t.lengths.tolist()))
        assert by_symbol[1] <= by_symbol[2] <= by_symbol[3]

    def test_single_symbol_length_one(self):
        t = HuffmanTable.from_symbols(np.full(5, 42))
        assert list(t.symbols) == [42]
        assert list(t.lengths) == [1]

    def test_kraft_equality(self):
        rng = np.random.default_rng(0)
        syms = rng.geometric(0.2, 5000)
        t = HuffmanTable.from_symbols(syms)
        assert t.is_prefix_free_and_complete()

    def test_canonical_codes_are_prefix_free(self):
        rng = np.random.default_rng(1)
        t = HuffmanTable.from_symbols(rng.integers(0, 40, 3000))
        codes = t.assign_codes()
        entries = list(zip(codes.tolist(), t.lengths.tolist()))
        for i, (ci, li) in enumerate(entries):
            for j, (cj, lj) in enumerate(entries):
                if i == j:
                    continue
                if li <= lj:
                    assert (cj >> (lj - li)) != ci, "prefix violation"

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(HuffmanError):
            HuffmanTable.from_frequencies(np.array([1]), np.array([0]))

    def test_optimality_vs_entropy(self):
        """Huffman expected length within 1 bit of entropy (classic bound)."""
        rng = np.random.default_rng(2)
        syms = rng.geometric(0.35, 20000)
        vals, cnts = symbol_histogram(syms)
        t = HuffmanTable.from_frequencies(vals, cnts)
        codec = HuffmanCodec(t)
        avg_len = codec.encoded_size_bits(syms) / syms.size
        H = entropy_bits(cnts)
        assert H <= avg_len < H + 1.0


class TestSerialization:
    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        t = HuffmanTable.from_symbols(rng.integers(0, 500, 4000))
        t2, consumed = HuffmanTable.from_bytes(t.to_bytes())
        assert consumed == len(t.to_bytes())
        assert (t2.symbols == t.symbols).all()
        assert (t2.lengths == t.lengths).all()

    def test_empty_table_roundtrip(self):
        t = HuffmanTable(np.empty(0, np.int64), np.empty(0, np.int64))
        t2, _ = HuffmanTable.from_bytes(t.to_bytes())
        assert t2.symbols.size == 0

    def test_bad_magic_rejected(self):
        with pytest.raises(HuffmanError):
            HuffmanTable.from_bytes(b"XXXX" + b"\x00" * 8)

    def test_corrupt_count_rejected(self):
        t = HuffmanTable.from_symbols(np.array([1, 1, 2, 3]))
        blob = bytearray(t.to_bytes())
        blob[9] ^= 0xFF  # clobber a per-length count
        with pytest.raises(HuffmanError):
            HuffmanTable.from_bytes(bytes(blob))


class TestCodec:
    def test_roundtrip_geometric(self):
        rng = np.random.default_rng(4)
        syms = rng.geometric(0.3, 50000) + 32760  # quant-code-like alphabet
        c = _codec_for(syms)
        payload, bits = c.encode(syms)
        assert (c.decode(payload, syms.size) == syms).all()
        assert len(payload) == (bits + 7) // 8

    def test_roundtrip_uniform(self):
        rng = np.random.default_rng(5)
        syms = rng.integers(0, 256, 10000)
        c = _codec_for(syms)
        payload, _ = c.encode(syms)
        assert (c.decode(payload, syms.size) == syms).all()

    def test_roundtrip_with_deep_codes(self):
        # Exponential frequency fall-off forces codes deeper than the
        # 12-bit fast decode table.
        syms = np.concatenate(
            [np.full(1 << i, i) for i in range(18)]
        )
        c = _codec_for(syms)
        assert c.table.max_length > 12
        payload, _ = c.encode(syms)
        assert (c.decode(payload, syms.size) == syms).all()

    def test_single_symbol_stream(self):
        syms = np.full(17, 9)
        c = _codec_for(syms)
        payload, bits = c.encode(syms)
        assert bits == 17
        assert (c.decode(payload, 17) == 9).all()

    def test_empty_stream(self):
        c = _codec_for(np.array([1, 2]))
        payload, bits = c.encode(np.empty(0, np.int64))
        assert payload == b"" and bits == 0
        assert c.decode(b"", 0).size == 0

    def test_unknown_symbol_rejected(self):
        c = _codec_for(np.array([1, 1, 2]))
        with pytest.raises(HuffmanError):
            c.encode(np.array([3]))
        with pytest.raises(HuffmanError):
            c.encode(np.array([10**6]))

    def test_corrupt_bitstream_detected_or_wrong(self):
        syms = np.array([1, 2, 3, 3, 3, 2, 1, 3] * 10)
        c = _codec_for(syms)
        payload, _ = c.encode(syms)
        # Decoding more symbols than encoded must fail (stream exhausted)
        # rather than loop forever.
        with pytest.raises(Exception):
            c.decode(payload, syms.size * 10)

    def test_encoded_size_bits_matches_encode(self):
        rng = np.random.default_rng(6)
        syms = rng.integers(0, 64, 5000)
        c = _codec_for(syms)
        _, bits = c.encode(syms)
        assert bits == c.encoded_size_bits(syms)
