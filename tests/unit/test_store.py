"""Unit tests for the content-addressed array store and its tile cache."""

import hashlib
import json

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.errors import ChecksumError, ShapeError, StoreError
from repro.parallel import tile_compress, tile_decompress
from repro.service.metrics import MetricsRegistry
from repro.store import ArrayStore, TileCache
from repro.store.store import MANIFEST_FORMAT


@pytest.fixture()
def store(tmp_path):
    return ArrayStore(tmp_path / "store")


class TestPut:
    def test_put_writes_manifest_and_objects(self, store, smooth2d):
        result = store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        assert result.n_tiles == 4
        assert result.new_objects == 4
        manifest = json.loads(
            (store.root / "manifests" / "ts.json").read_text()
        )
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["codec"] == "SZ-1.4"  # canonical, not the alias
        assert manifest["shape"] == list(smooth2d.shape)
        assert manifest["dtype"] == "float32"
        assert len(manifest["tiles"]) == 4
        for digest in manifest["tiles"]:
            blob = (store.root / "objects" / digest).read_bytes()
            assert hashlib.sha256(blob).hexdigest() == digest

    def test_objects_are_the_tiled_payload_bands(self, store, smooth2d):
        """Store objects are byte-identical to the tiled container's bands
        — the store is the same wire format, re-homed per tile."""
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=3)
        manifest = store.manifest("ts")
        comp = get_codec("sz14")
        tiled = tile_compress(comp, smooth2d, 1e-3, "vr_rel", n_tiles=3)
        from repro.io.container import Container

        container = Container.from_bytes(tiled.payload)
        for t, digest in enumerate(manifest["tiles"]):
            assert (store.root / "objects" / digest).read_bytes() == (
                container.get(f"tile{t}")
            )

    def test_identical_fields_deduplicate(self, store, smooth2d):
        first = store.put("a", smooth2d, "sz14", 1e-3, n_tiles=4)
        second = store.put("b", smooth2d, "sz14", 1e-3, n_tiles=4)
        assert second.new_objects == 0
        assert second.dedup_objects == 4
        assert second.dedup_bytes == first.stored_bytes
        assert second.tile_digests == first.tile_digests

    def test_small_field_clamps_tile_count(self, store):
        tiny = np.linspace(0, 1, 3 * 8, dtype=np.float32).reshape(3, 8)
        result = store.put("tiny", tiny, "sz14", 1e-3, n_tiles=16)
        assert result.n_tiles == 1
        res = store.read("tiny")
        assert res.data.shape == (3, 8)

    @pytest.mark.parametrize("name", ["", "../evil", "a/b", ".hidden",
                                      "x" * 200, "sp ace"])
    def test_bad_names_rejected(self, store, smooth2d, name):
        with pytest.raises(StoreError, match="bad dataset name"):
            store.put(name, smooth2d)

    def test_1d_field_rejected(self, store, ramp1d):
        with pytest.raises(ShapeError, match="2 dimensions"):
            store.put("ramp", ramp1d)


class TestRead:
    def test_read_bit_exact_with_serial_tiled_decode(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        comp = get_codec("sz14")
        serial = tile_decompress(
            comp, tile_compress(comp, smooth2d, 1e-3, "vr_rel", n_tiles=4).payload
        )
        np.testing.assert_array_equal(store.read("ts").data, serial)

    def test_read_unknown_dataset(self, store):
        with pytest.raises(StoreError, match="no dataset"):
            store.read("nope")

    def test_read_slice_equals_full_read_window(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        full = store.read("ts").data
        res = store.read_slice("ts", (slice(10, 30), slice(5, 71)))
        np.testing.assert_array_equal(res.data, full[10:30, 5:71])

    def test_read_slice_decodes_only_overlapping_tiles(self, store, smooth3d):
        store.put("v", smooth3d, "sz14", 1e-3, n_tiles=4)  # 4-row bands
        before = store.decode_calls
        res = store.read_slice("v", (slice(0, 3),))
        assert res.tile_indices == (0,)
        assert store.decode_calls - before == 1
        res = store.read_slice("v", (slice(3, 9),))
        assert res.tile_indices == (0, 1, 2)
        assert store.decode_calls - before == 3  # tile 0 came from cache

    def test_warm_read_decodes_nothing(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        first = store.read("ts")
        before = store.decode_calls
        again = store.read("ts")
        assert store.decode_calls == before
        assert store.cache.hits >= 4
        np.testing.assert_array_equal(first.data, again.data)

    def test_cached_reads_share_dedup_entries(self, store, smooth2d):
        """Two names over identical bytes warm each other's cache."""
        store.put("a", smooth2d, "sz14", 1e-3, n_tiles=4)
        store.put("b", smooth2d, "sz14", 1e-3, n_tiles=4)
        store.read("a")
        before = store.decode_calls
        store.read("b")
        assert store.decode_calls == before


class TestDamage:
    def _corrupt_tile(self, store, name, index):
        """Flip one payload bit of tile ``index`` via the fault machinery."""
        from repro.faults import FaultKind, FaultSpec, inject

        digest = store.manifest(name)["tiles"][index]
        path = store.root / "objects" / digest
        blob = path.read_bytes()
        path.write_bytes(
            inject(blob, FaultSpec(
                kind=FaultKind.BITFLIP, offset=len(blob) // 2, bit=3
            ))
        )
        return digest

    def test_strict_read_raises_checksum_error(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        self._corrupt_tile(store, "ts", 2)
        with pytest.raises(ChecksumError):
            store.read("ts")

    def test_lenient_read_reports_lost_tiles(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        clean = store.read("ts").data
        self._corrupt_tile(store, "ts", 2)
        store.cache.clear()
        res = store.read("ts", strict=False)
        assert not res.ok
        assert res.damaged_tiles == (2,)
        assert res.damaged[0].stage == "checksum"
        # every intact band survives bit-exactly; the lost band is zeroed
        from repro.tiling import TileGrid

        m = store.manifest("ts")
        grid = TileGrid.from_starts(m["shape"], m["band_starts"])
        for t in (0, 1, 3):
            np.testing.assert_array_equal(
                res.data[grid.band_slice(t)], clean[grid.band_slice(t)]
            )
        assert (res.data[grid.band_slice(2)] == 0).all()

    def test_lenient_slice_outside_damage_is_clean(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        self._corrupt_tile(store, "ts", 3)
        store.cache.clear()
        res = store.read_slice("ts", (slice(0, 12),), strict=False)
        assert res.ok  # the damaged tile was never touched

    def test_missing_object_reported_as_missing(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        digest = store.manifest("ts")["tiles"][1]
        (store.root / "objects" / digest).unlink()
        res = store.read("ts", strict=False)
        assert res.damaged_tiles == (1,)
        assert res.damaged[0].stage == "missing"


class TestGC:
    def test_gc_keeps_referenced_objects(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        result = store.gc()
        assert result.n_removed == 0
        assert result.kept == 4
        assert store.read("ts").ok

    def test_overwrite_then_gc_reclaims_old_version(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        old = set(store.manifest("ts")["tiles"])
        store.put("ts", smooth2d, "sz14", 5e-4, n_tiles=4)  # tighter bound
        new = set(store.manifest("ts")["tiles"])
        assert old.isdisjoint(new)
        result = store.gc()
        assert set(result.removed) == old
        assert result.reclaimed_bytes > 0
        assert store.read("ts").ok

    def test_delete_then_gc_empties_object_area(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        store.delete("ts")
        with pytest.raises(StoreError):
            store.read("ts")
        result = store.gc()
        assert result.n_removed == 4
        assert result.kept == 0

    def test_gc_evicts_removed_digests_from_cache(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        store.read("ts")  # warm the cache
        store.delete("ts")
        store.gc()
        assert len(store.cache) == 0

    def test_gc_ignores_foreign_files(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=2)
        junk = store.root / "objects" / "README"
        junk.write_text("not an object")
        assert store.gc().n_removed == 0
        assert junk.exists()


class TestLs:
    def test_ls_rows(self, store, smooth2d, smooth3d):
        store.put("b2", smooth2d, "sz14", 1e-3, n_tiles=4)
        store.put("a3", smooth3d, "wavesz", 1e-3, n_tiles=2)
        rows = store.ls()
        assert [r["name"] for r in rows] == ["a3", "b2"]
        assert rows[1]["shape"] == smooth2d.shape
        assert rows[1]["codec"] == "SZ-1.4"
        assert rows[0]["n_tiles"] == 2
        assert rows[1]["compressed_bytes"] > 0
        assert store.names() == ("a3", "b2")

    def test_empty_store(self, store):
        assert store.ls() == []

    def test_corrupt_manifest_is_a_store_error(self, store, smooth2d):
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=2)
        (store.root / "manifests" / "ts.json").write_text("{not json")
        with pytest.raises(StoreError, match="unreadable"):
            store.read("ts")


class TestTileCache:
    def test_hit_miss_counters(self):
        cache = TileCache(1 << 20)
        a = np.ones((4, 4), dtype=np.float32)
        assert cache.get("k1") is None
        cache.put("k1", a)
        assert cache.get("k1") is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_byte_budget_evicts_lru(self):
        tile = np.zeros(256, dtype=np.float32)  # 1 KiB each
        cache = TileCache(3 * tile.nbytes)
        for k in ("a", "b", "c"):
            cache.put(k, tile)
        cache.get("a")  # a is now most-recent
        cache.put("d", tile)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.evictions == 1
        assert cache.resident_bytes == 3 * tile.nbytes

    def test_oversized_tile_not_cached(self):
        cache = TileCache(64)
        cache.put("big", np.zeros(1024, dtype=np.float64))
        assert cache.get("big") is None
        assert cache.resident_bytes == 0

    def test_entries_are_read_only(self):
        cache = TileCache(1 << 20)
        cache.put("k", np.ones(8, dtype=np.float32))
        tile = cache.get("k")
        with pytest.raises(ValueError):
            tile[0] = 5.0

    def test_gauges_register_before_traffic(self):
        metrics = MetricsRegistry()
        TileCache(1 << 20, metrics=metrics)
        snap = metrics.snapshot()
        assert snap.gauges["store.cache.hits"] == 0.0
        assert snap.gauges["store.cache.resident_bytes"] == 0.0
        # and the snapshot serializes despite zero latency samples
        import json as _json

        assert _json.dumps(snap.to_dict())

    def test_gauges_track_mutations(self, tmp_path, smooth2d):
        metrics = MetricsRegistry()
        store = ArrayStore(tmp_path / "s", metrics=metrics)
        store.put("ts", smooth2d, "sz14", 1e-3, n_tiles=4)
        store.read("ts")
        store.read("ts")
        gauges = metrics.snapshot().gauges
        assert gauges["store.cache.misses"] == 4.0
        assert gauges["store.cache.hits"] == 4.0
        assert gauges["store.cache.resident_bytes"] == float(
            store.cache.resident_bytes
        )
