"""Unit tests for the Table 5 / Figure 8 throughput models."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.fpga.timing import (
    DELTA_PQD,
    cpu_sz14_throughput,
    ghostsz_throughput,
    interior_column_lengths,
    openmp_efficiency,
    wavesz_cycles,
    wavesz_throughput,
)

PAPER_SHAPES = {
    "CESM-ATM": (1800, 3600),
    "Hurricane": (100, 500, 500),
    "NYX": (512, 512, 512),
}
PAPER_T5 = {  # (waveSZ, GhostSZ, SZ-1.4) MB/s
    "CESM-ATM": (995, 185, 114),
    "Hurricane": (838, 144, 122),
    "NYX": (986, 156, 125),
}


class TestColumnLengths:
    @pytest.mark.parametrize("d0,d1", [(5, 8), (2, 2), (100, 2500)])
    def test_sum_equals_interior_points(self, d0, d1):
        L = interior_column_lengths(d0, d1)
        assert int(L.sum()) == (d0 - 1) * (d1 - 1)

    def test_matches_loop_partition(self):
        from repro.core.layout import LoopPartition

        p = LoopPartition(6, 10)
        L = interior_column_lengths(6, 10)
        for t in range(p.n_cols):
            assert L[t] == p.interior_column_length(t)


class TestWaveSZModel:
    def test_body_dominated_cycles(self):
        """For Λ >= Δ, cycles ~= interior points (pII = 1, no stalls)."""
        shape = (1800, 3600)
        cycles = wavesz_cycles(shape)
        interior = 1799 * 3599
        assert interior <= cycles < interior * 1.01

    def test_small_lambda_stalls(self):
        """Hurricane: Λ = 99 < Δ = 118 -> every body column stalls."""
        cycles = wavesz_cycles((100, 500, 500))
        interior = 99 * (250000 - 1)
        assert cycles > interior * (DELTA_PQD / 99) * 0.99

    @pytest.mark.parametrize("name", list(PAPER_SHAPES))
    def test_table5_within_5pct(self, name):
        got = wavesz_throughput(PAPER_SHAPES[name], dataset=name).mb_per_s
        want = PAPER_T5[name][0]
        assert abs(got - want) / want < 0.05, (name, got, want)

    def test_hurricane_slower_than_cesm_and_nyx(self):
        """The Table 5 ordering the Λ-vs-Δ mechanism must reproduce."""
        t = {n: wavesz_throughput(s).mb_per_s for n, s in PAPER_SHAPES.items()}
        assert t["Hurricane"] < t["NYX"]
        assert t["Hurricane"] < t["CESM-ATM"]

    def test_lanes_scale_linearly(self):
        one = wavesz_throughput((512, 512, 512), lanes=1).mb_per_s
        three = wavesz_throughput((512, 512, 512), lanes=3).mb_per_s
        assert three == pytest.approx(3 * one)

    def test_validation(self):
        with pytest.raises(ModelError):
            wavesz_throughput((512, 512, 512), lanes=0)
        with pytest.raises(ModelError):
            wavesz_cycles((5,))


class TestGhostSZModel:
    @pytest.mark.parametrize("name", list(PAPER_SHAPES))
    def test_table5_within_20pct(self, name):
        got = ghostsz_throughput(PAPER_SHAPES[name], dataset=name).mb_per_s
        want = PAPER_T5[name][1]
        assert abs(got - want) / want < 0.20, (name, got, want)

    def test_row_starved_recurrence_bound(self):
        """With very few rows the prediction recurrence throttles issue."""
        starved = ghostsz_throughput((4, 4, 2500)).mb_per_s
        healthy = ghostsz_throughput((100, 500, 500)).mb_per_s
        assert starved < healthy

    def test_wavesz_speedup_near_paper(self):
        """waveSZ/GhostSZ speedup averages ~5.8x (paper abstract)."""
        speedups = [
            wavesz_throughput(s).mb_per_s / ghostsz_throughput(s).mb_per_s
            for s in PAPER_SHAPES.values()
        ]
        avg = float(np.mean(speedups))
        assert 4.5 < avg < 7.0


class TestCPUModel:
    @pytest.mark.parametrize("name", list(PAPER_SHAPES))
    def test_table5_within_10pct(self, name):
        got = cpu_sz14_throughput(PAPER_SHAPES[name], dataset=name).mb_per_s
        want = PAPER_T5[name][2]
        assert abs(got - want) / want < 0.10, (name, got, want)

    def test_wavesz_speedup_6_9_to_8_7(self):
        """Paper abstract: waveSZ improves SZ's throughput 6.9x-8.7x."""
        for name, shape in PAPER_SHAPES.items():
            s = (
                wavesz_throughput(shape).mb_per_s
                / cpu_sz14_throughput(shape).mb_per_s
            )
            assert 6.4 < s < 9.2, (name, s)

    def test_openmp_efficiency_calibration(self):
        """§4.2: parallel efficiency drops to 59 % at 32 cores."""
        assert openmp_efficiency(1) == 1.0
        assert openmp_efficiency(32) == pytest.approx(0.59, abs=0.005)

    def test_openmp_sublinear_but_monotone(self):
        t = [cpu_sz14_throughput((512, 512, 512), n_cores=n).mb_per_s
             for n in (1, 2, 4, 8, 16, 32)]
        assert all(b > a for a, b in zip(t, t[1:]))  # monotone
        # sublinear: 32 cores give far less than 32x
        assert t[-1] < 32 * t[0] * 0.7

    def test_rejects_1d(self):
        with pytest.raises(ModelError):
            cpu_sz14_throughput((100,))
