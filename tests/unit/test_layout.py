"""Unit tests for the head/body/tail partition and Figure 6 timing algebra."""

import pytest

from repro.core.layout import LoopPartition, end_cycle, start_cycle
from repro.errors import ModelError


class TestPartition:
    def test_spans_match_figure6(self):
        p = LoopPartition(6, 10)
        spans = p.spans()
        assert spans["head"] == p.lam == 5
        assert spans["tail"] == 5
        assert spans["head"] + spans["body"] + spans["tail"] == p.n_cols

    def test_lambda_is_d0_minus_1(self):
        """Listing 1: assert(PIPELINE_DEPTH == d0 - 1)."""
        assert LoopPartition(100, 250000).lam == 99
        assert LoopPartition(1800, 3600).lam == 1799

    def test_body_columns_full_length(self):
        p = LoopPartition(6, 10)
        for t in p.body_columns:
            assert p.column_length(t) == 6

    def test_head_columns_grow(self):
        p = LoopPartition(6, 10)
        lengths = [p.column_length(t) for t in p.head_columns]
        assert lengths == list(range(1, 6))

    def test_tail_columns_shrink(self):
        p = LoopPartition(6, 10)
        lengths = [p.column_length(t) for t in p.tail_columns]
        assert lengths == list(range(5, 0, -1))

    def test_interior_lengths_sum(self):
        p = LoopPartition(6, 10)
        total = sum(p.interior_column_length(t) for t in range(p.n_cols))
        assert total == p.interior_points() == 5 * 9

    def test_group_of(self):
        p = LoopPartition(6, 10)
        assert p.group_of(0) == "head"
        assert p.group_of(5) == "body"
        assert p.group_of(9) == "body"
        assert p.group_of(10) == "tail"

    def test_requires_d1_ge_d0(self):
        with pytest.raises(ModelError):
            LoopPartition(10, 6)

    def test_requires_min_dims(self):
        with pytest.raises(ModelError):
            LoopPartition(1, 10)

    def test_column_out_of_range(self):
        with pytest.raises(ModelError):
            LoopPartition(4, 6).column_length(99)


class TestTimingFormulas:
    def test_start_formula(self):
        """Figure 6: starting time of (r, c) is c*Λ + r."""
        lam = 7
        assert start_cycle(0, 0, lam) == 0
        assert start_cycle(3, 2, lam) == 17
        assert start_cycle(lam - 1, 5, lam) == 5 * lam + lam - 1

    def test_end_formula(self):
        """Figure 6: ending time of (r, c) is (c+1)*Λ + r - 1."""
        lam = 7
        assert end_cycle(3, 2, lam) == 3 * lam + 2

    def test_next_column_starts_one_after_end(self):
        """'The starting time of (r, c+1) is one cycle after the ending
        time of (r, c)' — the zero-stall property of the body loop."""
        lam = 9
        for r in range(lam):
            for c in range(5):
                assert start_cycle(r, c + 1, lam) == end_cycle(r, c, lam) + 1

    def test_duration_is_lambda(self):
        """Each PQD occupies exactly Δ = Λ cycles in the ideal mapping."""
        lam = 11
        for r in range(lam):
            assert end_cycle(r, 3, lam) - start_cycle(r, 3, lam) + 1 == lam
