"""Unit tests for the dual-quant PQD engine and the waveSZ-dp codec.

Covers the phase-1 lattice contract (rounding bound, raw-point demotion
for non-finite / overflowing / dtype-rounded values), the phase-2
residual codec (outlier-delta stream, count mismatch taxonomy), the
engine round trip, the registered ``waveSZ-dp`` pipeline (wire header,
meta, registry dispatch, stage-timing labels), and the kernel pair's
bit-exactness across dispatch modes.  Randomized coverage lives in
``tests/property/test_prop_dualquant.py``.
"""

import numpy as np
import pytest

from repro.codec.registry import REGISTRY, decode_payload, get_codec
from repro.config import QuantizerConfig
from repro.io import Container
from repro.errors import ContainerError, DTypeError, ShapeError
from repro.kernels import forced
from repro.perf import measure_compressor
from repro.streams import decompress_auto
from repro.sz.dualquant import (
    codes_to_deltas,
    dq_compress,
    dq_decompress,
    lattice_to_values,
    predict_encode,
    prequantize,
)

Q = QuantizerConfig()
EB = 1e-3


def _roundtrip(result, shape, dtype):
    return dq_decompress(
        result.codes.reshape(shape),
        result.outlier_deltas,
        result.raw_idx,
        result.raw_values,
        precision=EB,
        quant=Q,
        dtype=dtype,
    )


class TestPrequantize:
    def test_lattice_reconstruction_within_bound(self, smooth2d):
        pre = prequantize(smooth2d, EB)
        recon = lattice_to_values(pre.q, EB, smooth2d.dtype)
        lattice = np.ones(smooth2d.shape, dtype=bool)
        lattice.reshape(-1)[pre.raw_idx] = False
        err = np.abs(recon[lattice].astype(np.float64)
                     - smooth2d[lattice].astype(np.float64))
        assert float(err.max()) <= EB

    def test_q_is_int64_field_shaped(self, smooth2d):
        pre = prequantize(smooth2d, EB)
        assert pre.q.dtype == np.int64
        assert pre.q.shape == smooth2d.shape

    def test_nonfinite_points_go_raw(self):
        data = np.linspace(0.0, 1.0, 32, dtype=np.float32)
        data[3] = np.nan
        data[17] = np.inf
        data[29] = -np.inf
        pre = prequantize(data, EB)
        assert sorted(pre.raw_idx.tolist()) == [3, 17, 29]
        # raw positions carry the agreed q = 0 lattice convention
        assert np.all(pre.q[pre.raw_idx] == 0)
        np.testing.assert_array_equal(pre.raw_values, data[pre.raw_idx])

    def test_lattice_overflow_goes_raw(self):
        data = np.array([0.5, 1e17, -1e17, 0.25], dtype=np.float64)
        pre = prequantize(data, EB)  # |q| would exceed 2**53
        assert set(pre.raw_idx.tolist()) == {1, 2}

    def test_raw_demotion_keeps_bound_on_float32_rounding(self):
        # Large float32 magnitudes where q*2eb rounds past the bound in
        # the storage dtype must be demoted rather than shipped broken.
        rng = np.random.default_rng(99)
        data = (rng.uniform(1e4, 5e4, 512) * rng.choice([-1.0, 1.0], 512))
        data = data.astype(np.float32)
        pre = prequantize(data, EB)
        recon = lattice_to_values(pre.q, EB, data.dtype)
        ok = np.ones(data.size, dtype=bool)
        ok[pre.raw_idx] = False
        err = np.abs(recon[ok].astype(np.float64) - data[ok].astype(np.float64))
        assert err.size == 0 or float(err.max()) <= EB

    def test_rejects_bad_inputs(self):
        with pytest.raises(DTypeError):
            prequantize(np.arange(8, dtype=np.int32), EB)
        with pytest.raises(ShapeError):
            prequantize(np.zeros((2, 2, 2, 2), dtype=np.float32), EB)
        with pytest.raises(ShapeError):
            prequantize(np.zeros((0,), dtype=np.float32), EB)


class TestPhase2:
    def test_codes_and_outliers_partition_the_field(self, smooth2d):
        pre = prequantize(smooth2d, EB)
        codes, outlier_deltas = predict_encode(pre.q, Q)
        assert codes.shape == smooth2d.shape
        assert int(np.count_nonzero(codes == 0)) == outlier_deltas.size
        delta = codes_to_deltas(codes, outlier_deltas, Q)
        q = _integrate(delta)
        np.testing.assert_array_equal(q, pre.q)

    def test_big_jump_becomes_outlier_delta(self):
        q = np.zeros(16, dtype=np.int64)
        q[8:] = 10 * Q.capacity  # residual far outside the code range
        codes, outlier_deltas = predict_encode(q, Q)
        assert codes[8] == 0
        assert outlier_deltas.size == 1
        assert outlier_deltas[0] == 10 * Q.capacity
        delta = codes_to_deltas(codes, outlier_deltas, Q)
        np.testing.assert_array_equal(_integrate(delta), q)

    def test_count_mismatch_raises_container_error(self):
        q = np.zeros((4, 4), dtype=np.int64)
        codes, _ = predict_encode(q, Q)
        with pytest.raises(ContainerError, match="outliers"):
            codes_to_deltas(codes, np.array([1, 2], dtype=np.int64), Q)


def _integrate(delta):
    from repro.kernels import resolve

    return resolve("dualquant.delta_integrate")(delta)


class TestEngineRoundTrip:
    @pytest.mark.parametrize("shape", [(64,), (16, 24), (6, 8, 10)])
    def test_roundtrip_within_bound(self, shape):
        rng = np.random.default_rng(7)
        data = rng.standard_normal(shape).astype(np.float32)
        result = dq_compress(data, EB, Q)
        out = _roundtrip(result, shape, data.dtype)
        assert out.shape == data.shape
        assert float(np.abs(out.astype(np.float64)
                            - data.astype(np.float64)).max()) <= EB

    def test_raw_points_reconstruct_verbatim(self):
        data = np.linspace(-1.0, 1.0, 40, dtype=np.float32)
        data[5] = np.inf
        data[11] = np.nan
        result = dq_compress(data, EB, Q)
        out = _roundtrip(result, data.shape, data.dtype)
        assert out[5] == np.inf
        assert np.isnan(out[11])

    def test_raw_stream_mismatch_raises(self):
        data = np.zeros(8, dtype=np.float32)
        result = dq_compress(data, EB, Q)
        with pytest.raises(ContainerError, match="raw"):
            dq_decompress(
                result.codes, result.outlier_deltas,
                np.array([2], dtype=np.int64),
                np.array([], dtype=np.float32),
                precision=EB, quant=Q, dtype=data.dtype,
            )

    def test_raw_index_out_of_bounds_raises(self):
        data = np.zeros(8, dtype=np.float32)
        result = dq_compress(data, EB, Q)
        with pytest.raises(ContainerError, match="bounds"):
            dq_decompress(
                result.codes, result.outlier_deltas,
                np.array([99], dtype=np.int64),
                np.array([1.0], dtype=np.float32),
                precision=EB, quant=Q, dtype=data.dtype,
            )


class TestWaveSZDPCodec:
    def test_registered_and_data_parallel(self):
        entry = REGISTRY.entry("wavesz-dp")
        assert entry.name == "waveSZ-dp"
        assert entry.data_parallel
        assert not REGISTRY.entry("wavesz").data_parallel

    @pytest.mark.parametrize("mode", ["abs", "vr_rel", "pw_rel"])
    def test_roundtrip_all_bound_modes(self, smooth2d, mode):
        comp = get_codec("wavesz-dp")
        eb = 1e-2 if mode == "pw_rel" else EB
        work = np.abs(smooth2d) + 0.25 if mode == "pw_rel" else smooth2d
        cf = comp.compress(work, eb, mode)
        out = comp.decompress(cf.payload)
        assert out.shape == work.shape
        if mode == "pw_rel":
            rel = np.abs(out.astype(np.float64) / work.astype(np.float64) - 1.0)
            assert float(rel.max()) <= eb * (1 + 1e-6)
        else:
            bound = eb if mode == "abs" else eb * float(
                work.max() - work.min()
            )
            err = np.abs(out.astype(np.float64) - work.astype(np.float64))
            assert float(err.max()) <= bound * (1 + 1e-12)

    def test_wire_header_and_meta(self, smooth2d):
        cf = get_codec("wavesz-dp").compress(smooth2d, EB, "vr_rel")
        header = Container.from_bytes(cf.payload).header
        assert header["variant"] == "waveSZ-dp"
        assert header["dq_version"] == 1
        assert cf.meta["backend"] == "dual-quant"
        assert cf.meta["phases"] == ["prequant", "predict_quant"]

    def test_auto_dispatch_and_determinism(self, smooth2d):
        comp = get_codec("wavesz-dp")
        cf1 = comp.compress(smooth2d, EB, "vr_rel")
        cf2 = comp.compress(smooth2d, EB, "vr_rel")
        assert cf1.payload == cf2.payload
        np.testing.assert_array_equal(
            decompress_auto(cf1.payload), decode_payload(cf1.payload)
        )

    def test_stage_timing_reports_both_phases(self, smooth2d):
        timing, _ = measure_compressor(
            get_codec("wavesz-dp"), smooth2d, EB, "vr_rel", stage_timing=True
        )
        assert "prequant" in timing.compress_stages
        assert "predict_quant" in timing.compress_stages
        assert "prequant" in timing.decompress_stages
        assert "predict_quant" in timing.decompress_stages


class TestKernelDifferential:
    @pytest.mark.parametrize("shape", [(33,), (9, 13), (4, 5, 6)])
    def test_fast_twins_match_reference(self, shape):
        rng = np.random.default_rng(13)
        q = rng.integers(-(2**40), 2**40, size=shape, dtype=np.int64)
        with forced("reference"):
            delta_ref = _encode(q)
            q_ref = _integrate(delta_ref)
        with forced("fast"):
            delta_fast = _encode(q)
            q_fast = _integrate(delta_fast)
        np.testing.assert_array_equal(delta_ref, delta_fast)
        np.testing.assert_array_equal(q_ref, q_fast)
        np.testing.assert_array_equal(q_ref, q)

    def test_codec_payload_identical_across_modes(self, smooth2d):
        comp = get_codec("wavesz-dp")
        with forced("reference"):
            ref = comp.compress(smooth2d, EB, "vr_rel")
        with forced("fast"):
            fast = comp.compress(smooth2d, EB, "vr_rel")
        assert ref.payload == fast.payload


def _encode(q):
    from repro.kernels import resolve

    return resolve("dualquant.delta_encode")(q)
