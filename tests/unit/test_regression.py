"""Unit tests for the SZ-2.0 blockwise regression predictor."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sz.regression import (
    coeff_steps,
    dequantize_coeffs,
    eval_plane,
    fit_plane,
    quantize_coeffs,
)


class TestFitPlane:
    def test_exact_on_planes_2d(self):
        i, j = np.mgrid[0:6, 0:6]
        block = 2.0 + 0.5 * i - 1.25 * j
        fit = fit_plane(block)
        assert fit.coeffs == pytest.approx([2.0, 0.5, -1.25])
        assert np.allclose(eval_plane(fit.coeffs, block.shape), block)

    def test_exact_on_planes_3d(self):
        i, j, k = np.mgrid[0:6, 0:6, 0:6]
        block = 1.0 + 0.1 * i + 0.2 * j - 0.3 * k
        fit = fit_plane(block)
        assert fit.coeffs == pytest.approx([1.0, 0.1, 0.2, -0.3])

    def test_least_squares_minimizes(self):
        rng = np.random.default_rng(0)
        block = rng.normal(size=(6, 6))
        fit = fit_plane(block)
        base_err = ((block - eval_plane(fit.coeffs, block.shape)) ** 2).sum()
        for _ in range(20):
            perturbed = fit.coeffs + rng.normal(size=3) * 0.01
            err = ((block - eval_plane(perturbed, block.shape)) ** 2).sum()
            assert err >= base_err - 1e-9

    def test_constant_block(self):
        block = np.full((4, 5), 7.5)
        fit = fit_plane(block)
        assert fit.coeffs == pytest.approx([7.5, 0.0, 0.0])

    def test_degenerate_1_wide_axis(self):
        block = np.array([[1.0, 2.0, 3.0]])
        fit = fit_plane(block)  # axis 0 has zero variance -> slope 0
        assert fit.coeffs[1] == 0.0
        assert fit.coeffs[2] == pytest.approx(1.0)

    def test_rejects_4d(self):
        with pytest.raises(ShapeError):
            fit_plane(np.zeros((2, 2, 2, 2)))


class TestCoeffQuantization:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(1)
        p = 1e-3
        shape = (6, 6)
        for _ in range(50):
            coeffs = rng.normal(size=3) * 10
            codes = np.round(coeffs / coeff_steps(p, shape)).astype(np.int64)
            back = dequantize_coeffs(codes, p, shape)
            # Worst-case plane perturbation over the block stays below p:
            # |db0| <= p/8 plus each slope amplified by (n-1) <= p/8 each.
            worst = abs(back[0] - coeffs[0]) + sum(
                abs(back[k + 1] - coeffs[k + 1]) * (shape[k] - 1)
                for k in range(2)
            )
            assert worst <= p * 0.75

    def test_quantize_uses_rounding(self):
        p = 1e-2
        shape = (6, 6)
        fit = fit_plane(np.full(shape, 1.0))
        codes = quantize_coeffs(fit, p, shape)
        assert codes[0] == round(1.0 / (p / 4))

    def test_slope_steps_scale_with_block(self):
        p = 1e-3
        small = coeff_steps(p, (6, 6))
        big = coeff_steps(p, (12, 12))
        assert big[1] < small[1]  # longer reach -> finer slope step
