"""Unit tests for the GhostSZ end-to-end compressor."""

import numpy as np
import pytest

from repro.errors import ContainerError, ShapeError
from repro.ghostsz import GhostSZCompressor


class TestRoundtrip:
    def test_2d(self, smooth2d):
        c = GhostSZCompressor()
        cf = c.compress(smooth2d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert out.shape == smooth2d.shape and out.dtype == smooth2d.dtype
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute

    def test_3d_rowwise_interpretation(self, smooth3d):
        c = GhostSZCompressor()
        cf = c.compress(smooth3d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert out.shape == smooth3d.shape
        assert np.abs(out.astype(np.float64) - smooth3d).max() <= cf.bound.absolute
        assert cf.meta["rows"] == smooth3d.shape[0]
        assert cf.meta["row_length"] == smooth3d.shape[1] * smooth3d.shape[2]

    def test_1d(self, ramp1d):
        c = GhostSZCompressor()
        cf = c.compress(ramp1d, 1e-3, "abs")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - ramp1d).max() <= 1e-3

    def test_saturated_field(self, saturated2d):
        c = GhostSZCompressor()
        cf = c.compress(saturated2d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - saturated2d).max() <= cf.bound.absolute


class TestFormat:
    def test_14_bit_bins(self):
        """2 bits of every 16-bit word encode the bestfit (paper §4.1)."""
        c = GhostSZCompressor()
        assert c.quant.capacity == 16384
        assert c.quant.radius == 8192

    def test_words_pack_type_and_code(self, smooth2d):
        from repro.io.container import Container

        c = GhostSZCompressor()
        cf = c.compress(smooth2d, 1e-3)
        h = Container.from_bytes(cf.payload).header
        assert h["variant"] == "GhostSZ"
        assert h["n_codes"] == smooth2d.size

    def test_lower_ratio_than_sz14(self, smooth2d):
        """Table 1's headline: GhostSZ's 1D curve fitting loses to SZ-1.4's
        Lorenzo on 2D data."""
        from repro.sz import SZ14Compressor

        rg = GhostSZCompressor().compress(smooth2d, 1e-3).stats.ratio
        rs = SZ14Compressor().compress(smooth2d, 1e-3).stats.ratio
        assert rs > 1.3 * rg

    def test_wrong_variant_rejected(self, smooth2d):
        from repro.sz import SZ14Compressor

        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        with pytest.raises(ContainerError):
            GhostSZCompressor().decompress(cf)

    def test_rejects_4d(self):
        with pytest.raises(ShapeError):
            GhostSZCompressor().compress(np.zeros((2, 2, 2, 2), dtype=np.float32))

    def test_stats_row_pivots_counted(self, smooth2d):
        cf = GhostSZCompressor().compress(smooth2d, 1e-3)
        assert cf.stats.n_unpredictable >= smooth2d.shape[0]
