"""Unit tests for the closed-loop PQD engine."""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.errors import DTypeError, ShapeError
from repro.sz.pqd import pqd_compress, pqd_decompress
from repro.sz.unpredictable import truncate_roundtrip

Q = QuantizerConfig()
P = 1e-3


def _decompress_of(res, border, p=P, dtype=np.float32):
    if border == "truncate":
        bvals = truncate_roundtrip(res.border_values, p)
        ovals = truncate_roundtrip(res.outlier_values, p)
    else:
        bvals, ovals = res.border_values, res.outlier_values
    return pqd_decompress(
        res.codes, bvals, ovals, precision=p, quant=Q, dtype=dtype, border=border
    )


class TestCompressDecompress:
    @pytest.mark.parametrize("border", ["truncate", "verbatim", "padded"])
    def test_2d_roundtrip_bitexact(self, smooth2d, border):
        res = pqd_compress(smooth2d, P, Q, border=border)
        rec = _decompress_of(res, border)
        assert (rec == res.decompressed).all()

    @pytest.mark.parametrize("border", ["truncate", "verbatim", "padded"])
    def test_2d_error_bound(self, smooth2d, border):
        res = pqd_compress(smooth2d, P, Q, border=border)
        assert np.abs(res.decompressed.astype(np.float64) - smooth2d).max() <= P

    @pytest.mark.parametrize("border", ["verbatim", "padded"])
    def test_3d_roundtrip(self, smooth3d, border):
        res = pqd_compress(smooth3d, P, Q, border=border)
        rec = _decompress_of(res, border)
        assert (rec == res.decompressed).all()
        assert np.abs(rec.astype(np.float64) - smooth3d).max() <= P

    def test_1d_roundtrip(self, ramp1d):
        res = pqd_compress(ramp1d, P, Q, border="verbatim")
        rec = _decompress_of(res, "verbatim")
        assert (rec == res.decompressed).all()

    def test_rough_field_produces_outliers(self, rough2d):
        tiny = 1e-9  # bound far below the noise level -> overflow cases
        q8 = QuantizerConfig(bits=8)
        res = pqd_compress(rough2d, tiny, q8, border="verbatim")
        assert res.n_outliers > 0
        rec = pqd_decompress(
            res.codes, res.border_values, res.outlier_values,
            precision=tiny, quant=q8, dtype=np.float32, border="verbatim",
        )
        assert np.abs(rec.astype(np.float64) - rough2d).max() <= tiny

    def test_float64_supported(self, smooth2d):
        d64 = smooth2d.astype(np.float64)
        res = pqd_compress(d64, P, Q, border="verbatim")
        assert res.decompressed.dtype == np.float64
        assert np.abs(res.decompressed - d64).max() <= P


class TestBorderSemantics:
    def test_verbatim_borders_are_exact(self, smooth2d):
        res = pqd_compress(smooth2d, P, Q, border="verbatim")
        assert (res.decompressed[0, :] == smooth2d[0, :]).all()
        assert (res.decompressed[:, 0] == smooth2d[:, 0]).all()

    def test_truncate_borders_within_bound_but_lossy(self, smooth2d):
        res = pqd_compress(smooth2d, P, Q, border="truncate")
        b = res.decompressed[0, :]
        assert (np.abs(b.astype(np.float64) - smooth2d[0, :]) <= P).all()
        assert (b != smooth2d[0, :]).any()  # truncation actually dropped bits

    def test_padded_has_no_border_stream(self, smooth2d):
        res = pqd_compress(smooth2d, P, Q, border="padded")
        assert res.border_values.size == 0
        assert res.n_border == 0

    def test_padded_first_point_is_outlier(self, smooth2d):
        """Production SZ stores the origin verbatim (see pqd.py comment)."""
        res = pqd_compress(smooth2d, P, Q, border="padded")
        assert res.outlier_mask.reshape(-1)[0]
        assert res.outlier_values[0] == smooth2d[0, 0]
        assert res.decompressed[0, 0] == smooth2d[0, 0]

    def test_border_mask_consistent(self, smooth3d):
        res = pqd_compress(smooth3d, P, Q, border="verbatim")
        grid = np.indices(smooth3d.shape)
        expected = (grid == 0).any(axis=0)
        assert (res.border_mask == expected).all()
        assert res.border_values.size == expected.sum()


class TestValidation:
    def test_rejects_int_data(self):
        with pytest.raises(DTypeError):
            pqd_compress(np.zeros((4, 4), dtype=np.int32), P, Q)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            pqd_compress(np.empty((0, 4), dtype=np.float32), P, Q)

    def test_rejects_thin_dims(self):
        with pytest.raises(ShapeError):
            pqd_compress(np.zeros((1, 8), dtype=np.float32), P, Q)

    def test_decompress_stream_length_checked(self, smooth2d):
        res = pqd_compress(smooth2d, P, Q, border="verbatim")
        with pytest.raises(ShapeError):
            pqd_decompress(
                res.codes,
                res.border_values[:-1],  # short border stream
                res.outlier_values,
                precision=P, quant=Q, dtype=np.float32, border="verbatim",
            )


class TestOrderIndependenceOfStats:
    def test_codes_grid_shape(self, smooth2d):
        res = pqd_compress(smooth2d, P, Q, border="verbatim")
        assert res.codes.shape == smooth2d.shape
        # Borders are never quantized.
        assert (res.codes[0, :] == 0).all()
        assert (res.codes[:, 0] == 0).all()

    def test_outlier_values_in_raster_order(self, rough2d):
        q8 = QuantizerConfig(bits=8)
        res = pqd_compress(rough2d, 1e-9, q8, border="verbatim")
        idx = np.flatnonzero(res.outlier_mask.reshape(-1))
        assert (res.outlier_values == rough2d.reshape(-1)[idx]).all()
