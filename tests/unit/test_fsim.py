"""Unit tests for the filesystem fault plane (CrashFS durability model)."""

import errno

import pytest

from repro.errors import FaultInjectionError, SimulatedCrash
from repro.faults.fsim import CrashFS, FsFault, FsFaultKind, OsFileSystem


@pytest.fixture
def fs(tmp_path):
    return CrashFS(tmp_path)


def _write_synced(fs, path, data):
    fs.write_bytes(path, data)
    fs.fsync_file(path)
    fs.fsync_dir(path.parent)


class TestOsFileSystem:
    def test_primitives_roundtrip(self, tmp_path):
        osfs = OsFileSystem()
        p = tmp_path / "a.bin"
        osfs.write_bytes(p, b"hello")
        osfs.fsync_file(p)
        osfs.fsync_dir(tmp_path)
        assert p.read_bytes() == b"hello"
        osfs.replace(p, tmp_path / "b.bin")
        assert not p.exists()
        osfs.unlink(tmp_path / "b.bin")
        osfs.mkdir(tmp_path / "sub" / "dir")
        assert (tmp_path / "sub" / "dir").is_dir()


class TestDurabilityModel:
    def test_fully_synced_write_survives_every_crash(self, fs, tmp_path):
        p = tmp_path / "a.bin"
        _write_synced(fs, p, b"durable")
        for seed in range(12):
            fs.crash_and_restore(seed)
            assert p.read_bytes() == b"durable"

    def test_unsynced_new_file_can_vanish(self, tmp_path):
        outcomes = set()
        for seed in range(40):
            root = tmp_path / f"r{seed}"
            root.mkdir()
            fs = CrashFS(root)
            p = root / "a.bin"
            fs.write_bytes(p, b"volatile-content")
            fs.crash_and_restore(seed)
            outcomes.add(p.read_bytes() if p.exists() else None)
        assert None in outcomes  # the entry was never dir-fsynced
        assert len(outcomes) > 1  # and the data was never file-fsynced

    def test_file_fsync_without_dir_fsync_not_durable(self, tmp_path):
        """Data sync alone does not commit a *new* directory entry."""
        seen = set()
        for seed in range(40):
            root = tmp_path / f"r{seed}"
            root.mkdir()
            fs = CrashFS(root)
            p = root / "a.bin"
            fs.write_bytes(p, b"data")
            fs.fsync_file(p)
            fs.crash_and_restore(seed)
            seen.add(p.read_bytes() if p.exists() else None)
        assert seen <= {None, b"data"}  # synced data is whole or absent
        assert None in seen

    def test_replace_over_old_keeps_old_until_dir_fsync(self, fs, tmp_path):
        p = tmp_path / "a.bin"
        _write_synced(fs, p, b"old")
        tmp = tmp_path / ".tmp-a"
        fs.write_bytes(tmp, b"new")
        fs.fsync_file(tmp)
        fs.replace(tmp, p)
        seen = set()
        for seed in range(40):
            fs.crash_and_restore(seed)
            seen.add(p.read_bytes() if p.exists() else None)
            # rebuild: committed state after restore is whatever survived;
            # reset to the pre-crash pending state each round
            _write_synced(fs, p, b"old")
            fs.write_bytes(tmp, b"new")
            fs.fsync_file(tmp)
            fs.replace(tmp, p)
        assert seen <= {b"old", b"new"}  # atomic: never empty, never torn
        assert b"old" in seen
        fs.fsync_dir(tmp_path)
        for seed in range(12):
            fs.crash_and_restore(seed)
            assert p.read_bytes() == b"new"
            fs.fsync_dir(tmp_path)

    def test_same_seed_same_image(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        images = []
        for root in (a, b):
            root.mkdir()
            fs = CrashFS(root)
            fs.write_bytes(root / "x.bin", b"x" * 64)
            fs.write_bytes(root / "y.bin", b"y" * 64)
            images.append({
                k.replace(str(root), ""): v
                for k, v in fs.crash_and_restore(99).items()
            })
        assert images[0] == images[1]


class TestFaults:
    def test_crash_is_baseexception(self, fs, tmp_path):
        fs2 = CrashFS(
            tmp_path, schedule=(FsFault(FsFaultKind.CRASH, 1),)
        )
        with pytest.raises(SimulatedCrash):
            try:
                fs2.write_bytes(tmp_path / "a.bin", b"x")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be catchable here")
        assert fs2.crashed
        # further mutation before restore is a harness bug
        with pytest.raises(FaultInjectionError):
            fs2.write_bytes(tmp_path / "b.bin", b"x")

    def test_torn_write_persists_prefix(self, tmp_path):
        fs = CrashFS(
            tmp_path,
            schedule=(FsFault(FsFaultKind.TORN_WRITE, 1, seed=5),),
        )
        p = tmp_path / "a.bin"
        with pytest.raises(SimulatedCrash):
            fs.write_bytes(p, b"0123456789" * 10)
        assert len(p.read_bytes()) < 100
        assert (b"0123456789" * 10).startswith(p.read_bytes())

    def test_misaimed_torn_write_degrades_to_crash(self, tmp_path):
        fs = CrashFS(
            tmp_path, schedule=(FsFault(FsFaultKind.TORN_WRITE, 2),)
        )
        fs.write_bytes(tmp_path / "a.bin", b"x")
        with pytest.raises(SimulatedCrash):
            fs.fsync_file(tmp_path / "a.bin")  # step 2 is not a write
        assert fs.fired[0].kind is FsFaultKind.CRASH

    def test_fail_rename_survivable(self, tmp_path):
        fs = CrashFS(
            tmp_path, schedule=(FsFault(FsFaultKind.FAIL_RENAME, 2),)
        )
        fs.write_bytes(tmp_path / "a.bin", b"x")
        with pytest.raises(OSError) as exc:
            fs.replace(tmp_path / "a.bin", tmp_path / "b.bin")
        assert exc.value.errno == errno.EIO
        assert not fs.crashed
        assert (tmp_path / "a.bin").exists()
        assert not (tmp_path / "b.bin").exists()

    def test_enospc_partial_write_survivable(self, tmp_path):
        fs = CrashFS(
            tmp_path,
            schedule=(FsFault(FsFaultKind.ENOSPC, 1, seed=3),),
        )
        p = tmp_path / "a.bin"
        with pytest.raises(OSError) as exc:
            fs.write_bytes(p, b"z" * 100)
        assert exc.value.errno == errno.ENOSPC
        assert not fs.crashed
        assert len(p.read_bytes()) < 100

    def test_dropped_fsync_lies(self, tmp_path):
        fs = CrashFS(
            tmp_path,
            schedule=(FsFault(FsFaultKind.DROP_FSYNC, 2),),
        )
        p = tmp_path / "a.bin"
        fs.write_bytes(p, b"lost?")
        fs.fsync_file(p)  # lies: returns without committing
        fs.fsync_dir(tmp_path)  # entry commits, data does not
        seen = set()
        for seed in range(40):
            fs.crash_and_restore(seed)
            seen.add(p.read_bytes() if p.exists() else None)
            fs.write_bytes(p, b"lost?")
            fs.fsync_dir(tmp_path)
        assert seen != {b"lost?"}  # some crash loses or tears the data

    def test_survivable_kind_misses_wrong_op(self, tmp_path):
        fs = CrashFS(
            tmp_path, schedule=(FsFault(FsFaultKind.ENOSPC, 1),)
        )
        fs.mkdir(tmp_path / "d")  # step 1 is not a write: fault misses
        fs.write_bytes(tmp_path / "a.bin", b"x")
        assert fs.fired == []

    def test_two_faults_same_step_rejected(self, tmp_path):
        with pytest.raises(FaultInjectionError):
            CrashFS(tmp_path, schedule=(
                FsFault(FsFaultKind.CRASH, 3),
                FsFault(FsFaultKind.ENOSPC, 3),
            ))

    def test_ops_log_names_steps(self, fs, tmp_path):
        _write_synced(fs, tmp_path / "a.bin", b"x")
        assert [op for op, _ in fs.ops] == [
            "write", "fsync_file", "fsync_dir"
        ]
        assert fs.step == 3
