"""Unit tests for the ZFP-like transform codec."""

import numpy as np
import pytest

from repro.errors import ContainerError, DTypeError, ShapeError
from repro.zfp import ZFPCompressor
from repro.zfp.transform import (
    fwd_lift,
    fwd_transform,
    inv_lift,
    inv_transform,
    sequency_order,
)


class TestTransform:
    def test_near_inverse(self):
        """ZFP's integer lifting is lossy by design (~1 ulp per step);
        the roundtrip error must stay within a few ulps."""
        rng = np.random.default_rng(0)
        for shape in ((200, 4), (200, 4, 4), (100, 4, 4, 4)):
            b = rng.integers(-(2**40), 2**40, size=shape).astype(np.int64)
            orig = b.copy()
            fwd_transform(b)
            inv_transform(b)
            # error compounds ~2 ulps per lifting pass, one pass per axis
            assert np.abs(b - orig).max() <= 8 * b.ndim

    def test_decorrelates_constant_block(self):
        """A constant block transforms to a single DC coefficient."""
        b = np.full((1, 4, 4), 1024, dtype=np.int64)
        fwd_transform(b)
        flat = b.reshape(-1)
        assert flat[0] == 1024
        assert (flat[1:] == 0).all()

    def test_decorrelates_ramp(self):
        """A linear ramp's energy lands in the lowest-sequency coeffs."""
        b = (np.arange(16, dtype=np.int64) * 1000).reshape(1, 4, 4)
        fwd_transform(b)
        order = sequency_order(2)
        coeffs = np.abs(b.reshape(-1)[order])
        assert coeffs[:3].sum() > 10 * coeffs[8:].sum()

    def test_lift_requires_length_4(self):
        with pytest.raises(ShapeError):
            fwd_lift(np.zeros((2, 5), dtype=np.int64), 1)
        with pytest.raises(ShapeError):
            inv_lift(np.zeros((2, 5), dtype=np.int64), 1)

    def test_sequency_order_is_permutation(self):
        for ndim in (1, 2, 3):
            order = sequency_order(ndim)
            assert sorted(order.tolist()) == list(range(4**ndim))

    def test_sequency_starts_at_dc(self):
        assert sequency_order(2)[0] == 0
        assert sequency_order(3)[0] == 0


class TestCodec:
    @pytest.fixture(scope="class")
    def codec(self):
        return ZFPCompressor()

    @pytest.mark.parametrize("eb", [1e-2, 1e-3, 1e-4])
    def test_bound_2d(self, codec, smooth2d, eb):
        cf = codec.compress(smooth2d, eb, "vr_rel")
        out = codec.decompress(cf)
        assert out.shape == smooth2d.shape and out.dtype == smooth2d.dtype
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute

    def test_bound_3d(self, codec, smooth3d):
        cf = codec.compress(smooth3d, 1e-3, "vr_rel")
        out = codec.decompress(cf)
        assert np.abs(out.astype(np.float64) - smooth3d).max() <= cf.bound.absolute

    def test_non_multiple_of_4_shapes(self, codec):
        rng = np.random.default_rng(1)
        x = np.cumsum(rng.normal(size=(17, 23)), axis=1).astype(np.float32)
        cf = codec.compress(x, 1e-3, "vr_rel")
        out = codec.decompress(cf)
        assert out.shape == x.shape
        assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute

    def test_all_zero_field(self, codec):
        x = np.zeros((8, 8), dtype=np.float32)
        cf = codec.compress(x, 1e-3, "abs")
        out = codec.decompress(cf)
        assert (out == 0).all()
        # all-zero blocks cost one bit each
        assert cf.stats.compressed_bytes < 32

    def test_zero_blocks_exact(self, codec):
        x = np.zeros((16, 16), dtype=np.float32)
        x[8:, 8:] = 1.0
        out = codec.decompress(codec.compress(x, 1e-3, "abs"))
        assert (out[:8, :8] == 0).all()

    def test_wide_dynamic_range(self, codec):
        rng = np.random.default_rng(2)
        x = (np.exp(rng.normal(size=(24, 24)) * 4)).astype(np.float32)
        cf = codec.compress(x, 1e-3, "vr_rel")
        out = codec.decompress(cf)
        assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute

    def test_tighter_bound_bigger_payload(self, codec, smooth2d):
        loose = codec.compress(smooth2d, 1e-2).stats.compressed_bytes
        tight = codec.compress(smooth2d, 1e-5).stats.compressed_bytes
        assert tight > loose

    def test_deterministic(self, codec, smooth2d):
        a = codec.compress(smooth2d, 1e-3).payload
        b = codec.compress(smooth2d, 1e-3).payload
        assert a == b

    def test_rejects_nonfinite(self, codec):
        with pytest.raises(DTypeError):
            codec.compress(np.array([[np.inf, 0], [0, 0]], dtype=np.float32), 1e-3)

    def test_rejects_1d(self, codec, ramp1d):
        with pytest.raises(ShapeError):
            codec.compress(ramp1d, 1e-3, "abs")

    def test_wrong_variant_rejected(self, codec, smooth2d):
        from repro.sz import SZ14Compressor

        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        with pytest.raises(ContainerError):
            codec.decompress(cf)
