"""Unit tests for the synthetic SDRB dataset generators."""

import numpy as np
import pytest

from repro.data import DATASETS, gaussian_random_field, list_datasets, load_field
from repro.data.fields import depth_invariant_web, radial_wavenumber
from repro.errors import ConfigError, DatasetError


class TestGRF:
    def test_deterministic(self):
        a = gaussian_random_field((32, 32), beta=3.0, seed=7)
        b = gaussian_random_field((32, 32), beta=3.0, seed=7)
        assert (a == b).all()

    def test_seed_changes_field(self):
        a = gaussian_random_field((32, 32), beta=3.0, seed=7)
        b = gaussian_random_field((32, 32), beta=3.0, seed=8)
        assert not np.allclose(a, b)

    def test_normalized(self):
        g = gaussian_random_field((64, 64), beta=3.0, seed=1)
        assert abs(g.mean()) < 1e-10
        assert g.std() == pytest.approx(1.0)

    def test_steeper_beta_is_smoother(self):
        def roughness(beta):
            g = gaussian_random_field((128, 128), beta=beta, seed=2)
            return np.abs(np.diff(g, axis=1)).mean()

        assert roughness(4.0) < roughness(2.0) < roughness(0.5)

    def test_3d_supported(self):
        g = gaussian_random_field((16, 16, 16), beta=3.0, seed=3)
        assert g.shape == (16, 16, 16)

    def test_radial_wavenumber(self):
        k = radial_wavenumber((8, 8))
        assert k[0, 0] == 0
        assert k[0, 1] == pytest.approx(1.0)
        assert k[4, 0] == pytest.approx(4.0)  # Nyquist

    def test_rejects_negative_beta(self):
        with pytest.raises(ConfigError):
            gaussian_random_field((8, 8), beta=-1)


class TestDepthInvariantWeb:
    def test_nearly_constant_along_depth(self):
        web = depth_invariant_web((10, 32, 32), seed=1)
        # plane-to-plane variation is tiny compared with in-plane variation
        along_z = np.abs(np.diff(web, axis=0)).mean()
        in_plane = np.abs(np.diff(web, axis=2)).mean()
        assert along_z < in_plane / 10

    def test_lorenzo_cancels_it_but_rows_do_not(self):
        """The structural reason GhostSZ loses ratio (Figure 1)."""
        from repro.sz.lorenzo import lorenzo_predict

        web = depth_invariant_web((10, 32, 32), seed=2)
        view = web.reshape(10, -1)  # the 2D interpretation
        lorenzo_resid = (view - lorenzo_predict(view))[1:, 1:]
        row_resid = np.diff(view, axis=1)  # order-0 CF residual
        assert np.abs(lorenzo_resid).std() < np.abs(row_resid).std() / 3


class TestRegistry:
    def test_lists_paper_datasets(self):
        assert set(list_datasets()) == {"CESM-ATM", "Hurricane", "NYX"}

    def test_table4_metadata(self):
        assert DATASETS["CESM-ATM"].paper_dims == (1800, 3600)
        assert DATASETS["CESM-ATM"].paper_fields == 79
        assert DATASETS["Hurricane"].paper_dims == (100, 500, 500)
        assert DATASETS["NYX"].paper_dims == (512, 512, 512)
        assert DATASETS["NYX"].paper_fields == 6

    @pytest.mark.parametrize("ds", ["CESM-ATM", "Hurricane", "NYX"])
    def test_all_fields_generate_float32_finite(self, ds):
        spec = DATASETS[ds]
        for fname in spec.field_names:
            x = load_field(ds, fname)
            assert x.dtype == np.float32
            assert x.shape == spec.repro_dims
            assert np.isfinite(x).all()
            assert x.max() > x.min()  # non-degenerate

    def test_cldlow_saturates(self):
        x = load_field("CESM-ATM", "CLDLOW")
        sat = ((x == 0) | (x == 1)).mean()
        assert 0.3 < sat < 0.9

    def test_cloudf48_mostly_zero(self):
        x = load_field("Hurricane", "CLOUDf48")
        assert (x == 0).mean() > 0.5
        assert (x >= 0).all()

    def test_dark_matter_has_exact_zero_voids(self):
        x = load_field("NYX", "dark_matter_density")
        assert (x == 0).mean() > 0.05
        assert (x >= 0).all()

    def test_scale_factor(self):
        x = load_field("CESM-ATM", "TS", scale=2)
        assert x.shape == (360, 720)

    def test_seed_offset_changes_snapshot(self):
        a = load_field("NYX", "velocity_x")
        b = load_field("NYX", "velocity_x", seed_offset=1)
        assert not np.array_equal(a, b)

    def test_unknown_dataset_and_field(self):
        with pytest.raises(DatasetError):
            load_field("EXA", "x")
        with pytest.raises(DatasetError):
            load_field("NYX", "nope")
        with pytest.raises(DatasetError):
            load_field("NYX", "velocity_x", scale=0)
