"""Unit tests for the DEFLATE-style container."""

import numpy as np
import pytest

from repro.errors import LosslessError
from repro.lossless import LZ77Encoder, deflate, inflate
from repro.lossless.deflate import DIST_BASE, DIST_EXTRA, LENGTH_BASE, LENGTH_EXTRA


class TestBucketTables:
    def test_length_buckets_cover_3_to_258(self):
        # Every legal match length maps into exactly one bucket whose
        # base + extra-bit span contains it.
        for length in range(3, 259):
            idx = int(np.searchsorted(LENGTH_BASE, length, side="right")) - 1
            base = int(LENGTH_BASE[idx])
            span = 1 << int(LENGTH_EXTRA[idx])
            assert base <= length < base + span or length == 258

    def test_distance_buckets_cover_1_to_32768(self):
        for dist in (1, 2, 3, 4, 5, 100, 1024, 5000, 32768):
            idx = int(np.searchsorted(DIST_BASE, dist, side="right")) - 1
            base = int(DIST_BASE[idx])
            span = 1 << int(DIST_EXTRA[idx])
            assert base <= dist < base + span


class TestRoundtrip:
    CASES = [
        b"",
        b"a",
        b"ab" * 3,
        b"hello world, hello world, hello world",
        bytes(range(256)) * 4,
        b"\x00" * 10000,
        b"a" * 3 + b"b" * 258 + b"a" * 3,
    ]

    @pytest.mark.parametrize("data", CASES, ids=range(len(CASES)))
    def test_cases(self, data):
        assert inflate(deflate(data)) == data

    def test_random_bytes(self):
        r = np.random.default_rng(0)
        data = r.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        assert inflate(deflate(data)) == data

    def test_quant_code_stream(self):
        r = np.random.default_rng(1)
        codes = (32768 + r.geometric(0.4, 20000) * r.choice([-1, 1], 20000)).astype(
            "<u2"
        )
        data = codes.tobytes()
        blob = deflate(data)
        assert inflate(blob) == data
        assert len(blob) < len(data)  # must actually compress this

    def test_fast_encoder_roundtrip(self):
        data = b"abcdefgh" * 500
        blob = deflate(data, LZ77Encoder.best_speed())
        assert inflate(blob) == data

    def test_long_distance_matches(self):
        data = b"MARKER" + bytes(20000) + b"MARKER"
        assert inflate(deflate(data)) == data


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(LosslessError):
            inflate(b"NOPE" + b"\x00" * 30)

    def test_truncated_body(self):
        blob = deflate(b"hello world hello world hello")
        with pytest.raises(Exception):
            inflate(blob[: len(blob) // 2])

    def test_wrong_original_length_detected(self):
        blob = bytearray(deflate(b"abcdabcdabcd"))
        blob[4] ^= 0x01  # original_len low byte
        with pytest.raises(LosslessError):
            inflate(bytes(blob))
