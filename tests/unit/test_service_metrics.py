"""Unit tests for the service metrics registry and snapshots."""

from repro.service.metrics import LatencySummary, MetricsRegistry


class TestLatencySummary:
    def test_empty_set_is_none_not_zero(self):
        """No traffic yet → percentiles are None (unknown), never raise.

        This is what lets the store register its cache gauges against a
        registry and snapshot it before the first read arrives."""
        s = LatencySummary.of([])
        assert s.count == 0
        assert s.mean_s is None
        assert s.p50_s is None and s.p90_s is None and s.p99_s is None
        assert s.max_s is None
        assert s.to_dict()["p99_s"] is None

    def test_percentiles_ordered(self):
        s = LatencySummary.of([i / 100 for i in range(100)])
        assert s.count == 100
        assert s.p50_s <= s.p90_s <= s.p99_s <= s.max_s == 0.99
        assert abs(s.p50_s - 0.5) < 0.02
        assert abs(s.mean_s - 0.495) < 1e-9

    def test_single_sample(self):
        s = LatencySummary.of([0.25])
        assert s.p50_s == s.p99_s == s.max_s == 0.25


class TestMetricsRegistry:
    def test_counters_per_codec(self):
        m = MetricsRegistry()
        m.count("sz14", "submitted")
        m.count("sz14", "submitted")
        m.count("wavesz", "submitted")
        m.count("sz14", "retried")
        snap = m.snapshot()
        assert snap.jobs["sz14"]["submitted"] == 2
        assert snap.jobs["wavesz"]["submitted"] == 1
        assert snap.totals["submitted"] == 3
        assert snap.totals["retried"] == 1

    def test_completion_feeds_latency_and_ratio(self):
        m = MetricsRegistry()
        for lat in (0.1, 0.2, 0.3):
            m.observe_completion(
                "sz14", latency_s=lat, bytes_in=1000, bytes_out=100
            )
        snap = m.snapshot(queue_depth=3, queue_capacity=16, workers=2)
        assert snap.totals["completed"] == 3
        assert snap.latency["sz14"].count == 3
        assert snap.latency["overall"].max_s == 0.3
        assert snap.ratio == 10.0
        assert snap.queue_depth == 3
        assert snap.queue_capacity == 16
        assert snap.workers == 2

    def test_snapshot_is_frozen_copy(self):
        m = MetricsRegistry()
        m.count("sz14", "submitted")
        snap = m.snapshot()
        m.count("sz14", "submitted")
        assert snap.jobs["sz14"]["submitted"] == 1  # not a live view

    def test_to_dict_round_trips_json(self):
        import json

        m = MetricsRegistry()
        m.observe_completion("sz14", latency_s=0.1, bytes_in=10, bytes_out=5)
        d = json.loads(json.dumps(m.snapshot().to_dict()))
        assert d["jobs"]["sz14"]["completed"] == 1
        assert d["latency"]["overall"]["count"] == 1
        assert d["queue"]["capacity"] == 0

    def test_empty_registry_snapshot_serializes(self):
        """A registry with zero traffic must snapshot and JSON-serialize."""
        import json

        m = MetricsRegistry()
        m.set_gauge("store.cache.hits", 0)
        d = json.loads(json.dumps(m.snapshot().to_dict()))
        assert d["gauges"]["store.cache.hits"] == 0.0
        assert d["totals"]["completed"] == 0

    def test_gauges_last_write_wins(self):
        m = MetricsRegistry()
        m.set_gauge("store.cache.resident_bytes", 100)
        m.set_gauges({"store.cache.resident_bytes": 250,
                      "store.cache.evictions": 3})
        snap = m.snapshot()
        assert snap.gauges["store.cache.resident_bytes"] == 250.0
        assert snap.gauges["store.cache.evictions"] == 3.0
        m.set_gauge("store.cache.evictions", 4)
        assert snap.gauges["store.cache.evictions"] == 3.0  # frozen copy
