"""Round-trip matrix for ``streams.decompress_auto`` — the one decode path.

Every name the registry resolves (canonical wire names, aliases like
``"SZ-2.0+"``, profiles like ``"wavesz-g"``) must produce a payload that
``decompress_auto`` decodes without being told the codec, and the result
must be bit-identical to the producing compressor's own ``decompress``.
Tiled containers dispatch through the same entry point.
"""

import numpy as np
import pytest

from repro.codec.registry import REGISTRY, get_codec
from repro.errors import ContainerError, ShapeError
from repro.parallel import tile_compress
from repro.streams import decompress_auto


@pytest.mark.parametrize("name", REGISTRY.all_names())
class TestRegistryMatrix:
    def test_roundtrip_every_registered_name(self, name, smooth2d):
        comp = get_codec(name)
        try:
            cf = comp.compress(smooth2d, 1e-3, "vr_rel")
        except ShapeError:
            pytest.skip(f"{name} does not take 2D fields")
        auto = decompress_auto(cf.payload)
        own = comp.decompress(cf.payload)
        np.testing.assert_array_equal(auto, own)
        assert auto.dtype == smooth2d.dtype
        vr = float(smooth2d.max() - smooth2d.min())
        assert np.abs(auto.astype(np.float64) - smooth2d).max() <= 1e-3 * vr


class TestProfiles:
    def test_profile_payload_differs_but_decodes(self, smooth2d):
        """wavesz-g (no Huffman pass) is its own configuration, yet its
        payload carries the canonical wire name and auto-decodes."""
        plain = get_codec("wavesz").compress(smooth2d, 1e-3, "vr_rel")
        g = get_codec("wavesz-g").compress(smooth2d, 1e-3, "vr_rel")
        assert plain.payload != g.payload
        np.testing.assert_array_equal(
            decompress_auto(g.payload), get_codec("wavesz").decompress(g.payload)
        )


class TestTiledDispatch:
    def test_tiled_payload_auto_decodes(self, smooth2d):
        comp = get_codec("sz14")
        tiled = tile_compress(comp, smooth2d, 1e-3, n_tiles=3)
        from repro.parallel import tile_decompress

        np.testing.assert_array_equal(
            decompress_auto(tiled.payload),
            tile_decompress(comp, tiled.payload),
        )

    def test_selector_payload_auto_decodes(self, smooth2d):
        from repro.selector import OnlineSelector

        sel = OnlineSelector(["sz14", "zfp-like"])
        res = sel.select(smooth2d, 1e-3, "vr_rel")
        np.testing.assert_array_equal(
            decompress_auto(res.compressed.payload),
            sel.decompress(res.compressed),
        )


class TestRejection:
    def test_garbage_rejected(self):
        with pytest.raises(ContainerError):
            decompress_auto(b"not a container at all")

    def test_unknown_variant_rejected(self, smooth2d):
        from repro.io.container import Container

        cf = get_codec("sz14").compress(smooth2d, 1e-3, "vr_rel")
        c = Container.from_bytes(cf.payload)
        c.header["variant"] = "SZ-99"
        with pytest.raises(ContainerError, match="SZ-99"):
            decompress_auto(c.to_bytes())
