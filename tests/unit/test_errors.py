"""Unit tests for the exception hierarchy contract."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_config_error_is_value_error(self):
        """API boundaries promise ValueError compatibility for bad config."""
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.ShapeError, ValueError)

    def test_dtype_error_is_type_error(self):
        assert issubclass(errors.DTypeError, TypeError)

    def test_encoding_sub_hierarchy(self):
        assert issubclass(errors.BitstreamError, errors.EncodingError)
        assert issubclass(errors.HuffmanError, errors.EncodingError)

    def test_catching_at_the_top_works(self, smooth2d):
        """One except clause covers any library failure (README contract)."""
        with pytest.raises(repro.ReproError):
            repro.SZ14Compressor().compress(smooth2d, -1.0, "abs")
        with pytest.raises(repro.ReproError):
            repro.WaveSZCompressor().decompress(b"garbage-payload-bytes")
