"""Unit tests for the exception hierarchy contract."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_config_error_is_value_error(self):
        """API boundaries promise ValueError compatibility for bad config."""
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.ShapeError, ValueError)

    def test_dtype_error_is_type_error(self):
        assert issubclass(errors.DTypeError, TypeError)

    def test_encoding_sub_hierarchy(self):
        assert issubclass(errors.BitstreamError, errors.EncodingError)
        assert issubclass(errors.HuffmanError, errors.EncodingError)

    def test_integrity_sub_hierarchy(self):
        assert issubclass(errors.ChecksumError, errors.ContainerError)
        assert issubclass(errors.FaultInjectionError, errors.ReproError)
        assert not issubclass(errors.FaultInjectionError, errors.ContainerError)

    def test_catching_at_the_top_works(self, smooth2d):
        """One except clause covers any library failure (README contract)."""
        with pytest.raises(repro.ReproError):
            repro.SZ14Compressor().compress(smooth2d, -1.0, "abs")
        with pytest.raises(repro.ReproError):
            repro.WaveSZCompressor().decompress(b"garbage-payload-bytes")


class TestDecodeGuard:
    def test_translates_stdlib_leaks(self):
        for exc in (ValueError("v"), KeyError("k"), IndexError("i"),
                    TypeError("t"), OverflowError("o")):
            with pytest.raises(errors.ContainerError):
                with errors.decode_guard("test payload"):
                    raise exc

    def test_repro_errors_pass_through_unchanged(self):
        with pytest.raises(errors.HuffmanError):
            with errors.decode_guard():
                raise errors.HuffmanError("original")

    def test_memory_error_not_swallowed(self):
        with pytest.raises(MemoryError):
            with errors.decode_guard():
                raise MemoryError()

    def test_message_names_the_payload(self):
        with pytest.raises(errors.ContainerError, match="SZ-9 payload"):
            with errors.decode_guard("SZ-9 payload"):
                raise ValueError("boom")
