"""Unit tests for the consistent-hash ring and the shard map."""

import pytest

from repro.errors import ConfigError
from repro.shard import ShardInfo, ShardMap, ShardRing, manifest_key


class TestShardRing:
    def test_owner_is_deterministic_and_member(self):
        ring = ShardRing(["a", "b", "c"])
        for key in ("x", "y", "tile-digest-123", ""):
            assert ring.owner(key) == ring.owner(key)
            assert ring.owner(key) in ring.shard_ids

    def test_owners_distinct_and_ordered(self):
        ring = ShardRing(["a", "b", "c", "d"])
        owners = ring.owners("some-key", 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == ring.owner("some-key")

    def test_owners_clamped_to_shard_count(self):
        ring = ShardRing(["a", "b"])
        assert set(ring.owners("k", 5)) == {"a", "b"}

    def test_single_shard_owns_everything(self):
        ring = ShardRing(["only"])
        assert ring.owner("anything") == "only"
        assert ring.owners("anything", 3) == ("only",)

    def test_duplicate_ids_collapse(self):
        assert ShardRing(["a", "b", "a"]).n_shards == 2

    def test_membership_change_keeps_most_placements(self):
        ring = ShardRing(["a", "b", "c", "d"])
        grown = ring.with_shard("e")
        keys = [f"key-{i}" for i in range(400)]
        moved = sum(ring.owner(k) != grown.owner(k) for k in keys)
        # ideal is 1/5 of keys; generous slack for hash variance
        assert moved <= len(keys) * (1 / 5 + 0.15)
        # every moved key went TO the new shard, never shuffled laterally
        for k in keys:
            if ring.owner(k) != grown.owner(k):
                assert grown.owner(k) == "e"

    def test_without_shard_inverse_of_with(self):
        ring = ShardRing(["a", "b", "c"])
        assert ring.with_shard("d").without_shard("d").shard_ids == \
            ring.shard_ids

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardRing([])
        with pytest.raises(ConfigError):
            ShardRing(["a"], vnodes=0)
        with pytest.raises(ConfigError):
            ShardRing(["a"]).owners("k", 0)


class TestShardMap:
    def test_from_addresses_round_trips(self):
        m = ShardMap.from_addresses(
            "127.0.0.1:8201, 127.0.0.1:8202,127.0.0.1:8203", replicas=2
        )
        assert m.shard_ids == (
            "127.0.0.1:8201", "127.0.0.1:8202", "127.0.0.1:8203"
        )
        assert m.replicas == 2
        assert ShardMap.from_dict(m.to_dict()) == m

    def test_replicas_clamped_to_shard_count(self):
        m = ShardMap.from_addresses("h:1", replicas=3)
        assert m.replicas == 1

    def test_shard_lookup(self):
        m = ShardMap.from_addresses("h:1,h:2")
        assert m.shard("h:1") == ShardInfo("h:1", "h", 1)
        with pytest.raises(ConfigError):
            m.shard("h:9")

    def test_bad_addresses_rejected(self):
        for bad in ("nocolon", ":8123", "h:notaport", ""):
            with pytest.raises(ConfigError):
                ShardMap.from_addresses(bad)

    def test_bad_payloads_rejected(self):
        for bad in (None, [], {"shards": "x"}, {"shards": [{"id": "a"}]}):
            with pytest.raises(ConfigError):
                ShardMap.from_dict(bad)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            ShardMap(shards=(
                ShardInfo("a", "h", 1), ShardInfo("a", "h", 2),
            ))

    def test_replicas_bounds(self):
        with pytest.raises(ConfigError):
            ShardMap(shards=(ShardInfo("a", "h", 1),), replicas=0)
        with pytest.raises(ConfigError):
            ShardMap(shards=(ShardInfo("a", "h", 1),), replicas=2)

    def test_manifest_key_prefix_disjoint_from_digests(self):
        # manifest keys can never collide with a hex digest key
        assert manifest_key("x.ts") == "m:x.ts"
        assert not manifest_key("abc123").isalnum() or ":" in manifest_key(
            "abc123"
        )
