"""Unit tests for the wavesz command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import read_raw_field, write_raw_field


@pytest.fixture()
def raw_field(tmp_path, smooth2d):
    path = tmp_path / "field.f32"
    write_raw_field(path, smooth2d)
    return path, smooth2d


class TestCompressDecompress:
    @pytest.mark.parametrize("variant", ["wavesz", "wavesz-g", "sz14", "sz20",
                                         "ghostsz"])
    def test_roundtrip(self, tmp_path, raw_field, variant, capsys):
        path, data = raw_field
        wsz = tmp_path / "out.wsz"
        restored = tmp_path / "restored.f32"
        d0, d1 = data.shape
        assert main(["compress", str(path), "--dims", str(d0), str(d1),
                     "--variant", variant, "--eb", "1e-3",
                     "-o", str(wsz), "--verify"]) == 0
        assert main(["decompress", str(wsz), "-o", str(restored)]) == 0
        out = read_raw_field(restored, data.shape, np.float32)
        vr = float(data.max() - data.min())
        assert np.abs(out.astype(np.float64) - data).max() <= 1e-3 * vr
        captured = capsys.readouterr()
        assert "ratio" in captured.out
        assert "verified" in captured.out

    def test_abs_mode(self, tmp_path, raw_field):
        path, data = raw_field
        wsz = tmp_path / "o.wsz"
        assert main(["compress", str(path), "--dims", "48", "80",
                     "--mode", "abs", "--eb", "0.002",
                     "-o", str(wsz), "--verify"]) == 0

    def test_missing_input(self, tmp_path):
        assert main(["compress", str(tmp_path / "nope.f32"),
                     "--dims", "4", "4", "-o", str(tmp_path / "x.wsz")]) == 1

    def test_wrong_dims(self, tmp_path, raw_field):
        path, _ = raw_field
        assert main(["compress", str(path), "--dims", "7", "7",
                     "-o", str(tmp_path / "x.wsz")]) == 1


class TestOtherCommands:
    def test_info(self, tmp_path, raw_field, capsys):
        path, _ = raw_field
        wsz = tmp_path / "o.wsz"
        main(["compress", str(path), "--dims", "48", "80", "-o", str(wsz)])
        assert main(["info", str(wsz)]) == 0
        out = capsys.readouterr().out
        assert '"variant"' in out and "section" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("CESM-ATM", "Hurricane", "NYX"):
            assert name in out

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "g.f32"
        assert main(["generate", "NYX", "velocity_x", "-o", str(out_path)]) == 0
        assert out_path.stat().st_size == 64 * 64 * 64 * 4

    def test_generate_unknown_field(self, tmp_path):
        assert main(["generate", "NYX", "bogus",
                     "-o", str(tmp_path / "g.f32")]) == 1

    def test_parser_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compress", "x", "--dims", "2", "2", "--variant", "zfp",
                 "-o", "y"]
            )


class TestArchiveCommands:
    def test_archive_extract_roundtrip(self, tmp_path, capsys):
        ar = tmp_path / "nyx.wszar"
        assert main(["archive", "NYX", "--variant", "sz14",
                     "-o", str(ar)]) == 0
        out = capsys.readouterr().out
        assert "velocity_x" in out and "ratio" in out
        raw = tmp_path / "v.f32"
        assert main(["extract", str(ar), "velocity_x", "-o", str(raw)]) == 0
        assert raw.stat().st_size == 64 * 64 * 64 * 4

    def test_extract_unknown_field(self, tmp_path):
        ar = tmp_path / "nyx.wszar"
        main(["archive", "NYX", "--variant", "sz14", "-o", str(ar)])
        assert main(["extract", str(ar), "bogus",
                     "-o", str(tmp_path / "x.f32")]) == 1


class TestVerifyCommand:
    @pytest.fixture()
    def compressed(self, tmp_path, raw_field):
        path, data = raw_field
        wsz = tmp_path / "o.wsz"
        d0, d1 = data.shape
        assert main(["compress", str(path), "--dims", str(d0), str(d1),
                     "--eb", "1e-3", "-o", str(wsz)]) == 0
        return path, wsz, data

    def test_verify_clean_payload(self, compressed, capsys):
        _, wsz, _ = compressed
        assert main(["verify", str(wsz)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compress_verify_decompress_roundtrip(self, compressed, tmp_path,
                                                  capsys):
        path, wsz, data = compressed
        d0, d1 = data.shape
        assert main(["verify", str(wsz), "--original", str(path),
                     "--dims", str(d0), str(d1)]) == 0
        out = capsys.readouterr().out
        assert "max error" in out and "OK" in out
        restored = tmp_path / "r.f32"
        assert main(["decompress", str(wsz), "-o", str(restored)]) == 0

    def test_verify_detects_bit_flip(self, compressed, tmp_path, capsys):
        _, wsz, _ = compressed
        blob = bytearray(wsz.read_bytes())
        blob[len(blob) // 2] ^= 0x04
        bad = tmp_path / "bad.wsz"
        bad.write_bytes(bytes(blob))
        assert main(["verify", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "checksum" in err

    def test_verify_detects_truncation(self, compressed, tmp_path, capsys):
        _, wsz, _ = compressed
        bad = tmp_path / "cut.wsz"
        bad.write_bytes(wsz.read_bytes()[:-9])
        assert main(["verify", str(bad)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_verify_missing_file(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nope.wsz")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_verify_original_requires_dims(self, compressed, capsys):
        path, wsz, _ = compressed
        assert main(["verify", str(wsz), "--original", str(path)]) == 2


class TestReportCommand:
    def test_report_prints_hls_summary(self, capsys):
        assert main(["report", "--dims", "100", "250000"]) == 0
        out = capsys.readouterr().out
        assert "synthesis report" in out
        assert "BodyV" in out

    def test_report_base10(self, capsys):
        assert main(["report", "--dims", "64", "128", "--base10"]) == 0
        assert "fdiv" in capsys.readouterr().out


class TestServiceCommands:
    def test_codecs_lists_registry(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        assert "waveSZ" in out and "wavesz-g" in out and "Table 2" in out

    def test_batch_manifest(self, tmp_path, raw_field, capsys):
        import json

        path, data = raw_field
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({
            "defaults": {"eb": 1e-3, "mode": "vr_rel"},
            "jobs": [
                {"input": path.name, "dims": list(data.shape),
                 "codec": "sz14"},
                {"input": path.name, "dims": list(data.shape),
                 "codec": "zfp-like", "output": "zfp.wsz"},
            ],
        }))
        # manifest-relative inputs: point the manifest at the field's dir
        manifest = manifest.rename(path.parent / "manifest.json")
        outdir = tmp_path / "out"
        report = tmp_path / "report.json"
        assert main(["batch", str(manifest), "-o", str(outdir),
                     "--workers", "0", "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "2/2 jobs ok" in out
        from repro.codec.registry import get_codec

        direct = get_codec("sz14").compress(data, 1e-3, "vr_rel")
        assert (outdir / "field.wsz").read_bytes() == direct.payload
        rep = json.loads(report.read_text())
        assert rep["stats"]["totals"]["completed"] == 2
        assert {j["codec"] for j in rep["jobs"]} == {"sz14", "zfp-like"}

    def test_batch_tiled_dp_job_roundtrips_through_cli(self, tmp_path,
                                                       raw_field, capsys):
        import json

        path, data = raw_field
        manifest = path.parent / "m.json"
        manifest.write_text(json.dumps({"jobs": [
            {"input": path.name, "dims": list(data.shape),
             "codec": "wavesz-dp", "tiles": 3, "output": "dp.wsz"},
        ]}))
        outdir = tmp_path / "out"
        assert main(["batch", str(manifest), "-o", str(outdir),
                     "--workers", "0"]) == 0
        from repro.codec.registry import get_codec
        from repro.parallel import tile_compress

        direct = tile_compress(
            get_codec("wavesz-dp"), data, 1e-3, "vr_rel", n_tiles=3
        )
        wsz = outdir / "dp.wsz"
        assert wsz.read_bytes() == direct.payload
        # tiled payloads decompress and verify through the plain CLI
        restored = tmp_path / "dp.f32"
        assert main(["decompress", str(wsz), "-o", str(restored)]) == 0
        assert "tiled[waveSZ-dp]" in capsys.readouterr().out
        d0, d1 = data.shape
        assert main(["verify", str(wsz), "--original", str(path),
                     "--dims", str(d0), str(d1)]) == 0
        from repro.io import Container

        out = read_raw_field(restored, data.shape, np.float32)
        err = np.abs(out.astype(np.float64) - data.astype(np.float64))
        eb_abs = Container.from_bytes(direct.payload).header["eb_abs"]
        assert float(err.max()) <= float(eb_abs)

    def test_batch_duplicate_outputs_disambiguated(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({"jobs": [
            {"dataset": "CESM-ATM", "field": "CLDLOW", "codec": "sz14"},
            {"dataset": "CESM-ATM", "field": "CLDLOW", "codec": "sz10"},
        ]}))
        outdir = tmp_path / "out"
        assert main(["batch", str(manifest), "-o", str(outdir),
                     "--workers", "0"]) == 0
        names = sorted(p.name for p in outdir.iterdir())
        assert names == ["CESM-ATM_CLDLOW.wsz", "CESM-ATM_CLDLOW_1.wsz"]

    def test_batch_empty_manifest_errors(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text('{"jobs": []}')
        assert main(["batch", str(manifest), "-o", str(tmp_path / "o")]) == 1
        assert "no jobs" in capsys.readouterr().err


class TestStoreCommands:
    @pytest.fixture()
    def stored(self, tmp_path, raw_field):
        path, data = raw_field
        root = tmp_path / "store"
        d0, d1 = data.shape
        assert main(["store", "--root", str(root), "put", str(path), "ts",
                     "--dims", str(d0), str(d1), "--variant", "sz14",
                     "--eb", "1e-3", "--tiles", "4"]) == 0
        return root, data

    def test_put_reports_objects(self, tmp_path, raw_field, capsys):
        path, data = raw_field
        root = tmp_path / "s"
        d0, d1 = data.shape
        args = ["store", "--root", str(root), "put", str(path), "a",
                "--dims", str(d0), str(d1), "--variant", "sz14"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 new object(s)" in out and "ratio" in out
        # byte-identical second dataset deduplicates completely
        args[5] = "b"
        assert main(args) == 0
        assert "0 new object(s)" in capsys.readouterr().out

    def test_get_round_trips(self, stored, tmp_path, capsys):
        root, data = stored
        out_path = tmp_path / "back.f32"
        assert main(["store", "--root", str(root), "get", "ts",
                     "-o", str(out_path)]) == 0
        out = read_raw_field(out_path, data.shape, np.float32)
        vr = float(data.max() - data.min())
        assert np.abs(out.astype(np.float64) - data).max() <= 1e-3 * vr

    def test_slice_window(self, stored, tmp_path, capsys):
        root, data = stored
        full = tmp_path / "full.f32"
        part = tmp_path / "part.f32"
        assert main(["store", "--root", str(root), "get", "ts",
                     "-o", str(full)]) == 0
        assert main(["store", "--root", str(root), "slice", "ts",
                     "--window", "8:24,0:40", "-o", str(part)]) == 0
        assert "tile(s) touched" in capsys.readouterr().out
        whole = read_raw_field(full, data.shape, np.float32)
        window = read_raw_field(part, (16, 40), np.float32)
        np.testing.assert_array_equal(window, whole[8:24, 0:40])

    def test_bad_window_is_an_error(self, stored, tmp_path, capsys):
        root, _ = stored
        assert main(["store", "--root", str(root), "slice", "ts",
                     "--window", "banana", "-o", str(tmp_path / "x")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_ls_and_gc(self, stored, capsys):
        root, _ = stored
        assert main(["store", "--root", str(root), "ls"]) == 0
        assert "ts" in capsys.readouterr().out
        assert main(["store", "--root", str(root), "gc"]) == 0
        assert "removed 0 object(s)" in capsys.readouterr().out

    def test_damaged_tile_exits_3_without_strict(self, stored, tmp_path,
                                                 capsys):
        import json

        root, data = stored
        manifest = json.loads((root / "manifests" / "ts.json").read_text())
        victim = root / "objects" / manifest["tiles"][1]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        victim.write_bytes(bytes(blob))
        out_path = tmp_path / "back.f32"
        # strict (default) fails outright
        assert main(["store", "--root", str(root), "get", "ts",
                     "-o", str(out_path)]) == 1
        assert "error:" in capsys.readouterr().err
        # lenient salvages the rest and signals partial loss via exit 3
        assert main(["store", "--root", str(root), "get", "ts",
                     "-o", str(out_path), "--no-strict"]) == 3
        captured = capsys.readouterr()
        assert "tile 1 lost" in captured.err
        out = read_raw_field(out_path, data.shape, np.float32)
        assert (out[:12] != 0).any()  # intact band survived
