"""Unit tests for the on-chip Huffman encoder model (future-work study)."""

import numpy as np
import pytest

from repro.encoding.huffman import HuffmanCodec, HuffmanTable
from repro.errors import ModelError
from repro.fpga.huffman_hw import (
    HuffmanHWModel,
    hstar_lane_budget,
    huffman_hw_resources,
    simulate_huffman_encode,
)
from repro.fpga.timing import wavesz_throughput


class TestModelGeometry:
    def test_bram_scales_with_symbol_width(self):
        b16 = HuffmanHWModel(symbol_bits=16).total_bram
        b12 = HuffmanHWModel(symbol_bits=12).total_bram
        assert b16 > 10 * b12

    def test_16bit_bram_order_of_gzip(self):
        """The headline: an H* instance costs BRAM comparable to the gzip
        IP itself — why the paper deferred it."""
        model = HuffmanHWModel()
        assert 150 < model.total_bram < 350

    def test_encode_cycles_two_passes(self):
        model = HuffmanHWModel()
        assert model.encode_cycles(1000, 0) == 2000
        assert model.encode_cycles(0, 10) == 240

    def test_validation(self):
        with pytest.raises(ModelError):
            HuffmanHWModel(symbol_bits=40)
        with pytest.raises(ModelError):
            HuffmanHWModel().encode_cycles(-1, 0)


class TestFunctionalEquivalence:
    def test_payload_matches_software_codec(self):
        rng = np.random.default_rng(0)
        syms = rng.geometric(0.4, 20000) + 32760
        payload_hw, report = simulate_huffman_encode(syms)
        codec = HuffmanCodec(HuffmanTable.from_symbols(syms))
        payload_sw, _ = codec.encode(syms)
        assert payload_hw == payload_sw
        assert report.cycles >= 2 * syms.size

    def test_hw_stage_keeps_up_with_pqd(self):
        """~0.5 symbols/cycle is still faster than the PQD lane's output on
        the paper-scale datasets, so H* adds latency, not a rate limit."""
        model = HuffmanHWModel()
        n = 100 * 500 * 500
        huff = model.throughput(n, 4000)
        pqd = wavesz_throughput((100, 500, 500))
        assert huff.mb_per_s > 0.5 * pqd.mb_per_s


class TestLaneBudget:
    def test_hstar_costs_lanes(self):
        budget = hstar_lane_budget()
        assert budget["lanes_hstar"] < budget["lanes_gstar"]
        assert budget["lanes_gstar"] == 3  # the ZC706 G* deployment
        assert budget["lanes_hstar"] >= 1  # but H* still fits at all

    def test_resource_report(self):
        r = huffman_hw_resources()
        assert r.dsp48e == 0
        assert r.bram_18k == HuffmanHWModel().total_bram
