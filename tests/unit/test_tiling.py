"""Unit tests for the shared tile-grid geometry."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tiling import MIN_BAND_ROWS, TileGrid, normalize_slices


class TestRegularGrid:
    def test_matches_linspace_edges(self):
        grid = TileGrid.regular((48, 80), 4)
        edges = np.linspace(0, 48, 5, dtype=int)
        assert grid.starts == tuple(int(e) for e in edges[:-1])
        assert grid.n_tiles == 4
        assert grid.band_range(3) == (int(edges[3]), 48)

    def test_bands_cover_axis_exactly(self):
        for n0 in (4, 5, 7, 31, 100):
            for n_tiles in (1, 2, n0 // 2):
                grid = TileGrid.regular((n0, 3), n_tiles)
                spans = [grid.band_range(t) for t in range(grid.n_tiles)]
                assert spans[0][0] == 0 and spans[-1][1] == n0
                for (a, b), (c, _) in zip(spans, spans[1:]):
                    assert b == c  # contiguous, no gap, no overlap
                assert all(b - a >= MIN_BAND_ROWS for a, b in spans)

    def test_too_many_tiles_raises_with_feasible_max(self):
        with pytest.raises(ShapeError, match="at most 5 tiles"):
            TileGrid.regular((10, 8), 6)

    def test_too_many_tiles_clamps_when_asked(self):
        grid = TileGrid.regular((10, 8), 6, clamp=True)
        assert grid.n_tiles == 5

    def test_huge_request_clamps_to_one(self):
        grid = TileGrid.regular((3, 8), 100, clamp=True)
        assert grid.n_tiles == 1
        assert grid.band_range(0) == (0, 3)

    def test_field_smaller_than_one_band_always_raises(self):
        """Nothing to clamp to: a 1-row field cannot host any band."""
        for clamp in (False, True):
            with pytest.raises(ShapeError, match="smaller than one"):
                TileGrid.regular((1, 8), 1, clamp=clamp)

    def test_zero_tiles_rejected(self):
        with pytest.raises(ShapeError, match="n_tiles"):
            TileGrid.regular((10, 8), 0)


class TestGridValidation:
    def test_from_starts_roundtrip(self):
        grid = TileGrid.regular((48, 80), 3)
        again = TileGrid.from_starts([48, 80], list(grid.starts))
        assert again == grid

    @pytest.mark.parametrize(
        "starts", [[], [1, 10], [0, 10, 10], [0, 50], [0, 10, 5]]
    )
    def test_bad_starts_rejected(self, starts):
        with pytest.raises(ShapeError):
            TileGrid.from_starts((48, 80), starts)

    def test_index_resolution(self):
        grid = TileGrid.regular((48, 80), 4)
        assert grid.resolve(-1) == 3
        assert grid.resolve(0) == 0
        with pytest.raises(ShapeError, match=r"valid: -4\.\.3"):
            grid.resolve(4)
        with pytest.raises(ShapeError, match="-5"):
            grid.resolve(-5)

    def test_tile_slices_and_shape(self):
        grid = TileGrid.regular((48, 80, 3), 4)
        idx = grid.tile_slices(1)
        assert idx[0] == slice(12, 24)
        assert idx[1:] == (slice(0, 80), slice(0, 3))
        assert grid.tile_shape(1) == (12, 80, 3)


class TestOverlap:
    def test_overlapping_is_minimal(self):
        grid = TileGrid.regular((40, 8), 4)  # bands of 10 rows
        assert grid.overlapping(slice(0, 40)) == (0, 1, 2, 3)
        assert grid.overlapping(slice(0, 10)) == (0,)
        assert grid.overlapping(slice(10, 11)) == (1,)
        assert grid.overlapping(slice(9, 11)) == (0, 1)
        assert grid.overlapping(slice(35, 40)) == (3,)

    def test_band_boundaries_are_half_open(self):
        grid = TileGrid.regular((40, 8), 4)
        # row 20 belongs to band 2, not band 1
        assert grid.overlapping(slice(20, 21)) == (2,)


class TestNormalizeSlices:
    def test_defaults_fill_trailing_axes(self):
        assert normalize_slices((10, 20, 3), (slice(2, 5),)) == (
            slice(2, 5), slice(0, 20), slice(0, 3)
        )

    def test_accepts_pairs_and_none(self):
        assert normalize_slices((10, 20), ((2, 5), None)) == (
            slice(2, 5), slice(0, 20)
        )
        assert normalize_slices((10, 20), ((None, 5), (2, None))) == (
            slice(0, 5), slice(2, 20)
        )

    def test_single_window_applies_to_axis0(self):
        assert normalize_slices((10, 20), slice(1, 4)) == (
            slice(1, 4), slice(0, 20)
        )
        assert normalize_slices((10, 20), (1, 4)) == (
            slice(1, 4), slice(0, 20)
        )

    def test_negative_offsets(self):
        assert normalize_slices((10,), (slice(-4, -1),)) == (slice(6, 9),)

    @pytest.mark.parametrize(
        "window", [(slice(5, 5),), (slice(8, 2),), (slice(0, 11),),
                   (slice(0, 4, 2),), ((1, 2, 3),), ("nope",)]
    )
    def test_bad_windows_raise(self, window):
        with pytest.raises(ShapeError):
            normalize_slices((10,), window)

    def test_too_many_axes(self):
        with pytest.raises(ShapeError, match="slice axes"):
            normalize_slices((10,), (None, None, None))

    def test_two_nones_parse_as_one_full_pair(self):
        """(None, None) is the (start, stop) pair form — one full axis 0."""
        assert normalize_slices((10, 20), (None, None)) == (
            slice(0, 10), slice(0, 20)
        )
