"""Unit tests for the Table 2 variant feature matrix."""

from repro.variants import VARIANTS, Feature, Goal, Platform, feature_matrix


class TestVariants:
    def test_all_five_rows_present(self):
        assert set(VARIANTS) == {"SZ-0.1-1.0", "SZ-1.4", "SZ-2.0+", "GhostSZ", "waveSZ"}

    def test_platforms(self):
        assert VARIANTS["SZ-1.4"].platform is Platform.CPU
        assert VARIANTS["GhostSZ"].platform is Platform.FPGA
        assert VARIANTS["waveSZ"].platform is Platform.FPGA

    def test_goals(self):
        """Table 2's colour coding: FPGA designs are performance-oriented,
        CPU SZ versions data-quality-oriented."""
        assert VARIANTS["waveSZ"].goal is Goal.PERFORMANCE
        assert VARIANTS["GhostSZ"].goal is Goal.PERFORMANCE
        assert VARIANTS["SZ-1.4"].goal is Goal.DATA_QUALITY

    def test_predictor_assignments(self):
        assert VARIANTS["SZ-1.4"].uses(Feature.LORENZO)
        assert not VARIANTS["SZ-1.4"].uses(Feature.ORDER012)
        assert VARIANTS["GhostSZ"].uses(Feature.ORDER012)
        assert not VARIANTS["GhostSZ"].uses(Feature.LORENZO)
        assert VARIANTS["waveSZ"].uses(Feature.LORENZO)

    def test_wavesz_signature_features(self):
        w = VARIANTS["waveSZ"]
        assert w.uses(Feature.MEMORY_LAYOUT_TRANSFORM)
        assert w.uses(Feature.BASE2_MAPPING)
        assert Feature.CUSTOM_HUFFMAN in w.optional  # the ⋆ of Table 2

    def test_writeback_distinction(self):
        """GhostSZ writes back predictions; SZ/waveSZ write back
        decompressed values (Algorithm 1 line 9)."""
        assert VARIANTS["GhostSZ"].uses(Feature.PREDICTION_WRITEBACK)
        assert not VARIANTS["GhostSZ"].uses(Feature.DECOMPRESSION_WRITEBACK)
        assert VARIANTS["waveSZ"].uses(Feature.DECOMPRESSION_WRITEBACK)

    def test_lossless_stages(self):
        assert VARIANTS["SZ-2.0+"].uses(Feature.ZSTD)
        assert VARIANTS["waveSZ"].uses(Feature.GZIP)
        assert VARIANTS["SZ-1.4"].uses(Feature.CUSTOM_HUFFMAN)

    def test_feature_matrix_renders_all(self):
        rows = feature_matrix()
        assert len(rows) == 5
        for row in rows:
            assert "version" in row and "platform" in row
        wave = next(r for r in rows if r["version"] == "waveSZ")
        assert wave["customized Huffman"] == "optional"
        assert wave["base 10->2 mapping"] == "required"
