"""Unit tests for the Algorithm 1 linear-scaling quantizer."""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.errors import ConfigError
from repro.sz.quantizer import quantize_scalar, quantize_vector, reconstruct

Q16 = QuantizerConfig()
Q8 = QuantizerConfig(bits=8)


class TestScalarAlgorithm1:
    @pytest.mark.parametrize(
        "diff_in_p,expected_offset",
        [
            (0.0, 0),  # exact prediction -> code r
            (0.5, 0),  # within p -> code r (error = diff)
            (1.5, 1),  # rounds to one bin up
            (2.5, 1),
            (3.5, 2),
            (-0.5, 0),
            (-1.5, -1),
            (-2.5, -1),
            (-3.5, -2),
        ],
    )
    def test_rounding_matches_nearest_even_bin(self, diff_in_p, expected_offset):
        p = 0.01
        pred = 1.0
        d = pred + diff_in_p * p
        code, d_re = quantize_scalar(d, pred, p, Q16)
        assert code == Q16.radius + expected_offset
        assert abs(d_re - d) <= p

    def test_equivalence_with_round_to_nearest(self):
        """code - r must equal round(diff / 2p) with ties toward zero."""
        rng = np.random.default_rng(0)
        p = 0.003
        for _ in range(500):
            pred = rng.normal()
            diff = rng.normal() * 10 * p
            d = pred + diff
            code, _ = quantize_scalar(d, pred, p, Q16)
            if code == 0:
                continue
            k = code - Q16.radius
            expected = diff / (2 * p)
            assert abs(k - expected) <= 0.5 + 1e-9

    def test_bound_always_held_when_quantizable(self):
        rng = np.random.default_rng(1)
        p = 1e-3
        for _ in range(1000):
            pred = rng.normal()
            d = pred + rng.normal() * 5 * p
            code, d_re = quantize_scalar(d, pred, p, Q16)
            if code:
                assert abs(d_re - d) <= p

    def test_overflow_returns_zero(self):
        p = 1e-3
        d = 0.0
        pred = d + p * Q8.capacity * 2  # way out of range
        code, d_re = quantize_scalar(d, pred, p, Q8)
        assert code == 0
        assert d_re == d  # original value passes through

    def test_nonpositive_precision_rejected(self):
        with pytest.raises(ConfigError):
            quantize_scalar(1.0, 0.0, 0.0, Q16)

    def test_code_zero_reserved(self):
        """No quantizable point may produce code 0 (it means unpredictable)."""
        p = 1e-2
        rng = np.random.default_rng(2)
        for _ in range(2000):
            pred = rng.normal()
            d = pred + rng.normal() * p * 100
            code, _ = quantize_scalar(d, pred, p, Q8)
            assert 0 <= code < Q8.capacity


class TestVectorized:
    def test_matches_scalar_oracle(self):
        rng = np.random.default_rng(3)
        p = 2.5e-3
        pred = rng.normal(size=4000)
        d = pred + rng.normal(size=4000) * 20 * p
        codes, d_out = quantize_vector(d, pred, p, Q16, np.float64)
        for i in range(0, 4000, 37):  # spot-check against the oracle
            c, dr = quantize_scalar(float(d[i]), float(pred[i]), p, Q16)
            assert codes[i] == c
            assert d_out[i] == pytest.approx(dr, abs=0)

    def test_float32_rounding_respected(self):
        """The bound check runs on the float32-rounded reconstruction."""
        rng = np.random.default_rng(4)
        p = 1e-3
        pred = rng.normal(size=5000).astype(np.float64) * 1000
        d = pred + rng.normal(size=5000) * 3 * p
        codes, d_out = quantize_vector(d, pred, p, Q16, np.float32)
        ok = codes != 0
        assert (np.abs(d_out[ok].astype(np.float64) - d[ok]) <= p).all()

    def test_unpredictable_passthrough(self):
        p = 1e-6
        pred = np.zeros(4)
        d = np.array([0.0, 1.0, -1.0, 5e-7])
        codes, d_out = quantize_vector(d, pred, p, Q8, np.float64)
        assert codes[1] == 0 and codes[2] == 0
        assert d_out[1] == 1.0 and d_out[2] == -1.0
        assert codes[0] != 0 and codes[3] != 0

    def test_reconstruct_inverts_codes(self):
        rng = np.random.default_rng(5)
        p = 1e-3
        pred = rng.normal(size=1000)
        d = pred + rng.normal(size=1000) * 4 * p
        codes, d_out = quantize_vector(d, pred, p, Q16, np.float64)
        rec = reconstruct(codes, pred, p, Q16, np.float64)
        ok = codes != 0
        assert (rec[ok] == d_out[ok]).all()
        assert np.isnan(rec[~ok]).all()

    def test_capacity_boundary(self):
        """Largest representable code is capacity-1; one more overflows."""
        p = 1.0
        pred = np.zeros(2)
        r = Q8.radius
        near = (Q8.capacity - 2) * p  # diff/p just inside
        over = (Q8.capacity + 2) * p
        codes, _ = quantize_vector(np.array([near, over]), pred, p, Q8, np.float64)
        assert codes[0] != 0
        assert codes[1] == 0
