"""Unit tests for the PQD hardware stage inventory."""

from repro.core.pipeline import (
    OP_LATENCY,
    ghostsz_pqd_stages,
    pqd_latency,
    wavesz_pqd_stages,
)
from repro.fpga.timing import DELTA_PQD


class TestWaveSZStages:
    def test_base2_removes_divider_and_check(self):
        base2 = wavesz_pqd_stages(base2=True)
        base10 = wavesz_pqd_stages(base2=False)
        names2 = {s.name for s in base2}
        names10 = {s.name for s in base10}
        assert "quantize_base2" in names2
        assert "overbound_check" not in names2  # §3.3: check eliminated
        assert "quantize_base10" in names10
        assert "overbound_check" in names10

    def test_base2_shorter_than_base10(self):
        assert pqd_latency(wavesz_pqd_stages(True)) < pqd_latency(
            wavesz_pqd_stages(False)
        )

    def test_no_fdiv_in_base2_path(self):
        ops = [op for s in wavesz_pqd_stages(True) for op in s.ops]
        assert "fdiv" not in ops
        assert "fmul" not in ops  # exponent-only arithmetic

    def test_logic_latency_below_calibrated_delta(self):
        """The calibrated Δ (= logic + line-buffer turnaround) upper-bounds
        the pure stage-sum."""
        assert pqd_latency(wavesz_pqd_stages(True)) < DELTA_PQD


class TestGhostSZStages:
    def test_uses_divider(self):
        ops = [op for s in ghostsz_pqd_stages() for op in s.ops]
        assert "fdiv" in ops
        assert "fmul" in ops

    def test_longer_chain_than_wavesz(self):
        assert pqd_latency(ghostsz_pqd_stages()) > pqd_latency(
            wavesz_pqd_stages(True)
        )

    def test_overbound_check_present(self):
        assert any(s.name == "overbound_check" for s in ghostsz_pqd_stages())


class TestLatencyTable:
    def test_divider_is_most_expensive_fp_op(self):
        assert OP_LATENCY["fdiv"] > OP_LATENCY["fadd"] > OP_LATENCY["exp_unit"]

    def test_stage_latency_sums_ops(self):
        s = wavesz_pqd_stages(True)[0]
        assert s.latency == sum(OP_LATENCY[o] for o in s.ops)
