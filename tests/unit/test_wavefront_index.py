"""Unit tests for the wavefront index precompute."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sz.wavefront_index import (
    border_indices,
    interior_wavefronts,
    manhattan_grid,
)


def _coords(flat, shape):
    return np.unravel_index(flat, shape)


class TestInteriorWavefronts:
    @pytest.mark.parametrize("shape", [(2, 2), (5, 9), (9, 5), (7, 7)])
    def test_2d_covers_all_interior_points_once(self, shape):
        groups = interior_wavefronts(shape)
        all_idx = np.concatenate(groups)
        assert all_idx.size == (shape[0] - 1) * (shape[1] - 1)
        assert np.unique(all_idx).size == all_idx.size
        i, j = _coords(all_idx, shape)
        assert (i >= 1).all() and (j >= 1).all()

    @pytest.mark.parametrize("shape", [(2, 2, 2), (4, 5, 6), (6, 3, 4)])
    def test_3d_covers_all_interior_points_once(self, shape):
        groups = interior_wavefronts(shape)
        all_idx = np.concatenate(groups)
        expected = (shape[0] - 1) * (shape[1] - 1) * (shape[2] - 1)
        assert all_idx.size == expected
        assert np.unique(all_idx).size == all_idx.size

    @pytest.mark.parametrize("shape", [(5, 9), (4, 5, 6)])
    def test_groups_have_constant_manhattan_distance(self, shape):
        md = manhattan_grid(shape).reshape(-1)
        for group in interior_wavefronts(shape):
            assert np.unique(md[group]).size == 1

    @pytest.mark.parametrize("shape", [(5, 9), (4, 5, 6)])
    def test_groups_strictly_increasing_distance(self, shape):
        md = manhattan_grid(shape).reshape(-1)
        dists = [int(md[g[0]]) for g in interior_wavefronts(shape)]
        assert dists == sorted(dists)
        assert len(set(dists)) == len(dists)

    @pytest.mark.parametrize("shape", [(6, 8), (4, 5, 6)])
    def test_dependencies_resolved_before_use(self, shape):
        """Every Lorenzo neighbour of a point sits on an earlier wavefront
        or on the border — the property that makes vectorized feedback
        legal (paper §3.1)."""
        from repro.sz.lorenzo import neighbor_offsets

        offsets, _ = neighbor_offsets(shape)
        seen = np.zeros(int(np.prod(shape)), dtype=bool)
        seen[border_indices(shape)] = True
        for group in interior_wavefronts(shape):
            for off in offsets:
                assert seen[group - off].all(), "dependency not yet processed"
            seen[group] = True
        assert seen.all()

    def test_1d_is_sequential_singletons(self):
        groups = interior_wavefronts((6,))
        assert [g.tolist() for g in groups] == [[1], [2], [3], [4], [5]]

    def test_rejects_4d(self):
        with pytest.raises(ShapeError):
            interior_wavefronts((2, 2, 2, 2))

    def test_caching_returns_same_object(self):
        a = interior_wavefronts((5, 6))
        b = interior_wavefronts((5, 6))
        assert a is b


class TestBorderIndices:
    def test_2d(self):
        idx = border_indices((3, 4))
        i, j = _coords(idx, (3, 4))
        assert ((i == 0) | (j == 0)).all()
        assert idx.size == 3 + 4 - 1

    def test_3d_count(self):
        n0, n1, n2 = 4, 5, 6
        idx = border_indices((n0, n1, n2))
        expected = n0 * n1 * n2 - (n0 - 1) * (n1 - 1) * (n2 - 1)
        assert idx.size == expected

    def test_raster_ordered(self):
        idx = border_indices((5, 5))
        assert (np.diff(idx) > 0).all()


class TestManhattanGrid:
    def test_values(self):
        md = manhattan_grid((3, 3))
        assert md[0, 0] == 0
        assert md[2, 2] == 4
        assert md[1, 2] == 3
