"""Unit tests for the synthesis-report generator."""

import pytest

from repro.errors import ModelError
from repro.fpga.report import kernel_loop_nests, synthesis_report
from repro.fpga.timing import DELTA_PQD, wavesz_cycles


class TestLoopNests:
    def test_six_loops_of_listing1(self):
        nests = kernel_loop_nests(16, 64)
        assert [n.label for n in nests] == [
            "HeadH", "HeadV", "BodyH", "BodyV", "TailH", "TailV",
        ]

    def test_body_meets_pii_1(self):
        nests = {n.label: n for n in kernel_loop_nests(100, 250000)}
        assert nests["BodyV"].achieved_pii == 1

    def test_head_relaxed_when_shallow(self):
        nests = {n.label: n for n in kernel_loop_nests(16, 64)}
        assert nests["HeadV"].achieved_pii > 1  # §3.3's relaxation


class TestReport:
    def test_contains_key_sections(self):
        r = synthesis_report(100, 250000)
        for token in (
            "wave<float,99>", "PQD datapath stages", "loop hierarchy",
            "utilization estimates", "BRAM_18K", "DSP48E",
            "body loop is stall-free",
        ):
            assert token in r, token

    def test_reports_calibrated_delta(self):
        r = synthesis_report(512, 262144)
        assert str(DELTA_PQD) in r

    def test_latency_matches_timing_model(self):
        r = synthesis_report(100, 250000)
        assert str(wavesz_cycles((100, 250000))) in r

    def test_base10_variant_shows_divider(self):
        r = synthesis_report(64, 128, base2=False)
        assert "fdiv" in r
        assert "base-2: no" in r

    def test_base2_variant_has_no_divider(self):
        r = synthesis_report(64, 128, base2=True)
        assert "fdiv" not in r

    def test_validation(self):
        with pytest.raises(ModelError):
            synthesis_report(10, 5)
