"""Unit tests for the SZ-1.0 bestfit compressor."""

import numpy as np
import pytest

from repro.errors import ContainerError
from repro.sz import SZ10Compressor
from repro.sz.sz10 import sz10_predict_loop


class TestPredictLoop:
    def test_types_and_errors_shape(self, ramp1d):
        types, dec, errs = sz10_predict_loop(ramp1d, 1e-3)
        assert types.shape == dec.shape == errs.shape == (ramp1d.size,)
        assert types[0] == 0  # first point has no basis

    def test_bound_enforced(self, ramp1d):
        p = 1e-3
        types, dec, _ = sz10_predict_loop(ramp1d, p)
        assert (np.abs(dec - ramp1d.astype(np.float64)) <= p).all()

    def test_linear_sequence_mostly_order1(self):
        seq = (0.5 + 0.01 * np.arange(2000)).astype(np.float32)
        types, _, _ = sz10_predict_loop(seq, 1e-4)
        # fit-type 2 == order-1 linear fit
        assert (types[10:] == 2).mean() > 0.8

    def test_unpredictable_on_jumps(self):
        seq = np.zeros(100, dtype=np.float32)
        seq[50:] = 100.0
        types, dec, _ = sz10_predict_loop(seq, 1e-4)
        assert types[50] == 0  # the jump cannot be fit
        assert (np.abs(dec - seq) <= 1e-4).all()


class TestSZ10EndToEnd:
    def test_roundtrip_1d(self, ramp1d):
        c = SZ10Compressor()
        cf = c.compress(ramp1d, 1e-3, "abs")
        out = c.decompress(cf)
        assert out.shape == ramp1d.shape
        assert out.dtype == ramp1d.dtype
        assert np.abs(out.astype(np.float64) - ramp1d).max() <= 1e-3

    def test_roundtrip_2d_linearized(self, smooth2d):
        small = smooth2d[:20, :30]
        c = SZ10Compressor()
        cf = c.compress(small, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert out.shape == small.shape
        assert np.abs(out.astype(np.float64) - small).max() <= cf.bound.absolute

    def test_lower_ratio_than_lorenzo_on_2d(self, smooth2d):
        """The Figure 1 / Table 1 claim: 1D fitting loses to Lorenzo on 2D."""
        from repro.sz import SZ14Compressor

        small = smooth2d[:32, :48]
        r10 = SZ10Compressor().compress(small, 1e-3).stats.ratio
        r14 = SZ14Compressor().compress(small, 1e-3).stats.ratio
        assert r14 > r10

    def test_wrong_variant_rejected(self, smooth2d):
        from repro.sz import SZ14Compressor

        cf = SZ14Compressor().compress(smooth2d[:16, :16], 1e-3)
        with pytest.raises(ContainerError):
            SZ10Compressor().decompress(cf)

    def test_stats_account_unpredictables(self, rough2d):
        c = SZ10Compressor()
        cf = c.compress(rough2d[:20, :20], 1e-6, "abs")
        assert cf.stats.n_unpredictable > 0
        assert cf.stats.compressed_bytes > 0
