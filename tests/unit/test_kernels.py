"""Unit tests for the kernel dispatch registry and its satellites.

Covers the mode-selection contract (env var / set_mode / forced
priority), the registry's failure modes, the ``encoded_size_bits``
bounds checks, the cached Lorenzo stencil helpers, ``prefetch_map``
ordering, and ``measure_compressor``'s warmup / per-stage timing.
The bit-exactness of the fast kernels themselves is enforced by the
differential suite in ``tests/property/test_prop_kernels.py``.
"""

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.config import QuantizerConfig
from repro.encoding.huffman import HuffmanCodec, HuffmanTable
from repro.errors import BitstreamError, ConfigError, HuffmanError
from repro.kernels import (
    ENV_VAR,
    active_mode,
    forced,
    kernel_table,
    resolve,
    set_mode,
)
from repro.parallel import prefetch_map
from repro.perf import measure_compressor
from repro.sz.lorenzo import neighbor_offsets, stencil_predict
from repro.sz.pqd import pqd_compress, pqd_decompress

Q = QuantizerConfig()


@pytest.fixture(autouse=True)
def _clean_mode(monkeypatch):
    """Each test starts from the env-driven default and leaves no override."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_mode(None)
    yield
    set_mode(None)


class TestModeSelection:
    def test_default_is_fast(self):
        assert active_mode() == "fast"

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert active_mode() == "reference"

    def test_empty_env_var_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert active_mode() == "fast"

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "turbo")
        with pytest.raises(ConfigError, match="turbo"):
            active_mode()

    def test_set_mode_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        set_mode("fast")
        assert active_mode() == "fast"
        set_mode(None)
        assert active_mode() == "reference"

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ConfigError):
            set_mode("warp")

    def test_forced_wins_and_restores(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        set_mode("fast")
        with forced("reference"):
            assert active_mode() == "reference"
            with forced("fast"):
                assert active_mode() == "fast"
            assert active_mode() == "reference"
        assert active_mode() == "fast"

    def test_forced_rejects_unknown(self):
        with pytest.raises(ConfigError):
            with forced("sloth"):
                pass  # pragma: no cover


class TestRegistry:
    def test_expected_kernels_registered(self):
        table = kernel_table()
        for name in (
            "huffman.decode",
            "lz77.parse",
            "bitio.pack_codes",
            "bitio.unpack_codes",
            "pqd.compress_sweep",
            "pqd.decompress_sweep",
        ):
            assert name in table
            mod, _, attr = table[name].partition(":")
            assert mod.startswith("repro.kernels.") and attr

    def test_resolve_returns_mode_specific_callable(self):
        with forced("reference"):
            ref = resolve("bitio.pack_codes")
        with forced("fast"):
            fast = resolve("bitio.pack_codes")
        assert ref is not fast

    def test_resolve_unknown_kernel(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            resolve("fft.butterfly")


class TestEncodedSizeBits:
    def _codec(self):
        syms = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        return HuffmanCodec(HuffmanTable.from_symbols(syms)), syms

    def test_matches_encode(self):
        codec, syms = self._codec()
        _, nbits = codec.encode(syms)
        assert codec.encoded_size_bits(syms) == nbits

    def test_rejects_symbol_above_alphabet(self):
        codec, _ = self._codec()
        with pytest.raises(HuffmanError, match="outside table alphabet"):
            codec.encoded_size_bits(np.array([10_000], dtype=np.int64))

    def test_rejects_negative_symbol(self):
        codec, _ = self._codec()
        with pytest.raises(HuffmanError, match="outside table alphabet"):
            codec.encoded_size_bits(np.array([-1], dtype=np.int64))

    def test_rejects_zero_frequency_symbol(self):
        syms = np.array([0, 0, 5, 5, 5], dtype=np.int64)
        codec = HuffmanCodec(HuffmanTable.from_symbols(syms))
        with pytest.raises(HuffmanError, match="zero frequency"):
            codec.encoded_size_bits(np.array([3], dtype=np.int64))


class TestLorenzoHelpers:
    def test_neighbor_offsets_cached_and_readonly(self):
        a = neighbor_offsets((7, 9), 1)
        b = neighbor_offsets((7, 9), 1)
        assert a[0] is b[0] and a[1] is b[1]
        assert not a[0].flags.writeable and not a[1].flags.writeable

    def test_stencil_predict_matches_per_offset_loop(self):
        rng = np.random.default_rng(11)
        work = rng.normal(size=8 * 9)
        offsets, signs = neighbor_offsets((8, 9), 2)
        idx = np.arange(3 * 9 + 3, 3 * 9 + 7, dtype=np.int64)
        got = stencil_predict(work, idx, offsets, signs)
        want = np.zeros(idx.size)
        for m in range(offsets.size):
            want += signs[m] * work[idx - offsets[m]]
        # In-order accumulation must be reproduced exactly, not just
        # approximately — the closed PQD loop amplifies ulp drift.
        assert np.array_equal(got, want)


class TestPrefetchMap:
    def test_preserves_order(self):
        items = list(range(40))
        assert list(prefetch_map(lambda x: x * x, items)) == [
            x * x for x in items
        ]

    def test_exception_surfaces_at_its_item(self):
        def fn(x):
            if x == 5:
                raise ValueError("boom at five")
            return x

        it = prefetch_map(fn, list(range(10)))
        got = [next(it) for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]
        with pytest.raises(ValueError, match="boom at five"):
            next(it)


class TestMeasureCompressor:
    def test_stage_timing_and_warmup(self):
        rng = np.random.default_rng(3)
        field = np.cumsum(rng.normal(size=(20, 30)), axis=1).astype(
            np.float32
        )
        codec = get_codec("sz14")
        mt, cf = measure_compressor(
            codec, field, 1e-3, "vr_rel", repeats=1, warmup=1,
            stage_timing=True,
        )
        assert cf.payload
        assert mt.compress_s > 0 and mt.decompress_s > 0
        assert "pqd" in mt.compress_stages
        assert "codes_entropy" in mt.compress_stages
        assert all(v >= 0 for v in mt.compress_stages.values())
        assert "pqd" in mt.decompress_stages

    def test_stage_timing_off_keeps_dicts_empty(self):
        rng = np.random.default_rng(4)
        field = rng.normal(size=(8, 24)).astype(np.float32)
        mt, _ = measure_compressor(get_codec("sz14"), field, 1e-2, "vr_rel")
        assert mt.compress_stages == {} and mt.decompress_stages == {}


class TestPQDSweepDispatch:
    """Regression shapes for the fused sweep's dispatch conditions."""

    # (2, 24) has single-point wavefronts but a non-contiguous 2D
    # interior — it must take the scatter path, not the 1D scalar chain.
    SHAPES = [(2, 24), (2, 2), (40,), (6, 7), (3, 4, 5)]

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("border", ["truncate", "verbatim", "padded"])
    def test_fast_matches_reference(self, shape, border):
        rng = np.random.default_rng(hash((shape, border)) % 2**32)
        field = (rng.normal(size=shape) * 5).astype(np.float32)
        with forced("reference"):
            ref = pqd_compress(field, 1e-2, Q, border=border)
        with forced("fast"):
            fast = pqd_compress(field, 1e-2, Q, border=border)
        assert np.array_equal(ref.codes, fast.codes)
        assert ref.decompressed.tobytes() == fast.decompressed.tobytes()
        kw = dict(
            precision=1e-2, quant=Q, dtype=np.dtype(np.float32),
            border=border,
        )
        with forced("reference"):
            dref = pqd_decompress(
                ref.codes, ref.border_values, ref.outlier_values, **kw
            )
        with forced("fast"):
            dfast = pqd_decompress(
                fast.codes, fast.border_values, fast.outlier_values, **kw
            )
        assert dref.tobytes() == dfast.tobytes()


class TestHuffmanLazyEscapes:
    def _deep_codec(self):
        # Geometric frequencies force code lengths past the fast window,
        # so decode hits the lazy escape resolver.
        rng = np.random.default_rng(19)
        syms = rng.geometric(0.05, 60_000).clip(0, 400).astype(np.int64)
        return HuffmanCodec(HuffmanTable.from_symbols(syms)), syms

    def test_deep_tree_decode_identical(self):
        codec, syms = self._deep_codec()
        payload, _ = codec.encode(syms)
        with forced("reference"):
            ref = codec.decode(payload, syms.size)
        with forced("fast"):
            fast = codec.decode(payload, syms.size)
        assert np.array_equal(ref, fast)

    def test_truncated_payload_same_error_class(self):
        codec, syms = self._deep_codec()
        payload, _ = codec.encode(syms)
        # One byte short: passes the host's min-length validation, so
        # the exhaustion must surface from the kernel walk itself.
        bad = payload[:-1]
        with forced("reference"):
            with pytest.raises(BitstreamError):
                codec.decode(bad, syms.size)
        with forced("fast"):
            with pytest.raises(BitstreamError):
                codec.decode(bad, syms.size)
