"""Unit tests for the rANS entropy subsystem (table, coder, RLE, stage).

The vectorized fast kernels are held bit-identical to their scalar
references by the differential property suite in
``tests/property/test_prop_rans.py``; this module covers the host-level
wire format, the validation taxonomy (:class:`repro.errors.RansError`),
the ``auto`` probe, and the ``codes_entropy`` stage integration —
including the backward-compat guarantee that Huffman payloads are
byte-identical to the pre-rANS stage and carry no ``entropy`` header
key.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.codec.registry import REGISTRY, get_codec
from repro.codec.spec import ENTROPY_BACKENDS
from repro.codec.stages import EntropyCodesStage, HuffmanGzipCodesStage
from repro.errors import ConfigError, ContainerError, RansError
from repro.io.container import Container
from repro.kernels import forced
from repro.lossless import GzipStage, LosslessMode
from repro.rans import (
    MAX_SYMBOLS,
    PROB_SCALE,
    RUN_MAX,
    RansTable,
    decode_tokens,
    encode_tokens,
    normalize_freqs,
    pick_lanes,
    probe_codes,
    rle_collapse,
    rle_expand,
    run_stats,
    should_rle,
)
from repro.streams import decompress_auto

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

LOSSLESS = GzipStage(mode=LosslessMode.BEST_SPEED)


def _table_for(tokens: np.ndarray) -> RansTable:
    values, counts = np.unique(tokens, return_counts=True)
    return RansTable.from_counts(values.astype(np.int64), counts.astype(np.int64))


class TestNormalizeFreqs:
    def test_sums_to_prob_scale(self):
        counts = np.array([1, 10, 100, 1000, 10000], dtype=np.int64)
        freqs = normalize_freqs(counts)
        assert int(freqs.sum()) == PROB_SCALE
        assert (freqs >= 1).all()

    def test_extreme_skew_keeps_rare_symbols_alive(self):
        counts = np.array([10**9] + [1] * 50, dtype=np.int64)
        freqs = normalize_freqs(counts)
        assert int(freqs.sum()) == PROB_SCALE
        assert (freqs[1:] == 1).all()

    def test_single_symbol_takes_whole_scale(self):
        freqs = normalize_freqs(np.array([7], dtype=np.int64))
        assert freqs.tolist() == [PROB_SCALE]

    def test_deterministic(self):
        counts = np.array([3, 3, 3, 5, 5], dtype=np.int64)
        assert (normalize_freqs(counts) == normalize_freqs(counts)).all()


class TestRansTable:
    def test_serialization_roundtrip(self):
        t = _table_for(np.array([0, 0, 1, 1, 1, 7, 512, 512]))
        t2 = RansTable.from_bytes(t.to_bytes())
        assert (t2.symbols == t.symbols).all()
        assert (t2.freqs == t.freqs).all()

    def test_rejects_unsorted_symbols(self):
        with pytest.raises(RansError):
            RansTable.from_counts(
                np.array([5, 3], dtype=np.int64), np.array([1, 1], dtype=np.int64)
            )

    def test_rejects_negative_symbols(self):
        with pytest.raises(RansError):
            RansTable.from_counts(
                np.array([-1, 3], dtype=np.int64), np.array([1, 1], dtype=np.int64)
            )

    def test_rejects_oversized_alphabet(self):
        values = np.arange(MAX_SYMBOLS + 1, dtype=np.int64)
        counts = np.ones(MAX_SYMBOLS + 1, dtype=np.int64)
        with pytest.raises(RansError):
            RansTable.from_counts(values, counts)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b"XXXX" + b[4:],  # bad magic
            lambda b: b[:-1],  # truncated
            lambda b: b + b"\x00",  # trailing garbage
        ],
    )
    def test_corrupt_blob_raises(self, mutate):
        blob = _table_for(np.array([0, 1, 1, 2, 2, 2])).to_bytes()
        with pytest.raises(RansError):
            RansTable.from_bytes(mutate(blob))

    def test_freq_sum_mismatch_raises(self):
        t = _table_for(np.array([0, 1, 1, 2]))
        blob = bytearray(t.to_bytes())
        blob[-2:] = (int.from_bytes(blob[-2:], "little") - 1).to_bytes(2, "little")
        with pytest.raises(RansError):
            RansTable.from_bytes(bytes(blob))


class TestCoder:
    def test_roundtrip_and_mode_byte_equality(self):
        rng = np.random.default_rng(0)
        tokens = rng.choice(
            [3, 7, 7, 7, 40, 41], size=5000, p=[0.1, 0.3, 0.3, 0.1, 0.1, 0.1]
        ).astype(np.int64)
        table = _table_for(tokens)
        with forced("reference"):
            blob_ref = encode_tokens(tokens, table)
            back_ref = decode_tokens(blob_ref, table, tokens.size)
        with forced("fast"):
            blob_fast = encode_tokens(tokens, table)
            back_fast = decode_tokens(blob_fast, table, tokens.size)
        assert blob_ref == blob_fast
        assert (back_ref == tokens).all()
        assert (back_fast == tokens).all()

    def test_empty_stream(self):
        table = _table_for(np.array([5]))
        blob = encode_tokens(np.empty(0, dtype=np.int64), table)
        assert decode_tokens(blob, table, 0).size == 0

    def test_out_of_alphabet_symbol_raises(self):
        table = _table_for(np.array([1, 2, 2]))
        with pytest.raises(RansError):
            encode_tokens(np.array([1, 99], dtype=np.int64), table)

    def test_truncated_blob_raises(self):
        tokens = np.arange(300, dtype=np.int64) % 5
        table = _table_for(tokens)
        blob = encode_tokens(tokens, table)
        with pytest.raises(RansError):
            decode_tokens(blob[: len(blob) // 2], table, tokens.size)

    def test_trailing_bytes_raise(self):
        tokens = np.arange(300, dtype=np.int64) % 5
        table = _table_for(tokens)
        blob = encode_tokens(tokens, table)
        with pytest.raises(RansError):
            decode_tokens(blob + b"\x00\x01", table, tokens.size)

    def test_bad_lane_state_raises(self):
        tokens = np.zeros(10, dtype=np.int64)
        table = _table_for(tokens)
        blob = bytearray(encode_tokens(tokens, table))
        blob[4:8] = (0).to_bytes(4, "little")  # state below the coder bound
        with pytest.raises(RansError):
            decode_tokens(bytes(blob), table, tokens.size)

    def test_lane_count_scales_with_stream(self):
        assert pick_lanes(0) == 1
        assert pick_lanes(1) == 1
        assert pick_lanes(64 * 8) == 8
        assert pick_lanes(10**9) == 2048  # capped


class TestRle:
    def test_collapse_expand_roundtrip(self):
        codes = np.array([5, 5, 5, 1, 5, 5, 2, 2, 5], dtype=np.int64)
        tokens, runs = rle_collapse(codes, 5)
        assert (rle_expand(tokens, runs, 5) == codes).all()

    def test_long_run_splits_at_255(self):
        codes = np.full(RUN_MAX * 2 + 10, 9, dtype=np.int64)
        tokens, runs = rle_collapse(codes, 9)
        assert runs.tolist() == [RUN_MAX, RUN_MAX, 10]
        assert (rle_expand(tokens, runs, 9) == codes).all()

    def test_run_stats_counts_chunks(self):
        codes = np.full(RUN_MAX + 1, 4, dtype=np.int64)
        n_r, k = run_stats(codes, 4)
        assert n_r == RUN_MAX + 1
        assert k == 2

    def test_should_rle_activation(self):
        assert should_rle(100, 80, 10)
        assert not should_rle(100, 30, 10)  # runs don't dominate
        assert not should_rle(100, 80, 50)  # runs too fragmented
        assert not should_rle(100, 0, 0)

    def test_expand_rejects_mismatched_runs(self):
        with pytest.raises(RansError):
            rle_expand(np.array([5, 5], dtype=np.int64), np.array([3], np.uint8), 5)

    def test_expand_rejects_zero_length_run(self):
        with pytest.raises(RansError):
            rle_expand(np.array([5], dtype=np.int64), np.array([0], np.uint8), 5)

    def test_mode_equality(self):
        rng = np.random.default_rng(1)
        codes = np.where(rng.random(4000) < 0.7, 11, rng.integers(0, 40, 4000))
        codes = codes.astype(np.int64)
        with forced("reference"):
            t_ref, r_ref = rle_collapse(codes, 11)
        with forced("fast"):
            t_fast, r_fast = rle_collapse(codes, 11)
        assert (t_ref == t_fast).all()
        assert (r_ref == r_fast).all()


class TestProbe:
    def test_run_dominated_stream_picks_rans(self):
        """Long radius runs + high-entropy literals: the rANS sweet spot.

        (On degenerate near-constant streams Huffman + gzip wins — the
        gzip pass crushes the repetitive bitstream — and the probe
        correctly keeps picking it there.)
        """
        rng = np.random.default_rng(2)
        parts = []
        for _ in range(400):
            parts.append(np.full(40, 512, dtype=np.int64))
            parts.append(rng.integers(300, 800, 40).astype(np.int64))
        codes = np.concatenate(parts)
        probe = probe_codes(codes)
        assert probe.use_rle
        assert probe.pick == "rans"
        assert probe.n_tokens < codes.size

    def test_oversized_alphabet_falls_back_to_huffman(self):
        codes = np.arange(MAX_SYMBOLS + 10, dtype=np.int64)
        probe = probe_codes(codes)
        assert not probe.rans_ok
        assert probe.pick == "huffman"

    def test_probe_is_the_rans_plan(self):
        codes = np.array([7, 7, 7, 7, 1, 2], dtype=np.int64)
        probe = probe_codes(codes)
        table = RansTable.from_counts(probe.values, probe.token_counts)
        assert int(table.freqs.sum()) == PROB_SCALE


class TestEntropyCodesStage:
    def test_unknown_backend_raises_config_error(self):
        with pytest.raises(ConfigError):
            EntropyCodesStage(LOSSLESS, backend="lz77")

    def test_backends_constant(self):
        assert ENTROPY_BACKENDS == ("huffman", "rans", "auto")

    @pytest.mark.parametrize("profile", ["sz14-rans", "wavesz-dp-rans"])
    def test_rans_profile_roundtrip(self, profile):
        rng = np.random.default_rng(3)
        f = np.cumsum(rng.standard_normal((40, 50)).astype(np.float32), axis=0) / 10
        comp = get_codec(profile)
        cf = comp.compress(f, 1e-3, "vr_rel")
        assert cf.meta["entropy"] == "rans"
        header = Container.from_bytes(cf.payload).header
        assert header["entropy"] == "rans"
        out = decompress_auto(cf.payload)
        assert np.abs(out.astype(np.float64) - f.astype(np.float64)).max() <= 1.0

    def test_huffman_payload_has_no_entropy_key(self):
        rng = np.random.default_rng(4)
        f = np.cumsum(rng.standard_normal((30, 30)).astype(np.float32), axis=0) / 10
        cf = get_codec("wavesz-dp").compress(f, 1e-3, "vr_rel")
        assert cf.meta["entropy"] == "huffman"
        assert "entropy" not in Container.from_bytes(cf.payload).header

    def test_auto_records_its_resolution(self):
        rng = np.random.default_rng(5)
        f = np.cumsum(rng.standard_normal((40, 40)).astype(np.float32), axis=0) / 10
        cf = get_codec("wavesz-dp-auto").compress(f, 1e-3, "vr_rel")
        assert cf.meta["entropy"] in ("huffman", "rans")
        out = decompress_auto(cf.payload)
        assert out.shape == f.shape

    def test_pinned_huffman_stage_decodes_rans_payloads(self):
        """Default decode factories read rANS streams: dispatch is by header."""
        rng = np.random.default_rng(6)
        f = np.cumsum(rng.standard_normal((30, 40)).astype(np.float32), axis=0) / 10
        payload = get_codec("wavesz-dp-rans").compress(f, 1e-3, "vr_rel").payload
        out = get_codec("wavesz-dp").decompress(payload)
        assert out.shape == f.shape

    def test_compat_subclass_is_pinned(self):
        stage = HuffmanGzipCodesStage(LOSSLESS)
        assert isinstance(stage, EntropyCodesStage)
        assert stage.backend == "huffman"

    def test_unknown_header_backend_raises(self):
        rng = np.random.default_rng(7)
        f = np.cumsum(rng.standard_normal((20, 20)).astype(np.float32), axis=0) / 10
        comp = get_codec("wavesz-dp-rans")
        payload = comp.compress(f, 1e-3, "vr_rel").payload
        c = Container.from_bytes(payload)
        c.header["entropy"] = "arith"
        with pytest.raises(ContainerError):
            comp.decompress(c.to_bytes())

    def test_token_count_mismatch_raises(self):
        """An RLE-free rANS header must declare exactly n tokens."""
        rng = np.random.default_rng(8)
        f = np.cumsum(rng.standard_normal((20, 20)).astype(np.float32), axis=0) / 10
        comp = get_codec("wavesz-dp-rans")
        payload = comp.compress(f, 1e-3, "vr_rel").payload
        c = Container.from_bytes(payload)
        c.header["n_codes"] = int(c.header["n_codes"]) + 1
        with pytest.raises(ContainerError):
            comp.decompress(c.to_bytes())


class TestRegistrySurfacing:
    def test_describe_lists_entropy_backends(self):
        rows = {e["name"]: e["entropy_backends"] for e in REGISTRY.describe()}
        assert rows["waveSZ-dp"] == ["huffman", "rans", "auto"]
        assert rows["SZ-1.4"] == ["huffman", "rans", "auto"]
        assert rows["waveSZ"] == []

    def test_profiles_resolve_to_canonical_names(self):
        assert REGISTRY.canonical("wavesz-dp-rans") == "waveSZ-dp"
        assert REGISTRY.canonical("sz14-rans") == "SZ-1.4"
        assert get_codec("wavesz-dp-rans").entropy == "rans"
        assert get_codec("wavesz-dp-auto").entropy == "auto"


class TestStoreSurfacing:
    def test_manifest_records_tile_entropy(self, tmp_path):
        from repro.store.store import ArrayStore, compress_field_tiles

        rng = np.random.default_rng(9)
        f = np.cumsum(rng.standard_normal((60, 64)).astype(np.float32), axis=0) / 10
        m, _ = compress_field_tiles(f, codec="wavesz-dp-rans", n_tiles=3)
        assert m["tile_entropy"] == ["rans", "rans", "rans"]
        m2, _ = compress_field_tiles(f, codec="wavesz", n_tiles=2)
        assert m2["tile_entropy"] == [None, None]

        store = ArrayStore(tmp_path / "store")
        store.put("demo", f, codec="wavesz-dp-rans", n_tiles=3)
        (row,) = store.ls()
        assert row["entropy"] == "rans"

    def test_summarize_entropy(self):
        from repro.store.store import summarize_entropy

        assert summarize_entropy(None) == "-"
        assert summarize_entropy([None, None]) == "-"
        assert summarize_entropy(["rans", "rans"]) == "rans"
        assert summarize_entropy(["huffman", "rans", None]) == "huffman+rans"


class TestHistogramKernel:
    def test_modes_agree(self):
        rng = np.random.default_rng(10)
        flat = rng.integers(0, 3000, size=5000).astype(np.int64)
        from repro.encoding.histogram import symbol_histogram

        with forced("reference"):
            v_ref, c_ref = symbol_histogram(flat)
        with forced("fast"):
            v_fast, c_fast = symbol_histogram(flat)
        assert (v_ref == v_fast).all()
        assert (c_ref == c_fast).all()

    def test_sparse_alphabet_agrees(self):
        flat = np.array([0, 1 << 23, 1 << 23, 5], dtype=np.int64)
        from repro.encoding.histogram import symbol_histogram

        with forced("reference"):
            ref = symbol_histogram(flat)
        with forced("fast"):
            fast = symbol_histogram(flat)
        assert (ref[0] == fast[0]).all()
        assert (ref[1] == fast[1]).all()

    def test_validation_unchanged(self):
        from repro.encoding.histogram import symbol_histogram

        with pytest.raises(TypeError):
            symbol_histogram(np.array([0.5]))
        with pytest.raises(ValueError):
            symbol_histogram(np.array([-1]))
        v, c = symbol_histogram(np.empty(0, dtype=np.int64))
        assert v.size == 0 and c.size == 0


class TestGoldenBackwardCompat:
    """Pre-rANS goldens must stay Huffman-coded with no ``entropy`` key."""

    @staticmethod
    def _load_goldens():
        spec = importlib.util.spec_from_file_location(
            "generate_goldens", DATA_DIR / "generate_goldens.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        manifest = json.loads((DATA_DIR / "manifest.json").read_text())
        return mod, manifest

    def test_pre_rans_goldens_carry_no_entropy_key(self):
        mod, manifest = self._load_goldens()
        pre_rans = [k for k in manifest if "rans" not in k and "auto" not in k]
        assert len(pre_rans) >= 10
        for key in pre_rans:
            payload = (DATA_DIR / f"golden_{key}.bin").read_bytes()
            assert "entropy" not in Container.from_bytes(payload).header, key

    def test_rans_goldens_decode_in_both_kernel_modes(self):
        mod, manifest = self._load_goldens()
        rans_keys = [k for k in manifest if k.endswith(("_rans", "_rans_3d", "_rans_1d"))]
        assert rans_keys
        for key in rans_keys:
            payload = (DATA_DIR / f"golden_{key}.bin").read_bytes()
            assert Container.from_bytes(payload).header["entropy"] == "rans"
            want = manifest[key]["output_sha256"]
            for mode in ("fast", "reference"):
                with forced(mode):
                    out = decompress_auto(payload)
                got = __import__("hashlib").sha256(
                    np.ascontiguousarray(out).tobytes()
                ).hexdigest()
                assert got == want, (key, mode)
