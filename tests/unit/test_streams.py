"""Unit tests for the shared stream serialization helpers."""

import numpy as np
import pytest

from repro.config import ErrorBoundMode, resolve_error_bound
from repro.errors import ContainerError
from repro.io.container import Container
from repro.streams import (
    bound_from_header,
    bound_to_header,
    decode_codes_huffman,
    decode_codes_raw,
    encode_codes_huffman,
    encode_codes_raw,
    values_from_bytes,
    values_to_bytes,
)


class TestCodeStreams:
    def test_huffman_roundtrip(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(32700, 32800, 5000)
        c = Container(header={})
        nbytes = encode_codes_huffman(c, codes)
        assert nbytes > 0
        assert (decode_codes_huffman(c) == codes).all()

    def test_raw16_roundtrip(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 1 << 16, 3000)
        c = Container(header={})
        n = encode_codes_raw(c, codes, 16)
        assert n == 6000
        assert (decode_codes_raw(c) == codes).all()

    def test_raw32_roundtrip(self):
        codes = np.array([0, 1 << 20, (1 << 32) - 1])
        c = Container(header={})
        encode_codes_raw(c, codes, 32)
        assert (decode_codes_raw(c) == codes).all()

    def test_raw_rejects_wide(self):
        with pytest.raises(ContainerError):
            encode_codes_raw(Container(header={}), np.array([1]), 64)


class TestValueStreams:
    def test_float32_roundtrip(self):
        vals = np.array([1.5, -2.25, 3e-7], dtype=np.float32)
        blob = values_to_bytes(vals)
        assert len(blob) == 12
        assert (values_from_bytes(blob, 3, np.float32) == vals).all()

    def test_float64_roundtrip(self):
        vals = np.array([1.5, -2.25], dtype=np.float64)
        assert (values_from_bytes(values_to_bytes(vals), 2, np.float64) == vals).all()


class TestBoundHeaders:
    def test_roundtrip_plain(self):
        b = resolve_error_bound(np.array([0.0, 1.0]), 1e-3, ErrorBoundMode.VR_REL)
        b2 = bound_from_header(bound_to_header(b))
        assert b2 == b

    def test_roundtrip_base2(self):
        b = resolve_error_bound(np.array([0.0, 1.0]), 1e-3, "vr_rel", base2=True)
        b2 = bound_from_header(bound_to_header(b))
        assert b2 == b
        assert b2.exponent == -10
