"""Unit tests for the gzip pipeline stage wrapper."""

import numpy as np
import pytest

from repro.lossless import GzipStage, LosslessBackend, LosslessMode


@pytest.fixture(scope="module")
def payload():
    r = np.random.default_rng(0)
    codes = (32768 + r.geometric(0.5, 30000) * r.choice([-1, 1], 30000)).astype("<u2")
    return codes.tobytes()


class TestGzipStage:
    @pytest.mark.parametrize("mode", list(LosslessMode))
    @pytest.mark.parametrize("backend", list(LosslessBackend))
    def test_roundtrip_all_configs(self, payload, mode, backend):
        st = GzipStage(mode=mode, backend=backend)
        assert st.decompress(st.compress(payload)) == payload

    def test_ours_and_zlib_within_factor(self, payload):
        ours = GzipStage(backend=LosslessBackend.OURS)
        zl = GzipStage(backend=LosslessBackend.ZLIB)
        r_ours = ours.ratio(payload)
        r_zlib = zl.ratio(payload)
        # Our from-scratch DEFLATE must be gzip-class: within 35 % of zlib.
        assert r_ours > 0.65 * r_zlib

    def test_best_compression_not_worse_on_structured(self):
        data = b"0123456789abcdef" * 2000
        fast = GzipStage(mode=LosslessMode.BEST_SPEED)
        best = GzipStage(mode=LosslessMode.BEST_COMPRESSION)
        assert best.ratio(data) >= fast.ratio(data) * 0.99

    def test_decompress_detects_backend_by_magic(self, payload):
        z = GzipStage(backend=LosslessBackend.ZLIB).compress(payload)
        o = GzipStage(backend=LosslessBackend.OURS).compress(payload)
        # Either stage object can decompress either blob.
        any_stage = GzipStage()
        assert any_stage.decompress(z) == payload
        assert any_stage.decompress(o) == payload

    def test_ratio_of_empty_is_one(self):
        assert GzipStage().ratio(b"") == 1.0

    def test_empty_roundtrip(self):
        st = GzipStage()
        assert st.decompress(st.compress(b"")) == b""
