"""Unit tests for the GhostSZ rowwise prediction engine."""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.errors import ShapeError
from repro.ghostsz.predictor import (
    TYPE_ORDER0,
    TYPE_ORDER1,
    TYPE_UNPRED,
    ghost_predict_open,
    ghost_row_decode,
    ghost_row_loop,
)

GQ = QuantizerConfig(bits=16, reserved_bits=2)
P = 1e-3


class TestGhostRowLoop:
    def test_roundtrip_bitexact(self, smooth2d):
        res = ghost_row_loop(smooth2d, P, GQ)
        dec = ghost_row_decode(
            res.types, res.codes, res.verbatim_values,
            precision=P, quant=GQ, dtype=np.float32,
        )
        assert (dec == res.decompressed).all()

    def test_error_bound(self, smooth2d):
        res = ghost_row_loop(smooth2d, P, GQ)
        assert np.abs(res.decompressed.astype(np.float64) - smooth2d).max() <= P

    def test_row_pivots_stored_exactly(self, smooth2d):
        res = ghost_row_loop(smooth2d, P, GQ)
        assert (res.decompressed[:, 0] == smooth2d[:, 0]).all()
        assert (res.codes[:, 0] == 0).all()

    def test_rows_are_independent(self, smooth2d):
        """Compressing a subset of rows gives identical per-row output —
        the decorrelation property of Figure 4."""
        res_all = ghost_row_loop(smooth2d, P, GQ)
        res_some = ghost_row_loop(smooth2d[5:10], P, GQ)
        assert (res_all.codes[5:10] == res_some.codes).all()
        assert (res_all.decompressed[5:10] == res_some.decompressed).all()

    def test_constant_rows_lock_exact(self):
        """Previous-value fit inside a constant region reproduces it
        exactly — the Figure 9 / Table 8 mechanism."""
        x = np.full((4, 200), 0.75, dtype=np.float32)
        res = ghost_row_loop(x, P, GQ)
        assert (res.decompressed == x).all()
        assert (res.types[:, 1:] == TYPE_ORDER0).all()

    def test_prediction_writeback_not_corrected(self):
        """The basis holds predictions, not decompressed values: on a ramp
        that the linear fit tracks exactly, the drift stays zero, but on a
        curved row the open-loop error keeps growing — unlike SZ-1.4."""
        x = (np.linspace(0, 1, 300)[None, :] ** 2).astype(np.float32)
        res = ghost_row_loop(x, 1e-4, GQ)
        errs = np.abs(res.pred_errors[0, 10:])
        # Prediction error exceeds the bound often (no feedback snap-back)
        # yet the *compression* error stays bounded via quantization.
        assert np.nanmax(errs) > 1e-4
        assert np.abs(res.decompressed.astype(np.float64) - x).max() <= 1e-4

    def test_unpredictable_resets_basis(self):
        x = np.zeros((1, 100), dtype=np.float32)
        x[0, 50:] = 1000.0  # jump far beyond the 14-bit quantizable range
        res = ghost_row_loop(x, 1e-5, GQ)
        assert res.codes[0, 50] == 0  # the jump is unpredictable
        assert res.decompressed[0, 50] == 1000.0  # stored verbatim
        assert np.abs(res.decompressed.astype(np.float64) - x).max() <= 1e-5

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            ghost_row_loop(np.zeros(5, dtype=np.float32), P, GQ)


class TestGhostOpenLoop:
    def test_errors_wider_than_closed_lorenzo(self, smooth2d):
        """Figure 1: CF-GhostSZ has the widest error distribution."""
        from repro.sz.lorenzo import lorenzo_predict

        lp_err = (smooth2d - lorenzo_predict(smooth2d.astype(np.float64)))[1:, 1:]
        ghost_err = np.concatenate([ghost_predict_open(r) for r in smooth2d])
        ghost_err = ghost_err[np.isfinite(ghost_err)]
        assert np.std(ghost_err) > 3 * np.std(lp_err)

    def test_first_point_nan(self):
        e = ghost_predict_open(np.arange(10.0))
        assert np.isnan(e[0])
        assert np.isfinite(e[1:]).all()
