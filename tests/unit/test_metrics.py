"""Unit tests for PSNR/RMSE, ratio accounting and error histograms."""

import math

import numpy as np
import pytest

from repro.errors import ErrorBoundViolation
from repro.metrics import (
    border_adjusted_ratio,
    error_histogram,
    max_abs_error,
    prediction_error_series,
    psnr,
    ratio,
    rmse,
    verify_error_bound,
)
from repro.types import CompressionStats


class TestErrorMetrics:
    def test_rmse_known_value(self):
        a = np.array([0.0, 0.0, 0.0, 0.0])
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(a, b) == pytest.approx(1.0)

    def test_psnr_paper_definition(self):
        """PSNR = 20 log10(range / RMSE) — §4.1."""
        orig = np.array([0.0, 1.0] * 100)
        dec = orig + 1e-3
        expected = 20 * math.log10(1.0 / 1e-3)
        assert psnr(orig, dec) == pytest.approx(expected)

    def test_psnr_infinite_for_exact(self):
        x = np.arange(10.0)
        assert psnr(x, x.copy()) == math.inf

    def test_uniform_quant_error_baseline(self):
        """Uniform error in [-p, p] on a unit-range field gives the
        ~64.8 dB floor seen throughout Table 8."""
        rng = np.random.default_rng(0)
        orig = rng.uniform(0, 1, 200000)
        dec = orig + rng.uniform(-1e-3, 1e-3, orig.size)
        base = 20 * math.log10(math.sqrt(3.0) / 1e-3)
        assert psnr(orig, dec) == pytest.approx(base, abs=0.3)

    def test_max_abs_error(self):
        a = np.zeros(5)
        b = np.array([0.0, -0.5, 0.2, 0.0, 0.1])
        assert max_abs_error(a, b) == 0.5

    def test_verify_error_bound(self):
        a = np.zeros(4)
        b = np.full(4, 1e-4)
        assert verify_error_bound(a, b, 1e-3)
        with pytest.raises(ErrorBoundViolation):
            verify_error_bound(a, b, 1e-5)
        assert not verify_error_bound(a, b, 1e-5, raise_on_fail=False)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))


def _stats(compressed=100, border=20, outlier=10):
    return CompressionStats(
        original_bytes=4000,
        compressed_bytes=compressed,
        encoded_code_bytes=compressed - border - outlier,
        outlier_bytes=outlier,
        border_bytes=border,
        n_points=1000,
        n_unpredictable=5,
        n_border=5,
    )


class TestRatioAccounting:
    def test_ratio(self):
        assert ratio(_stats()) == pytest.approx(40.0)

    def test_border_adjusted(self):
        s = _stats()
        assert border_adjusted_ratio(s, count_borders=True) == ratio(s)
        assert border_adjusted_ratio(s, count_borders=False) == pytest.approx(50.0)

    def test_bit_rate(self):
        assert _stats().bit_rate == pytest.approx(0.8)

    def test_unpredictable_fraction(self):
        assert _stats().unpredictable_fraction == pytest.approx(0.005)


class TestHistograms:
    def test_error_histogram_symmetric_bins(self):
        e = np.array([-1.0, 1.0, 0.0, 0.5, np.nan])
        centres, counts = error_histogram(e, bins=5)
        assert counts.sum() == 4  # NaN ignored
        assert centres[0] == pytest.approx(-centres[-1])

    def test_error_histogram_explicit_range(self):
        e = np.linspace(-2, 2, 100)
        centres, counts = error_histogram(e, bins=4, value_range=(-1, 1))
        assert counts.sum() in (50, 51)  # only |e| <= 1 (edge binning)

    def test_prediction_error_series_figure1_ordering(self, saturated2d):
        """Figure 1: LP-SZ-1.4 errors are the most concentrated and
        CF-GhostSZ the widest."""
        series = prediction_error_series(saturated2d.astype(np.float64))
        stds = {
            k: np.nanstd(v[np.isfinite(v)]) for k, v in series.items()
        }
        assert stds["LP-SZ-1.4"] < stds["CF-SZ-1.0"] * 2.5
        assert stds["CF-GhostSZ"] > stds["LP-SZ-1.4"]

    def test_prediction_error_series_keys(self, smooth2d):
        series = prediction_error_series(smooth2d)
        assert set(series) == {"LP-SZ-1.4", "CF-SZ-1.0", "CF-GhostSZ"}
        for v in series.values():
            assert v.size == smooth2d.size

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            prediction_error_series(np.zeros(5))
