"""Unit tests for gateway pieces that need no running shards.

Constructing a :class:`ShardGateway` is lazy — no sockets are opened
until a call goes out — so winner selection, result accounting, and the
construction-time error taxonomy are all testable offline.  The wire
behaviour (failover, read-repair, salvage) lives in
``tests/integration/test_shard_gateway.py``.
"""

import socket

import pytest

from repro.errors import ConfigError, TransportError
from repro.shard import GatewayGCResult, ShardGateway, ShardMap, ShardPutResult
from repro.shard.gateway import manifest_key


@pytest.fixture()
def offline_gateway():
    gw = ShardGateway(
        ShardMap.from_addresses("127.0.0.1:1,127.0.0.1:2,127.0.0.1:3",
                                replicas=2)
    )
    yield gw
    gw.close()


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestManifestWinner:
    def test_higher_version_wins(self, offline_gateway):
        old = {"name": "d", "version": 1, "tiles": ["a"]}
        new = {"name": "d", "version": 2, "tiles": ["b"]}
        assert offline_gateway._newer(new, old)
        assert not offline_gateway._newer(old, new)

    def test_version_tie_breaks_deterministically(self, offline_gateway):
        a = {"name": "d", "version": 3, "tiles": ["a"]}
        b = {"name": "d", "version": 3, "tiles": ["b"]}
        # exactly one direction is "newer": every client converges on
        # the same replica no matter the order replies arrive in
        assert offline_gateway._newer(a, b) != offline_gateway._newer(b, a)

    def test_missing_version_defaults_to_one(self, offline_gateway):
        assert offline_gateway._newer(
            {"version": 2, "tiles": []}, {"tiles": []}
        )

    def test_key_order_does_not_change_the_digest(self, offline_gateway):
        a = {"version": 1, "tiles": ["x"], "name": "d"}
        b = {"name": "d", "tiles": ["x"], "version": 1}
        assert (offline_gateway._canonical_digest(a)
                == offline_gateway._canonical_digest(b))


class TestResultShapes:
    def _result(self, **over):
        base = dict(
            name="d.ts", shape=(8, 8), dtype="float32", codec="wavesz",
            eb_abs=1e-3, tile_digests=("a", "b"), version=1, replicas=2,
            new_objects=2, dedup_objects=0, stored_bytes=400,
            dedup_bytes=0, compressed_bytes=200, original_bytes=1024,
            degraded=False,
        )
        base.update(over)
        return ShardPutResult(**base)

    def test_ratio_counts_one_logical_copy(self):
        r = self._result()
        # replication doubles stored_bytes but must not halve the ratio
        assert r.ratio == 1024 / 200
        assert r.n_tiles == 2

    def test_gc_result_is_cli_shape_compatible(self):
        r = GatewayGCResult(n_removed=1, reclaimed_bytes=10, kept=3)
        # the CLI prints result.tmp_removed for local GCResult too
        assert r.tmp_removed == ()


class TestFromAny:
    def test_no_addresses_rejected(self):
        with pytest.raises(ConfigError, match="no shard addresses"):
            ShardGateway.from_any("")

    def test_multi_address_skips_probe(self):
        gw = ShardGateway.from_any(
            "127.0.0.1:8301,127.0.0.1:8302", replicas=2
        )
        try:
            assert gw.map.shard_ids == ("127.0.0.1:8301", "127.0.0.1:8302")
            assert gw.map.replicas == 2
        finally:
            gw.close()

    def test_unreachable_single_address_is_transport_error(self):
        port = _free_port()
        with pytest.raises(TransportError, match="shard map"):
            ShardGateway.from_any(f"127.0.0.1:{port}")


class TestPlacementKeys:
    def test_manifest_keys_never_collide_with_digests(self):
        # tile keys are hex digests; the "m:" prefix keeps the two key
        # families disjoint on the ring
        assert manifest_key("abc.ts").startswith("m:")
        assert ":" not in "0123456789abcdef"
