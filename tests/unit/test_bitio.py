"""Unit tests for the MSB-first bit IO layer."""

import numpy as np
import pytest

from repro.encoding.bitio import BitReader, BitWriter, pack_codes
from repro.errors import BitstreamError


class TestBitWriter:
    def test_single_bits(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 1, 0):
            w.write(bit, 1)
        assert w.getvalue() == bytes([0b10110010])

    def test_msb_first_multibit(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b10010, 5)
        assert w.getvalue() == bytes([0b10110010])

    def test_partial_byte_padded_with_zeros(self):
        w = BitWriter()
        w.write(0b11, 2)
        assert w.getvalue() == bytes([0b11000000])

    def test_len_counts_bits(self):
        w = BitWriter()
        w.write(0, 3)
        assert len(w) == 3
        w.write(0, 13)
        assert len(w) == 16

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert len(w) == 0

    def test_value_overflow_rejected(self):
        w = BitWriter()
        with pytest.raises(BitstreamError):
            w.write(4, 2)
        with pytest.raises(BitstreamError):
            w.write(-1, 2)

    def test_write_bytes_requires_alignment(self):
        w = BitWriter()
        w.write(1, 1)
        with pytest.raises(BitstreamError):
            w.write_bytes(b"ab")
        w.align()
        w.write_bytes(b"ab")
        assert w.getvalue()[1:] == b"ab"

    def test_long_values(self):
        w = BitWriter()
        w.write((1 << 48) - 3, 48)
        r = BitReader(w.getvalue())
        assert r.read(48) == (1 << 48) - 3


class TestBitReader:
    def test_read_roundtrip(self):
        w = BitWriter()
        vals = [(5, 3), (1, 1), (300, 9), (0, 4), (65535, 16)]
        for v, n in vals:
            w.write(v, n)
        r = BitReader(w.getvalue())
        for v, n in vals:
            assert r.read(n) == v

    def test_exhaustion_raises(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(BitstreamError):
            r.read(1)

    def test_peek_does_not_consume(self):
        r = BitReader(bytes([0b10110010]))
        assert r.peek(3) == 0b101
        assert r.peek(3) == 0b101
        assert r.read(3) == 0b101

    def test_peek_past_end_zero_pads(self):
        r = BitReader(bytes([0b10000000]))
        r.read(7)
        assert r.peek(4) == 0b0000  # 1 real bit (0) + 3 padding

    def test_skip_after_peek(self):
        r = BitReader(bytes([0b10110010]))
        r.peek(8)
        r.skip(3)
        assert r.read(5) == 0b10010

    def test_bits_accounting(self):
        r = BitReader(b"\x00\x00\x00")
        assert r.bits_remaining == 24
        r.read(5)
        assert r.bits_consumed == 5
        assert r.bits_remaining == 19

    def test_read_bytes_aligned(self):
        r = BitReader(b"abcd")
        r.read(8)
        assert r.read_bytes(2) == b"bc"

    def test_read_bytes_unaligned_raises(self):
        r = BitReader(b"abcd")
        r.read(3)
        with pytest.raises(BitstreamError):
            r.read_bytes(1)

    def test_align_discards_to_boundary(self):
        r = BitReader(bytes([0b10110010, 0xAB]))
        r.read(3)
        r.align()
        assert r.read(8) == 0xAB

    def test_read_more_than_57_bits_split(self):
        w = BitWriter()
        w.write(123, 30)
        w.write(456, 34)
        r = BitReader(w.getvalue())
        assert r.read(64) == (123 << 34) | 456


class TestPackCodes:
    def test_matches_scalar_writer(self):
        rng = np.random.default_rng(1)
        lengths = rng.integers(1, 24, size=500)
        codes = np.array([rng.integers(0, 1 << l) for l in lengths], dtype=np.uint64)
        payload, nbits = pack_codes(codes, lengths)
        w = BitWriter()
        for c, l in zip(codes, lengths):
            w.write(int(c), int(l))
        assert payload == w.getvalue()
        assert nbits == int(lengths.sum())

    def test_empty(self):
        payload, nbits = pack_codes(np.empty(0, np.uint64), np.empty(0, np.int64))
        assert payload == b"" and nbits == 0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(BitstreamError):
            pack_codes(np.zeros(2, np.uint64), np.ones(3, np.int64))

    def test_rejects_zero_length_codes(self):
        with pytest.raises(BitstreamError):
            pack_codes(np.zeros(2, np.uint64), np.array([1, 0]))

    def test_rejects_over_wide_codes(self):
        with pytest.raises(BitstreamError):
            pack_codes(np.zeros(1, np.uint64), np.array([58]))

    def test_bit_exact_known_vector(self):
        payload, nbits = pack_codes(
            np.array([0b1, 0b01, 0b111], dtype=np.uint64), np.array([1, 2, 3])
        )
        assert nbits == 6
        assert payload == bytes([0b10111100])
