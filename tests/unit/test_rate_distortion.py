"""Unit tests for the rate-distortion sweep utilities."""

import numpy as np
import pytest

from repro import SZ14Compressor, WaveSZCompressor
from repro.errors import ConfigError
from repro.metrics import RDPoint, bd_rate_like, rd_sweep


@pytest.fixture(scope="module")
def curve_field(smooth2d):
    return smooth2d


class TestRDSweep:
    def test_monotone_tradeoff(self, curve_field):
        pts = rd_sweep(SZ14Compressor(), curve_field, [1e-1, 1e-2, 1e-3, 1e-4])
        rates = [p.bit_rate for p in pts]
        psnrs = [p.psnr_db for p in pts]
        assert all(b > a for a, b in zip(rates, rates[1:]))  # tighter -> more bits
        assert all(b > a for a, b in zip(psnrs, psnrs[1:]))  # tighter -> better

    def test_psnr_slope_about_20db_per_decade(self, curve_field):
        """The classic SZ rate-distortion slope (uniform-error regime)."""
        pts = rd_sweep(SZ14Compressor(), curve_field, [1e-2, 1e-3])
        assert pts[1].psnr_db - pts[0].psnr_db == pytest.approx(20.0, abs=4.0)

    def test_points_record_inputs(self, curve_field):
        pts = rd_sweep(SZ14Compressor(), curve_field, [1e-3])
        assert pts[0].eb == 1e-3
        assert pts[0].ratio == pytest.approx(32.0 / pts[0].bit_rate)

    def test_empty_bounds_rejected(self, curve_field):
        with pytest.raises(ConfigError):
            rd_sweep(SZ14Compressor(), curve_field, [])


class TestBDRate:
    def _mk(self, rates, psnrs):
        return [RDPoint(eb=0, bit_rate=r, psnr_db=q, ratio=32 / r)
                for r, q in zip(rates, psnrs)]

    def test_identical_curves_zero(self):
        a = self._mk([1, 2, 4], [60, 70, 80])
        assert bd_rate_like(a, a) == pytest.approx(0.0)

    def test_half_rate_candidate_minus_50(self):
        ref = self._mk([2, 4, 8], [60, 70, 80])
        cand = self._mk([1, 2, 4], [60, 70, 80])
        assert bd_rate_like(ref, cand) == pytest.approx(-50.0)

    def test_sign_convention_on_real_codecs(self, curve_field):
        """waveSZ H*G* vs SZ-1.4: nearby curves, |BD| modest."""
        bounds = [1e-2, 1e-3, 1e-4]
        ref = rd_sweep(SZ14Compressor(), curve_field, bounds)
        cand = rd_sweep(WaveSZCompressor(use_huffman=True), curve_field, bounds)
        delta = bd_rate_like(ref, cand)
        assert -60 < delta < 60

    def test_disjoint_curves_rejected(self):
        a = self._mk([1, 2], [40, 50])
        b = self._mk([1, 2], [80, 90])
        with pytest.raises(ConfigError):
            bd_rate_like(a, b)
