"""Unit tests for the Lorenzo predictors."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sz.lorenzo import lorenzo_predict, neighbor_offsets


class TestNeighborOffsets:
    def test_2d_stencil(self):
        offsets, signs = neighbor_offsets((5, 7))
        assert list(offsets) == [1, 7, 8]  # W, N, NW
        assert list(signs) == [1.0, 1.0, -1.0]

    def test_3d_stencil_signs_follow_manhattan_parity(self):
        offsets, signs = neighbor_offsets((3, 4, 5))
        # L1=1 neighbours positive, L1=2 negative, L1=3 positive (Fig. 2).
        stencil = dict(zip(offsets.tolist(), signs.tolist()))
        assert stencil == {1: 1.0, 5: 1.0, 20: 1.0,
                           6: -1.0, 21: -1.0, 25: -1.0, 26: 1.0}

    def test_1d(self):
        offsets, signs = neighbor_offsets((9,))
        assert list(offsets) == [1] and list(signs) == [1.0]

    def test_rejects_4d(self):
        with pytest.raises(ShapeError):
            neighbor_offsets((2, 2, 2, 2))


class TestLorenzoPredict:
    def test_exact_on_planes_2d(self):
        """The 1-layer 2D Lorenzo predictor reproduces any plane exactly."""
        i, j = np.mgrid[0:20, 0:30]
        data = 3.0 + 2.0 * i - 1.5 * j
        pred = lorenzo_predict(data)
        err = (data - pred)[1:, 1:]
        assert np.abs(err).max() < 1e-9

    def test_residual_is_mixed_second_difference(self):
        """On a bilinear surface the residual equals the ij coefficient."""
        i, j = np.mgrid[0:20, 0:30]
        data = 3.0 + 2.0 * i - 1.5 * j + 0.25 * i * j
        pred = lorenzo_predict(data)
        err = (data - pred)[1:, 1:]
        assert np.allclose(err, 0.25)

    def test_exact_on_trilinear_3d(self):
        i, j, k = np.mgrid[0:8, 0:9, 0:10]
        data = (1.0 + i) * (2.0 + j) * (0.5 + k)
        pred = lorenzo_predict(data)
        err = (data - pred)[1:, 1:, 1:]
        # Residual of the 3D stencil is the third mixed difference of ijk:
        # for a product form it is constant 1*1*1.
        assert np.allclose(err, 1.0)

    def test_1d_is_previous_value(self):
        data = np.array([5.0, 7.0, 2.0])
        pred = lorenzo_predict(data)
        assert np.isnan(pred[0])
        assert pred[1] == 5.0 and pred[2] == 7.0

    def test_borders_are_nan(self):
        data = np.ones((4, 5))
        pred = lorenzo_predict(data)
        assert np.isnan(pred[0, :]).all()
        assert np.isnan(pred[:, 0]).all()
        assert not np.isnan(pred[1:, 1:]).any()

    def test_matches_explicit_formula_2d(self):
        rng = np.random.default_rng(0)
        d = rng.normal(size=(6, 7))
        pred = lorenzo_predict(d)
        for x in range(1, 6):
            for y in range(1, 7):
                expected = d[x - 1, y] + d[x, y - 1] - d[x - 1, y - 1]
                assert pred[x, y] == pytest.approx(expected)

    def test_matches_explicit_formula_3d(self):
        rng = np.random.default_rng(1)
        d = rng.normal(size=(4, 5, 6))
        pred = lorenzo_predict(d)
        x, y, z = 2, 3, 4
        expected = (
            d[x - 1, y, z] + d[x, y - 1, z] + d[x, y, z - 1]
            - d[x - 1, y - 1, z] - d[x - 1, y, z - 1] - d[x, y - 1, z - 1]
            + d[x - 1, y - 1, z - 1]
        )
        assert pred[x, y, z] == pytest.approx(expected)

    def test_smoother_field_smaller_residual(self, smooth2d, rough2d):
        """Lorenzo exploits smoothness: residuals shrink with correlation."""
        def resid(d):
            p = lorenzo_predict(d.astype(np.float64))
            e = (d - p)[1:, 1:]
            return np.std(e) / (d.max() - d.min())

        assert resid(smooth2d) < resid(rough2d) / 5

    def test_rejects_4d(self):
        with pytest.raises(ShapeError):
            lorenzo_predict(np.zeros((2, 2, 2, 2)))
