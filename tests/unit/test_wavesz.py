"""Unit tests for the waveSZ end-to-end compressor."""

import numpy as np
import pytest

from repro.core import WaveSZCompressor
from repro.errors import ContainerError, ShapeError
from repro.io.container import Container
from repro.sz import SZ14Compressor


class TestRoundtrip:
    @pytest.mark.parametrize("huff", [False, True])
    def test_2d(self, smooth2d, huff):
        c = WaveSZCompressor(use_huffman=huff)
        cf = c.compress(smooth2d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert out.shape == smooth2d.shape and out.dtype == smooth2d.dtype
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute

    def test_3d_2d_interpretation(self, smooth3d):
        c = WaveSZCompressor(use_huffman=True)
        cf = c.compress(smooth3d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert out.shape == smooth3d.shape
        assert np.abs(out.astype(np.float64) - smooth3d).max() <= cf.bound.absolute
        # Λ comes from the short first dimension (artifact appendix).
        assert cf.meta["lambda"] == smooth3d.shape[0] - 1

    def test_saturated(self, saturated2d):
        c = WaveSZCompressor()
        cf = c.compress(saturated2d, 1e-3)
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - saturated2d).max() <= cf.bound.absolute

    def test_decompress_from_bytes(self, smooth2d):
        c = WaveSZCompressor()
        cf = c.compress(smooth2d, 1e-3)
        assert (c.decompress(cf.payload) == c.decompress(cf)).all()


class TestBase2Semantics:
    def test_bound_tightened_to_power_of_two(self, smooth2d):
        cf = WaveSZCompressor().compress(smooth2d, 1e-3, "vr_rel")
        assert cf.bound.base2
        assert cf.bound.absolute == 2.0 ** cf.bound.exponent
        # never looser than the user's request
        vr = float(smooth2d.max() - smooth2d.min())
        assert cf.bound.absolute <= 1e-3 * vr

    def test_base2_disabled_keeps_decimal_bound(self, smooth2d):
        cf = WaveSZCompressor(base2=False).compress(smooth2d, 1e-3, "vr_rel")
        assert not cf.bound.base2

    def test_base2_errors_tighter_on_average(self, smooth2d):
        """The tightened bound can only reduce distortion."""
        out2 = WaveSZCompressor().decompress(
            WaveSZCompressor().compress(smooth2d, 1e-3)
        )
        vr = float(smooth2d.max() - smooth2d.min())
        assert np.abs(out2.astype(np.float64) - smooth2d).max() <= 2.0**-10 * vr * 1.01


class TestWaveSZvsSZ14:
    def test_same_codes_as_sz14_same_config(self, smooth2d):
        """waveSZ == SZ-1.4 algorithmically: with the same resolved bound
        and border policy, the quantization codes are bit-identical (§3.1:
        the wavefront layout never touches values, only order)."""
        from repro.config import QuantizerConfig
        from repro.sz.pqd import pqd_compress

        p = 2.0**-10
        wave = pqd_compress(smooth2d, p, QuantizerConfig(), border="verbatim")
        cf = WaveSZCompressor().compress(smooth2d, p, "abs")
        codes_back = WaveSZCompressor().decompress(cf)  # full path works
        # Compare the wave container's code grid with the engine's.
        h = Container.from_bytes(cf.payload).header
        assert h["bound"]["absolute"] == p
        assert (codes_back == wave.decompressed).all()

    def test_borders_verbatim_exact(self, smooth2d):
        out = WaveSZCompressor().decompress(
            WaveSZCompressor().compress(smooth2d, 1e-3)
        )
        assert (out[0, :] == smooth2d[0, :]).all()
        assert (out[:, 0] == smooth2d[:, 0]).all()

    def test_huffman_improves_ratio(self, smooth2d):
        """Table 7: H*G* recovers ratio over G*."""
        g = WaveSZCompressor(use_huffman=False).compress(smooth2d, 1e-3)
        h = WaveSZCompressor(use_huffman=True).compress(smooth2d, 1e-3)
        assert h.stats.ratio > g.stats.ratio

    def test_huffman_close_to_sz14(self, smooth2d):
        """Table 7: waveSZ H*G* lands near SZ-1.4."""
        h = WaveSZCompressor(use_huffman=True).compress(smooth2d, 1e-3)
        s = SZ14Compressor().compress(smooth2d, 1e-3)
        assert h.stats.ratio > 0.6 * s.stats.ratio

    def test_borders_counted_as_unpredictable(self, smooth2d):
        cf = WaveSZCompressor().compress(smooth2d, 1e-3)
        d0, d1 = smooth2d.shape
        assert cf.stats.n_border == d0 + d1 - 1
        assert cf.stats.n_unpredictable >= cf.stats.n_border


class TestValidation:
    def test_rejects_1d(self, ramp1d):
        with pytest.raises(ShapeError):
            WaveSZCompressor().compress(ramp1d, 1e-3)

    def test_rejects_wrong_orientation(self):
        tall = np.zeros((100, 10), dtype=np.float32)
        with pytest.raises(ShapeError):
            WaveSZCompressor().compress(tall, 1e-3)

    def test_wrong_variant_rejected(self, smooth2d):
        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        with pytest.raises(ContainerError):
            WaveSZCompressor().decompress(cf)
