"""Unit tests for the deterministic fault-injection subsystem."""

import pytest

from repro.errors import FaultInjectionError, ReproError
from repro.faults import FaultInjector, FaultKind, FaultSpec, inject
from repro.io import Container


@pytest.fixture(scope="module")
def payload() -> bytes:
    c = Container(header={"variant": "t", "shape": [4], "n": 2})
    c.add("codes", bytes(range(48)))
    c.add("outliers", b"\x01\x02\x03\x04")
    c.add("table", b"\xaa" * 16)
    return c.to_bytes()


class TestByteLevelFaults:
    def test_bitflip_changes_exactly_one_bit(self, payload):
        out = inject(payload, FaultSpec(FaultKind.BITFLIP, offset=10, bit=3))
        assert len(out) == len(payload)
        diff = [(a ^ b) for a, b in zip(payload, out)]
        assert sum(bin(d).count("1") for d in diff) == 1
        assert diff[10] == 1 << 3

    def test_bitflip_out_of_range(self, payload):
        with pytest.raises(FaultInjectionError):
            inject(payload, FaultSpec(FaultKind.BITFLIP, offset=len(payload)))
        with pytest.raises(FaultInjectionError):
            inject(payload, FaultSpec(FaultKind.BITFLIP, offset=0, bit=8))

    def test_truncate(self, payload):
        out = inject(payload, FaultSpec(FaultKind.TRUNCATE, offset=7))
        assert out == payload[:7]

    def test_garbage_preserves_length_and_differs(self, payload):
        spec = FaultSpec(FaultKind.GARBAGE, offset=5, length=16, seed=9)
        out = inject(payload, spec)
        assert len(out) == len(payload)
        assert out != payload
        assert out[:5] == payload[:5]
        assert out[21:] == payload[21:]

    def test_splice_inserts(self, payload):
        spec = FaultSpec(FaultKind.SPLICE, offset=12, length=5, seed=1)
        out = inject(payload, spec)
        assert len(out) == len(payload) + 5
        assert out[:12] == payload[:12]
        assert out[17:] == payload[12:]

    def test_empty_payload_rejected(self):
        with pytest.raises(FaultInjectionError):
            inject(b"", FaultSpec(FaultKind.BITFLIP))

    def test_same_spec_same_bytes(self, payload):
        spec = FaultSpec(FaultKind.GARBAGE, offset=3, length=20, seed=42)
        assert inject(payload, spec) == inject(payload, spec)


class TestStructuralFaults:
    """Structural faults re-serialize with valid CRCs: the damaged stream
    parses cleanly, pushing the fault past the checksum layer."""

    def test_drop_section_reserializes_validly(self, payload):
        out = inject(payload, FaultSpec(FaultKind.DROP_SECTION, index=0))
        c = Container.from_bytes(out)  # must NOT raise: checksums are valid
        assert len(c.sections) == 2

    def test_swap_sections(self, payload):
        out = inject(
            payload, FaultSpec(FaultKind.SWAP_SECTIONS, index=0, index2=1)
        )
        c = Container.from_bytes(out)
        assert c.get("codes") == b"\x01\x02\x03\x04"
        assert c.get("outliers") == bytes(range(48))

    def test_duplicate_section_caught_downstream(self, payload):
        out = inject(payload, FaultSpec(FaultKind.DUPLICATE_SECTION, index=1))
        # duplicate names are themselves a framing violation — the parser
        # must reject the stream, but only ever with a ReproError
        with pytest.raises(ReproError):
            Container.from_bytes(out)

    def test_header_mutate_parses_with_wrong_header(self, payload):
        out = inject(
            payload, FaultSpec(FaultKind.HEADER_MUTATE, key="n", seed=2)
        )
        c = Container.from_bytes(out)
        assert c.header != Container.from_bytes(payload).header

    def test_structural_fault_needs_parseable_container(self):
        with pytest.raises(FaultInjectionError):
            inject(b"not a container", FaultSpec(FaultKind.DROP_SECTION))


class TestFaultInjector:
    def test_sweep_is_deterministic(self, payload):
        a = list(FaultInjector(5).sweep(payload, 30))
        b = list(FaultInjector(5).sweep(payload, 30))
        assert a == b

    def test_different_seeds_differ(self, payload):
        a = list(FaultInjector(1).sweep(payload, 10))
        b = list(FaultInjector(2).sweep(payload, 10))
        assert a != b

    def test_sweep_yields_n_damaged_payloads(self, payload):
        pairs = list(FaultInjector(0).sweep(payload, 50))
        assert len(pairs) == 50
        assert all(damaged != payload for _, damaged in pairs)

    def test_sweep_covers_many_kinds(self, payload):
        kinds = {s.kind for s, _ in FaultInjector(0).sweep(payload, 120)}
        assert len(kinds) >= 6

    def test_fixture(self, fault_injector, payload):
        assert list(fault_injector.sweep(payload, 5))
