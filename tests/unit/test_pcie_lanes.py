"""Unit tests for PCIe link caps and multi-lane scaling (Figure 8)."""

import pytest

from repro.errors import ModelError
from repro.fpga.device import FPGADevice, ZC706
from repro.fpga.lanes import max_lanes_by_bram, scale_lanes
from repro.fpga.pcie import PCIE_GEN2_X4, PCIE_GEN3_X4, PCIeLink


class TestPCIe:
    def test_gen2_x4_is_2GBps(self):
        """The 'peak perf for ZC706' line of Figure 8."""
        assert PCIE_GEN2_X4.mb_per_s == pytest.approx(2000.0)

    def test_gen3_x4_is_3_94GBps(self):
        assert PCIE_GEN3_X4.mb_per_s == pytest.approx(3938.46, rel=1e-3)

    def test_encoding_overheads(self):
        # 8b/10b costs 20 %, 128b/130b costs ~1.5 %.
        assert PCIeLink(2, 1).gbit_per_lane == pytest.approx(4.0)
        assert PCIeLink(3, 1).gbit_per_lane == pytest.approx(8 * 128 / 130)

    def test_validation(self):
        with pytest.raises(ModelError):
            PCIeLink(9, 4)
        with pytest.raises(ModelError):
            PCIeLink(2, 3)


class TestLaneScaling:
    def test_linear_until_pcie(self):
        s1 = scale_lanes("waveSZ", 838.0, 1)
        s2 = scale_lanes("waveSZ", 838.0, 2)
        assert s2.mb_per_s == pytest.approx(2 * s1.mb_per_s)
        assert s1.limited_by == "lanes"

    def test_pcie_cap_reached(self):
        s = scale_lanes("waveSZ", 995.0, 3)
        assert s.mb_per_s == pytest.approx(PCIE_GEN2_X4.mb_per_s)
        assert s.limited_by == "pcie"

    def test_gen3_raises_the_roof(self):
        g2 = scale_lanes("waveSZ", 995.0, 4, pcie=PCIE_GEN2_X4)
        g3 = scale_lanes("waveSZ", 995.0, 4, pcie=PCIE_GEN3_X4)
        assert g3.mb_per_s > g2.mb_per_s

    def test_bram_limits_lane_count(self):
        """gzip's 303 BRAM per lane bounds ZC706 deployments at 3 lanes."""
        assert max_lanes_by_bram(3) == 3
        tiny = FPGADevice("tiny", bram_18k=340, dsp48e=10, ff=10**5, lut=10**5)
        assert max_lanes_by_bram(3, tiny) == 0

    def test_bram_limit_reported(self):
        big_link = PCIeLink(4, 16)  # remove the PCIe cap
        s = scale_lanes("waveSZ", 100.0, 32, pcie=big_link)
        assert s.limited_by == "bram"
        assert s.mb_per_s == pytest.approx(300.0)  # 3 lanes worth

    def test_validation(self):
        with pytest.raises(ModelError):
            scale_lanes("x", 100.0, 0)
        with pytest.raises(ModelError):
            scale_lanes("x", -1.0, 1)
