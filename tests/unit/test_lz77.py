"""Unit tests for the hash-chain LZ77 matcher."""

import numpy as np
import pytest

from repro.errors import LosslessError
from repro.lossless.lz77 import LZ77Encoder, TokenStream, MAX_MATCH, MIN_MATCH


def roundtrip(data: bytes, enc: LZ77Encoder | None = None) -> TokenStream:
    enc = enc or LZ77Encoder()
    ts = enc.parse(data)
    assert ts.reconstruct() == data
    return ts


class TestParse:
    def test_empty(self):
        ts = LZ77Encoder().parse(b"")
        assert ts.n_tokens == 0
        assert ts.reconstruct() == b""

    def test_tiny_inputs_all_literals(self):
        for data in (b"a", b"ab", b"abc"):
            ts = roundtrip(data)
            assert (ts.kinds == 0).all()

    def test_repetition_found(self):
        data = b"abcabcabcabcabc"
        ts = roundtrip(data)
        assert (ts.kinds == 1).any(), "repeating input must produce matches"

    def test_overlapping_match_rle(self):
        # Run-length via dist < len (dist=1 copy).
        data = b"x" + b"a" * 100
        ts = roundtrip(data)
        matches = ts.kinds == 1
        assert matches.any()
        assert (ts.dists[matches] == 1).any()

    def test_incompressible_random(self):
        r = np.random.default_rng(0)
        data = r.integers(0, 256, 2000, dtype=np.uint8).tobytes()
        roundtrip(data)

    def test_match_length_capped(self):
        data = b"ab" + b"c" * 5000
        ts = roundtrip(data)
        assert ts.values[ts.kinds == 1].max() <= MAX_MATCH

    def test_min_match_respected(self):
        ts = roundtrip(b"abxaby")  # "ab" repeats but is below MIN_MATCH
        assert (ts.values[ts.kinds == 1] >= MIN_MATCH).all()

    def test_window_limits_distance(self):
        enc = LZ77Encoder(window=64)
        data = b"HELLO-WORLD!" + bytes(range(200)) + b"HELLO-WORLD!"
        ts = enc.parse(data)
        assert ts.reconstruct() == data
        m = ts.kinds == 1
        if m.any():
            assert (ts.dists[m] <= 64).all()

    def test_effort_levels_both_roundtrip(self):
        data = (b"the quick brown fox " * 50) + bytes(range(256))
        fast = LZ77Encoder.best_speed().parse(data)
        best = LZ77Encoder.best_compression().parse(data)
        assert fast.reconstruct() == data
        assert best.reconstruct() == data

    def test_best_compression_at_least_as_good(self):
        r = np.random.default_rng(1)
        # Structured data with long-range repeats.
        chunk = r.integers(0, 16, 300, dtype=np.uint8).tobytes()
        data = chunk * 10
        fast = LZ77Encoder.best_speed().parse(data)
        best = LZ77Encoder.best_compression().parse(data)
        assert best.n_tokens <= fast.n_tokens

    def test_bad_params_rejected(self):
        with pytest.raises(LosslessError):
            LZ77Encoder(window=0)
        with pytest.raises(LosslessError):
            LZ77Encoder(window=1 << 20)
        with pytest.raises(LosslessError):
            LZ77Encoder(max_chain=0)


class TestTokenStream:
    def test_expanded_size(self):
        ts = LZ77Encoder().parse(b"abcabcabc")
        assert ts.expanded_size() == 9

    def test_invalid_distance_rejected_on_reconstruct(self):
        ts = TokenStream(
            kinds=np.array([0, 1], dtype=np.uint8),
            values=np.array([65, 5], dtype=np.int32),
            dists=np.array([0, 99], dtype=np.int32),  # distance beyond output
        )
        with pytest.raises(LosslessError):
            ts.reconstruct()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(LosslessError):
            TokenStream(
                kinds=np.zeros(2, np.uint8),
                values=np.zeros(3, np.int32),
                dists=np.zeros(2, np.int32),
            )
