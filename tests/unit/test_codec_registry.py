"""Unit tests for the central codec registry and pipeline-spec validation."""

import numpy as np
import pytest

from repro.codec.registry import (
    REGISTRY,
    CodecEntry,
    CodecRegistry,
    available_codecs,
    decode_payload,
    get_codec,
    peek_variant,
)
from repro.codec.spec import PipelineSpec, StageSpec, validate_spec
from repro.errors import ConfigError, ContainerError
from repro.io.container import Container
from repro.variants import VARIANTS, Feature, compressor_for


class TestNameResolution:
    def test_every_variants_row_resolves_to_a_compressor(self):
        """Satellite: each Table 2 key (incl. "SZ-2.0+") finds a codec."""
        for key in VARIANTS:
            comp = compressor_for(key)
            assert hasattr(comp, "compress") and hasattr(comp, "decompress")

    def test_every_sz_family_codec_maps_back_to_a_variants_row(self):
        """...and vice versa: each registered codec names its Table 2 row."""
        rows = set()
        for entry in REGISTRY:
            if entry.name in ("ZFP-like", "waveSZ-dp"):
                # outside the SZ family / beyond the Table 2 design space
                assert entry.table2 is None
                continue
            assert entry.table2 in VARIANTS, entry.name
            rows.add(entry.table2)
        assert rows == set(VARIANTS)

    def test_sz20_alias_bridges_the_historic_name_mismatch(self):
        """"SZ-2.0+" (Table 2) and "SZ-2.0" (wire name) are one codec."""
        assert REGISTRY.canonical("SZ-2.0+") == "SZ-2.0"
        assert compressor_for("SZ-2.0+").name == "SZ-2.0"
        assert compressor_for("SZ-2.0").name == "SZ-2.0"

    def test_cli_short_names(self):
        assert REGISTRY.short_names() == (
            "ghostsz", "sz10", "sz14", "sz14-rans", "sz20", "wavesz",
            "wavesz-dp", "wavesz-dp-auto", "wavesz-dp-rans", "wavesz-g",
            "zfp-like",
        )

    def test_short_aliases_resolve(self):
        assert get_codec("sz14").name == "SZ-1.4"
        assert get_codec("sz10").name == "SZ-1.0"
        assert get_codec("ghostsz").name == "GhostSZ"
        assert get_codec("wavesz").name == "waveSZ"
        assert get_codec("zfp-like").name == "ZFP-like"

    def test_profile_builds_its_own_configuration(self):
        g = get_codec("wavesz-g")
        assert g.name == "waveSZ"  # payloads carry the canonical wire name
        assert g.use_huffman is False
        assert get_codec("wavesz").use_huffman is True

    def test_unknown_name_rejected(self):
        with pytest.raises(ContainerError, match="no compressor registered"):
            get_codec("sz3000")
        assert "sz3000" not in REGISTRY
        assert "waveSZ" in REGISTRY

    def test_all_names_is_sorted_superset_of_canonical(self):
        names = available_codecs()
        assert list(names) == sorted(names)
        assert set(REGISTRY.names()) <= set(names)
        assert "SZ-0.1-1.0" in names  # Table 2 alias for SZ-1.0


class TestRegistration:
    def test_duplicate_name_rejected(self):
        reg = CodecRegistry()
        entry = CodecEntry(name="X", factory=object, aliases=("x",))
        reg.register(entry)
        with pytest.raises(ContainerError, match="registered twice"):
            reg.register(CodecEntry(name="Y", factory=object, aliases=("x",)))

    def test_spec_validated_at_registration(self):
        reg = CodecRegistry()
        bad = PipelineSpec(
            variant="waveSZ",
            table2="waveSZ",
            stages=(StageSpec("only", frozenset({Feature.ZSTD})),),
        )
        with pytest.raises(ConfigError):
            reg.register(CodecEntry(name="W", factory=object, spec=bad))


class TestSpecValidation:
    def test_registered_specs_pass_and_cover_all_variants(self):
        specs = REGISTRY.specs()
        for spec in specs:
            validate_spec(spec)  # idempotent re-check
        assert {s.table2 for s in specs if s.table2} == set(VARIANTS)

    def test_duplicate_stage_names_rejected(self):
        spec = PipelineSpec(
            variant="V", stages=(StageSpec("a"), StageSpec("a"))
        )
        with pytest.raises(ConfigError, match="duplicate stage names"):
            validate_spec(spec)

    def test_rogue_feature_rejected(self):
        spec = PipelineSpec(
            variant="waveSZ",
            table2="waveSZ",
            stages=(StageSpec("s", frozenset({Feature.ZSTD})),),
        )
        with pytest.raises(ConfigError, match="outside"):
            validate_spec(spec)

    def test_missing_required_feature_rejected(self):
        spec = PipelineSpec(
            variant="waveSZ", table2="waveSZ", stages=(StageSpec("s"),)
        )
        with pytest.raises(ConfigError, match="realizes no stage"):
            validate_spec(spec)

    def test_pointless_unmodeled_rejected(self):
        row = VARIANTS["waveSZ"]
        spec = PipelineSpec(
            variant="waveSZ",
            table2="waveSZ",
            stages=(StageSpec("s", row.required),),
            unmodeled=frozenset({Feature.LORENZO}),
        )
        with pytest.raises(ConfigError, match="unmodeled"):
            validate_spec(spec)

    def test_unknown_table2_row_rejected(self):
        spec = PipelineSpec(variant="V", table2="SZ-99", stages=())
        with pytest.raises(ConfigError, match="unknown Table 2 row"):
            validate_spec(spec)

    def test_none_table2_skips_feature_checks(self):
        validate_spec(
            PipelineSpec(
                variant="V",
                stages=(StageSpec("s", frozenset({Feature.ZSTD})),),
            )
        )


class TestPayloadDispatch:
    @pytest.mark.parametrize(
        "name", ["sz10", "sz14", "sz20", "ghostsz", "wavesz", "wavesz-g",
                 "zfp-like"],
    )
    def test_roundtrip_through_registry(self, name, smooth2d, ramp1d):
        comp = get_codec(name)
        data = ramp1d if name == "sz10" else smooth2d
        cf = comp.compress(data, 1e-3, "vr_rel")
        assert peek_variant(cf.payload) == cf.variant
        out = decode_payload(cf.payload)
        assert out.shape == data.shape and out.dtype == data.dtype
        assert np.abs(out.astype(np.float64) - data).max() <= (
            cf.bound.absolute * (1.0 + 1e-12)
        )

    def test_peek_variant_rejects_nameless_container(self):
        blob = Container(header={"shape": [4, 4]}).to_bytes()
        with pytest.raises(ContainerError, match="no variant name"):
            peek_variant(blob)

    def test_decode_rejects_unregistered_variant(self):
        blob = Container(header={"variant": "sz3000"}).to_bytes()
        with pytest.raises(ContainerError, match="no compressor registered"):
            decode_payload(blob)
