"""Unit tests for error-bound resolution and quantizer configuration."""

import math

import numpy as np
import pytest

from repro.config import (
    ErrorBound,
    ErrorBoundMode,
    QuantizerConfig,
    resolve_error_bound,
)
from repro.errors import ConfigError


class TestQuantizerConfig:
    def test_default_is_16_bit(self):
        q = QuantizerConfig()
        assert q.bits == 16
        assert q.capacity == 65536
        assert q.radius == 32768

    def test_ghostsz_reserved_bits(self):
        q = QuantizerConfig(bits=16, reserved_bits=2)
        assert q.capacity == 16384  # paper §4.1
        assert q.radius == 8192

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigError):
            QuantizerConfig(bits=1)
        with pytest.raises(ConfigError):
            QuantizerConfig(bits=33)

    def test_rejects_bad_reserved(self):
        with pytest.raises(ConfigError):
            QuantizerConfig(bits=16, reserved_bits=15)
        with pytest.raises(ConfigError):
            QuantizerConfig(bits=16, reserved_bits=-1)

    def test_capacity_scales_with_bits(self):
        for bits in (8, 12, 16, 20):
            assert QuantizerConfig(bits=bits).capacity == 1 << bits


class TestResolveErrorBound:
    def test_abs_mode_passthrough(self):
        data = np.array([0.0, 10.0])
        b = resolve_error_bound(data, 0.5, ErrorBoundMode.ABS)
        assert b.absolute == 0.5
        assert not b.base2

    def test_vr_rel_scales_with_range(self):
        data = np.array([2.0, 12.0])  # range 10
        b = resolve_error_bound(data, 1e-3, ErrorBoundMode.VR_REL)
        assert b.absolute == pytest.approx(1e-2)

    def test_vr_rel_constant_field_uses_unit_range(self):
        data = np.full(10, 3.14)
        b = resolve_error_bound(data, 1e-3, "vr_rel")
        assert b.absolute == pytest.approx(1e-3)

    def test_string_mode_accepted(self):
        data = np.array([0.0, 1.0])
        b = resolve_error_bound(data, 1e-3, "abs")
        assert b.mode is ErrorBoundMode.ABS

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            resolve_error_bound(np.array([0.0, 1.0]), 1e-3, "bogus")

    def test_nonpositive_bound_rejected(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ConfigError):
                resolve_error_bound(np.array([0.0, 1.0]), bad, "abs")

    def test_base2_tightens_to_power_of_two(self):
        data = np.array([0.0, 1.0])
        b = resolve_error_bound(data, 1e-3, "vr_rel", base2=True)
        # Paper Table 3: 1e-3 -> 2^-10.
        assert b.exponent == -10
        assert b.absolute == 2.0**-10
        assert b.absolute <= 1e-3  # never looser than requested

    def test_base2_exact_power_unchanged(self):
        data = np.array([0.0, 1.0])
        b = resolve_error_bound(data, 0.25, "abs", base2=True)
        assert b.absolute == 0.25
        assert b.exponent == -2

    def test_base2_always_tighter_or_equal(self):
        data = np.array([0.0, 1.0])
        for eb in (1e-1, 3e-2, 1e-3, 7e-4, 1e-5, 0.9):
            b = resolve_error_bound(data, eb, "abs", base2=True)
            assert b.absolute <= eb
            assert b.absolute > eb / 2  # nearest power of two

    def test_pw_rel_uses_log2_bound(self):
        data = np.array([1.0, 2.0])
        b = resolve_error_bound(data, 1e-2, ErrorBoundMode.PW_REL)
        assert b.absolute == pytest.approx(math.log2(1 + 1e-2), abs=1e-4)
        assert b.absolute < math.log2(1 + 1e-2)  # safety margin applied

    def test_pw_rel_rejects_ge_one(self):
        with pytest.raises(ConfigError):
            resolve_error_bound(np.array([1.0, 2.0]), 1.5, ErrorBoundMode.PW_REL)

    def test_nonfinite_data_rejected_for_vr_rel(self):
        with pytest.raises(ConfigError):
            resolve_error_bound(np.array([0.0, np.inf]), 1e-3, "vr_rel")


class TestErrorBoundDataclass:
    def test_base2_requires_exponent(self):
        with pytest.raises(ConfigError):
            ErrorBound(mode=ErrorBoundMode.ABS, value=1e-3, absolute=2**-10, base2=True)

    def test_base2_exponent_must_match(self):
        with pytest.raises(ConfigError):
            ErrorBound(
                mode=ErrorBoundMode.ABS,
                value=1e-3,
                absolute=1e-3,
                base2=True,
                exponent=-10,
            )
