"""Unit tests for the FPGA device envelope."""

import pytest

from repro.errors import ModelError
from repro.fpga.device import ZC706, FPGADevice


class TestZC706:
    def test_table6_totals(self):
        """The denominators of Table 6's utilization column."""
        assert ZC706.bram_18k == 1090
        assert ZC706.dsp48e == 900
        assert ZC706.ff == 437_200
        assert ZC706.lut == 218_600

    def test_default_clock_is_156_25(self):
        assert ZC706.default_clock_hz == pytest.approx(156.25e6)

    def test_fits(self):
        assert ZC706.fits(100, 100, 1000, 1000)
        assert not ZC706.fits(2000, 0, 0, 0)
        assert not ZC706.fits(0, 0, 10**7, 0)

    def test_validation(self):
        with pytest.raises(ModelError):
            FPGADevice("bad", bram_18k=0, dsp48e=1, ff=1, lut=1)
        with pytest.raises(ModelError):
            FPGADevice(
                "bad", bram_18k=1, dsp48e=1, ff=1, lut=1,
                default_clock_hz=300e6, max_clock_hz=250e6,
            )
