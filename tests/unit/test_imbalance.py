"""Unit tests for the GhostSZ load-imbalance simulator."""

import pytest

from repro.errors import ModelError
from repro.fpga.imbalance import simulate_units
from repro.fpga.timing import GHOSTSZ_PII


class TestImbalance:
    def test_quadratic_unit_sets_the_pace(self):
        res = simulate_units(1000)
        assert res.effective_pii == 4.0  # the 1:2:4 workload split

    def test_matches_throughput_model_constant(self):
        """The Table 5 GhostSZ model's pII comes from this mechanism."""
        res = simulate_units(100)
        assert res.effective_pii == GHOSTSZ_PII

    def test_light_units_idle(self):
        """§2.2: the previous-value and linear units stay idle much of the
        time — quantified as 75 % and 50 % idle respectively."""
        res = simulate_units(1000)
        util = {u.name: u.utilization for u in res.units}
        assert util["order-0 (previous value)"] == pytest.approx(0.25)
        assert util["order-1 (linear)"] == pytest.approx(0.5)
        assert util["order-2 (quadratic)"] == pytest.approx(1.0)

    def test_wasted_cycles_accounting(self):
        res = simulate_units(100)
        # per point: order-0 idles 3, order-1 idles 2, order-2 idles 0.
        assert res.wasted_unit_cycles == 100 * (3 + 2)

    def test_wider_issue_reduces_pii(self):
        """Duplicating sub-units (spending more area) closes the gap —
        the resource-vs-rate trade GhostSZ declined."""
        narrow = simulate_units(100, issue_width=1)
        wide = simulate_units(100, issue_width=4)
        assert wide.effective_pii < narrow.effective_pii
        assert wide.effective_pii == 1.0

    def test_balanced_workloads_full_utilization(self):
        res = simulate_units(50, workloads={0: 2, 1: 2, 2: 2})
        assert all(u.utilization == 1.0 for u in res.units)
        assert res.effective_pii == 2.0

    def test_validation(self):
        with pytest.raises(ModelError):
            simulate_units(0)
        with pytest.raises(ModelError):
            simulate_units(10, issue_width=0)
