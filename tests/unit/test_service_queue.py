"""Unit tests for the bounded job queue (backpressure semantics)."""

import asyncio

import numpy as np
import pytest

from repro.errors import QueueFullError, ServiceError
from repro.service.jobs import JobHandle, make_job
from repro.service.queue import BoundedJobQueue


def _handle(priority: int = 0) -> JobHandle:
    return JobHandle(
        make_job("sz14", np.zeros((4, 4), dtype=np.float32),
                 priority=priority)
    )


class TestBackpressure:
    def test_put_nowait_rejects_when_full(self):
        q = BoundedJobQueue(maxsize=2)
        q.put_nowait(_handle())
        q.put_nowait(_handle())
        with pytest.raises(QueueFullError, match="full"):
            q.put_nowait(_handle())
        assert q.rejections == 1
        assert q.depth == 2
        assert q.high_water == 2

    def test_blocking_put_waits_for_space(self):
        async def main():
            q = BoundedJobQueue(maxsize=1)
            q.put_nowait(_handle())
            putter = asyncio.ensure_future(q.put(_handle()))
            await asyncio.sleep(0)
            assert not putter.done()  # backpressure: waiting, not growing
            await q.get()
            await asyncio.wait_for(putter, 1.0)
            assert q.depth == 1

        asyncio.run(main())

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ServiceError):
            BoundedJobQueue(maxsize=0)


class TestOrdering:
    def test_priority_order_then_fifo(self):
        async def main():
            q = BoundedJobQueue(maxsize=8)
            low1, low2 = _handle(0), _handle(0)
            high = _handle(5)
            q.put_nowait(low1)
            q.put_nowait(low2)
            q.put_nowait(high)
            assert await q.get() is high
            assert await q.get() is low1
            assert await q.get() is low2

        asyncio.run(main())

    def test_get_waits_for_put(self):
        async def main():
            q = BoundedJobQueue(maxsize=2)
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0)
            assert not getter.done()
            h = _handle()
            q.put_nowait(h)
            assert await asyncio.wait_for(getter, 1.0) is h

        asyncio.run(main())


class TestClose:
    def test_close_drains_then_raises(self):
        async def main():
            q = BoundedJobQueue(maxsize=2)
            h = _handle()
            q.put_nowait(h)
            q.close()
            assert await q.get() is h  # closed queues still drain
            with pytest.raises(ServiceError, match="closed"):
                await q.get()
            with pytest.raises(ServiceError, match="closed"):
                q.put_nowait(_handle())

        asyncio.run(main())
