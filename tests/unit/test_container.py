"""Unit tests for the compressed container and SDRB raw IO."""

import json
import struct

import numpy as np
import pytest

from repro.errors import ChecksumError, ContainerError, ReproError, ShapeError
from repro.io import Container, read_raw_field, write_raw_field


def _sample() -> Container:
    c = Container(header={"variant": "x", "shape": [2, 3], "n": 7})
    c.add("alpha", b"123")
    c.add("beta", b"")
    c.add("gamma", bytes(range(64)))
    return c


def _v1_bytes(header: dict, sections: list[tuple[bytes, bytes]]) -> bytes:
    """Hand-built v1 stream — frozen wire layout, independent of to_bytes."""
    hj = json.dumps(header, sort_keys=True).encode()
    out = bytearray(b"WSZC")
    out += struct.pack("<HI", 1, len(hj))
    out += hj
    out += struct.pack("<H", len(sections))
    for name, payload in sections:
        out += struct.pack("<B", len(name)) + name
        out += struct.pack("<Q", len(payload)) + payload
    return bytes(out)


class TestContainer:
    def test_roundtrip(self):
        c = Container(header={"variant": "x", "shape": [2, 3]})
        c.add("alpha", b"123")
        c.add("beta", b"")
        c.add("gamma", bytes(range(256)))
        c2 = Container.from_bytes(c.to_bytes())
        assert c2.header == c.header
        assert c2.get("alpha") == b"123"
        assert c2.get("beta") == b""
        assert c2.get("gamma") == bytes(range(256))

    def test_duplicate_section_rejected(self):
        c = Container(header={})
        c.add("a", b"x")
        with pytest.raises(ContainerError):
            c.add("a", b"y")

    def test_missing_section(self):
        c = Container(header={})
        with pytest.raises(ContainerError):
            c.get("nope")
        assert not c.has("nope")

    def test_payload_bytes(self):
        c = Container(header={})
        c.add("a", b"12345")
        c.add("b", b"67")
        assert c.payload_bytes == 7

    def test_bad_magic(self):
        with pytest.raises(ContainerError):
            Container.from_bytes(b"XXXX" + b"\x00" * 16)

    def test_truncated_section(self):
        c = Container(header={})
        c.add("a", b"0123456789")
        blob = c.to_bytes()
        with pytest.raises(ContainerError):
            Container.from_bytes(blob[:-4])

    def test_corrupt_header_json(self):
        c = Container(header={"k": 1})
        blob = bytearray(c.to_bytes())
        blob[10] = 0xFF  # clobber JSON
        with pytest.raises(ContainerError):
            Container.from_bytes(bytes(blob))

    def test_bad_section_name(self):
        with pytest.raises(ContainerError):
            Container(header={}).add("", b"")

    def test_unsupported_version(self):
        c = Container(header={})
        blob = bytearray(c.to_bytes())
        blob[4] = 99
        with pytest.raises(ContainerError):
            Container.from_bytes(bytes(blob))


class TestContainerV2Integrity:
    def test_writes_v2_by_default(self):
        blob = _sample().to_bytes()
        assert blob[4:6] == struct.pack("<H", 2)
        assert Container.from_bytes(blob).version == 2

    def test_every_single_bit_flip_detected(self):
        blob = _sample().to_bytes()
        for pos in range(len(blob)):
            for bit in range(8):
                bad = bytearray(blob)
                bad[pos] ^= 1 << bit
                with pytest.raises(ContainerError):
                    Container.from_bytes(bytes(bad))

    def test_every_truncation_detected(self):
        blob = _sample().to_bytes()
        for cut in range(len(blob)):
            with pytest.raises(ContainerError):
                Container.from_bytes(blob[:cut])

    def test_trailing_garbage_rejected(self):
        blob = _sample().to_bytes()
        with pytest.raises(ContainerError):
            Container.from_bytes(blob + b"\x00")
        with pytest.raises(ContainerError):
            Container.from_bytes(blob + blob)

    def test_section_payload_flip_is_checksum_error(self):
        c = Container(header={})
        c.add("data", b"\x00" * 64)
        blob = bytearray(c.to_bytes())
        # flip a bit well inside the zero-run payload: framing stays intact
        blob[-40] ^= 0x01
        with pytest.raises(ChecksumError):
            Container.from_bytes(bytes(blob))

    def test_non_dict_header_rejected(self):
        blob = _v1_bytes({}, [])
        bad = bytearray(blob)
        hj = json.dumps([1, 2]).encode()
        bad[6:10] = struct.pack("<I", len(hj))
        bad[10:12] = hj  # old header was b"{}"
        with pytest.raises(ContainerError):
            Container.from_bytes(bytes(bad))

    def test_duplicate_section_in_stream_rejected(self):
        blob = _v1_bytes({}, [(b"a", b"x"), (b"a", b"y")])
        with pytest.raises(ContainerError):
            Container.from_bytes(blob)

    def test_scan_clean(self):
        report = Container.scan(_sample().to_bytes())
        assert report.ok
        assert report.version == 2
        assert report.n_sections == 3
        assert all(s.ok for s in report.sections)
        assert report.problems == ()

    def test_scan_and_salvage_damaged_section(self):
        c = Container(header={"k": 1})
        c.add("good", b"A" * 32)
        c.add("bad", b"B" * 32)
        c.add("tail", b"C" * 32)
        blob = bytearray(c.to_bytes())
        idx = bytes(blob).index(b"B" * 32)
        blob[idx] ^= 0xFF
        report = Container.scan(bytes(blob))
        assert not report.ok
        verdicts = {s.name: s.ok for s in report.sections}
        assert verdicts == {"good": True, "bad": False, "tail": True}
        result = Container.salvage(bytes(blob))
        assert result.damaged == {"bad"}
        assert result.container.get("good") == b"A" * 32
        assert result.container.get("tail") == b"C" * 32

    def test_scan_never_raises_on_garbage(self):
        for blob in (b"", b"WSZ", b"WSZC", b"\xff" * 40, _sample().to_bytes()[:11]):
            report = Container.scan(blob)
            assert not report.ok
            assert report.problems


class TestContainerV1Compat:
    def test_golden_v1_bytes_parse(self):
        blob = _v1_bytes({"variant": "x", "n": 3}, [(b"alpha", b"123"), (b"b", b"")])
        c = Container.from_bytes(blob)
        assert c.version == 1
        assert c.header == {"variant": "x", "n": 3}
        assert c.get("alpha") == b"123"
        assert c.get("b") == b""

    def test_v1_writer_matches_golden_bytes(self):
        c = Container(header={"variant": "x", "n": 3})
        c.add("alpha", b"123")
        c.add("b", b"")
        assert c.to_bytes(version=1) == _v1_bytes(
            {"variant": "x", "n": 3}, [(b"alpha", b"123"), (b"b", b"")]
        )

    def test_v1_trailing_garbage_still_rejected(self):
        blob = _v1_bytes({}, [(b"a", b"x")])
        with pytest.raises(ContainerError):
            Container.from_bytes(blob + b"junk")

    def test_unwritable_version(self):
        with pytest.raises(ContainerError):
            Container(header={}).to_bytes(version=3)

    def test_v1_payload_decompresses_bit_exactly(self, smooth2d):
        """Streams written before the integrity layer still decode."""
        from repro import SZ14Compressor

        comp = SZ14Compressor()
        cf = comp.compress(smooth2d, 1e-3, "vr_rel")
        v1_blob = Container.from_bytes(cf.payload).to_bytes(version=1)
        assert v1_blob != cf.payload  # genuinely the old format
        ref = comp.decompress(cf.payload)
        out = comp.decompress(v1_blob)
        assert out.dtype == ref.dtype and out.shape == ref.shape
        assert (out == ref).all()


class TestMalformedOffsets:
    """Regressions: every truncation/garbage class raises ContainerError,
    never a raw struct.error / UnicodeDecodeError / IndexError."""

    CASES = {
        "mid-magic": b"WS",
        "mid-version": b"WSZC\x02",
        "mid-header-len": b"WSZC\x02\x00\x10",
        "huge-header-len": b"WSZC\x02\x00\xff\xff\xff\xff{}",
        "non-utf8-header": b"WSZC\x02\x00\x02\x00\x00\x00\xff\xfe",
        "bad-json-header": b"WSZC\x02\x00\x02\x00\x00\x00{[",
        "mid-section-count": _v1_bytes({}, [])[:-1],
        "mid-section-name": _v1_bytes({}, [(b"abc", b"")])[:16],
        "mid-payload-len": _v1_bytes({}, [(b"a", b"xyz")])[:20],
        "huge-payload-len": _v1_bytes({}, [])[:10]
        + struct.pack("<H", 1)
        + b"\x01a"
        + struct.pack("<Q", 2**60),
        "non-utf8-name": _v1_bytes({}, [])[:10]
        + struct.pack("<H", 1)
        + b"\x02\xff\xfe"
        + struct.pack("<Q", 0),
    }

    @pytest.mark.parametrize("label", sorted(CASES))
    def test_raises_only_container_error(self, label):
        blob = self.CASES[label]
        with pytest.raises(ContainerError):
            Container.from_bytes(blob)

    def test_nothing_but_repro_errors_on_random_prefixes(self):
        blob = _sample().to_bytes()
        for cut in range(0, len(blob), 3):
            try:
                Container.from_bytes(blob[:cut] + b"\xa5" * 7)
            except ReproError:
                pass


class TestSDRBIO:
    def test_roundtrip_2d(self, tmp_path, smooth2d):
        path = tmp_path / "f.dat"
        write_raw_field(path, smooth2d)
        back = read_raw_field(path, smooth2d.shape, np.float32)
        assert (back == smooth2d).all()

    def test_headerless_size(self, tmp_path, smooth2d):
        path = tmp_path / "f.f32"
        write_raw_field(path, smooth2d)
        assert path.stat().st_size == smooth2d.size * 4

    def test_shape_mismatch_detected(self, tmp_path, smooth2d):
        path = tmp_path / "f.dat"
        write_raw_field(path, smooth2d)
        with pytest.raises(ShapeError):
            read_raw_field(path, (3, 3), np.float32)

    def test_float64(self, tmp_path):
        x = np.linspace(0, 1, 20).reshape(4, 5)
        path = tmp_path / "f64.dat"
        write_raw_field(path, x)
        assert (read_raw_field(path, (4, 5), np.float64) == x).all()
