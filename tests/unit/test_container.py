"""Unit tests for the compressed container and SDRB raw IO."""

import numpy as np
import pytest

from repro.errors import ContainerError, ShapeError
from repro.io import Container, read_raw_field, write_raw_field


class TestContainer:
    def test_roundtrip(self):
        c = Container(header={"variant": "x", "shape": [2, 3]})
        c.add("alpha", b"123")
        c.add("beta", b"")
        c.add("gamma", bytes(range(256)))
        c2 = Container.from_bytes(c.to_bytes())
        assert c2.header == c.header
        assert c2.get("alpha") == b"123"
        assert c2.get("beta") == b""
        assert c2.get("gamma") == bytes(range(256))

    def test_duplicate_section_rejected(self):
        c = Container(header={})
        c.add("a", b"x")
        with pytest.raises(ContainerError):
            c.add("a", b"y")

    def test_missing_section(self):
        c = Container(header={})
        with pytest.raises(ContainerError):
            c.get("nope")
        assert not c.has("nope")

    def test_payload_bytes(self):
        c = Container(header={})
        c.add("a", b"12345")
        c.add("b", b"67")
        assert c.payload_bytes == 7

    def test_bad_magic(self):
        with pytest.raises(ContainerError):
            Container.from_bytes(b"XXXX" + b"\x00" * 16)

    def test_truncated_section(self):
        c = Container(header={})
        c.add("a", b"0123456789")
        blob = c.to_bytes()
        with pytest.raises(ContainerError):
            Container.from_bytes(blob[:-4])

    def test_corrupt_header_json(self):
        c = Container(header={"k": 1})
        blob = bytearray(c.to_bytes())
        blob[10] = 0xFF  # clobber JSON
        with pytest.raises(ContainerError):
            Container.from_bytes(bytes(blob))

    def test_bad_section_name(self):
        with pytest.raises(ContainerError):
            Container(header={}).add("", b"")

    def test_unsupported_version(self):
        c = Container(header={})
        blob = bytearray(c.to_bytes())
        blob[4] = 99
        with pytest.raises(ContainerError):
            Container.from_bytes(bytes(blob))


class TestSDRBIO:
    def test_roundtrip_2d(self, tmp_path, smooth2d):
        path = tmp_path / "f.dat"
        write_raw_field(path, smooth2d)
        back = read_raw_field(path, smooth2d.shape, np.float32)
        assert (back == smooth2d).all()

    def test_headerless_size(self, tmp_path, smooth2d):
        path = tmp_path / "f.f32"
        write_raw_field(path, smooth2d)
        assert path.stat().st_size == smooth2d.size * 4

    def test_shape_mismatch_detected(self, tmp_path, smooth2d):
        path = tmp_path / "f.dat"
        write_raw_field(path, smooth2d)
        with pytest.raises(ShapeError):
            read_raw_field(path, (3, 3), np.float32)

    def test_float64(self, tmp_path):
        x = np.linspace(0, 1, 20).reshape(4, 5)
        path = tmp_path / "f64.dat"
        write_raw_field(path, x)
        assert (read_raw_field(path, (4, 5), np.float64) == x).all()
