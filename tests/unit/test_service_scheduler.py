"""Unit tests for the batch scheduler (inline pool: deterministic)."""

import asyncio

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.errors import (
    ChecksumError,
    DeadlineExpiredError,
    JobFailedError,
    QueueFullError,
    ShapeError,
)
from repro.service.jobs import JobState, make_job
from repro.service.scheduler import BatchScheduler, run_batch
from repro.service.workers import run_job


def _sched(**kw):
    kw.setdefault("workers", 0)  # inline pool
    kw.setdefault("backoff_base_s", 0.001)
    return BatchScheduler(**kw)


class TestHappyPath:
    def test_batch_bit_exact_with_direct_path(self, smooth2d):
        codecs = ["sz14", "wavesz", "zfp-like", "ghostsz"]
        jobs = [make_job(c, smooth2d) for c in codecs]
        results, stats = run_batch(jobs, workers=0)
        for c, r in zip(codecs, results):
            direct = get_codec(c).compress(smooth2d, 1e-3, "vr_rel")
            assert r.output == direct.payload
            assert r.stats.ratio == direct.stats.ratio
        assert stats.totals["completed"] == len(codecs)
        assert stats.totals["failed"] == 0
        assert stats.latency["overall"].count == len(codecs)

    def test_decompress_job(self, smooth2d):
        cf = get_codec("sz14").compress(smooth2d, 1e-3, "vr_rel")
        job = make_job("auto", op="decompress", payload=cf.payload)
        results, _ = run_batch([job], workers=0)
        np.testing.assert_array_equal(
            results[0].output, get_codec("sz14").decompress(cf.payload)
        )

    def test_handle_timings(self, smooth2d):
        results, _ = run_batch([make_job("sz14", smooth2d)], workers=0)
        r = results[0]
        assert r.attempts == 1
        assert r.queued_s >= 0
        assert r.run_s > 0
        assert r.total_s >= r.run_s


class TestRetries:
    def test_transient_fault_retried_then_succeeds(self, smooth2d):
        async def main():
            sched = _sched(max_retries=2)
            calls = []

            def flaky(job):
                calls.append(job.job_id)
                if len(calls) < 3:
                    raise ChecksumError("simulated torn read")
                return run_job(job)

            sched._worker_fn = flaky
            async with sched:
                h = await sched.submit(make_job("sz14", smooth2d))
                result = await sched.wait(h)
            assert len(calls) == 3
            assert result.attempts == 3
            assert h.state is JobState.DONE
            stats = sched.stats()
            assert stats.jobs["sz14"]["retried"] == 2
            assert stats.jobs["sz14"]["completed"] == 1
            assert stats.jobs["sz14"]["failed"] == 0

        asyncio.run(main())

    def test_transient_fault_exhausts_budget(self, smooth2d):
        async def main():
            sched = _sched(max_retries=1)

            def always_torn(job):
                raise ChecksumError("permanent bit rot")

            sched._worker_fn = always_torn
            async with sched:
                h = await sched.submit(make_job("sz14", smooth2d))
                with pytest.raises(JobFailedError, match="2 attempt"):
                    await sched.wait(h)
            assert h.state is JobState.FAILED
            assert isinstance(h.error.__cause__, ChecksumError)
            stats = sched.stats()
            assert stats.jobs["sz14"]["retried"] == 1
            assert stats.jobs["sz14"]["failed"] == 1

        asyncio.run(main())

    def test_permanent_fault_not_retried(self, smooth2d):
        async def main():
            sched = _sched(max_retries=5)
            calls = []

            def shape_bug(job):
                calls.append(1)
                raise ShapeError("tiling needs at least 2 dimensions")

            sched._worker_fn = shape_bug
            async with sched:
                h = await sched.submit(make_job("sz14", smooth2d))
                with pytest.raises(JobFailedError, match="1 attempt"):
                    await sched.wait(h)
            assert len(calls) == 1  # no retry budget burned
            assert sched.stats().jobs["sz14"]["retried"] == 0

        asyncio.run(main())


class TestBackpressure:
    def test_queue_full_rejection_counted(self, smooth2d):
        async def main():
            sched = _sched(queue_size=2)
            # no dispatchers started: the queue can only fill
            await sched.submit(make_job("sz14", smooth2d))
            await sched.submit(make_job("sz14", smooth2d))
            with pytest.raises(QueueFullError):
                await sched.submit(make_job("wavesz", smooth2d))
            stats = sched.stats()
            assert stats.jobs["wavesz"]["rejected"] == 1
            assert stats.queue_depth == 2
            assert stats.queue_high_water == 2
            sched.start()
            await sched.drain()
            await sched.stop()
            assert sched.stats().totals["completed"] == 2

        asyncio.run(main())

    def test_rejected_handle_is_terminal(self, smooth2d):
        async def main():
            sched = _sched(queue_size=1)
            await sched.submit(make_job("sz14", smooth2d))
            try:
                await sched.submit(make_job("sz14", smooth2d))
            except QueueFullError:
                pass
            sched.start()
            await sched.drain()
            await sched.stop()

        asyncio.run(main())


class TestDeadline:
    def test_expired_job_never_runs(self, smooth2d):
        async def main():
            sched = _sched()
            calls = []

            def record(job):
                calls.append(1)
                return run_job(job)

            sched._worker_fn = record
            h = await sched.submit(
                make_job("sz14", smooth2d, deadline_s=0.01)
            )
            await asyncio.sleep(0.05)  # miss the deadline while queued
            sched.start()
            with pytest.raises(DeadlineExpiredError, match="deadline"):
                await sched.wait(h)
            await sched.drain()
            await sched.stop()
            assert calls == []
            assert h.state is JobState.EXPIRED
            assert sched.stats().jobs["sz14"]["expired"] == 1

        asyncio.run(main())


class TestTileFanout:
    def test_fanout_payload_byte_identical_to_serial(self, smooth2d):
        from repro.parallel import tile_compress

        direct = tile_compress(
            get_codec("wavesz-dp"), smooth2d, 1e-3, "vr_rel", n_tiles=4
        )
        results, stats = run_batch(
            [make_job("wavesz-dp", smooth2d, n_tiles=4)], workers=0
        )
        assert results[0].output == direct.payload
        assert stats.events["scheduler.tile_fanouts"] == 1

    def test_wavefront_codec_tiles_serially_in_worker(self, smooth2d):
        # Classic waveSZ is not data-parallel: the job still yields the
        # same tiled payload, but inside one worker — no fan-out event.
        from repro.parallel import tile_compress

        direct = tile_compress(
            get_codec("wavesz"), smooth2d, 1e-3, "vr_rel", n_tiles=3
        )
        results, stats = run_batch(
            [make_job("wavesz", smooth2d, n_tiles=3)], workers=0
        )
        assert results[0].output == direct.payload
        assert "scheduler.tile_fanouts" not in stats.events

    def test_fanout_payload_decodes_transparently(self, smooth2d):
        from repro.streams import decompress_auto

        results, _ = run_batch(
            [make_job("wavesz-dp", smooth2d, n_tiles=4)], workers=0
        )
        out = decompress_auto(results[0].output)
        err = np.abs(out.astype(np.float64) - smooth2d.astype(np.float64))
        vr = float(smooth2d.max() - smooth2d.min())
        assert float(err.max()) <= 1e-3 * vr

    def test_fanout_matches_thread_pool_run(self, smooth2d):
        # The same job through a real (thread) pool produces the same
        # bytes as the inline fan-out: assembly is ordered, not racy.
        inline, _ = run_batch(
            [make_job("wavesz-dp", smooth2d, n_tiles=4)], workers=0
        )
        threaded, stats = run_batch(
            [make_job("wavesz-dp", smooth2d, n_tiles=4)],
            workers=2, pool_kind="thread",
        )
        assert threaded[0].output == inline[0].output
        assert stats.events["scheduler.tile_fanouts"] == 1


class TestPriority:
    def test_high_priority_dispatched_first(self, smooth2d):
        async def main():
            sched = _sched()
            order = []

            def record(job):
                order.append(job.job_id)
                return run_job(job)

            sched._worker_fn = record
            bulk = await sched.submit(make_job("sz14", smooth2d, priority=0))
            urgent = await sched.submit(
                make_job("sz14", smooth2d, priority=9)
            )
            sched.start()
            await sched.drain()
            await sched.stop()
            assert order == [urgent.job.job_id, bulk.job.job_id]

        asyncio.run(main())
