"""Unit tests for the SZ-1.4 end-to-end compressor."""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.errors import ContainerError
from repro.lossless import GzipStage, LosslessBackend, LosslessMode
from repro.sz import SZ14Compressor


class TestRoundtrip:
    @pytest.mark.parametrize("border", ["padded", "truncate", "verbatim"])
    def test_2d(self, smooth2d, border):
        c = SZ14Compressor(border=border)
        cf = c.compress(smooth2d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert out.shape == smooth2d.shape and out.dtype == smooth2d.dtype
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute

    def test_3d(self, smooth3d):
        c = SZ14Compressor()
        cf = c.compress(smooth3d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - smooth3d).max() <= cf.bound.absolute

    def test_abs_mode(self, smooth2d):
        c = SZ14Compressor()
        cf = c.compress(smooth2d, 5e-4, "abs")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= 5e-4

    def test_decompress_from_raw_bytes(self, smooth2d):
        c = SZ14Compressor()
        cf = c.compress(smooth2d, 1e-3)
        out = c.decompress(cf.payload)
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute

    def test_idempotent_recompression(self, smooth2d):
        """decompress(compress(x)) is a fixed point of the compressor."""
        c = SZ14Compressor()
        once = c.decompress(c.compress(smooth2d, 1e-3, "abs"))
        twice = c.decompress(c.compress(once, 1e-3, "abs"))
        assert (once == twice).all()


class TestBehaviour:
    def test_tighter_bound_lower_ratio(self, smooth2d):
        c = SZ14Compressor()
        loose = c.compress(smooth2d, 1e-2).stats.ratio
        tight = c.compress(smooth2d, 1e-5).stats.ratio
        assert loose > tight

    def test_smoother_data_higher_ratio(self, smooth2d, rough2d):
        c = SZ14Compressor()
        rs = c.compress(smooth2d, 1e-3).stats.ratio
        rr = c.compress(rough2d, 1e-3).stats.ratio
        assert rs > rr

    def test_quant_bits_affect_overflow(self, rough2d):
        tight = 1e-7
        small = SZ14Compressor(quant=QuantizerConfig(bits=6))
        big = SZ14Compressor(quant=QuantizerConfig(bits=16))
        cf_small = small.compress(rough2d, tight, "abs")
        cf_big = big.compress(rough2d, tight, "abs")
        assert cf_small.stats.n_unpredictable >= cf_big.stats.n_unpredictable

    def test_zlib_backend_roundtrip(self, smooth2d):
        c = SZ14Compressor(
            lossless=GzipStage(
                mode=LosslessMode.BEST_SPEED, backend=LosslessBackend.ZLIB
            )
        )
        cf = c.compress(smooth2d, 1e-3)
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute

    def test_stats_sum_to_compressed_size(self, smooth2d):
        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        s = cf.stats
        assert s.compressed_bytes == (
            s.encoded_code_bytes + s.outlier_bytes + s.border_bytes
        )
        assert s.original_bytes == smooth2d.size * 4

    def test_header_records_configuration(self, smooth2d):
        from repro.io.container import Container

        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        h = Container.from_bytes(cf.payload).header
        assert h["variant"] == "SZ-1.4"
        assert tuple(h["shape"]) == smooth2d.shape
        assert h["quant_bits"] == 16
        assert h["border"] == "padded"

    def test_wrong_variant_rejected(self, smooth2d):
        from repro.ghostsz import GhostSZCompressor

        cf = GhostSZCompressor().compress(smooth2d, 1e-3)
        with pytest.raises(ContainerError):
            SZ14Compressor().decompress(cf)

    def test_saturated_field_bound(self, saturated2d):
        c = SZ14Compressor()
        cf = c.compress(saturated2d, 1e-3, "vr_rel")
        out = c.decompress(cf)
        assert np.abs(out.astype(np.float64) - saturated2d).max() <= cf.bound.absolute
