"""Unit tests for the wall-clock measurement utilities."""

import numpy as np

from repro.perf import MeasuredThroughput, measure_compressor
from repro.sz import SZ14Compressor


class TestMeasure:
    def test_measure_returns_positive_rates(self, smooth2d):
        timing, cf = measure_compressor(SZ14Compressor(), smooth2d, 1e-3)
        assert timing.variant == "SZ-1.4"
        assert timing.n_points == smooth2d.size
        assert timing.compress_s > 0 and timing.decompress_s > 0
        assert timing.compress_mb_s > 0
        assert cf is not None

    def test_repeats_take_minimum(self, smooth2d):
        t1, _ = measure_compressor(SZ14Compressor(), smooth2d, 1e-3, repeats=2)
        assert t1.compress_s > 0

    def test_rates_derived_consistently(self):
        m = MeasuredThroughput("x", n_points=1_000_000, compress_s=1.0,
                               decompress_s=2.0)
        assert m.compress_mb_s == 4.0
        assert m.decompress_mb_s == 2.0
