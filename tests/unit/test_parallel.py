"""Unit tests for tiled (block-parallel) compression."""

import numpy as np
import pytest

from repro import GhostSZCompressor, SZ14Compressor, WaveSZCompressor
from repro.errors import ContainerError, ShapeError
from repro.parallel import decompress_tile, tile_compress, tile_decompress


class TestTiling:
    @pytest.mark.parametrize(
        "comp", [SZ14Compressor(), GhostSZCompressor()],
        ids=lambda c: c.name,
    )
    def test_roundtrip_and_bound(self, smooth2d, comp):
        res = tile_compress(comp, smooth2d, 1e-3, "vr_rel", n_tiles=4)
        out = tile_decompress(comp, res.payload)
        vr = float(smooth2d.max() - smooth2d.min())
        assert out.shape == smooth2d.shape
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= 1e-3 * vr

    def test_wavesz_tiles(self, smooth2d):
        comp = WaveSZCompressor(use_huffman=True)
        res = tile_compress(comp, smooth2d, 1e-3, n_tiles=3)
        out = tile_decompress(comp, res.payload)
        vr = float(smooth2d.max() - smooth2d.min())
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= 1e-3 * vr

    def test_3d(self, smooth3d):
        comp = SZ14Compressor()
        res = tile_compress(comp, smooth3d, 1e-3, n_tiles=4)
        out = tile_decompress(comp, res.payload)
        vr = float(smooth3d.max() - smooth3d.min())
        assert np.abs(out.astype(np.float64) - smooth3d).max() <= 1e-3 * vr

    def test_global_bound_resolution(self, smooth2d):
        """VR-REL must resolve against the *global* range, not per band —
        otherwise a band with a narrow local range would get a tighter
        bound than requested (and a different guarantee than monolithic)."""
        comp = SZ14Compressor()
        res = tile_compress(comp, smooth2d, 1e-3, "vr_rel", n_tiles=4)
        from repro.io.container import Container

        h = Container.from_bytes(res.payload).header
        vr = float(smooth2d.max() - smooth2d.min())
        assert h["eb_abs"] == pytest.approx(1e-3 * vr)

    def test_random_access(self, smooth2d):
        comp = SZ14Compressor()
        res = tile_compress(comp, smooth2d, 1e-3, n_tiles=4)
        band1 = decompress_tile(comp, res.payload, 1)
        full = tile_decompress(comp, res.payload)
        h = smooth2d.shape[0]
        edges = np.linspace(0, h, 5, dtype=int)
        assert (band1 == full[edges[1] : edges[2]]).all()

    def test_tile_index_validated(self, smooth2d):
        comp = SZ14Compressor()
        res = tile_compress(comp, smooth2d, 1e-3, n_tiles=2)
        with pytest.raises(ShapeError, match=r"valid: -2\.\.1"):
            decompress_tile(comp, res.payload, 2)
        with pytest.raises(ShapeError, match="-3"):
            decompress_tile(comp, res.payload, -3)

    def test_negative_tile_index(self, smooth2d):
        """Python convention: -1 is the last band, -n the first."""
        comp = SZ14Compressor()
        res = tile_compress(comp, smooth2d, 1e-3, n_tiles=3)
        for neg, pos in ((-1, 2), (-3, 0)):
            np.testing.assert_array_equal(
                decompress_tile(comp, res.payload, neg),
                decompress_tile(comp, res.payload, pos),
            )

    def test_ratio_overhead_is_modest(self, smooth2d):
        """Seam losses exist but stay small for reasonable tile counts."""
        comp = SZ14Compressor()
        mono = comp.compress(smooth2d, 1e-3, "vr_rel").stats.ratio
        tiled = tile_compress(comp, smooth2d, 1e-3, n_tiles=4).ratio
        assert tiled > 0.6 * mono
        assert tiled <= mono * 1.05

    def test_more_tiles_more_overhead(self, smooth2d):
        comp = SZ14Compressor()
        r2 = tile_compress(comp, smooth2d, 1e-3, n_tiles=2).ratio
        r8 = tile_compress(comp, smooth2d, 1e-3, n_tiles=8).ratio
        assert r8 <= r2 * 1.02

    def test_wrong_inner_compressor_rejected(self, smooth2d):
        res = tile_compress(SZ14Compressor(), smooth2d, 1e-3, n_tiles=2)
        with pytest.raises(ContainerError):
            tile_decompress(GhostSZCompressor(), res.payload)

    def test_too_many_tiles_rejected(self, smooth2d):
        with pytest.raises(ShapeError):
            tile_compress(SZ14Compressor(), smooth2d, 1e-3,
                          n_tiles=smooth2d.shape[0])

    def test_rejects_1d(self, ramp1d):
        with pytest.raises(ShapeError):
            tile_compress(SZ14Compressor(), ramp1d, 1e-3, n_tiles=2)


class TestPlanBands:
    def test_too_many_tiles_names_feasible_max(self, smooth2d):
        from repro.parallel import plan_bands

        n0 = smooth2d.shape[0]
        with pytest.raises(ShapeError, match=f"at most {n0 // 2} tiles"):
            plan_bands(smooth2d, 1e-3, "vr_rel", n0)

    def test_clamp_reduces_to_feasible_max(self, smooth2d):
        from repro.parallel import plan_bands

        n0 = smooth2d.shape[0]
        _, slices = plan_bands(smooth2d, 1e-3, "vr_rel", n0, clamp=True)
        assert len(slices) == n0 // 2
        assert all(s.stop - s.start >= 2 for s in slices)
        assert slices[0].start == 0 and slices[-1].stop == n0

    def test_field_smaller_than_one_band_raises_even_clamped(self):
        from repro.parallel import plan_bands

        sliver = np.zeros((1, 8), dtype=np.float32)
        for clamp in (False, True):
            with pytest.raises(ShapeError, match="smaller than one"):
                plan_bands(sliver, 1e-3, "vr_rel", 1, clamp=clamp)

    def test_clamped_plan_round_trips(self):
        rng = np.random.default_rng(7)
        small = np.cumsum(
            rng.normal(size=(5, 12)), axis=1
        ).astype(np.float32)
        comp = SZ14Compressor()
        res = tile_compress(comp, small, 1e-3, n_tiles=2)
        out = tile_decompress(comp, res.payload)
        vr = float(small.max() - small.min())
        assert np.abs(out.astype(np.float64) - small).max() <= 1e-3 * vr
