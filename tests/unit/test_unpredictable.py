"""Unit tests for truncation-based binary analysis."""

import numpy as np
import pytest

from repro.errors import DTypeError
from repro.sz.unpredictable import (
    decode_truncated,
    encode_truncated,
    truncate_roundtrip,
)


class TestTruncation:
    @pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-6])
    def test_bound_respected_float32(self, eb):
        rng = np.random.default_rng(0)
        vals = (rng.standard_normal(2000) * rng.choice([1e-4, 1.0, 1e3], 2000)).astype(
            np.float32
        )
        payload = encode_truncated(vals, eb)
        dec = decode_truncated(payload, vals.size, eb, np.float32)
        assert (np.abs(dec.astype(np.float64) - vals) <= eb).all()

    def test_bound_respected_float64(self):
        rng = np.random.default_rng(1)
        vals = rng.standard_normal(500) * 100
        payload = encode_truncated(vals, 1e-6)
        dec = decode_truncated(payload, vals.size, 1e-6, np.float64)
        assert (np.abs(dec - vals) <= 1e-6).all()

    def test_roundtrip_helper_matches_codec(self):
        rng = np.random.default_rng(2)
        vals = (rng.standard_normal(1000) * 10).astype(np.float32)
        for eb in (1e-2, 1e-4):
            via_codec = decode_truncated(
                encode_truncated(vals, eb), vals.size, eb, np.float32
            )
            direct = truncate_roundtrip(vals, eb)
            assert (via_codec == direct).all()

    def test_truncation_never_increases_magnitude(self):
        rng = np.random.default_rng(3)
        vals = (rng.standard_normal(500) * 7).astype(np.float32)
        t = truncate_roundtrip(vals, 1e-3)
        assert (np.abs(t) <= np.abs(vals)).all()
        assert (np.sign(t) == np.sign(vals)).all() or (t[np.sign(t) != np.sign(vals)] == 0).all()

    def test_zero_and_subnormals(self):
        vals = np.array([0.0, -0.0, 1e-40, -1e-40], dtype=np.float32)
        dec = decode_truncated(encode_truncated(vals, 1e-3), 4, 1e-3, np.float32)
        assert (np.abs(dec.astype(np.float64) - vals) <= 1e-3).all()
        assert (dec == 0).all()  # subnormals collapse to signed zero

    def test_fewer_bits_for_looser_bound(self):
        rng = np.random.default_rng(4)
        vals = rng.standard_normal(3000).astype(np.float32)
        loose = encode_truncated(vals, 1e-1)
        tight = encode_truncated(vals, 1e-6)
        assert len(loose) < len(tight)

    def test_large_magnitudes_keep_full_exponent(self):
        vals = np.array([3.4e38, -2.9e37], dtype=np.float32)
        dec = decode_truncated(encode_truncated(vals, 1.0), 2, 1.0, np.float32)
        # Relative error of truncation at huge magnitude is ~2^-0 of the
        # bound exponent: must round-trip the exponent faithfully.
        assert np.sign(dec[0]) > 0 and np.sign(dec[1]) < 0
        assert np.abs(np.log2(np.abs(dec / vals))).max() < 1e-6

    def test_nonfinite_rejected(self):
        with pytest.raises(DTypeError):
            encode_truncated(np.array([np.inf], dtype=np.float32), 1e-3)
        with pytest.raises(DTypeError):
            truncate_roundtrip(np.array([np.nan], dtype=np.float32), 1e-3)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(DTypeError):
            encode_truncated(np.array([1], dtype=np.int32), 1e-3)

    def test_empty(self):
        assert encode_truncated(np.empty(0, np.float32), 1e-3) == b""
        out = decode_truncated(b"", 0, 1e-3, np.float32)
        assert out.size == 0
