"""Unit tests for the shared-memory transport layer (repro.service.shm).

Arena lifecycle (lease/release/pool/close), FieldRef round trips, the
worker-side view path, transport resolution, and the queue/job helpers
the micro-batcher relies on.
"""

import os
import pickle

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service.jobs import JobHandle, make_job
from repro.service.metrics import MetricsRegistry
from repro.service.queue import BoundedJobQueue
from repro.service.shm import (
    FieldRef,
    PickleTransport,
    ShmArena,
    ShmTransport,
    _view,
    resolve_transport,
    run_job_group,
)
from repro.service.workers import run_job

pytestmark = pytest.mark.skipif(
    not ShmArena.available(), reason="shared memory unavailable"
)


@pytest.fixture
def arena():
    a = ShmArena()
    yield a
    a.close()


@pytest.fixture
def field():
    return np.random.default_rng(3).normal(size=(20, 30)).astype(np.float32)


class TestArenaLifecycle:
    def test_allocate_lease_release_accounting(self, arena):
        name = arena.allocate(1000)
        assert arena.resident_bytes >= 1000
        assert arena.leased_segments == 1
        arena.lease(name)          # refs 2
        arena.release(name)        # refs 1
        assert arena.leased_segments == 1
        arena.release(name)        # refs 0 -> pooled
        assert arena.leased_segments == 0
        assert arena.resident_bytes > 0  # pooled, still mapped

    def test_pooled_segment_reused_same_name(self, arena):
        first = arena.allocate(5000)
        arena.release(first)
        second = arena.allocate(4097)  # same pow2 class
        assert second == first

    def test_names_never_reused_across_live_segments(self, arena):
        names = {arena.allocate(100) for _ in range(8)}
        assert len(names) == 8

    def test_zero_byte_allocation_rejected(self, arena):
        with pytest.raises(ServiceError):
            arena.allocate(0)

    def test_close_unlinks_everything_and_counts_leaks(self):
        metrics = MetricsRegistry()
        arena = ShmArena(metrics=metrics)
        leaked = arena.allocate(2048)   # never released: a "leak"
        pooled = arena.allocate(2048)
        arena.release(pooled)
        arena.close()
        assert arena.resident_bytes == 0
        assert arena.leaks_reclaimed == 1
        assert metrics.snapshot().events.get("shm.leaks_reclaimed") == 1
        assert not [
            e for e in os.listdir("/dev/shm")
            if e.startswith(arena.prefix)
        ]
        assert leaked != pooled

    def test_close_is_idempotent_and_arena_survives(self, arena):
        arena.allocate(100)
        arena.close()
        arena.close()
        name = arena.allocate(100)  # usable after close
        assert arena.leased_segments == 1
        arena.release(name)

    def test_reclaim_orphans_by_prefix(self, arena):
        from multiprocessing import shared_memory

        orphan = shared_memory.SharedMemory(
            name=f"{arena.prefix}o999x1", create=True, size=256
        )
        orphan.close()
        assert arena.reclaim_orphans() == 1
        assert arena.leaks_reclaimed == 1
        # already gone: scanning again finds nothing
        assert arena.reclaim_orphans() == 0

    def test_resident_gauge_published(self):
        metrics = MetricsRegistry()
        arena = ShmArena(metrics=metrics)
        arena.allocate(4096)
        assert metrics.snapshot().gauges["shm.resident_bytes"] >= 4096
        arena.close()
        assert metrics.snapshot().gauges["shm.resident_bytes"] == 0


class TestFieldRefs:
    def test_put_array_view_roundtrip(self, arena, field):
        ref = arena.put_array(field)
        assert ref.kind == "array"
        assert ref.shape == field.shape
        got = _view(ref)
        np.testing.assert_array_equal(np.asarray(got), field)
        assert not got.flags.writeable

    def test_put_bytes_roundtrip(self, arena):
        payload = os.urandom(300)
        ref = arena.put_bytes(payload)
        view = arena.buffer(ref.segment, ref.nbytes, ref.offset)
        assert bytes(view) == payload

    def test_fieldref_is_picklable(self, arena, field):
        ref = arena.put_array(field)
        again = pickle.loads(pickle.dumps(ref))
        assert again == ref

    def test_adopt_view_recognised_by_ref_of(self, arena, field):
        name = arena.allocate(field.nbytes)
        view = arena.adopt_view(name, field.dtype, field.shape)
        view[...] = field
        ref = arena.ref_of(view)
        assert ref is not None and ref.segment == name
        # a plain copy is not adopted
        assert arena.ref_of(field.copy()) is None
        # release drops the adoption record
        arena.release(name)
        assert arena.ref_of(view) is None


class TestTransports:
    def test_resolution_matrix(self):
        assert resolve_transport("auto", "process").name == "shm"
        assert resolve_transport("auto", "thread").name == "pickle"
        assert resolve_transport("auto", "inline").name == "pickle"
        assert resolve_transport("pickle", "process").name == "pickle"
        assert resolve_transport("shm", "thread").name == "pickle"
        with pytest.raises(ServiceError):
            resolve_transport("carrier-pigeon", "process")

    def test_small_jobs_fall_back_to_pickle_channel(self, field):
        transport = ShmTransport()
        job = make_job("sz10", field)  # 2.4 KB << SHM_MIN_BYTES
        env = transport.encode_job(job)
        assert env.fn is run_job
        env.release()
        transport.close()

    def test_shm_job_roundtrip_in_process(self, field):
        transport = ShmTransport(min_bytes=1)
        job = make_job("sz10", field)
        env = transport.encode_job(job)
        try:
            out = transport.decode_result(env.fn(*env.args))
        finally:
            env.release()
        assert out.payload == run_job(job).payload
        assert transport.arena.leased_segments == 0
        transport.close()

    def test_group_encoding_matches_individual_runs(self, field):
        transport = ShmTransport(min_bytes=1)
        jobs = [
            make_job("sz10", field + np.float32(i), eb=1e-3)
            for i in range(3)
        ]
        env = transport.encode_group(jobs)
        try:
            outs = env.fn(*env.args)
        finally:
            env.release()
        for job, out in zip(jobs, outs):
            assert out.payload == run_job(job).payload
        assert transport.arena.leased_segments == 0
        transport.close()

    def test_pickle_group_runs_plain_jobs(self, field):
        transport = PickleTransport()
        jobs = [make_job("sz10", field), make_job("sz10", field * 2)]
        env = transport.encode_group(jobs)
        outs = run_job_group(env.args[0])
        assert [o.payload for o in outs] == [
            run_job(j).payload for j in jobs
        ]
        env.release()


class TestBatchingHelpers:
    def _handle(self, priority=0):
        field = np.zeros((4, 4), dtype=np.float32)
        return JobHandle(make_job("sz10", field, priority=priority))

    def test_queue_peek_and_get_nowait(self):
        import asyncio

        async def main():
            q = BoundedJobQueue(8)
            assert q.peek() is None
            assert q.get_nowait() is None
            low, high = self._handle(0), self._handle(5)
            q.put_nowait(low)
            q.put_nowait(high)
            assert q.peek() is high          # priority order, not FIFO
            assert q.get_nowait() is high
            assert q.get_nowait() is low
            assert q.depth == 0

        asyncio.run(main())

    def test_batch_eligibility(self):
        field = np.zeros((8, 8), dtype=np.float32)
        assert make_job("sz10", field).batch_eligible
        assert not make_job(
            "wavesz-dp", field, n_tiles=2
        ).batch_eligible
