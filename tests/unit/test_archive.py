"""Unit tests for the multi-field snapshot archive."""

import numpy as np
import pytest

from repro import SZ14Compressor, WaveSZCompressor, load_field
from repro.errors import ContainerError
from repro.io import Archive


@pytest.fixture(scope="module")
def snapshot():
    return {
        "CLDLOW": load_field("CESM-ATM", "CLDLOW")[:48, :96],
        "TS": load_field("CESM-ATM", "TS")[:48, :96],
    }


class TestArchive:
    def test_build_and_extract(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive.build(snapshot, comp, 1e-3, "vr_rel")
        back = Archive.from_bytes(arch.to_bytes())
        assert back.field_names == ["CLDLOW", "TS"]
        for name, data in snapshot.items():
            out = back.extract(name, comp)
            vr = float(data.max() - data.min())
            assert np.abs(out.astype(np.float64) - data).max() <= 1e-3 * vr

    def test_manifest_metadata(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive.build(snapshot, comp)
        for entry in arch.entries:
            assert entry.variant == "SZ-1.4"
            assert entry.shape == (48, 96)
            assert entry.ratio > 1
            assert entry.compressed_bytes > 0

    def test_random_access_payload(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive.build(snapshot, comp)
        blob = arch.payload("TS")
        out = comp.decompress(blob)
        assert out.shape == (48, 96)

    def test_duplicate_name_rejected(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive()
        cf = comp.compress(snapshot["TS"], 1e-3, "vr_rel")
        arch.add_field("TS", cf)
        with pytest.raises(ContainerError):
            arch.add_field("TS", cf)

    def test_missing_field_rejected(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor())
        with pytest.raises(ContainerError):
            arch.extract("nope", SZ14Compressor())

    def test_variant_mismatch_rejected(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor())
        with pytest.raises(ContainerError):
            arch.extract("TS", WaveSZCompressor())

    def test_not_an_archive_rejected(self, snapshot):
        cf = SZ14Compressor().compress(snapshot["TS"], 1e-3)
        with pytest.raises(ContainerError):
            Archive.from_bytes(cf.payload)

    def test_mixed_variants(self, snapshot):
        arch = Archive()
        arch.add_field("a", SZ14Compressor().compress(snapshot["TS"], 1e-3))
        arch.add_field("b", WaveSZCompressor().compress(snapshot["CLDLOW"], 1e-3))
        back = Archive.from_bytes(arch.to_bytes())
        assert back.extract("a", SZ14Compressor()).shape == (48, 96)
        assert back.extract("b", WaveSZCompressor()).shape == (48, 96)


def _damage_field(blob: bytes, name: str) -> bytes:
    """Flip one bit inside a named field's payload section."""
    arch = Archive.from_bytes(blob)
    payload = arch.payload(name)
    idx = blob.index(payload)
    out = bytearray(blob)
    out[idx + len(payload) // 2] ^= 0x20
    return bytes(out)


class TestExtractAll:
    def test_extract_all_clean(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor(), 1e-3, "vr_rel")
        result = Archive.from_bytes(arch.to_bytes()).extract_all()
        assert result.ok
        assert set(result.fields) == {"CLDLOW", "TS"}
        for name, data in snapshot.items():
            vr = float(data.max() - data.min())
            err = np.abs(result.fields[name].astype(np.float64) - data).max()
            assert err <= 1e-3 * vr

    def test_extract_all_resolves_mixed_variants(self, snapshot):
        arch = Archive()
        arch.add_field("a", SZ14Compressor().compress(snapshot["TS"], 1e-3))
        arch.add_field("b", WaveSZCompressor().compress(snapshot["CLDLOW"], 1e-3))
        result = Archive.from_bytes(arch.to_bytes()).extract_all()
        assert result.ok and set(result.fields) == {"a", "b"}

    def test_damaged_field_strict_raises(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor(), 1e-3, "vr_rel")
        bad = _damage_field(arch.to_bytes(), "TS")
        with pytest.raises(ContainerError):
            Archive.from_bytes(bad)
        salvaged = Archive.from_bytes(bad, salvage=True)
        with pytest.raises(ContainerError):
            salvaged.extract_all(strict=True)

    def test_damaged_field_lenient_recovers_the_rest(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor(), 1e-3, "vr_rel")
        bad = _damage_field(arch.to_bytes(), "TS")
        result = Archive.from_bytes(bad, salvage=True).extract_all(strict=False)
        assert not result.ok
        assert set(result.fields) == {"CLDLOW"}
        assert len(result.damage) == 1
        d = result.damage[0]
        assert (d.name, d.variant, d.stage) == ("TS", "SZ-1.4", "container")
        assert "checksum" in d.error

    def test_damaged_extract_still_refused(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor(), 1e-3, "vr_rel")
        bad = _damage_field(arch.to_bytes(), "TS")
        salvaged = Archive.from_bytes(bad, salvage=True)
        with pytest.raises(ContainerError):
            salvaged.extract("TS", SZ14Compressor())
        assert salvaged.extract("CLDLOW", SZ14Compressor()).shape == (48, 96)
