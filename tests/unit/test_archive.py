"""Unit tests for the multi-field snapshot archive."""

import numpy as np
import pytest

from repro import SZ14Compressor, WaveSZCompressor, load_field
from repro.errors import ContainerError
from repro.io import Archive


@pytest.fixture(scope="module")
def snapshot():
    return {
        "CLDLOW": load_field("CESM-ATM", "CLDLOW")[:48, :96],
        "TS": load_field("CESM-ATM", "TS")[:48, :96],
    }


class TestArchive:
    def test_build_and_extract(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive.build(snapshot, comp, 1e-3, "vr_rel")
        back = Archive.from_bytes(arch.to_bytes())
        assert back.field_names == ["CLDLOW", "TS"]
        for name, data in snapshot.items():
            out = back.extract(name, comp)
            vr = float(data.max() - data.min())
            assert np.abs(out.astype(np.float64) - data).max() <= 1e-3 * vr

    def test_manifest_metadata(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive.build(snapshot, comp)
        for entry in arch.entries:
            assert entry.variant == "SZ-1.4"
            assert entry.shape == (48, 96)
            assert entry.ratio > 1
            assert entry.compressed_bytes > 0

    def test_random_access_payload(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive.build(snapshot, comp)
        blob = arch.payload("TS")
        out = comp.decompress(blob)
        assert out.shape == (48, 96)

    def test_duplicate_name_rejected(self, snapshot):
        comp = SZ14Compressor()
        arch = Archive()
        cf = comp.compress(snapshot["TS"], 1e-3, "vr_rel")
        arch.add_field("TS", cf)
        with pytest.raises(ContainerError):
            arch.add_field("TS", cf)

    def test_missing_field_rejected(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor())
        with pytest.raises(ContainerError):
            arch.extract("nope", SZ14Compressor())

    def test_variant_mismatch_rejected(self, snapshot):
        arch = Archive.build(snapshot, SZ14Compressor())
        with pytest.raises(ContainerError):
            arch.extract("TS", WaveSZCompressor())

    def test_not_an_archive_rejected(self, snapshot):
        cf = SZ14Compressor().compress(snapshot["TS"], 1e-3)
        with pytest.raises(ContainerError):
            Archive.from_bytes(cf.payload)

    def test_mixed_variants(self, snapshot):
        arch = Archive()
        arch.add_field("a", SZ14Compressor().compress(snapshot["TS"], 1e-3))
        arch.add_field("b", WaveSZCompressor().compress(snapshot["CLDLOW"], 1e-3))
        back = Archive.from_bytes(arch.to_bytes())
        assert back.extract("a", SZ14Compressor()).shape == (48, 96)
        assert back.extract("b", WaveSZCompressor()).shape == (48, 96)
