"""Unit tests for the client resilience primitives and the wire shims."""

import socket
import threading

import pytest

from repro.errors import CircuitOpenError
from repro.faults.netsim import (
    FlakyConnection,
    NetFault,
    NetFaultKind,
)
from repro.service.resilience import CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_delays_follow_capped_exponential_ceiling(self):
        p = RetryPolicy(attempts=6, base_s=0.1, cap_s=0.5, seed=1)
        for attempt in range(1, 6):
            ceiling = min(0.5, 0.1 * 2 ** (attempt - 1))
            for _ in range(20):
                assert 0 <= p.delay(attempt) <= ceiling

    def test_seeded_delays_reproduce(self):
        a = [RetryPolicy(seed=7).delay(k) for k in (1, 2, 3)]
        b = [RetryPolicy(seed=7).delay(k) for k in (1, 2, 3)]
        assert a == b

    def test_should_retry_budget(self):
        p = RetryPolicy(attempts=3)
        assert p.should_retry(1)
        assert p.should_retry(2)
        assert not p.should_retry(3)
        assert not RetryPolicy(attempts=1).should_retry(1)

    def test_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestCircuitBreaker:
    def _breaker(self, **kw):
        self.now = 0.0
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_after_s", 10.0)
        return CircuitBreaker(clock=lambda: self.now, **kw)

    def test_stays_closed_below_threshold(self):
        b = self._breaker()
        for _ in range(2):
            b.allow()
            b.record_failure()
        assert b.state == CircuitBreaker.CLOSED
        b.record_success()
        assert b.failures == 0

    def test_opens_at_threshold_and_refuses(self):
        b = self._breaker()
        for _ in range(3):
            b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert b.trips == 1
        with pytest.raises(CircuitOpenError, match="retry in"):
            b.allow()

    def test_half_open_probe_then_close(self):
        b = self._breaker()
        for _ in range(3):
            b.record_failure()
        self.now = 10.1  # cool-down elapsed
        b.allow()  # becomes the probe
        assert b.state == CircuitBreaker.HALF_OPEN
        b.record_success()
        assert b.state == CircuitBreaker.CLOSED
        b.allow()

    def test_half_open_failure_reopens(self):
        b = self._breaker()
        for _ in range(3):
            b.record_failure()
        self.now = 10.1
        b.allow()
        b.record_failure()  # the probe failed
        assert b.state == CircuitBreaker.OPEN
        assert b.trips == 2
        with pytest.raises(CircuitOpenError):
            b.allow()
        self.now = 20.2
        b.allow()  # a fresh cool-down elapsed

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


@pytest.fixture
def wire():
    """A connected socket pair; the far end is fed by the test."""
    a, b = socket.socketpair()
    yield a, b
    for s in (a, b):
        try:
            s.close()
        except OSError:
            pass


class TestFlakyConnection:
    def test_reset_after_n_bytes(self, wire):
        a, b = wire
        conn = FlakyConnection(
            a, NetFault(NetFaultKind.RESET, after_bytes=4)
        )
        b.sendall(b"12345678")
        assert conn.recv(4) == b"1234"
        with pytest.raises(ConnectionResetError, match="injected"):
            conn.recv(4)

    def test_stall_raises_timeout(self, wire):
        a, b = wire
        conn = FlakyConnection(
            a, NetFault(NetFaultKind.STALL, after_bytes=0)
        )
        with pytest.raises(TimeoutError, match="stalled"):
            conn.recv(1)

    def test_drip_caps_chunk_size(self, wire):
        a, b = wire
        conn = FlakyConnection(a, NetFault(NetFaultKind.DRIP, chunk=2))
        b.sendall(b"abcdef")
        out = b""
        while len(out) < 6:
            chunk = conn.recv(1024)
            assert len(chunk) <= 2
            out += chunk
        assert out == b"abcdef"

    def test_clean_connection_passthrough(self, wire):
        a, b = wire
        conn = FlakyConnection(a)

        def echo():
            data = b.recv(16)
            b.sendall(data.upper())

        t = threading.Thread(target=echo)
        t.start()
        conn.sendall(b"ping")
        assert conn.recv(16) == b"PING"
        t.join(5)
