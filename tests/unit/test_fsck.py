"""Unit tests for store fsck: finding taxonomy, repair convergence."""

import hashlib
import json

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.errors import SimulatedCrash, StoreError
from repro.faults.fsim import CrashFS, FsFault, FsFaultKind
from repro.store import ArrayStore


@pytest.fixture
def field():
    rng = np.random.default_rng(11)
    return rng.normal(size=(8, 12)).astype(np.float32)


@pytest.fixture
def store(tmp_path, field):
    s = ArrayStore(tmp_path / "store")
    s.put("a", field, "sz10", n_tiles=2)
    s.put("b", (field * 2).astype(np.float32), "sz10", n_tiles=2)
    return s


def _kinds(report):
    return sorted({f.kind for f in report.findings})


class TestCleanStore:
    def test_ok_fast_and_deep(self, store):
        for deep in (False, True):
            report = store.fsck(deep=deep)
            assert report.ok
            assert report.manifests_checked == 2
            assert report.objects_checked == 4
            assert "OK" in report.summary()
            report.assert_clean()

    def test_assert_clean_raises_on_findings(self, store):
        next(store._object_dir.iterdir()).unlink()
        with pytest.raises(StoreError, match="fsck found"):
            store.fsck().assert_clean()


class TestFindings:
    def test_missing_object_unrepairable(self, store):
        digest = store.manifest("a")["tiles"][0]
        store._object_path(digest).unlink()
        report = store.fsck(repair=True)
        assert _kinds(report) == ["missing-object"]
        assert not report.errors[0].repaired
        # no repair possible: a second pass still reports it
        assert not store.fsck().ok

    def test_digest_mismatch(self, store):
        digest = store.manifest("a")["tiles"][0]
        path = store._object_path(digest)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = store.fsck()
        assert "digest-mismatch" in _kinds(report)

    def test_orphan_object_repaired(self, store):
        store.delete("b")
        report = store.fsck(repair=True)
        orphans = [f for f in report.findings if f.kind == "orphan-object"]
        assert len(orphans) == 2
        assert all(f.repaired for f in orphans)
        assert store.fsck().ok  # convergence

    def test_foreign_file_flagged_not_deleted(self, store):
        alien = store._object_dir / "README.txt"
        alien.write_text("not an object")
        report = store.fsck(repair=True)
        assert "orphan-object" in _kinds(report)
        assert alien.exists()  # never auto-deleted

    def test_stale_tmp_swept(self, store):
        junk = store._manifest_dir / ".tmp-999-x.json"
        junk.write_bytes(b"partial")
        report = store.fsck(repair=True)
        assert "stale-tmp" in _kinds(report)
        assert not junk.exists()
        assert store.fsck().ok

    def test_bad_manifest_reported_not_deleted(self, store):
        mpath = store._manifest_path("a")
        mpath.write_text("{not json")
        report = store.fsck(repair=True)
        assert "bad-manifest" in _kinds(report)
        assert mpath.exists()

    def test_torn_journal_repaired(self, store):
        store._journal_dir.mkdir(parents=True, exist_ok=True)
        torn = store._journal_dir / "tx-1-1.json"
        torn.write_bytes(b'{"format": 1, "na')
        report = store.fsck(repair=True)
        assert "torn-journal" in _kinds(report)
        assert not torn.exists()
        assert store.fsck().ok

    def test_dangling_journal_rolled_back(self, tmp_path, field):
        root = tmp_path / "crashed"
        base = ArrayStore(root)
        base.put("a", field, "sz10", n_tiles=2)
        old = base.read("a").data
        fs = CrashFS(root, schedule=(FsFault(FsFaultKind.CRASH, 12),))
        with pytest.raises(SimulatedCrash):
            ArrayStore(root, fs=fs).put(
                "a", (field + 1).astype(np.float32), "sz10", n_tiles=2
            )
        fs.crash_and_restore(0)
        # open WITHOUT automatic recovery so fsck sees the raw state
        dirty = ArrayStore(root, recover=False)
        report = dirty.fsck(repair=True)
        assert "dangling-journal" in _kinds(report)
        assert dirty.fsck().ok
        np.testing.assert_array_equal(dirty.read("a").data, old)

    def test_deep_decode_damage(self, store, field):
        """An object that hashes right but decodes to the wrong shape."""
        wrong = get_codec("sz10").compress(
            np.ascontiguousarray(field[:2]), 1e-3, "vr_rel"
        ).payload
        digest = hashlib.sha256(wrong).hexdigest()
        store._object_path(digest).write_bytes(wrong)
        m = json.loads(store._manifest_path("a").read_text())
        m["tiles"][0] = digest
        store._manifest_path("a").write_text(json.dumps(m, sort_keys=True))
        assert all(
            f.kind == "orphan-object" for f in store.fsck().findings
        )  # fast pass cannot see it (the old tile is now unreferenced)
        report = store.fsck(deep=True)
        assert "decode-damage" in _kinds(report)


class TestReportShape:
    def test_summary_counts_kinds(self, store):
        store.delete("b")
        (store._object_dir / ".tmp-1-z").write_bytes(b"x")
        report = store.fsck()
        s = report.summary()
        assert "orphan-object=2" in s
        assert "stale-tmp=1" in s
        assert report.warnings and not report.errors

    def test_repair_counts_in_metrics(self, tmp_path, field):
        from repro.service.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        s = ArrayStore(tmp_path / "m", metrics=metrics)
        s.put("a", field, "sz10", n_tiles=2)
        s.delete("a")
        s.fsck(repair=True)
        assert metrics.snapshot().events["store.fsck_repairs"] == 2
