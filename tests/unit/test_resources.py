"""Unit tests for the Table 6 resource model."""

import pytest

from repro.errors import ModelError
from repro.fpga.device import ZC706
from repro.fpga.resources import (
    GZIP_IP_BRAM,
    design_resources,
    ghostsz_resources,
    wavesz_resources,
)

# Paper Table 6.
PAPER_WAVESZ = dict(bram=9, dsp=0, ff=4473, lut=8208)
PAPER_GHOSTSZ = dict(bram=20, dsp=51, ff=12615, lut=19718)


class TestWaveSZResources:
    def test_zero_dsp(self):
        """§3.3: base-2 operation removes every DSP from the PQD path."""
        assert wavesz_resources().dsp48e == 0

    def test_bram_matches_paper(self):
        assert wavesz_resources().bram_18k == PAPER_WAVESZ["bram"]

    def test_ff_lut_within_5pct(self):
        r = wavesz_resources()
        assert abs(r.ff - PAPER_WAVESZ["ff"]) / PAPER_WAVESZ["ff"] < 0.05
        assert abs(r.lut - PAPER_WAVESZ["lut"]) / PAPER_WAVESZ["lut"] < 0.05

    def test_utilization_small(self):
        """Table 6: waveSZ uses ~1 % FF / ~3.8 % LUT of the ZC706."""
        util = wavesz_resources().utilization(ZC706)
        assert util["FF"] < 1.5
        assert util["LUT"] < 4.5
        assert util["DSP48E"] == 0.0

    def test_scales_with_lanes(self):
        one = wavesz_resources(lanes=1)
        three = wavesz_resources(lanes=3)
        assert three.ff > 2.5 * one.ff
        assert three.bram_18k == 3 * one.bram_18k

    def test_rejects_zero_lanes(self):
        with pytest.raises(ModelError):
            wavesz_resources(lanes=0)


class TestGhostSZResources:
    def test_totals_near_paper(self):
        r = ghostsz_resources()
        assert r.bram_18k == PAPER_GHOSTSZ["bram"]
        assert abs(r.dsp48e - PAPER_GHOSTSZ["dsp"]) <= 5
        assert abs(r.ff - PAPER_GHOSTSZ["ff"]) / PAPER_GHOSTSZ["ff"] < 0.05
        assert abs(r.lut - PAPER_GHOSTSZ["lut"]) / PAPER_GHOSTSZ["lut"] < 0.05

    def test_ghostsz_heavier_than_wavesz(self):
        """The headline comparison: one GhostSZ pipeline outweighs three
        waveSZ PQD lanes in every resource class."""
        w = wavesz_resources()
        g = ghostsz_resources()
        assert g.ff > 2.0 * w.ff
        assert g.lut > 2.0 * w.lut
        assert g.dsp48e > w.dsp48e
        assert g.bram_18k > w.bram_18k

    def test_fits_device(self):
        g = ghostsz_resources()
        assert ZC706.fits(g.bram_18k, g.dsp48e, g.ff, g.lut)


class TestDesignResources:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ModelError):
            design_resources("x", {"warp_drive": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(ModelError):
            design_resources("x", {"fadd_logic": -1})

    def test_gzip_bram_constant(self):
        """§4.2 cites 303 BRAMs for the Xilinx gzip IP."""
        assert GZIP_IP_BRAM == 303
