"""Unit tests for the Order-{0,1,2} curve-fitting predictors."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sz.curvefit import CURVEFIT_WORKLOADS, bestfit_predict, curvefit_predict


class TestCurvefitPredict:
    def test_order0_previous_value(self):
        seq = np.array([1.0, 5.0, 2.0])
        p = curvefit_predict(seq, 0)
        assert np.isnan(p[0])
        assert p[1] == 1.0 and p[2] == 5.0

    def test_order1_exact_on_linear(self):
        seq = 3.0 + 2.0 * np.arange(50)
        p = curvefit_predict(seq, 1)
        assert np.abs((p - seq)[2:]).max() < 1e-12

    def test_order2_exact_on_quadratic(self):
        x = np.arange(50, dtype=float)
        seq = 1.0 - 0.5 * x + 0.25 * x * x
        p = curvefit_predict(seq, 2)
        assert np.abs((p - seq)[3:]).max() < 1e-9

    def test_order1_not_exact_on_quadratic(self):
        x = np.arange(50, dtype=float)
        seq = x * x
        p = curvefit_predict(seq, 1)
        assert np.abs((p - seq)[3:]).min() > 0.5

    def test_warmup_region_nan(self):
        seq = np.arange(10, dtype=float)
        for order in (0, 1, 2):
            p = curvefit_predict(seq, order)
            assert np.isnan(p[: order + 1]).all()
            assert not np.isnan(p[order + 1 :]).any()

    def test_invalid_order(self):
        with pytest.raises(ConfigError):
            curvefit_predict(np.arange(5.0), 3)


class TestBestfit:
    def test_picks_minimum_error_fit(self):
        x = np.arange(100, dtype=float)
        quad = 0.1 * x * x
        pred, order = bestfit_predict(quad)
        # after warm-up, quadratic fit dominates
        assert (order[5:] == 2).mean() > 0.9

    def test_bestfit_error_leq_each_order(self):
        rng = np.random.default_rng(0)
        seq = np.cumsum(rng.normal(size=300))
        pred, _ = bestfit_predict(seq)
        best_err = np.abs(pred - seq)
        for k in range(3):
            ek = np.abs(curvefit_predict(seq, k) - seq)
            ok = ~np.isnan(ek) & ~np.isnan(best_err)
            assert (best_err[ok] <= ek[ok] + 1e-12).all()

    def test_constant_sequence_prefers_order0_exact(self):
        seq = np.full(50, 2.5)
        pred, order = bestfit_predict(seq)
        assert np.abs((pred - seq)[1:]).max() == 0

    def test_workload_table_matches_paper_imbalance(self):
        """§2.2: quadratic fitting costs 2x the linear fitting."""
        assert CURVEFIT_WORKLOADS[2] == 2 * CURVEFIT_WORKLOADS[1]
        assert CURVEFIT_WORKLOADS[1] == 2 * CURVEFIT_WORKLOADS[0]
