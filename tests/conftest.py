"""Shared fixtures: small deterministic fields that exercise every regime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.fields import gaussian_random_field


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def smooth2d() -> np.ndarray:
    """A smooth 2D float32 field, unit-ish range, 48x80."""
    g = gaussian_random_field((48, 80), beta=4.0, seed=1)
    return (g / np.abs(g).max()).astype(np.float32)


@pytest.fixture(scope="session")
def saturated2d() -> np.ndarray:
    """Cloud-fraction-like field with exact 0/1 plateaus."""
    g = gaussian_random_field((48, 80), beta=4.0, seed=2)
    return np.clip(0.5 + 0.8 * g, 0.0, 1.0).astype(np.float32)


@pytest.fixture(scope="session")
def rough2d(rng) -> np.ndarray:
    """A noisy 2D field (hard to predict; exercises outliers)."""
    r = np.random.default_rng(3)
    return r.standard_normal((40, 60)).astype(np.float32)


@pytest.fixture(scope="session")
def smooth3d() -> np.ndarray:
    """A smooth 3D float32 field, 16x24x20."""
    g = gaussian_random_field((16, 24, 20), beta=3.5, seed=4)
    return (g / np.abs(g).max()).astype(np.float32)


@pytest.fixture(scope="session")
def ramp1d() -> np.ndarray:
    """A 1D field with a linear ramp plus wiggle."""
    x = np.linspace(0.0, 1.0, 500)
    return (x + 0.01 * np.sin(40 * x)).astype(np.float32)


@pytest.fixture
def fault_injector():
    """A deterministic fault injector (fixed seed, fresh per test)."""
    from repro.faults import FaultInjector

    return FaultInjector(seed=0xFA07)
