"""Golden-stream fixture generator for the codec-pipeline refactor.

Each golden is one container payload produced by a compressor variant on a
deterministic synthetic field.  The fixtures were captured *before* the
``repro.codec`` stage-pipeline migration; the post-refactor test suite
asserts that

* re-compressing the same input reproduces the stored payload bit-exactly
  (the on-wire format did not drift), and
* decoding the stored payload reproduces the originally decoded field
  bit-exactly (the decoders still read the pre-refactor format).

Run as a script to (re)generate ``golden_*.bin`` and ``manifest.json``::

    PYTHONPATH=src python tests/data/generate_goldens.py

Regeneration is only legitimate when the wire format changes *on purpose*
(a container version bump); the whole point of the fixtures is that casual
refactors must not need it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

DATA_DIR = Path(__file__).resolve().parent


def _smooth2d(shape: tuple[int, int], seed: int) -> np.ndarray:
    """A smooth-but-not-trivial 2D field with a few rough outlier points."""
    rng = np.random.default_rng(seed)
    i = np.arange(shape[0], dtype=np.float64)[:, None]
    j = np.arange(shape[1], dtype=np.float64)[None, :]
    base = np.sin(i / 6.0) * np.cos(j / 9.0) + 0.05 * np.sin(i * j / 40.0)
    noise = 0.01 * rng.standard_normal(shape)
    field = base + noise
    # a handful of spikes so every variant exercises its outlier stream
    n_spikes = max(2, field.size // 200)
    pos = rng.integers(0, field.size, size=n_spikes)
    field.reshape(-1)[pos] += rng.standard_normal(n_spikes) * 3.0
    return field.astype(np.float32)


def _smooth3d(shape: tuple[int, int, int], seed: int) -> np.ndarray:
    """A smooth 3D field (stacked modulated planes) with a few spikes."""
    rng = np.random.default_rng(seed)
    k = np.arange(shape[0], dtype=np.float64)[:, None, None]
    i = np.arange(shape[1], dtype=np.float64)[None, :, None]
    j = np.arange(shape[2], dtype=np.float64)[None, None, :]
    field = np.cos(k / 4.0) * np.sin(i / 5.0) * np.cos(j / 7.0)
    field = field + 0.01 * rng.standard_normal(shape)
    n_spikes = max(2, field.size // 200)
    pos = rng.integers(0, field.size, size=n_spikes)
    field.reshape(-1)[pos] += rng.standard_normal(n_spikes) * 3.0
    return field.astype(np.float32)


def _smooth1d(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 6.0, n)
    field = np.sin(x) + 0.2 * np.cos(5.0 * x) + 0.01 * rng.standard_normal(n)
    return field.astype(np.float32)


def make_input(key: str) -> np.ndarray:
    """Deterministic input field for one golden key."""
    if key == "sz10":
        return _smooth1d(240, seed=1010)
    if key == "sz14":
        return _smooth2d((24, 32), seed=1414)
    if key == "sz14_pwrel":
        data = _smooth2d((24, 32), seed=1415)
        return (np.abs(data) + 0.25).astype(np.float32)  # positive-dominated
    if key == "sz20":
        return _smooth2d((24, 32), seed=2020)
    if key == "ghostsz":
        return _smooth2d((16, 48), seed=4242)
    if key in ("wavesz", "wavesz_g", "wavesz_dp"):
        return _smooth2d((16, 48), seed=3131)
    if key == "wavesz_dp_3d":
        return _smooth3d((8, 12, 16), seed=7878)
    if key == "zfp":
        return _smooth2d((24, 32), seed=9999)
    if key == "sz14_rans":
        return _smooth2d((24, 32), seed=1414)
    if key in ("wavesz_dp_rans", "wavesz_dp_auto"):
        return _smooth2d((16, 48), seed=3131)
    if key == "wavesz_dp_rans_3d":
        return _smooth3d((8, 12, 16), seed=7878)
    if key == "wavesz_dp_rans_1d":
        return _smooth1d(2000, seed=6060)
    raise KeyError(f"unknown golden key {key!r}")


def make_compressor(key: str):
    """The compressor instance each golden was captured with."""
    from repro.ghostsz import GhostSZCompressor
    from repro.core import WaveSZCompressor, WaveSZDPCompressor
    from repro.sz import SZ10Compressor, SZ14Compressor, SZ20Compressor
    from repro.zfp import ZFPCompressor

    factories = {
        "sz10": SZ10Compressor,
        "sz14": SZ14Compressor,
        "sz14_pwrel": SZ14Compressor,
        "sz20": SZ20Compressor,
        "ghostsz": GhostSZCompressor,
        "wavesz": lambda: WaveSZCompressor(use_huffman=True),
        "wavesz_g": lambda: WaveSZCompressor(use_huffman=False),
        "wavesz_dp": WaveSZDPCompressor,
        "wavesz_dp_3d": WaveSZDPCompressor,
        "zfp": ZFPCompressor,
        # rANS-backend goldens (PR 9): same variants, entropy knob flipped
        "sz14_rans": lambda: SZ14Compressor(entropy="rans"),
        "wavesz_dp_rans": lambda: WaveSZDPCompressor(entropy="rans"),
        "wavesz_dp_rans_3d": lambda: WaveSZDPCompressor(entropy="rans"),
        "wavesz_dp_rans_1d": lambda: WaveSZDPCompressor(entropy="rans"),
        "wavesz_dp_auto": lambda: WaveSZDPCompressor(entropy="auto"),
    }
    return factories[key]()


#: key -> (eb, mode)
GOLDEN_PARAMS: dict[str, tuple[float, str]] = {
    "sz10": (1e-3, "vr_rel"),
    "sz14": (1e-3, "vr_rel"),
    "sz14_pwrel": (1e-2, "pw_rel"),
    "sz20": (1e-3, "vr_rel"),
    "ghostsz": (1e-3, "vr_rel"),
    "wavesz": (1e-3, "vr_rel"),
    "wavesz_g": (1e-3, "vr_rel"),
    "wavesz_dp": (1e-3, "vr_rel"),
    "wavesz_dp_3d": (1e-3, "abs"),
    "zfp": (1e-3, "vr_rel"),
    "sz14_rans": (1e-3, "vr_rel"),
    "wavesz_dp_rans": (1e-3, "vr_rel"),
    "wavesz_dp_rans_3d": (1e-3, "abs"),
    "wavesz_dp_rans_1d": (1e-3, "vr_rel"),
    "wavesz_dp_auto": (1e-3, "vr_rel"),
}


def sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def main() -> None:
    manifest: dict[str, dict] = {}
    for key, (eb, mode) in GOLDEN_PARAMS.items():
        data = make_input(key)
        comp = make_compressor(key)
        cf = comp.compress(data, eb, mode)
        out = comp.decompress(cf.payload)
        path = DATA_DIR / f"golden_{key}.bin"
        path.write_bytes(cf.payload)
        manifest[key] = {
            "variant": cf.variant,
            "eb": eb,
            "mode": mode,
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "payload_bytes": len(cf.payload),
            "payload_sha256": sha256(cf.payload),
            "output_sha256": sha256(np.ascontiguousarray(out).tobytes()),
        }
        print(f"{key:<12} {cf.variant:<9} {len(cf.payload):>7} B  "
              f"ratio {cf.stats.ratio:.2f}x")
    (DATA_DIR / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


if __name__ == "__main__":
    main()
