"""Integration: cross-cutting behaviours — file IO round trips, backend
interchange, container safety, public API surface."""

import numpy as np
import pytest

import repro
from repro import (
    GhostSZCompressor,
    SZ14Compressor,
    WaveSZCompressor,
    load_field,
)
from repro.io import read_raw_field, write_raw_field
from repro.lossless import GzipStage, LosslessBackend, LosslessMode


class TestFileWorkflow:
    def test_sdrb_dump_compress_cycle(self, tmp_path):
        """The artifact workflow: raw .f32 -> compress -> decompress."""
        x = load_field("CESM-ATM", "CLDHGH")
        raw = tmp_path / "CLDHGH.f32"
        write_raw_field(raw, x)
        loaded = read_raw_field(raw, x.shape, np.float32)
        comp = WaveSZCompressor(use_huffman=True)
        cf = comp.compress(loaded, 1e-3, "vr_rel")
        blob = tmp_path / "CLDHGH.wsz"
        blob.write_bytes(cf.payload)
        out = comp.decompress(blob.read_bytes())
        assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute
        assert blob.stat().st_size < raw.stat().st_size

    def test_compressed_smaller_than_raw_for_all_variants(self, tmp_path):
        x = load_field("CESM-ATM", "PSL")[:60, :120]
        for comp in (GhostSZCompressor(), WaveSZCompressor(), SZ14Compressor()):
            cf = comp.compress(x, 1e-3, "vr_rel")
            assert len(cf.payload) < x.nbytes


class TestBackendInterchange:
    def test_zlib_compressed_ours_decompressed(self, smooth2d):
        """A field compressed with the zlib backend decompresses with the
        default stage (backends are distinguished by magic)."""
        c_z = SZ14Compressor(
            lossless=GzipStage(LosslessMode.BEST_SPEED, LosslessBackend.ZLIB)
        )
        cf = c_z.compress(smooth2d, 1e-3)
        out = SZ14Compressor().decompress(cf)
        assert np.abs(out.astype(np.float64) - smooth2d).max() <= cf.bound.absolute


class TestContainerSafety:
    def test_each_variant_rejects_others(self, smooth2d):
        comps = [GhostSZCompressor(), WaveSZCompressor(), SZ14Compressor()]
        payloads = {c.name: c.compress(smooth2d, 1e-3).payload for c in comps}
        for producer, blob in payloads.items():
            for consumer in comps:
                if consumer.name == producer:
                    continue
                with pytest.raises(repro.ReproError):
                    consumer.decompress(blob)

    def test_truncated_payload_raises(self, smooth2d):
        cf = SZ14Compressor().compress(smooth2d, 1e-3)
        with pytest.raises(Exception):
            SZ14Compressor().decompress(cf.payload[: len(cf.payload) // 3])


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        """The README/docstring quickstart must actually work."""
        field = load_field("CESM-ATM", "CLDLOW")
        wavesz = WaveSZCompressor(use_huffman=True)
        compressed = wavesz.compress(field, eb=1e-3, mode="vr_rel")
        restored = wavesz.decompress(compressed)
        assert np.abs(restored - field).max() <= compressed.bound.absolute
        assert compressed.stats.ratio > 1
