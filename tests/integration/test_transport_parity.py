"""Transport parity and hygiene: shm and pickle must be indistinguishable.

The service's core promise is that *how* a field reaches a worker never
changes *what* comes back: every (transport × pool kind × codec) cell of
the matrix must produce the byte-exact payload of the direct library
call.  Plus hygiene: a stopped scheduler holds zero shared-memory
segments, micro-batching preserves results while cutting dispatches, and
a server on the shm transport answers identically to one on pickle.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.parallel import tile_compress
from repro.service import BatchScheduler, CompressionServer, ServiceClient
from repro.service.jobs import make_job
from repro.service.scheduler import run_batch
from repro.service.shm import ShmArena

needs_shm = pytest.mark.skipif(
    not ShmArena.available(), reason="shared memory unavailable"
)

RNG = np.random.default_rng(77)
FIELD = RNG.normal(size=(48, 64)).astype(np.float32)
SMALL = RNG.normal(size=(10, 12)).astype(np.float32)


def _direct(codec, data, n_tiles=1):
    if n_tiles > 1:
        return tile_compress(
            get_codec(codec), data, 1e-3, "vr_rel", n_tiles=n_tiles
        ).payload
    return get_codec(codec).compress(data, 1e-3, "vr_rel").payload


class TestParityMatrix:
    @pytest.mark.parametrize("pool_kind", ["process", "thread", "inline"])
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    @pytest.mark.parametrize("codec,n_tiles", [("sz14", 1), ("wavesz-dp", 2)])
    def test_byte_identical_with_direct_path(
        self, pool_kind, transport, codec, n_tiles
    ):
        jobs = [
            make_job(codec, FIELD, eb=1e-3, n_tiles=n_tiles),
            make_job(codec, SMALL, eb=1e-3),
        ]
        results, _ = run_batch(
            jobs, workers=2, pool_kind=pool_kind, transport=transport
        )
        assert results[0].output == _direct(codec, FIELD, n_tiles)
        assert results[1].output == _direct(codec, SMALL)

    @needs_shm
    def test_forced_shm_ships_large_fields_by_ref(self):
        """With the threshold floored, even small fields ride segments."""

        async def main():
            sched = BatchScheduler(
                workers=2, pool_kind="process", transport="shm"
            )
            sched.transport.min_bytes = 1
            async with sched:
                handle = await sched.submit(make_job("sz14", FIELD, eb=1e-3))
                result = await sched.wait(handle)
            return result.output

        assert asyncio.run(main()) == _direct("sz14", FIELD)

    def test_decompress_parity_across_transports(self):
        payload = _direct("sz14", FIELD)
        for transport in ("shm", "pickle"):
            results, _ = run_batch(
                [make_job("auto", op="decompress", payload=payload)],
                workers=2, pool_kind="process", transport=transport,
            )
            out = results[0].output
            ref = get_codec("sz14").decompress(
                get_codec("sz14").compress(FIELD, 1e-3, "vr_rel")
            )
            np.testing.assert_array_equal(out, ref)


class TestMicroBatching:
    def test_batched_results_identical_and_dispatches_coalesced(self):
        jobs = [
            make_job("sz10", SMALL + np.float32(i), eb=1e-3)
            for i in range(8)
        ]
        batched, stats = run_batch(
            jobs, workers=1, pool_kind="inline", batch_bytes=1 << 20
        )
        plain, _ = run_batch(jobs, workers=1, pool_kind="inline")
        for b, p in zip(batched, plain):
            assert b.output == p.output
        events = stats.events
        assert events.get("batch.dispatches", 0) >= 1
        assert events.get("batch.jobs", 0) == 8
        # fewer worker round-trips than jobs is the whole point
        assert events["batch.dispatches"] < 8
        assert stats.gauges["batch.occupancy"] > 1.0

    def test_multi_tile_jobs_never_batch(self):
        jobs = [
            make_job("wavesz-dp", FIELD, eb=1e-3, n_tiles=2),
            make_job("wavesz-dp", FIELD, eb=1e-3, n_tiles=2),
        ]
        results, stats = run_batch(
            jobs, workers=1, pool_kind="inline", batch_bytes=1 << 30
        )
        assert stats.events.get("batch.dispatches", 0) == 0
        for r in results:
            assert r.output == _direct("wavesz-dp", FIELD, 2)

    def test_worker_fn_seam_bypasses_batching(self):
        async def main():
            sched = BatchScheduler(
                workers=1, pool_kind="inline", batch_bytes=1 << 30
            )
            sched._worker_fn = lambda job: b"substituted"
            async with sched:
                handles = [
                    await sched.submit(make_job("sz10", SMALL, eb=1e-3))
                    for _ in range(3)
                ]
                outs = [
                    (await sched.wait(h)).output for h in handles
                ]
            assert outs == [b"substituted"] * 3
            return sched.metrics.snapshot().events

        events = asyncio.run(main())
        assert events.get("batch.dispatches", 0) == 0


@needs_shm
class TestLeakHygiene:
    def test_zero_resident_segments_after_stop(self):
        async def main():
            sched = BatchScheduler(
                workers=2, pool_kind="process", transport="shm",
                batch_bytes=4096,
            )
            sched.transport.min_bytes = 1
            async with sched:
                handles = [
                    await sched.submit(
                        make_job("sz14", FIELD + np.float32(i), eb=1e-3)
                    )
                    for i in range(4)
                ]
                for h in handles:
                    await sched.wait(h)
                arena = sched.transport.arena
                assert arena.leased_segments == 0  # all leases settled
            return sched.transport.arena

        arena = asyncio.run(main())
        assert arena.resident_bytes == 0
        import os

        assert not [
            e for e in os.listdir("/dev/shm") if e.startswith(arena.prefix)
        ]


class _ServerFixture:
    def __init__(self, **kwargs):
        self.loop = asyncio.new_event_loop()
        self.srv = CompressionServer(port=0, **kwargs)
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.srv.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        assert started.wait(10)

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.srv.stop(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


@needs_shm
class TestServerTransportParity:
    def test_shm_and_pickle_servers_answer_identically(self):
        # big enough to cross SHM_MIN_BYTES: the shm server really does
        # stream socket -> segment for this field
        big = RNG.normal(size=(192, 128)).astype(np.float32)
        payloads, healths = [], []
        for transport in ("shm", "pickle"):
            fx = _ServerFixture(
                workers=2, pool_kind="process", transport=transport,
                batch_bytes=4096,
            )
            try:
                with ServiceClient(port=fx.srv.port) as c:
                    healths.append(c.health())
                    payload, _ = c.compress(big, "sz14", eb=1e-3)
                    payloads.append(bytes(payload))
                    small_payload, _ = c.compress(SMALL, "sz14", eb=1e-3)
                    assert bytes(small_payload) == _direct("sz14", SMALL)
                    np.testing.assert_array_equal(
                        c.decompress(payload),
                        c.decompress(payloads[0]),
                    )
            finally:
                fx.stop()
        assert payloads[0] == payloads[1] == _direct("sz14", big)
        assert healths[0]["transport"] == "shm"
        assert healths[1]["transport"] == "pickle"
        assert healths[0]["batch_bytes"] == 4096
