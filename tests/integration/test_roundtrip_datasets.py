"""Integration: every compressor round-trips every synthetic dataset field
within the bound — the paper's hard guarantee across the full evaluation
matrix (small scaled fields to keep CI quick)."""

import numpy as np
import pytest

from repro import (
    GhostSZCompressor,
    SZ14Compressor,
    WaveSZCompressor,
    load_field,
    verify_error_bound,
)
from repro.data import DATASETS

COMPRESSORS = [
    GhostSZCompressor(),
    WaveSZCompressor(),
    WaveSZCompressor(use_huffman=True),
    SZ14Compressor(),
]

# One representative field per dataset keeps this matrix fast; the full
# sweep runs in the Table 7 bench.
FIELDS = [
    ("CESM-ATM", "CLDLOW"),
    ("CESM-ATM", "TS"),
    ("Hurricane", "Uf48"),
    ("Hurricane", "CLOUDf48"),
    ("NYX", "baryon_density"),
    ("NYX", "dark_matter_density"),
]


def _shrink(x: np.ndarray) -> np.ndarray:
    """Crop to a quick-to-compress window, preserving dimensionality."""
    if x.ndim == 2:
        return np.ascontiguousarray(x[:60, :120])
    return np.ascontiguousarray(x[:16, :40, :40])


@pytest.mark.parametrize("dataset,field", FIELDS)
@pytest.mark.parametrize("comp", COMPRESSORS, ids=lambda c: f"{c.name}")
def test_bound_on_dataset_fields(dataset, field, comp):
    x = _shrink(load_field(dataset, field))
    cf = comp.compress(x, 1e-3, "vr_rel")
    out = comp.decompress(cf)
    verify_error_bound(x, out, cf.bound.absolute)
    assert out.dtype == x.dtype
    assert cf.stats.ratio > 1.0


@pytest.mark.parametrize("dataset", list(DATASETS))
def test_vr_rel_bound_matches_user_request(dataset):
    """The *user-facing* guarantee: error <= eb * range, base-2 or not."""
    field = DATASETS[dataset].field_names[0]
    x = _shrink(load_field(dataset, field))
    vr = float(x.max() - x.min())
    for comp in COMPRESSORS:
        out = comp.decompress(comp.compress(x, 1e-3, "vr_rel"))
        assert np.abs(out.astype(np.float64) - x).max() <= 1e-3 * vr * (1 + 1e-9)
