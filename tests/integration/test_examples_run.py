"""Integration: every example script runs to completion.

Examples are the public face of the library; a broken example is a broken
deliverable.  The slower, sweep-style examples are exercised through
their ``main()`` in-process (so coverage still sees them) with output
captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Examples print to stdout; run each as __main__ and require a clean
    # exit plus non-trivial output.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script.name} produced no meaningful output"
