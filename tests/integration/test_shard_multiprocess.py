"""Multi-process shard smoke: real ``wavesz serve`` subprocesses.

The in-process cluster tests elide the process boundary; this one does
not.  Three ``python -m repro.cli serve --store ...`` children on
loopback form a 3-shard / replicas=2 cluster behind a
:class:`ShardGateway`.  We check:

* replicated puts spread objects across the children's store roots;
* full and windowed reads are bit-exact with a local ArrayStore;
* SIGKILLing one child (a real process death, not a polite close)
  leaves every read answerable and visible in ``status()``;
* aggregate cold-slice latency through the sharded gateway stays within
  a generous factor of a single-server baseline — a structural "the
  fan-out isn't pathological" floor, not a benchmark (CI boxes jitter;
  ``benchmarks/bench_store_sharded.py`` measures properly).
"""

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.fields import gaussian_random_field
from repro.shard import ShardGateway, ShardMap
from repro.store import ArrayStore

REPO = Path(__file__).resolve().parents[2]
_LISTEN = re.compile(r"listening on (\d+\.\d+\.\d+\.\d+:\d+)")


def _spawn_server(root: Path) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", str(root), "--port", "0",
         "--workers", "1", "--pool", "thread"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO),
    )
    box: list[str] = []

    def read_banner() -> None:
        box.append(proc.stdout.readline())

    t = threading.Thread(target=read_banner, daemon=True)
    t.start()
    t.join(20)
    if not box or not box[0]:
        proc.kill()
        raise RuntimeError("shard server produced no banner")
    m = _LISTEN.search(box[0])
    if m is None:
        proc.kill()
        raise RuntimeError(f"unparseable banner: {box[0]!r}")
    return proc, m.group(1)


@pytest.fixture(scope="module")
def field():
    g = gaussian_random_field((96, 128), beta=3.8, seed=4242)
    return (g / np.abs(g).max()).astype(np.float32)


@pytest.fixture(scope="module")
def procs(tmp_path_factory):
    spawned = []
    try:
        for i in range(3):
            spawned.append(
                _spawn_server(tmp_path_factory.mktemp(f"proc-shard{i}"))
            )
        yield spawned
    finally:
        for proc, _ in spawned:
            if proc.poll() is None:
                proc.kill()
        for proc, _ in spawned:
            proc.wait(10)


@pytest.fixture(scope="module")
def addresses(procs):
    return [addr for _, addr in procs]


@pytest.fixture(scope="module")
def reference(tmp_path_factory, field):
    store = ArrayStore(tmp_path_factory.mktemp("proc-local"))
    store.put("mp.ts", field, "wavesz", eb=1e-3, n_tiles=8)
    return store


def _gateway(addresses, **kwargs) -> ShardGateway:
    return ShardGateway(
        ShardMap.from_addresses(addresses, replicas=2), **kwargs
    )


class TestMultiProcessCluster:
    def test_put_spreads_objects_across_processes(
        self, addresses, procs, field, tmp_path_factory
    ):
        with _gateway(addresses) as gw:
            put = gw.put("mp.ts", field, "wavesz", eb=1e-3, n_tiles=8)
        assert not put.degraded
        assert len(put.per_shard) >= 2, "all replicas landed on one process"
        # the objects really are in different OS processes' directories:
        # no single root holds every digest, every digest is somewhere
        roots = [Path(p.args[p.args.index("--store") + 1])
                 for p, _ in procs]
        holders = {
            d: sum((r / "objects" / d).exists() for r in roots)
            for d in put.tile_digests
        }
        assert all(n >= 1 for n in holders.values())
        per_root = [sum((r / "objects" / d).exists()
                        for d in put.tile_digests) for r in roots]
        assert max(per_root) < len(set(put.tile_digests)) * 2

    def test_reads_bit_exact_with_local_store(self, addresses, reference):
        expect = reference.read("mp.ts").data
        with _gateway(addresses) as gw:
            np.testing.assert_array_equal(gw.read("mp.ts").data, expect)
            window = gw.read_slice("mp.ts", (slice(10, 50), slice(3, 97)))
        np.testing.assert_array_equal(window.data, expect[10:50, 3:97])

    def test_aggregate_cold_slices_not_pathological(
        self, addresses, tmp_path_factory, field, reference
    ):
        single_root = tmp_path_factory.mktemp("proc-single")
        sproc, saddr = _spawn_server(single_root)
        try:
            with _gateway([saddr]) as gw:
                gw.put("mp.ts", field, "wavesz", eb=1e-3, n_tiles=8)

            def cold_runs(addrs, n=3) -> float:
                best = float("inf")
                for _ in range(n):
                    with _gateway(addrs) as gw:  # fresh gateway: cold cache
                        t0 = time.perf_counter()
                        r = gw.read_slice("mp.ts", (None, slice(0, 128)))
                        best = min(best, time.perf_counter() - t0)
                    assert r.ok
                return best

            sharded = cold_runs(addresses)
            single = cold_runs([saddr])
        finally:
            sproc.kill()
            sproc.wait(10)
        # generous floor: shard-parallel prefetch must not cost more
        # than 4x a single server end-to-end (it is usually faster)
        assert sharded < max(single * 4.0, 0.5), (
            f"sharded cold slice {sharded:.3f}s vs single {single:.3f}s"
        )

    def test_sigkill_one_process_reads_survive(
        self, addresses, procs, reference
    ):
        expect = reference.read("mp.ts").data
        with _gateway(addresses) as gw:
            victim_sid = gw.ring.owner(
                reference.manifest("mp.ts")["tiles"][0]
            )
        vi = addresses.index(victim_sid)
        proc = procs[vi][0]
        proc.kill()
        proc.wait(10)
        with _gateway(addresses) as gw:
            result = gw.read("mp.ts")
            assert result.ok
            np.testing.assert_array_equal(result.data, expect)
            window = gw.read_slice("mp.ts", (slice(5, 60), None))
            np.testing.assert_array_equal(window.data, expect[5:60])
            status = gw.status()
        assert status["shards_up"] == 2
        assert status["shards"][victim_sid]["up"] is False
