"""Crash-recovery suite: kill a put at *every* filesystem step.

The central durability claim — *an acked put is durable, an interrupted
put is invisible* — proven exhaustively rather than statistically: a dry
run counts the exact mutation steps an update put performs, then one
test case per step kills the process right there, pulls the power, and
checks the reopened store.
"""

import shutil

import numpy as np
import pytest

from repro.errors import SimulatedCrash, StoreError
from repro.faults.fsim import CrashFS, FsFault, FsFaultKind
from repro.store import ArrayStore

EB = 1e-3


def _field(seed, shape=(8, 12)):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape).astype(np.float32)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """A template store with two datasets plus its bit-exact reads."""
    root = tmp_path_factory.mktemp("crash") / "template"
    store = ArrayStore(root)
    store.put("keep", _field(1), "sz10", EB, n_tiles=2)
    store.put("target", _field(2), "sz10", EB, n_tiles=2)
    return {
        "root": root,
        "keep": store.read("keep").data,
        "old": store.read("target").data,
    }


def _update(root, fs=None):
    store = ArrayStore(root, fs=fs) if fs else ArrayStore(root)
    return store.put(
        "target", (_field(2) + 0.5).astype(np.float32), "sz10", EB,
        n_tiles=2,
    )


@pytest.fixture(scope="module")
def n_steps(baseline, tmp_path_factory):
    """Count the filesystem steps of one undisturbed update put."""
    scratch = tmp_path_factory.mktemp("dry") / "s"
    shutil.copytree(baseline["root"], scratch)
    fs = CrashFS(scratch)
    _update(scratch, fs)
    assert fs.step >= 15, "journalled put should take many fs steps"
    return fs.step


def _new_value(baseline, tmp_path):
    scratch = tmp_path / "expected"
    shutil.copytree(baseline["root"], scratch)
    _update(scratch)
    return ArrayStore(scratch).read("target").data


@pytest.mark.parametrize("step", range(1, 22))
def test_kill_at_step(step, baseline, n_steps, tmp_path):
    if step > n_steps:
        pytest.skip(f"update put only takes {n_steps} steps")
    scratch = tmp_path / "s"
    shutil.copytree(baseline["root"], scratch)
    fs = CrashFS(
        scratch,
        schedule=(FsFault(FsFaultKind.CRASH, step, seed=step),),
        seed=step,
    )
    acked = False
    try:
        _update(scratch, fs)
        acked = True
    except SimulatedCrash:
        pass
    assert not acked, "the schedule must kill before the ack"
    journal_unlinked = any(
        op == "unlink" and "journal" in key for op, key in fs.ops
    )
    fs.crash_and_restore(1000 + step)

    store = ArrayStore(scratch)  # recovery runs here — must not raise
    np.testing.assert_array_equal(
        store.read("keep").data, baseline["keep"]
    )
    target = store.read("target").data
    if not journal_unlinked:
        # killed before the commit point: the put must be invisible.
        np.testing.assert_array_equal(target, baseline["old"])
    else:
        # killed inside the commit window: old or new, never a hybrid.
        new = _new_value(baseline, tmp_path)
        assert (
            np.array_equal(target, baseline["old"])
            or np.array_equal(target, new)
        )
    store.fsck(repair=True)
    report = store.fsck(deep=True)
    assert report.ok, report.summary()


class TestSurvivableFaults:
    @pytest.mark.parametrize("kind", [
        FsFaultKind.ENOSPC, FsFaultKind.FAIL_RENAME,
    ])
    @pytest.mark.parametrize("step", [4, 6, 8, 10, 12, 14, 16, 18])
    def test_failed_put_rolls_back_immediately(
        self, kind, step, baseline, n_steps, tmp_path
    ):
        """Writes happen at steps 4/8/12/16, renames at 6/10/14/18; a
        fault that misses its op kind is survivable noise and the put
        simply succeeds."""
        scratch = tmp_path / "s"
        shutil.copytree(baseline["root"], scratch)
        fs = CrashFS(
            scratch, schedule=(FsFault(kind, step, seed=step),), seed=step
        )
        try:
            _update(scratch, fs)
            fired = False  # the fault missed its op kind at this step
        except StoreError:
            fired = True
        store = ArrayStore(scratch)
        if fired:
            np.testing.assert_array_equal(
                store.read("target").data, baseline["old"]
            )
            assert store.fsck(deep=True).ok
        else:
            # the put went through; the superseded tiles are orphan
            # *warnings* awaiting gc, never errors.
            assert not store.fsck(deep=True).errors

    def test_rollback_restores_prior_manifest_text(
        self, baseline, tmp_path
    ):
        scratch = tmp_path / "s"
        shutil.copytree(baseline["root"], scratch)
        before = (scratch / "manifests" / "target.json").read_bytes()
        # step 18 is the manifest rename itself — the worst place to fail
        fs = CrashFS(
            scratch,
            schedule=(FsFault(FsFaultKind.FAIL_RENAME, 18, seed=1),),
        )
        with pytest.raises(StoreError, match="rolled back"):
            _update(scratch, fs)
        assert (scratch / "manifests" / "target.json").read_bytes() == before


class TestRecoveryItself:
    def test_crash_during_recovery_recovers(self, baseline, tmp_path):
        """Recovery is idempotent: killing the rollback re-runs it."""
        scratch = tmp_path / "s"
        shutil.copytree(baseline["root"], scratch)
        fs = CrashFS(
            scratch, schedule=(FsFault(FsFaultKind.CRASH, 17),), seed=3
        )
        with pytest.raises(SimulatedCrash):
            _update(scratch, fs)
        fs.crash_and_restore(3)

        fs2 = CrashFS(
            scratch, schedule=(FsFault(FsFaultKind.CRASH, 2),), seed=4
        )
        with pytest.raises(SimulatedCrash):
            ArrayStore(scratch, fs=fs2)  # dies mid-rollback
        fs2.crash_and_restore(4)

        store = ArrayStore(scratch)
        np.testing.assert_array_equal(
            store.read("target").data, baseline["old"]
        )
        store.fsck(repair=True)
        assert store.fsck(deep=True).ok

    def test_recovery_reports_actions(self, baseline, tmp_path):
        scratch = tmp_path / "s"
        shutil.copytree(baseline["root"], scratch)
        fs = CrashFS(
            scratch, schedule=(FsFault(FsFaultKind.CRASH, 15),), seed=5
        )
        with pytest.raises(SimulatedCrash):
            _update(scratch, fs)
        fs.crash_and_restore(5)
        store = ArrayStore(scratch)
        assert store.recovery.count("rolled-back") + store.recovery.count(
            "stale-tmp"
        ) >= 1

    def test_gc_sweeps_stale_tmp(self, baseline, tmp_path):
        scratch = tmp_path / "s"
        shutil.copytree(baseline["root"], scratch)
        store = ArrayStore(scratch)
        (scratch / "objects" / ".tmp-1-deadbeef").write_bytes(b"junk")
        (scratch / "manifests" / ".tmp-2-x.json").write_bytes(b"junk")
        result = store.gc()
        assert len(result.tmp_removed) == 2
        assert not list(scratch.glob("*/.tmp-*"))
