"""Golden-stream guard: the stage-pipeline refactor must not move a byte.

The fixtures in ``tests/data/`` were captured before the compressors were
migrated onto the :mod:`repro.codec` stage pipeline.  Two invariants are
asserted per golden:

* **decode stability** — the post-refactor decoder reproduces the
  originally decoded field bit-for-bit from the stored payload;
* **encode stability** — re-compressing the identical input reproduces
  the stored payload bit-for-bit (no on-wire drift).

Plus a registry-dispatch pass: every golden decodes through
:func:`repro.codec.registry.decode_payload` with no compressor in hand.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.codec.registry import decode_payload, peek_variant

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

_spec = importlib.util.spec_from_file_location(
    "generate_goldens", DATA_DIR / "generate_goldens.py"
)
goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(goldens)

MANIFEST = json.loads((DATA_DIR / "manifest.json").read_text())
KEYS = sorted(MANIFEST)


def _sha(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _payload(key: str) -> bytes:
    return (DATA_DIR / f"golden_{key}.bin").read_bytes()


def test_manifest_covers_every_variant():
    assert set(MANIFEST) == set(goldens.GOLDEN_PARAMS)
    variants = {m["variant"] for m in MANIFEST.values()}
    assert variants == {
        "SZ-1.0", "SZ-1.4", "SZ-2.0", "GhostSZ", "waveSZ", "waveSZ-dp",
        "ZFP-like",
    }


@pytest.mark.parametrize("key", KEYS)
def test_stored_payload_matches_manifest(key):
    entry = MANIFEST[key]
    blob = _payload(key)
    assert len(blob) == entry["payload_bytes"]
    assert _sha(blob) == entry["payload_sha256"]


@pytest.mark.parametrize("key", KEYS)
def test_decode_is_bit_exact(key):
    entry = MANIFEST[key]
    out = goldens.make_compressor(key).decompress(_payload(key))
    assert list(out.shape) == entry["shape"]
    assert str(out.dtype) == entry["dtype"]
    assert _sha(np.ascontiguousarray(out).tobytes()) == entry["output_sha256"]


@pytest.mark.parametrize("key", KEYS)
def test_recompression_is_bit_exact(key):
    entry = MANIFEST[key]
    eb, mode = goldens.GOLDEN_PARAMS[key]
    cf = goldens.make_compressor(key).compress(goldens.make_input(key), eb, mode)
    assert cf.variant == entry["variant"]
    assert _sha(cf.payload) == entry["payload_sha256"]


@pytest.mark.parametrize("key", KEYS)
def test_registry_dispatch_decodes_golden(key):
    """decode_payload picks the decoder from the wire header alone."""
    entry = MANIFEST[key]
    blob = _payload(key)
    assert peek_variant(blob) == entry["variant"]
    out = decode_payload(blob)
    assert _sha(np.ascontiguousarray(out).tobytes()) == entry["output_sha256"]
