"""Integration smoke test: the array store exposed over the TCP service.

Starts a real server with a store root, puts fields through the wire,
and checks that full reads, windowed reads, dedup accounting, and the
store-less error answer all behave — including that a windowed read
really does decode fewer tiles than a full one (via the store's decode
counter, which the server process shares with the test).
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.data.fields import gaussian_random_field
from repro.errors import ServiceError, StoreError
from repro.service import CompressionServer, ServiceClient


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    loop = asyncio.new_event_loop()
    srv = CompressionServer(
        port=0, workers=2, pool_kind="thread", queue_size=64,
        store_root=str(root),
    )
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    yield srv
    asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


@pytest.fixture(scope="module")
def field():
    g = gaussian_random_field((40, 56), beta=3.8, seed=777)
    return (g / np.abs(g).max()).astype(np.float32)


class TestStoreOverTcp:
    def test_put_then_read_bit_exact(self, server, field):
        with ServiceClient(port=server.port) as c:
            report = c.store_put("wire.ts", field, "sz14", eb=1e-3,
                                 n_tiles=4)
            assert report["n_tiles"] == 4
            assert report["new_objects"] == 4
            out, resp = c.store_read("wire.ts")
        np.testing.assert_array_equal(
            out, server.store.read("wire.ts").data
        )
        assert resp["damaged"] == []
        vr = float(field.max() - field.min())
        assert np.abs(out.astype(np.float64) - field).max() <= 1e-3 * vr

    def test_second_put_deduplicates(self, server, field):
        with ServiceClient(port=server.port) as c:
            report = c.store_put("wire.copy", field, "sz14", eb=1e-3,
                                 n_tiles=4)
        assert report["new_objects"] == 0
        assert report["dedup_objects"] == 4

    def test_slice_matches_and_touches_fewer_tiles(self, server, field):
        with ServiceClient(port=server.port) as c:
            full, _ = c.store_read("wire.ts")
            server.store.cache.clear()
            before = server.store.decode_calls
            window, resp = c.store_slice(
                "wire.ts", [slice(5, 9), (10, 30)]
            )
        np.testing.assert_array_equal(window, full[5:9, 10:30])
        assert resp["tiles"] == [0]
        assert server.store.decode_calls - before == 1

    def test_unknown_dataset_is_an_answered_error(self, server):
        with ServiceClient(port=server.port) as c:
            with pytest.raises(StoreError, match="no dataset"):
                c.store_read("never.put")
            assert c.ping()["ok"]  # connection survives

    def test_bad_slice_payload_rejected(self, server):
        with ServiceClient(port=server.port) as c:
            resp, _ = c._roundtrip({
                "op": "store_slice", "name": "wire.ts", "slices": "0:4",
            })
            assert not resp["ok"]
            assert "list" in resp["error"] or "list" in resp.get("detail", "")


class TestStoreNotConfigured:
    def test_storeless_server_answers_cleanly(self):
        loop = asyncio.new_event_loop()
        srv = CompressionServer(port=0, workers=1, pool_kind="thread")
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(srv.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert started.wait(10)
        try:
            with ServiceClient(port=srv.port) as c:
                with pytest.raises(ServiceError,
                                   match="store-not-configured"):
                    c.store_read("anything")
        finally:
            asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
