"""Differential corruption sweep: the integrity contract, end to end.

Every compressor variant is run through a seeded sweep of injected
faults — bit flips, truncations, garbage runs, splices, and structural
mutations that carry *valid* checksums — and every decode of damaged
input must either raise a ``ReproError`` subtype or produce output that
fails error-bound verification.  A silent wrong answer or a non-ReproError
crash fails the sweep with the offending :class:`FaultSpec` printed, which
reproduces the failure exactly.
"""

import numpy as np
import pytest

from repro.data.fields import gaussian_random_field
from repro.faults import FaultOutcome, corruption_sweep
from repro.variants import compressor_for

VARIANTS = ["SZ-1.4", "SZ-1.0", "GhostSZ", "waveSZ", "ZFP-like"]

N_FAULTS = 200
EB = 1e-3


@pytest.fixture(scope="module")
def field() -> np.ndarray:
    g = gaussian_random_field((20, 32), beta=3.5, seed=99)
    return (g / np.abs(g).max()).astype(np.float32)


@pytest.mark.parametrize("variant", VARIANTS)
def test_corruption_sweep_contract(field, variant):
    comp = compressor_for(variant)
    cf = comp.compress(field, EB, "vr_rel")
    result = corruption_sweep(
        comp, cf.payload, field, cf.bound.absolute, n=N_FAULTS, seed=1234
    )
    assert len(result.records) == N_FAULTS
    result.assert_contract()
    # the sweep must actually exercise the decode path, not just bounce
    # everything off the checksum layer: structural faults re-serialize
    # with valid CRCs, so at least some damage reaches the decoder
    kinds = {r.spec.kind for r in result.records}
    assert len(kinds) >= 6, f"sweep drew too few fault kinds: {kinds}"


def test_sweep_result_bookkeeping(field):
    comp = compressor_for("SZ-1.4")
    cf = comp.compress(field, EB, "vr_rel")
    result = corruption_sweep(
        comp, cf.payload, field, cf.bound.absolute, n=40, seed=7
    )
    assert result.ok
    assert result.violations == ()
    assert sum(result.count(o) for o in FaultOutcome) == 40
    assert result.summary().startswith("SZ-1.4: 40 faults")


def test_sweep_rejects_broken_baseline(field):
    """A payload that cannot decode pristinely aborts the sweep upfront."""
    comp = compressor_for("SZ-1.4")
    cf = comp.compress(field, EB, "vr_rel")
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        corruption_sweep(
            comp, cf.payload[:-3], field, cf.bound.absolute, n=5, seed=0
        )
