"""Integration tests: the shard gateway over a real 3-shard cluster.

Everything here runs against :class:`LocalShardCluster` — three real
``CompressionServer`` instances with separate store roots on loopback
sockets — and checks the promises ``repro.shard`` makes:

* sharded reads are **bit-exact** with a single local ``ArrayStore``
  (same tile digests, same bytes);
* with ``replicas=2``, one shard down leaves **every read answerable**
  (failover), and the outage is visible in status/metrics;
* a write during an outage acks ``degraded`` and **re-converges** after
  the shard returns (read-repair + anti-entropy), verified on the
  victim's filesystem;
* with ``replicas=1`` a lost shard degrades to **salvage**: strict reads
  raise, ``strict=False`` zero-fills and reports the lost tiles exactly
  like the local damage path;
* cluster-wide **gc** removes orphans when healthy and refuses when any
  shard is unreachable;
* the :class:`GatewayServer` front speaks the service protocol, so a
  plain :class:`ServiceClient` gets the sharded store transparently.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.data.fields import gaussian_random_field
from repro.errors import StoreError
from repro.service import ServiceClient
from repro.shard import GatewayServer, LocalShardCluster, manifest_key
from repro.store import ArrayStore


@pytest.fixture(scope="module")
def field():
    g = gaussian_random_field((40, 56), beta=3.8, seed=777)
    return (g / np.abs(g).max()).astype(np.float32)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    roots = [tmp_path_factory.mktemp(f"shard{i}") for i in range(3)]
    with LocalShardCluster(roots, replicas=2) as c:
        yield c


@pytest.fixture(scope="module")
def local_store(tmp_path_factory, field):
    store = ArrayStore(tmp_path_factory.mktemp("local"))
    store.put("base.ts", field, "wavesz", eb=1e-3, n_tiles=4)
    return store


@pytest.fixture(scope="module")
def seeded(cluster, field):
    with cluster.gateway() as gw:
        return gw.put("base.ts", field, "wavesz", eb=1e-3, n_tiles=4)


def _shard_index(cluster, shard_id: str) -> int:
    return cluster.addresses.index(shard_id)


class TestBitExact:
    def test_same_tile_digests_as_local_store(self, seeded, local_store):
        # strongest form of "bit-exact by construction": the sharded put
        # produced byte-identical tile objects to the local one
        assert seeded.tile_digests == tuple(
            local_store.manifest("base.ts")["tiles"]
        )

    def test_full_read_matches_local(self, cluster, local_store):
        with cluster.gateway() as gw:
            result = gw.read("base.ts")
        assert result.ok
        np.testing.assert_array_equal(
            result.data, local_store.read("base.ts").data
        )

    def test_windowed_read_matches_local(self, cluster, local_store):
        window = (slice(5, 33), slice(10, 50))
        with cluster.gateway() as gw:
            result = gw.read_slice("base.ts", window)
        np.testing.assert_array_equal(
            result.data, local_store.read_slice("base.ts", window).data
        )

    def test_second_put_deduplicates_cluster_wide(self, cluster, field,
                                                  seeded):
        with cluster.gateway() as gw:
            again = gw.put("base.ts", field, "wavesz", eb=1e-3, n_tiles=4)
        assert again.new_objects == 0
        assert again.dedup_objects == len(set(seeded.tile_digests))
        assert again.stored_bytes == 0
        assert again.version == seeded.version + 1

    def test_put_spread_replicas_across_shards(self, seeded):
        # 4 tiles x 2 replicas: more objects than any one shard may hold
        assert sum(seeded.per_shard.values()) > max(seeded.per_shard.values())
        assert seeded.replicas == 2
        assert not seeded.degraded


class TestFailover:
    def test_reads_survive_primary_shard_down(self, cluster, seeded,
                                              local_store):
        expect = local_store.read("base.ts").data
        with cluster.gateway() as gw:
            victim_sid = gw.ring.owner(seeded.tile_digests[0])
        vi = _shard_index(cluster, victim_sid)
        cluster.stop_shard(vi)
        try:
            with cluster.gateway() as gw:
                result = gw.read("base.ts")
                np.testing.assert_array_equal(result.data, expect)
                assert result.ok  # replicas=2: nothing lost
                window = gw.read_slice("base.ts", (slice(3, 17), None))
                np.testing.assert_array_equal(window.data, expect[3:17])
                # the outage is visible: gauges, counters, status
                snap = gw.metrics.snapshot()
                assert snap.gauges[f"shard.{victim_sid}.up"] == 0.0
                assert snap.events.get("gateway.failovers", 0) >= 1
                status = gw.status()
                assert status["shards_up"] == 2
                assert status["shards"][victim_sid]["up"] is False
        finally:
            cluster.start_shard(vi)

    def test_status_clean_when_all_shards_back(self, cluster):
        with cluster.gateway() as gw:
            status = gw.status()
        assert status["shards_up"] == status["n_shards"] == 3
        assert status["replicas"] == 2
        for row in status["shards"].values():
            assert row["up"] and row["status"] == "ok"


class TestTypedErrors:
    def test_missing_dataset_is_store_error(self, cluster):
        with cluster.gateway() as gw, pytest.raises(
            StoreError, match="no dataset"
        ):
            gw.read("never.put")

    def test_wire_error_carries_op_and_request_id(self, cluster):
        host, port = cluster.addresses[0].rsplit(":", 1)
        with ServiceClient(host, int(port)) as c:
            with pytest.raises(StoreError, match=r"\[op store_get_manifest"):
                c.store_get_manifest("never.put")
            assert c.ping()["ok"]  # the connection survives a typed error


class TestDegradedWriteConvergence:
    def test_outage_put_acks_degraded_then_reconverges(self, cluster, field):
        data = np.roll(field, 7, axis=0) * np.float32(0.5)
        vi = 1
        victim_sid = cluster.shard_id(vi)
        cluster.stop_shard(vi)
        try:
            with cluster.gateway() as gw:
                acked = gw.put("conv.ts", data, "wavesz", eb=1e-3, n_tiles=4)
                assert acked.degraded
                assert gw.metrics.snapshot().events.get(
                    "gateway.degraded_writes", 0
                ) >= 1
                during = gw.read("conv.ts")
                assert during.ok
        finally:
            cluster.start_shard(vi)
        # one full read through a fresh gateway must heal the returned
        # shard: manifest read-repair + tile anti-entropy
        with cluster.gateway() as gw:
            healed = gw.read("conv.ts")
            ring = gw.ring
        np.testing.assert_array_equal(healed.data, during.data)
        vroot = cluster.roots[vi]
        for d in acked.tile_digests:
            if victim_sid in ring.owners(d, 2):
                assert (vroot / "objects" / d).exists(), (
                    f"tile {d[:12]}... not restored to shard {vi}"
                )
        if victim_sid in ring.owners(manifest_key("conv.ts"), 2):
            mpath = vroot / "manifests" / "conv.ts.json"
            assert mpath.exists()
            assert json.loads(mpath.read_text())["version"] == acked.version


class TestSalvageReplicasOne:
    def test_lost_shard_degrades_to_salvage(self, tmp_path, field):
        roots = [tmp_path / f"s{i}" for i in range(3)]
        with LocalShardCluster(roots, replicas=1) as cluster:
            with cluster.gateway() as gw:
                put = gw.put("solo.ts", field, "wavesz", eb=1e-3, n_tiles=4)
                ring = gw.ring
                intact = gw.read("solo.ts").data
                starts = gw._load_manifest("solo.ts")["band_starts"]
            bands = list(zip(starts, list(starts[1:]) + [intact.shape[0]]))
            m_owner = ring.owner(manifest_key("solo.ts"))
            victims = [
                sid for sid in cluster.addresses
                if sid != m_owner
                and any(ring.owner(d) == sid for d in put.tile_digests)
            ]
            assert victims, "placement left nothing to break"
            victim_sid = victims[0]
            lost = {
                i for i, d in enumerate(put.tile_digests)
                if ring.owner(d) == victim_sid
            }
            cluster.stop_shard(_shard_index(cluster, victim_sid))

            with cluster.gateway() as gw:
                with pytest.raises(StoreError, match="unavailable"):
                    gw.read("solo.ts")
            with cluster.gateway() as gw:
                salvaged = gw.read("solo.ts", strict=False)
            assert not salvaged.ok
            assert set(salvaged.damaged_tiles) == lost
            assert all(d.stage == "missing" for d in salvaged.damaged)
            # surviving bands are bit-exact, lost bands zero-filled —
            # exactly the local store's damage contract
            for i, (lo, hi) in enumerate(bands):
                if i in lost:
                    assert not salvaged.data[lo:hi].any()
                else:
                    np.testing.assert_array_equal(
                        salvaged.data[lo:hi], intact[lo:hi]
                    )


class TestClusterGC:
    def test_gc_refused_while_a_shard_is_down(self, cluster):
        cluster.stop_shard(2)
        try:
            with cluster.gateway() as gw, pytest.raises(
                StoreError, match="gc refused"
            ):
                gw.gc()
        finally:
            cluster.start_shard(2)

    def test_gc_sweeps_superseded_tiles_cluster_wide(self, cluster, field):
        a = field + np.float32(3.0)
        b = field - np.float32(3.0)
        with cluster.gateway() as gw:
            gw.put("gcme.ts", a, "wavesz", eb=1e-3, n_tiles=4)
            gw.put("gcme.ts", b, "wavesz", eb=1e-3, n_tiles=4)
            expect = gw.read("gcme.ts").data
            report = gw.gc()
            assert report.n_removed >= 1  # v1 replicas orphaned by v2
            assert report.reclaimed_bytes > 0
            assert set(report.per_shard) == set(cluster.addresses)
            after = gw.read("gcme.ts")
        assert after.ok
        np.testing.assert_array_equal(after.data, expect)


class TestGatewayServerWire:
    @pytest.fixture(scope="class")
    def front(self, cluster):
        loop = asyncio.new_event_loop()
        srv = GatewayServer(cluster.gateway())
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(srv.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert started.wait(10), "gateway server failed to start"
        yield srv
        asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)

    def test_service_client_reads_the_sharded_store(self, front, cluster,
                                                    local_store, field):
        with ServiceClient(port=front.port) as c:
            assert c.ping()["role"] == "shard-gateway"
            report = c.store_put("wire.ts", field, "wavesz", eb=1e-3,
                                 n_tiles=4)
            assert report["replicas"] == 2 and not report["degraded"]
            out, resp = c.store_read("wire.ts")
            assert resp["damaged"] == []
            np.testing.assert_array_equal(
                out, local_store.read("base.ts").data
            )
            window, _ = c.store_slice("wire.ts", [slice(5, 9), (10, 30)])
            np.testing.assert_array_equal(window, out[5:9, 10:30])
            names = [r["name"] for r in c.store_ls()]
            assert "wire.ts" in names and "base.ts" in names

    def test_topology_and_health_over_the_wire(self, front):
        with ServiceClient(port=front.port) as c:
            topo = c.shard_map()
            assert len(topo["shards"]) == 3 and topo["replicas"] == 2
            h = c.health()
            assert h["status"] == "ok" and h["shards_up"] == 3
            assert any(k.startswith("shard.") and k.endswith(".up")
                       for k in h["gauges"])

    def test_typed_error_crosses_the_gateway_hop(self, front):
        with ServiceClient(port=front.port) as c:
            with pytest.raises(StoreError, match="no dataset"):
                c.store_read("never.put")
            assert c.ping()["ok"]
