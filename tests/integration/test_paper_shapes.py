"""Integration: the qualitative result shapes the paper reports.

These tests assert *orderings and factors*, not absolute numbers: who wins,
in which direction, and roughly by how much — on small scaled fields so the
suite stays fast.  Absolute table values live in the benches.
"""

import numpy as np
import pytest

from repro import (
    GhostSZCompressor,
    SZ14Compressor,
    WaveSZCompressor,
    load_field,
    psnr,
)
from repro.metrics import prediction_error_series


@pytest.fixture(scope="module")
def cldlow():
    return load_field("CESM-ATM", "CLDLOW")


@pytest.fixture(scope="module")
def results(cldlow):
    out = {}
    for comp in (
        GhostSZCompressor(),
        WaveSZCompressor(),
        WaveSZCompressor(use_huffman=True),
        SZ14Compressor(),
    ):
        key = comp.name + ("+H*" if getattr(comp, "use_huffman", False) else "")
        cf = comp.compress(cldlow, 1e-3, "vr_rel")
        out[key] = (cf, comp.decompress(cf))
    return out


class TestTable1And7Shapes:
    def test_sz14_beats_ghostsz_clearly(self, results):
        """Table 1: SZ-1.4's Lorenzo >> GhostSZ's curve fitting on 2D."""
        assert (
            results["SZ-1.4"][0].stats.ratio
            > 1.5 * results["GhostSZ"][0].stats.ratio
        )

    def test_wavesz_between_ghost_and_sz(self, results):
        """Table 7 ordering on CESM: Ghost < waveSZ-G* < waveSZ-H*G* <= SZ."""
        g = results["GhostSZ"][0].stats.ratio
        wg = results["waveSZ"][0].stats.ratio
        wh = results["waveSZ+H*"][0].stats.ratio
        sz = results["SZ-1.4"][0].stats.ratio
        assert g < wg < wh <= sz * 1.05

    def test_huffman_recovers_most_of_sz_ratio(self, results):
        """Table 7: with H* before gzip, waveSZ approaches SZ-1.4."""
        wh = results["waveSZ+H*"][0].stats.ratio
        sz = results["SZ-1.4"][0].stats.ratio
        assert wh > 0.6 * sz


class TestTable8Shape:
    def test_all_psnr_in_sane_band(self, cldlow, results):
        for key, (cf, out) in results.items():
            p = psnr(cldlow, out)
            assert 60 < p < 80, (key, p)

    def test_ghost_psnr_not_below_wavesz(self, cldlow, results):
        """Table 8: GhostSZ's PSNR is slightly *higher* (concentrated
        errors in the saturated regions, Figure 9)."""
        pg = psnr(cldlow, results["GhostSZ"][1])
        pw = psnr(cldlow, results["waveSZ"][1])
        assert pg >= pw - 0.3

    def test_wavesz_similar_to_sz14(self, cldlow, results):
        """Table 8: 'waveSZ has similar PSNRs compared with SZ-1.4'."""
        pw = psnr(cldlow, results["waveSZ"][1])
        ps = psnr(cldlow, results["SZ-1.4"][1])
        assert abs(pw - ps) < 4.0


class TestFigure1Shape:
    def test_predictor_quality_ordering(self, cldlow):
        """Figure 1: Lorenzo most accurate; CF-GhostSZ by far the worst."""
        series = prediction_error_series(cldlow.astype(np.float64))
        share = {
            k: float((np.abs(v[np.isfinite(v)]) < 0.01).mean())
            for k, v in series.items()
        }
        assert share["LP-SZ-1.4"] > share["CF-GhostSZ"]
        assert share["CF-SZ-1.0"] > share["CF-GhostSZ"]
        stds = {k: float(np.nanstd(v[np.isfinite(v)])) for k, v in series.items()}
        assert stds["CF-GhostSZ"] > 2 * stds["LP-SZ-1.4"]


class TestFigure9Shape:
    def test_ghost_errors_more_concentrated_at_zero(self, cldlow, results):
        """Figure 9 left panel: GhostSZ's compression-error histogram has a
        taller spike at zero (exact hits in saturated regions)."""
        eg = results["GhostSZ"][1].astype(np.float64) - cldlow
        ew = results["waveSZ"][1].astype(np.float64) - cldlow
        exact_g = float((eg == 0).mean())
        exact_w = float((ew == 0).mean())
        assert exact_g > exact_w
