"""Chaos smoke: seeded randomized fault schedules over store and service.

Tier-1 keeps the sweeps small (tens of schedules); the CI chaos job and
``wavesz chaos --schedules 200`` run the wide ones.  Fixed seeds: a
failure here replays bit-for-bit from the (seed, run) pair it prints.
"""

import numpy as np

from repro.cli import main
from repro.faults import ChaosHarness
from repro.store import ArrayStore


class TestStoreChaos:
    def test_store_sweep_clean(self, tmp_path):
        report = ChaosHarness(seed=2026).run_store(tmp_path, runs=30)
        report.assert_clean()
        assert report.runs == 30
        assert sum(report.faults_fired.values()) > 0
        assert "OK" in report.summary()

    def test_distinct_seeds_draw_distinct_schedules(self, tmp_path):
        a = ChaosHarness(seed=1).run_store(tmp_path / "a", runs=8)
        b = ChaosHarness(seed=2).run_store(tmp_path / "b", runs=8)
        assert a.ok and b.ok
        assert a.faults_fired != b.faults_fired


class TestServiceChaos:
    def test_service_sweep_clean(self):
        report = ChaosHarness(seed=5).run_service(runs=3, ops_per_run=3)
        report.assert_clean()
        assert report.suite == "service"

    def test_worker_kill_mid_lease_reclaims_and_converges(self):
        """SIGKILL a process worker holding a shm lease: jobs still
        finish byte-exactly on the respawned pool and the arena ends
        empty (converges-after-kill + lease-reclaimed invariants)."""
        from repro.service.shm import ShmArena

        if not ShmArena.available():
            import pytest

            pytest.skip("shared memory unavailable")
        report = ChaosHarness(seed=13).run_service(
            runs=0, ops_per_run=0, kill_runs=2
        )
        report.assert_clean()
        assert report.faults_fired.get("worker-kill") == 2


class TestShardChaos:
    def test_shard_sweep_clean(self, tmp_path):
        # 3 runs cycle all three phases: wire-mid-put, down-before-put,
        # down-mid-read — each ends in a read-repair convergence audit
        report = ChaosHarness(seed=11).run_shard(tmp_path, runs=3)
        report.assert_clean()
        assert report.suite == "shard"
        assert sum(report.faults_fired.values()) >= 3


class TestChaosCli:
    def test_cli_store_suite_exit_zero(self, capsys):
        rc = main(["chaos", "--suite", "store", "--schedules", "10",
                   "--seed", "12"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos store: OK" in out

    def test_cli_fsck_roundtrip(self, tmp_path, capsys):
        root = tmp_path / "store"
        field = np.random.default_rng(0).normal(size=(8, 12)).astype(
            np.float32
        )
        store = ArrayStore(root)
        store.put("x", field, "sz10", n_tiles=2)
        assert main(["store", "--root", str(root), "fsck", "--deep"]) == 0
        assert "OK" in capsys.readouterr().out

        store.delete("x")  # orphans the objects
        assert main(["store", "--root", str(root), "fsck"]) == 0
        assert "orphan-object" in capsys.readouterr().out
        assert main(
            ["store", "--root", str(root), "fsck", "--repair"]
        ) == 0
        capsys.readouterr()
        assert main(["store", "--root", str(root), "fsck", "--deep"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_fsck_unrepairable_exits_nonzero(self, tmp_path, capsys):
        root = tmp_path / "store"
        field = np.random.default_rng(0).normal(size=(8, 12)).astype(
            np.float32
        )
        store = ArrayStore(root)
        store.put("x", field, "sz10", n_tiles=2)
        next(iter((root / "objects").iterdir())).unlink()
        assert main(
            ["store", "--root", str(root), "fsck", "--repair"]
        ) == 1
        assert "missing-object" in capsys.readouterr().out
