"""Integration tests for the resilient service edge.

A live server plus a client whose wire misbehaves on purpose: retries
converge, request ids keep retried work at-most-once, deadlines cover
reads, the breaker fails fast, shutdown drains, and the watchdog kills
hung workers.
"""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.errors import (
    CircuitOpenError,
    JobFailedError,
    ServiceError,
    ServiceTimeoutError,
    TransportError,
)
from repro.faults.netsim import FlakySocketFactory, NetFaultKind
from repro.service import (
    BatchScheduler,
    CircuitBreaker,
    CompressionServer,
    RetryPolicy,
    ServiceClient,
)
from repro.service.jobs import JobState, make_job


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(31)
    return rng.normal(size=(16, 24)).astype(np.float32)


@pytest.fixture(scope="module")
def server():
    loop = asyncio.new_event_loop()
    srv = CompressionServer(
        port=0, workers=2, pool_kind="thread", queue_size=32
    )
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    yield srv
    asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


@pytest.fixture
def dead_peer():
    """A listener that accepts nothing: connects succeed, reads stall."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    yield sock.getsockname()[1]
    sock.close()


class TestRetries:
    def test_flaky_wire_converges_bit_exact(self, server, field):
        factory = FlakySocketFactory(
            seed=9, faulty_connections=2, max_after_bytes=4
        )
        with ServiceClient(
            port=server.port, timeout=5.0,
            retry=RetryPolicy(attempts=6, base_s=0.01, seed=9),
            socket_factory=factory,
        ) as c:
            for _ in range(4):
                payload, _ = c.compress(field, "sz14", eb=1e-3)
                direct = get_codec("sz14").compress(field, 1e-3, "vr_rel")
                assert payload == direct.payload
        assert factory.connections >= 1
        if any(
            f.kind is not NetFaultKind.DRIP
            for f in factory.faults_injected
        ):
            assert c.retries >= 1

    def test_reset_mid_stream_wrapped_with_op_and_request(self, server):
        factory = FlakySocketFactory(
            seed=1, faulty_connections=99,
            kinds=(NetFaultKind.RESET,), max_after_bytes=4,
        )
        with ServiceClient(
            port=server.port, timeout=2.0,
            retry=RetryPolicy(attempts=2, base_s=0.001),
            socket_factory=factory,
        ) as c:
            with pytest.raises(TransportError, match=r"ping \(request"):
                c.ping()

    def test_transport_errors_are_service_errors(self, server):
        """Back-compat: callers catching ServiceError still catch wire
        failures, which used to surface as bare ServiceError."""
        assert issubclass(TransportError, ServiceError)
        assert issubclass(ServiceTimeoutError, TransportError)


class TestDeadlines:
    def test_read_deadline_not_just_connect(self, dead_peer):
        t0 = time.monotonic()
        with pytest.raises(ServiceTimeoutError, match="deadline"):
            ServiceClient(
                port=dead_peer, timeout=0.3,
                retry=RetryPolicy(attempts=1),
            ).ping()
        assert time.monotonic() - t0 < 3.0

    def test_request_id_in_timeout_message(self, dead_peer, field):
        client = ServiceClient(
            port=dead_peer, timeout=0.2, retry=RetryPolicy(attempts=1),
        )
        with pytest.raises(
            ServiceTimeoutError, match=r"compress \(request [0-9a-f]{32}\)"
        ):
            client.compress(field, "sz14")


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, dead_peer):
        client = ServiceClient(
            port=dead_peer, timeout=0.15,
            retry=RetryPolicy(attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, reset_after_s=60),
        )
        for _ in range(2):
            with pytest.raises(ServiceTimeoutError):
                client.ping()
        t0 = time.monotonic()
        with pytest.raises(CircuitOpenError):
            client.ping()
        assert time.monotonic() - t0 < 0.05  # fail-fast, no socket wait
        assert client.breaker.trips == 1

    def test_application_errors_do_not_trip(self, server):
        client = ServiceClient(
            port=server.port,
            breaker=CircuitBreaker(failure_threshold=2, reset_after_s=60),
        )
        with client:
            for _ in range(4):
                with pytest.raises(ServiceError, match="unknown op"):
                    client._check(
                        client._roundtrip({"op": "transmogrify"})[0]
                    )
            assert client.breaker.state == CircuitBreaker.CLOSED
            assert client.ping()["ok"]


class TestIdempotency:
    def test_retried_requests_execute_at_most_once(self, server, field):
        """Resets mid-response force retries; completed-job counters
        must still count each logical request exactly once."""
        before = server.scheduler.stats().totals["completed"]
        n = 6
        factory = FlakySocketFactory(
            seed=21, faulty_connections=3,
            kinds=(NetFaultKind.RESET, NetFaultKind.STALL),
            max_after_bytes=32,
        )
        with ServiceClient(
            port=server.port, timeout=3.0,
            retry=RetryPolicy(attempts=8, base_s=0.01, seed=21),
            socket_factory=factory,
        ) as c:
            for _ in range(n):
                c.compress(field, "sz14", eb=1e-3)
        after = server.scheduler.stats().totals["completed"]
        assert after - before == n
        if c.retries:
            assert (
                server.scheduler.stats().events.get("server.idem_hits", 0)
                >= 1
            )

    def test_health_op(self, server):
        with ServiceClient(port=server.port) as c:
            h = c.health()
        assert h["status"] == "ok"
        assert h["workers"] == 2
        assert h["store"] == "absent"
        assert "queue_depth" in h and "pool_restarts" in h


class TestGracefulShutdown:
    def test_drain_completes_in_flight_jobs(self, field):
        async def main():
            sched = BatchScheduler(workers=2, pool_kind="thread")
            sched.start()
            handles = [
                await sched.submit(make_job("sz14", field))
                for _ in range(4)
            ]
            await sched.stop()  # default: drain everything
            return [await sched.wait(h) for h in handles]

        results = asyncio.run(main())
        direct = get_codec("sz14").compress(field, 1e-3, "vr_rel")
        assert all(r.output == direct.payload for r in results)

    def test_deadline_bounded_stop_fails_stuck_jobs(self):
        async def main():
            sched = BatchScheduler(workers=1, pool_kind="thread")
            sched._worker_fn = lambda job: time.sleep(5)
            sched.start()
            handle = await sched.submit(make_job("sz14", np.zeros(
                (4, 4), dtype=np.float32
            )))
            await asyncio.sleep(0.05)  # let it start running
            t0 = time.monotonic()
            await sched.stop(deadline_s=0.2)
            assert time.monotonic() - t0 < 2.0
            assert handle.state is JobState.FAILED
            with pytest.raises(JobFailedError, match="shutdown"):
                await sched.wait(handle)

        asyncio.run(main())

    def test_draining_server_refuses_new_work(self, field):
        async def main():
            srv = CompressionServer(port=0, workers=0)
            await srv.start()
            await srv.stop()
            resp = await srv._dispatch({
                "op": "compress", "codec": "sz14",
                "shape": [4, 4], "dtype": "float32",
            }, np.zeros((4, 4), dtype=np.float32).tobytes())
            assert b"shutting-down" in resp
            health = await srv._dispatch({"op": "health"}, b"")
            assert b"draining" in health

        asyncio.run(main())


def _hang_forever(job):
    time.sleep(300)


class TestWatchdog:
    def test_hung_worker_killed_and_pool_respawned(self, field):
        async def main():
            sched = BatchScheduler(
                workers=1, pool_kind="process",
                max_retries=0, hang_timeout_s=1.0,
            )
            sched._worker_fn = _hang_forever
            sched.start()
            handle = await sched.submit(make_job("sz14", field))
            with pytest.raises(JobFailedError, match="hang budget"):
                await sched.wait(handle)
            assert sched.pool.restarts == 1
            assert sched.metrics.snapshot().events["watchdog.kills"] == 1
            # the respawned pool still executes real work
            sched._worker_fn = __import__(
                "repro.service.workers", fromlist=["run_job"]
            ).run_job
            ok = await sched.submit(make_job("sz14", field))
            result = await sched.wait(ok)
            await sched.stop()
            return result

        result = asyncio.run(main())
        direct = get_codec("sz14").compress(field, 1e-3, "vr_rel")
        assert result.output == direct.payload

    def test_hung_worker_retried_on_fresh_worker(self, field):
        """WorkerHungError is transient: with retries left, the job
        reruns on the respawned pool and succeeds."""
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(5)
            from repro.service.workers import run_job

            return run_job(job)

        async def main():
            sched = BatchScheduler(
                workers=1, pool_kind="thread",
                max_retries=1, backoff_base_s=0.01, hang_timeout_s=0.3,
            )
            sched._worker_fn = flaky
            sched.start()
            handle = await sched.submit(make_job("sz14", field))
            result = await sched.wait(handle)
            await sched.stop(deadline_s=1.0)
            return result

        result = asyncio.run(main())
        assert result.attempts == 2
        direct = get_codec("sz14").compress(field, 1e-3, "vr_rel")
        assert result.output == direct.payload
