"""Integration smoke test: the TCP service end to end.

Starts a real server, fires a concurrent batch of jobs across >= 3 codecs
from client threads, and checks every payload round-trips bit-exactly
against the single-threaded library path with nonzero metrics counters.
This is the test the CI service job runs.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.data.fields import gaussian_random_field
from repro.errors import ServiceError
from repro.service import CompressionServer, ServiceClient

CODECS = ("sz14", "wavesz", "zfp-like")


@pytest.fixture(scope="module")
def server():
    loop = asyncio.new_event_loop()
    srv = CompressionServer(
        port=0, workers=2, pool_kind="thread", queue_size=64
    )
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    yield srv
    asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


@pytest.fixture(scope="module")
def fields():
    out = []
    for seed in range(6):
        g = gaussian_random_field((32, 48), beta=3.8, seed=400 + seed)
        out.append((g / np.abs(g).max()).astype(np.float32))
    return out


class TestServerSmoke:
    def test_ping_and_codecs(self, server):
        with ServiceClient(port=server.port) as c:
            assert c.ping()["ok"]
            listing = c.codecs()
            names = {e["name"] for e in listing["codecs"]}
            assert {"SZ-1.4", "waveSZ", "ZFP-like"} <= names
            assert "wavesz-g" in listing["short_names"]

    def test_concurrent_batch_bit_exact(self, server, fields):
        """24 jobs from 6 client threads across 3 codecs, all exact."""
        work = [
            (CODECS[i % len(CODECS)], fields[i % len(fields)])
            for i in range(24)
        ]

        def submit_one(item):
            codec, field = item
            with ServiceClient(port=server.port) as c:
                payload, info = c.compress(field, codec, eb=1e-3)
            return codec, field, payload, info

        with ThreadPoolExecutor(max_workers=6) as tp:
            outcomes = list(tp.map(submit_one, work))

        for codec, field, payload, info in outcomes:
            direct = get_codec(codec).compress(field, 1e-3, "vr_rel")
            assert payload == direct.payload, codec
            assert info["ratio"] == pytest.approx(direct.stats.ratio)

    def test_decompress_roundtrip_over_tcp(self, server, fields):
        field = fields[0]
        with ServiceClient(port=server.port) as c:
            payload, _ = c.compress(field, "sz14", eb=1e-3)
            out = c.decompress(payload)
        np.testing.assert_array_equal(
            out, get_codec("sz14").decompress(payload)
        )
        vr = float(field.max() - field.min())
        assert np.abs(out.astype(np.float64) - field).max() <= 1e-3 * vr

    def test_metrics_counters_nonzero(self, server):
        with ServiceClient(port=server.port) as c:
            stats = c.stats()
        for codec in CODECS:
            assert stats["jobs"][codec]["completed"] > 0, codec
        assert stats["totals"]["failed"] == 0
        assert stats["latency"]["overall"]["count"] >= 24
        assert stats["latency"]["overall"]["p99_s"] > 0
        assert stats["throughput_jobs_per_s"] > 0
        assert stats["queue"]["capacity"] == 64

    def test_bad_requests_answered_not_dropped(self, server):
        with ServiceClient(port=server.port) as c:
            with pytest.raises(ServiceError, match="unknown op"):
                c._check(c._roundtrip({"op": "transmogrify"})[0])
            with pytest.raises(ServiceError, match="ContainerError"):
                c.decompress(b"this is not a payload")
            # the connection survives the errors
            assert c.ping()["ok"]
