"""Integration: cross-implementation equivalences (DESIGN.md §5).

These tie the independent implementations together: the Listing-1 scalar
oracle, the vectorized wavefront engine, the event-driven pipeline
simulator, the closed-form timing model and the base-2 quantizer must all
agree where the paper says they describe the same machine.
"""

import numpy as np
import pytest

from repro.config import QuantizerConfig
from repro.core.kernel import wavefront_pqd
from repro.core.layout import LoopPartition
from repro.fpga.hls import simulate_columns
from repro.fpga.timing import DELTA_PQD, interior_column_lengths, wavesz_cycles
from repro.sz.pqd import pqd_compress

Q = QuantizerConfig()


class TestKernelEngineEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_oracle_vs_engine_random_fields(self, seed):
        rng = np.random.default_rng(seed)
        d0 = int(rng.integers(3, 16))
        d1 = int(rng.integers(d0, 32))
        data = np.cumsum(rng.normal(size=(d0, d1)), axis=1).astype(np.float32)
        span = float(np.abs(data).max()) or 1.0
        p = span * 1e-3
        oracle = wavefront_pqd(data, p, Q)
        engine = pqd_compress(data, p, Q, border="verbatim")
        assert (oracle.codes_raster() == engine.codes).all()
        assert (oracle.decompressed == engine.decompressed).all()


class TestTimingModelVsSimulator:
    @pytest.mark.parametrize("d0,d1", [(8, 30), (20, 20), (5, 100)])
    def test_closed_form_vs_event_driven(self, d0, d1):
        """The Σ max(len, Δ) closed form tracks the event-driven simulator
        within one pipeline drain."""
        delta = 12
        lengths = interior_column_lengths(d0, d1)
        lengths = lengths[lengths > 0].tolist()
        sim = simulate_columns(lengths, delta=delta)
        closed = wavesz_cycles((d0, d1), delta=delta)
        assert abs(sim.total_cycles - closed) <= 2 * delta

    def test_body_zero_stall_iff_lambda_ge_delta(self):
        deep = LoopPartition(30, 60)  # Λ = 29 >= Δ = 20
        lengths = [deep.interior_column_length(t) for t in range(deep.n_cols)]
        sim = simulate_columns([l for l in lengths if l], delta=20)
        body_only = simulate_columns([29] * 20, delta=20)
        assert body_only.stall_cycles == 0
        shallow = simulate_columns([9] * 20, delta=20)
        assert shallow.stall_cycles > 0


class TestHurricaneMechanism:
    def test_small_lambda_throughput_penalty_matches_table5(self):
        """Hurricane's Λ=99 < Δ=118 must cost ~Δ/Λ in throughput — the
        modelled mechanism behind its Table 5 slowdown."""
        from repro.fpga.timing import wavesz_throughput

        hurricane = wavesz_throughput((100, 500, 500)).mb_per_s
        cesm = wavesz_throughput((1800, 3600)).mb_per_s
        assert hurricane / cesm == pytest.approx(99 / DELTA_PQD, rel=0.03)
