"""Integration: concurrent mixed-codec batches stay bit-exact.

The acceptance bar for the serving layer: a batch of 64+ jobs across
several codecs, submitted concurrently through the bounded queue and
executed on a real process pool, must produce every payload bit-identical
to the single-threaded compressor path, with backpressure observable and
metrics populated.
"""

import numpy as np
import pytest

from repro.codec.registry import get_codec
from repro.data.fields import gaussian_random_field
from repro.parallel import tile_compress
from repro.service import (
    WorkerPool,
    make_job,
    run_batch,
    tile_compress_parallel,
)

CODECS = ("sz14", "wavesz", "zfp-like", "ghostsz")
QUEUE_SIZE = 8


@pytest.fixture(scope="module")
def fields():
    out = []
    for seed in range(16):
        g = gaussian_random_field((40, 56), beta=3.8, seed=100 + seed)
        out.append((g / np.abs(g).max()).astype(np.float32))
    return out


@pytest.fixture(scope="module")
def batch_outcome(fields):
    """One 64-job mixed-codec batch over a 2-process pool, queue of 8."""
    jobs = [
        make_job(CODECS[i % len(CODECS)], fields[i % len(fields)],
                 eb=1e-3, mode="vr_rel")
        for i in range(64)
    ]
    results, stats = run_batch(
        jobs, workers=2, pool_kind="process", queue_size=QUEUE_SIZE
    )
    return jobs, results, stats


class TestMixedCodecBatch:
    def test_all_jobs_complete(self, batch_outcome):
        _, results, stats = batch_outcome
        assert all(r is not None for r in results)
        assert stats.totals["completed"] == 64
        assert stats.totals["failed"] == 0

    def test_bit_exact_with_single_threaded_path(self, batch_outcome, fields):
        jobs, results, _ = batch_outcome
        for job, result in zip(jobs, results):
            direct = get_codec(job.codec).compress(job.data, job.eb, job.mode)
            assert result.output == direct.payload, job.codec

    def test_queue_stayed_bounded(self, batch_outcome):
        _, _, stats = batch_outcome
        # blocking submission: the queue never grew past its capacity,
        # which is backpressure doing its job on a 64-job burst
        assert 0 < stats.queue_high_water <= QUEUE_SIZE
        assert stats.totals["rejected"] == 0

    def test_per_codec_counters(self, batch_outcome):
        _, _, stats = batch_outcome
        for codec in CODECS:
            assert stats.jobs[codec]["submitted"] == 16
            assert stats.jobs[codec]["completed"] == 16
            assert stats.latency[codec].count == 16

    def test_latency_percentiles_populated(self, batch_outcome):
        _, _, stats = batch_outcome
        lat = stats.latency["overall"]
        assert lat.count == 64
        assert 0 < lat.p50_s <= lat.p90_s <= lat.p99_s <= lat.max_s
        assert stats.throughput_jobs_per_s > 0
        assert stats.ratio > 1.0


class TestParallelTiling:
    def test_band_fanout_bit_exact(self, smooth2d):
        with WorkerPool(2, kind="process") as pool:
            for codec in ("sz14", "wavesz"):
                serial = tile_compress(
                    get_codec(codec), smooth2d, 1e-3, n_tiles=4
                )
                par = tile_compress_parallel(
                    codec, smooth2d, 1e-3, n_tiles=4, pool=pool
                )
                assert par.payload == serial.payload
                assert par.tile_ratios == serial.tile_ratios

    def test_profile_fanout_uses_profile_factory(self, smooth2d):
        with WorkerPool(2, kind="thread") as pool:
            serial = tile_compress(
                get_codec("wavesz-g"), smooth2d, 1e-3, n_tiles=3
            )
            par = tile_compress_parallel(
                "wavesz-g", smooth2d, 1e-3, n_tiles=3, pool=pool
            )
            assert par.payload == serial.payload


class TestPoolKindsAgree:
    def test_thread_and_process_and_inline_identical(self, smooth2d):
        jobs = [make_job(c, smooth2d) for c in CODECS[:3]]
        baseline, _ = run_batch(jobs, workers=0)
        for kind in ("thread", "process"):
            results, _ = run_batch(jobs, workers=2, pool_kind=kind)
            for b, r in zip(baseline, results):
                assert b.output == r.output
