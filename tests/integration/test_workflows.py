"""Integration: multi-step user workflows across subsystems."""

import numpy as np
import pytest

from repro import (
    OnlineSelector,
    SZ14Compressor,
    WaveSZCompressor,
    ZFPCompressor,
    load_field,
)
from repro.cli import main
from repro.io import Archive, read_raw_field
from repro.parallel import tile_compress, tile_decompress


class TestSnapshotWorkflow:
    def test_archive_whole_dataset_and_extract(self):
        """Compress a snapshot, ship one blob, extract one field."""
        comp = WaveSZCompressor(use_huffman=True)
        fields = {
            f: load_field("CESM-ATM", f)[:60, :120]
            for f in ("CLDLOW", "TS", "PSL")
        }
        arch = Archive.build(fields, comp, 1e-3, "vr_rel")
        blob = arch.to_bytes()
        assert len(blob) < sum(f.nbytes for f in fields.values())

        back = Archive.from_bytes(blob)
        ts = back.extract("TS", comp)
        vr = float(fields["TS"].max() - fields["TS"].min())
        assert np.abs(ts.astype(np.float64) - fields["TS"]).max() <= 1e-3 * vr

    def test_selector_feeds_archive(self):
        """Per-field bestfit selection, archived together."""
        selector = OnlineSelector([SZ14Compressor(), ZFPCompressor()])
        arch = Archive()
        fields = {
            "TS": load_field("CESM-ATM", "TS")[:48, :96],
            "FLNS": load_field("CESM-ATM", "FLNS")[:48, :96],
        }
        for name, data in fields.items():
            res = selector.select(data, 1e-3, "vr_rel")
            arch.add_field(name, res.compressed)
        back = Archive.from_bytes(arch.to_bytes())
        for name, data in fields.items():
            out = selector.decompress(back.payload(name))
            vr = float(data.max() - data.min())
            assert np.abs(out.astype(np.float64) - data).max() <= 1e-3 * vr

    def test_tiled_then_archived(self):
        """Bands for lanes, archive for shipping — composed."""
        comp = SZ14Compressor()
        x = load_field("NYX", "velocity_x")[:32]
        tiled = tile_compress(comp, x, 1e-3, n_tiles=4)
        out = tile_decompress(comp, tiled.payload)
        vr = float(x.max() - x.min())
        assert np.abs(out.astype(np.float64) - x).max() <= 1e-3 * vr


class TestCLIWorkflow:
    def test_generate_compress_decompress_chain(self, tmp_path):
        """The full artifact-style command chain through the CLI."""
        raw = tmp_path / "f.f32"
        wsz = tmp_path / "f.wsz"
        restored = tmp_path / "g.f32"
        assert main(["generate", "CESM-ATM", "PSL", "-o", str(raw)]) == 0
        assert main(["compress", str(raw), "--dims", "180", "360",
                     "--variant", "sz20", "--eb", "1e-3",
                     "-o", str(wsz), "--verify"]) == 0
        assert main(["decompress", str(wsz), "-o", str(restored)]) == 0
        a = read_raw_field(raw, (180, 360), np.float32)
        b = read_raw_field(restored, (180, 360), np.float32)
        vr = float(a.max() - a.min())
        assert np.abs(b.astype(np.float64) - a).max() <= 1e-3 * vr
