"""Property tests: store random access agrees with full decode, per codec.

Two invariants, checked for **every** name the registry resolves:

* ``read_slice`` over an arbitrary window equals the same window cut from
  the full ``read`` — tile-level random access is invisible to the caller;
* a cache-warm repeat of the same read performs zero codec decodes
  (asserted through the store's decode counter and cache hit counters),
  so random access is also *cheap* the second time.
"""

import numpy as np
import pytest

from repro.codec.registry import REGISTRY
from repro.errors import ShapeError
from repro.store import ArrayStore

# A fixed, irregular batch of windows: interior, band-aligned, straddling,
# single-row, negative-offset, and full-extent.  Deterministic on purpose
# — hypothesis owns the codec-internal properties; here the surface under
# test is geometry, and these windows hit every overlap class.
WINDOWS_2D = [
    (slice(10, 30), slice(5, 71)),
    (slice(0, 12), None),
    (slice(11, 13), slice(0, 80)),
    (slice(-9, -1), slice(-40, None)),
    (slice(23, 25),),
    (None, slice(2, 3)),
]


@pytest.mark.parametrize("name", REGISTRY.all_names())
class TestEveryCodec:
    def _put(self, tmp_path, name, smooth2d):
        store = ArrayStore(tmp_path / "store")
        try:
            store.put("f", smooth2d, name, 1e-3, n_tiles=4)
        except ShapeError:
            pytest.skip(f"{name} does not take 2D fields")
        return store

    def test_random_windows_match_full_read(self, tmp_path, name, smooth2d):
        store = self._put(tmp_path, name, smooth2d)
        full = store.read("f").data
        np.testing.assert_array_equal(full.shape, smooth2d.shape)
        for window in WINDOWS_2D:
            res = store.read_slice("f", window)
            np.testing.assert_array_equal(
                res.data, full[tuple(w if w else slice(None) for w in window)],
                err_msg=f"{name} window {window}",
            )

    def test_warm_read_is_decode_free(self, tmp_path, name, smooth2d):
        store = self._put(tmp_path, name, smooth2d)
        store.read("f")
        assert store.decode_calls == 4
        hits_before = store.cache.hits
        again = store.read("f")
        assert store.decode_calls == 4  # nothing re-decoded
        assert store.cache.hits == hits_before + 4
        assert again.ok


def test_windows_cover_every_overlap_class(smooth2d):
    """Self-check: the window batch exercises 1, some, and all tiles."""
    from repro.tiling import TileGrid, normalize_slices

    grid = TileGrid.regular(smooth2d.shape, 4)
    counts = {
        len(grid.overlapping(normalize_slices(smooth2d.shape, w)[0]))
        for w in WINDOWS_2D
    }
    assert 1 in counts and 4 in counts and len(counts) >= 3
