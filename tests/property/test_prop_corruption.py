"""Property tests: corrupted payloads never cause silent wrong output.

A downstream archive must be able to trust that a damaged payload either
decodes to exactly what was stored or raises — and that what it raises is
always a :class:`ReproError` subtype, never a raw ``struct.error`` /
``IndexError`` / ``UnicodeDecodeError`` leaking from a decode loop.  With
container format v2 every byte of the stream is covered by a CRC32, so
byte-level damage is rejected at the checksum layer; these properties pin
both the detection and the exception-type contract across every
compressor variant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.fields import gaussian_random_field
from repro.errors import ReproError
from repro.variants import compressor_for

VARIANTS = ["SZ-1.4", "SZ-1.0", "GhostSZ", "waveSZ", "ZFP-like"]


@pytest.fixture(scope="module", params=VARIANTS)
def payload_and_field(request):
    g = gaussian_random_field((24, 40), beta=3.5, seed=77)
    x = (g / np.abs(g).max()).astype(np.float32)
    comp = compressor_for(request.param)
    cf = comp.compress(x, 1e-3, "vr_rel")
    return comp, cf.payload, x


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_truncation_always_raises_repro_error(payload_and_field, data):
    comp, payload, _ = payload_and_field
    cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    with pytest.raises(ReproError):
        comp.decompress(payload[:cut])


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_bitflip_always_raises_repro_error(payload_and_field, data):
    """v2 streams are fully checksummed: any single flipped bit raises."""
    comp, payload, _ = payload_and_field
    pos = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    blob = bytearray(payload)
    blob[pos] ^= 1 << bit
    with pytest.raises(ReproError):
        comp.decompress(bytes(blob))


@given(st.binary(min_size=0, max_size=400))
@settings(max_examples=60, deadline=None)
def test_garbage_raises_repro_error(payload_and_field, blob):
    comp, _, _ = payload_and_field
    with pytest.raises(ReproError):
        comp.decompress(blob)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_garbage_splice_raises_repro_error(payload_and_field, data):
    """Inserted bytes shift the framing: must be detected, not mis-decoded."""
    comp, payload, _ = payload_and_field
    pos = data.draw(st.integers(min_value=0, max_value=len(payload)))
    junk = data.draw(st.binary(min_size=1, max_size=32))
    with pytest.raises(ReproError):
        comp.decompress(payload[:pos] + junk + payload[pos:])
