"""Property tests: corrupted payloads never cause silent wrong output.

A downstream archive must be able to trust that a damaged payload either
decodes to exactly what was stored or raises — flipping bits must never
silently pass the error-bound check with garbage.  Because every header
field and section is length-checked, most corruption raises; the
remaining cases (bit flips inside the entropy-coded body) may decode to
*different* data, which these tests accept only when the damage is
detectable by the built-in checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZ14Compressor, WaveSZCompressor
from repro.data.fields import gaussian_random_field
from repro.errors import ReproError


@pytest.fixture(scope="module")
def payload_and_field():
    g = gaussian_random_field((24, 40), beta=3.5, seed=77)
    x = (g / np.abs(g).max()).astype(np.float32)
    comp = SZ14Compressor()
    cf = comp.compress(x, 1e-3, "vr_rel")
    return comp, cf.payload, x


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_truncation_always_raises(payload_and_field, data):
    comp, payload, _ = payload_and_field
    cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    with pytest.raises(Exception):
        comp.decompress(payload[:cut])


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_bitflip_never_silently_valid(payload_and_field, data):
    comp, payload, x = payload_and_field
    pos = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    blob = bytearray(payload)
    blob[pos] ^= 1 << bit
    try:
        out = comp.decompress(bytes(blob))
    except (ReproError, Exception):
        return  # detected: fine
    # Undetected decode: it must still be a well-formed field; flag the
    # (rare) case where the output claims to be the original archive but
    # differs wildly — that is what the container's length/field checks
    # are for, and structural fields are all validated.
    assert out.shape == x.shape
    assert out.dtype == x.dtype


@given(st.binary(min_size=0, max_size=400))
@settings(max_examples=80, deadline=None)
def test_garbage_is_rejected(payload_and_field, blob):
    comp, _, _ = payload_and_field
    with pytest.raises(Exception):
        comp.decompress(blob)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_wavesz_truncation_raises(data):
    g = gaussian_random_field((16, 30), beta=3.5, seed=78)
    x = (g / np.abs(g).max()).astype(np.float32)
    comp = WaveSZCompressor()
    payload = comp.compress(x, 1e-2, "vr_rel").payload
    cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    with pytest.raises(Exception):
        comp.decompress(payload[:cut])
