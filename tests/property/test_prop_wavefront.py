"""Property tests: the wavefront transform and index machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wavefront import build_layout, from_wavefront, to_wavefront
from repro.sz.wavefront_index import (
    border_indices,
    interior_wavefronts,
    manhattan_grid,
)

shapes_2d = st.tuples(
    st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=30)
)
shapes_3d = st.tuples(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=10),
)


@given(shapes_2d, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=100, deadline=None)
def test_transform_is_bijection(shape, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape).astype(np.float32)
    stream, layout = to_wavefront(data)
    assert (from_wavefront(stream, layout) == data).all()


@given(shapes_2d)
@settings(max_examples=100, deadline=None)
def test_columns_partition_by_distance(shape):
    layout = build_layout(shape)
    md = manhattan_grid(shape).reshape(-1)
    seen = np.zeros(md.size, dtype=bool)
    for t in range(layout.n_cols):
        col = layout.column(t)
        assert (md[col] == t).all()
        assert not seen[col].any()
        seen[col] = True
    assert seen.all()


@given(shapes_3d)
@settings(max_examples=60, deadline=None)
def test_3d_wavefronts_respect_dependencies(shape):
    from repro.sz.lorenzo import neighbor_offsets

    offsets, _ = neighbor_offsets(shape)
    done = np.zeros(int(np.prod(shape)), dtype=bool)
    done[border_indices(shape)] = True
    for group in interior_wavefronts(shape):
        for off in offsets:
            assert done[group - off].all()
        done[group] = True
    assert done.all()


@given(shapes_3d)
@settings(max_examples=60, deadline=None)
def test_interior_plus_border_is_everything(shape):
    interior = np.concatenate(interior_wavefronts(shape)) if any(
        n > 1 for n in shape
    ) else np.empty(0, np.int64)
    border = border_indices(shape)
    combined = np.concatenate([interior, border])
    assert np.unique(combined).size == int(np.prod(shape))
