"""Property tests: end-to-end error-bound guarantees for every compressor.

These are the headline invariants of the SZ model: for arbitrary finite
fields and arbitrary bounds, compress->decompress must respect
``|d - d•| <= eb`` pointwise and be bit-exactly reproducible.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WaveSZCompressor
from repro.ghostsz import GhostSZCompressor
from repro.sz import SZ10Compressor, SZ14Compressor


def _field(seed: int, d0: int, d1: int, scale: float, smooth: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(d0, d1)) * scale
    if smooth:
        x = np.cumsum(np.cumsum(x, axis=0), axis=1) / (d0 * d1) ** 0.5
    return x.astype(np.float32)


field_params = st.tuples(
    st.integers(min_value=0, max_value=2**31),  # seed
    st.integers(min_value=2, max_value=24),  # d0
    st.integers(min_value=24, max_value=48),  # d1 (>= d0 for waveSZ)
    st.sampled_from([1e-3, 1.0, 1e4]),  # magnitude scale
    st.booleans(),  # smooth or rough
)
bounds = st.sampled_from([1e-1, 1e-2, 1e-3, 1e-4])


@given(field_params, bounds)
@settings(max_examples=25, deadline=None)
def test_sz14_bound_and_roundtrip(params, eb):
    x = _field(*params)
    c = SZ14Compressor()
    cf = c.compress(x, eb, "vr_rel")
    out = c.decompress(cf)
    assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute
    # Determinism: same input -> same payload.
    assert c.compress(x, eb, "vr_rel").payload == cf.payload


@given(field_params, bounds)
@settings(max_examples=25, deadline=None)
def test_wavesz_bound_and_tightening(params, eb):
    x = _field(*params)
    c = WaveSZCompressor(use_huffman=True)
    cf = c.compress(x, eb, "vr_rel")
    out = c.decompress(cf)
    vr = float(x.max() - x.min()) or 1.0
    assert cf.bound.absolute <= eb * vr  # base-2: never looser
    assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute


@given(field_params, bounds)
@settings(max_examples=25, deadline=None)
def test_ghostsz_bound(params, eb):
    x = _field(*params)
    c = GhostSZCompressor()
    cf = c.compress(x, eb, "vr_rel")
    out = c.decompress(cf)
    assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=4, max_value=300),
    bounds,
)
@settings(max_examples=20, deadline=None)
def test_sz10_bound_1d(seed, n, eb):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.normal(size=n)).astype(np.float32)
    c = SZ10Compressor()
    cf = c.compress(x, eb, "vr_rel")
    out = c.decompress(cf)
    assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute


@given(field_params)
@settings(max_examples=15, deadline=None)
def test_wavesz_sz14_same_codes_same_config(params):
    """Order independence (DESIGN.md §5): wavefront scheduling changes the
    processing order only — codes match SZ-1.4's raster PQD bit-for-bit
    when quantizer config, bound, and border policy agree."""
    from repro.config import QuantizerConfig
    from repro.sz.pqd import pqd_compress

    x = _field(*params)
    p = 2.0**-8
    engine = pqd_compress(x, p, QuantizerConfig(), border="verbatim")
    c = WaveSZCompressor(use_huffman=True)
    out = c.decompress(c.compress(x, p, "abs"))
    assert (out == engine.decompressed).all()
