"""Property tests: SZ-2.0 hybrid and tiled compression invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZ14Compressor, SZ20Compressor
from repro.parallel import tile_compress, tile_decompress

sz20 = SZ20Compressor()


def _field(seed: int, d0: int, d1: int, smooth: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(d0, d1))
    if smooth:
        x = np.cumsum(x, axis=1) / d1**0.5
    return x.astype(np.float32)


params = st.tuples(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=4, max_value=30),
    st.integers(min_value=4, max_value=30),
    st.booleans(),
)
bounds = st.sampled_from([1e-1, 1e-2, 1e-3])


@given(params, bounds)
@settings(max_examples=25, deadline=None)
def test_sz20_bound_any_shape(p, eb):
    """Ragged block grids, rough or smooth data: the bound always holds."""
    x = _field(*p)
    cf = sz20.compress(x, eb, "vr_rel")
    out = sz20.decompress(cf)
    assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute


@given(params, st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_tiling_matches_monolithic_bound(p, n_tiles):
    seed, d0, d1, smooth = p
    d0 = max(d0, 2 * n_tiles * 2)  # bands must stay >= 2 points thick
    x = _field(seed, d0, d1, smooth)
    comp = SZ14Compressor()
    res = tile_compress(comp, x, 1e-3, "vr_rel", n_tiles=n_tiles)
    out = tile_decompress(comp, res.payload)
    vr = float(x.max() - x.min()) or 1.0
    assert np.abs(out.astype(np.float64) - x).max() <= 1e-3 * vr
    # Tile count and per-tile ratios are recorded faithfully.
    assert res.n_tiles == n_tiles
    assert len(res.tile_ratios) == n_tiles
