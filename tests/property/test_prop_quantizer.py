"""Property tests: Algorithm 1 invariants over arbitrary inputs."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import QuantizerConfig
from repro.sz.quantizer import quantize_scalar, quantize_vector

finite = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
precisions = st.floats(min_value=1e-9, max_value=1e3)
quants = st.sampled_from(
    [QuantizerConfig(bits=b) for b in (4, 8, 12, 16)]
)


@given(finite, finite, precisions, quants)
@settings(max_examples=300, deadline=None)
def test_scalar_bound_or_unpredictable(d, pred, p, q):
    code, d_re = quantize_scalar(d, pred, p, q)
    if code != 0:
        assert 0 < code < q.capacity
        assert abs(d_re - d) <= p
    else:
        assert d_re == d


@given(finite, finite, precisions, quants)
@settings(max_examples=300, deadline=None)
def test_scalar_round_to_nearest_equivalence(d, pred, p, q):
    """code - r == round(diff / 2p) whenever quantizable."""
    code, _ = quantize_scalar(d, pred, p, q)
    if code == 0:
        return
    diff = d - pred
    k = code - q.radius
    assert abs(k - diff / (2 * p)) <= 0.5 + 1e-6


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=400),
    precisions,
    quants,
)
@settings(max_examples=100, deadline=None)
def test_vector_matches_scalar(seed, n, p, q):
    rng = np.random.default_rng(seed)
    pred = rng.normal(size=n) * 10
    d = pred + rng.normal(size=n) * 10 * p
    codes, d_out = quantize_vector(d, pred, p, q, np.float64)
    for i in range(n):
        c, dr = quantize_scalar(float(d[i]), float(pred[i]), p, q)
        assert codes[i] == c
        if c:
            assert d_out[i] == dr


@given(st.integers(min_value=0, max_value=2**31), precisions)
@settings(max_examples=100, deadline=None)
def test_vector_float32_bound_after_rounding(seed, p):
    """The guarantee must hold on the float32 values actually stored."""
    assume(p > 1e-7)
    rng = np.random.default_rng(seed)
    q = QuantizerConfig()
    pred = (rng.normal(size=200) * 100).astype(np.float64)
    d = pred + rng.normal(size=200) * 5 * p
    codes, d_out = quantize_vector(d, pred, p, q, np.float32)
    ok = codes != 0
    assert (np.abs(d_out[ok].astype(np.float64) - d[ok]) <= p).all()
    assert (d_out[~ok].astype(np.float64) == d[~ok].astype(np.float32)).all()
