"""Differential property tests: fast kernels are bit-exact vs reference.

The dispatch registry's contract (see ``repro/kernels/dispatch.py``) is
that every ``REPRO_KERNELS=fast`` kernel returns values identical to the
reference implementation for every accepted input, and raises the same
exception class for every rejected one.  These tests drive each
registered kernel pair with hypothesis-generated inputs — including
adversarial payloads — and compare bytes, arrays, and failure classes
across ``forced("reference")`` / ``forced("fast")``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.codec.registry import get_codec
from repro.config import QuantizerConfig
from repro.encoding.bitio import pack_codes, unpack_codes
from repro.encoding.huffman import HuffmanCodec, HuffmanTable
from repro.errors import ReproError
from repro.kernels import forced
from repro.lossless.deflate import deflate, inflate
from repro.lossless.lz77 import LZ77Encoder
from repro.sz.pqd import pqd_compress, pqd_decompress

Q = QuantizerConfig()

symbol_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=3000),
    elements=st.integers(min_value=0, max_value=600),
)


def _outcome(fn):
    """Run ``fn``; normalize to ('ok', value) or the ReproError class name."""
    try:
        return ("ok", fn())
    except ReproError as err:
        return type(err).__name__


def _same_outcome(fn, compare=lambda a, b: a == b):
    ref = _outcome(lambda: fn())
    with forced("fast"):
        fast = _outcome(lambda: fn())
    if isinstance(ref, tuple) and isinstance(fast, tuple):
        assert compare(ref[1], fast[1]), "fast kernel diverged on value"
    else:
        assert ref == fast, f"failure taxonomy diverged: {ref} vs {fast}"
    return ref


@given(symbol_arrays)
@settings(max_examples=50, deadline=None)
def test_huffman_encode_decode_identical(symbols):
    codec = HuffmanCodec(HuffmanTable.from_symbols(symbols))
    with forced("reference"):
        payload_ref, nbits_ref = codec.encode(symbols)
    with forced("fast"):
        payload_fast, nbits_fast = codec.encode(symbols)
    assert payload_ref == payload_fast and nbits_ref == nbits_fast
    with forced("reference"):
        dec_ref = codec.decode(payload_ref, symbols.size)
    with forced("fast"):
        dec_fast = codec.decode(payload_ref, symbols.size)
    assert np.array_equal(dec_ref, dec_fast)
    assert np.array_equal(dec_ref, symbols)


@given(symbol_arrays, st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_huffman_decode_corrupt_same_taxonomy(symbols, seed):
    """Bit-flipped / truncated payloads fail (or decode) identically."""
    codec = HuffmanCodec(HuffmanTable.from_symbols(symbols))
    payload, _ = codec.encode(symbols)
    rng = np.random.default_rng(seed)
    corrupt = bytearray(payload)
    for _ in range(min(3, len(corrupt))):
        corrupt[rng.integers(len(corrupt))] ^= 1 << rng.integers(8)
    for bad in (bytes(corrupt), payload[: max(1, len(payload) - 1)]):
        with forced("reference"):
            ref = _outcome(lambda: codec.decode(bad, symbols.size).tolist())
        with forced("fast"):
            fast = _outcome(lambda: codec.decode(bad, symbols.size).tolist())
        assert ref == fast


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(min_value=1, max_value=500),
        elements=st.integers(min_value=1, max_value=57),
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_pack_unpack_codes_identical(lengths, seed):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 1 << 57, lengths.size).astype(np.uint64) & (
        (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
    )
    with forced("reference"):
        ref = pack_codes(codes, lengths)
    with forced("fast"):
        fast = pack_codes(codes, lengths)
    assert ref == fast
    payload, _ = ref
    with forced("reference"):
        vals_ref = unpack_codes(payload, lengths)
    with forced("fast"):
        vals_fast = unpack_codes(payload, lengths)
    assert np.array_equal(vals_ref, vals_fast)
    assert np.array_equal(vals_ref.astype(np.uint64), codes)


@given(st.binary(min_size=0, max_size=6000))
@settings(max_examples=40, deadline=None)
def test_lz77_deflate_inflate_identical(data):
    for encoder in (LZ77Encoder.best_speed(), LZ77Encoder.best_compression()):
        with forced("reference"):
            tok_ref = encoder.parse(data)
            blob_ref = deflate(data, encoder)
        with forced("fast"):
            tok_fast = encoder.parse(data)
            blob_fast = deflate(data, encoder)
        assert np.array_equal(tok_ref.kinds, tok_fast.kinds)
        assert np.array_equal(tok_ref.values, tok_fast.values)
        assert np.array_equal(tok_ref.dists, tok_fast.dists)
        assert blob_ref == blob_fast
        with forced("reference"):
            body_ref = inflate(blob_ref)
        with forced("fast"):
            body_fast = inflate(blob_ref)
        assert body_ref == body_fast == data


@given(
    st.binary(min_size=8, max_size=2000),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_inflate_corrupt_same_taxonomy(data, seed):
    blob = bytearray(deflate(data))
    rng = np.random.default_rng(seed)
    for _ in range(3):
        blob[rng.integers(len(blob))] ^= 1 << rng.integers(8)
    bad = bytes(blob)
    with forced("reference"):
        ref = _outcome(lambda: inflate(bad))
    with forced("fast"):
        fast = _outcome(lambda: inflate(bad))
    assert ref == fast


pqd_fields = st.tuples(
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from([(40,), (2, 24), (2, 2), (9, 11), (3, 4, 6)]),
    st.sampled_from([np.float32, np.float64]),
    st.sampled_from(["truncate", "verbatim", "padded"]),
    st.sampled_from([1e-1, 1e-3, 1e-6, 1e-45]),
    st.sampled_from(["smooth", "spiky", "signed_zero", "nan"]),
)


@given(pqd_fields)
@settings(max_examples=60, deadline=None)
def test_pqd_sweeps_identical(params):
    seed, shape, dtype, border, precision, flavor = params
    rng = np.random.default_rng(seed)
    field = rng.normal(size=shape)
    if flavor == "spiky":
        mask = rng.random(shape) < 0.2
        field[mask] *= 1e12
    elif flavor == "signed_zero":
        field[rng.random(shape) < 0.4] = -0.0
        field[rng.random(shape) < 0.2] = 0.0
    elif flavor == "nan":
        if border == "truncate":
            return  # non-finite values are rejected before the kernel
        field[rng.random(shape) < 0.1] = np.nan
    field = field.astype(dtype)

    def run_compress():
        res = pqd_compress(field, precision, Q, border=border)
        return (
            res.codes.tobytes(),
            res.decompressed.tobytes(),
            res.border_values.tobytes(),
            res.outlier_values.tobytes(),
        )

    ref = _same_outcome(run_compress)
    if not isinstance(ref, tuple):
        return
    res = pqd_compress(field, precision, Q, border=border)

    def run_decompress():
        return pqd_decompress(
            res.codes,
            res.border_values,
            res.outlier_values,
            precision=precision,
            quant=Q,
            dtype=field.dtype,
            border=border,
        ).tobytes()

    _same_outcome(run_decompress)


@given(
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["sz10", "sz14", "wavesz"]),
    st.sampled_from([1e-2, 1e-4]),
)
@settings(max_examples=15, deadline=None)
def test_registry_codecs_byte_identical(seed, name, eb):
    """End to end: every registry codec's payload is mode-independent."""
    rng = np.random.default_rng(seed)
    field = np.cumsum(rng.normal(size=(12, 26)), axis=1).astype(np.float32)
    codec = get_codec(name)
    with forced("reference"):
        cf_ref = codec.compress(field, eb, "vr_rel")
        out_ref = codec.decompress(cf_ref)
    with forced("fast"):
        cf_fast = codec.compress(field, eb, "vr_rel")
        out_fast = codec.decompress(cf_fast)
    assert cf_ref.payload == cf_fast.payload
    assert out_ref.tobytes() == out_fast.tobytes()
