"""Property tests: truncation-based binary analysis invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sz.unpredictable import (
    decode_truncated,
    encode_truncated,
    truncate_roundtrip,
)

float32_arrays = hnp.arrays(
    dtype=np.float32,
    shape=st.integers(min_value=0, max_value=300),
    elements=st.floats(
        min_value=np.float32(-1e30), max_value=np.float32(1e30),
        allow_nan=False, allow_infinity=False, width=32,
    ),
)
bounds = st.floats(min_value=1e-12, max_value=1e3)


@given(float32_arrays, bounds)
@settings(max_examples=100, deadline=None)
def test_bound_held(vals, eb):
    dec = decode_truncated(encode_truncated(vals, eb), vals.size, eb, np.float32)
    assert (np.abs(dec.astype(np.float64) - vals.astype(np.float64)) <= eb).all()


@given(float32_arrays, bounds)
@settings(max_examples=100, deadline=None)
def test_roundtrip_helper_equals_codec(vals, eb):
    """The vectorized in-loop truncation is bit-identical to the real
    encode/decode pair — the PQD feedback depends on this."""
    via_codec = decode_truncated(encode_truncated(vals, eb), vals.size, eb, np.float32)
    direct = truncate_roundtrip(vals, eb)
    assert (via_codec.view(np.uint32) == direct.view(np.uint32)).all()


@given(float32_arrays, bounds)
@settings(max_examples=60, deadline=None)
def test_idempotent(vals, eb):
    """Truncating an already-truncated value changes nothing."""
    once = truncate_roundtrip(vals, eb)
    twice = truncate_roundtrip(once, eb)
    assert (once.view(np.uint32) == twice.view(np.uint32)).all()
