"""Property tests: Huffman codec correctness and optimality bounds."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding import HuffmanCodec, HuffmanTable, entropy_bits, symbol_histogram

symbol_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=2000),
    elements=st.integers(min_value=0, max_value=500),
)


@given(symbol_arrays)
@settings(max_examples=60, deadline=None)
def test_roundtrip(symbols):
    codec = HuffmanCodec(HuffmanTable.from_symbols(symbols))
    payload, nbits = codec.encode(symbols)
    assert (codec.decode(payload, symbols.size) == symbols).all()
    assert len(payload) == (nbits + 7) // 8


@given(symbol_arrays)
@settings(max_examples=60, deadline=None)
def test_prefix_free_and_complete(symbols):
    table = HuffmanTable.from_symbols(symbols)
    assert table.is_prefix_free_and_complete()


@given(symbol_arrays)
@settings(max_examples=60, deadline=None)
def test_entropy_bound(symbols):
    """Expected code length in [H, H+1) — Huffman's optimality window."""
    vals, cnts = symbol_histogram(symbols)
    if vals.size < 2:
        return
    codec = HuffmanCodec(HuffmanTable.from_frequencies(vals, cnts))
    avg = codec.encoded_size_bits(symbols) / symbols.size
    H = entropy_bits(cnts)
    assert H - 1e-9 <= avg < H + 1.0


@given(symbol_arrays)
@settings(max_examples=40, deadline=None)
def test_table_serialization_roundtrip(symbols):
    t = HuffmanTable.from_symbols(symbols)
    t2, _ = HuffmanTable.from_bytes(t.to_bytes())
    assert (t2.symbols == t.symbols).all()
    assert (t2.lengths == t.lengths).all()
