"""Property tests: the DEFLATE substrate is lossless on arbitrary bytes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lossless import GzipStage, LosslessMode, deflate, inflate
from repro.lossless.lz77 import LZ77Encoder


@given(st.binary(max_size=4000))
@settings(max_examples=60, deadline=None)
def test_inflate_deflate_identity(data):
    assert inflate(deflate(data)) == data


@given(st.binary(max_size=2000))
@settings(max_examples=40, deadline=None)
def test_fast_encoder_identity(data):
    assert inflate(deflate(data, LZ77Encoder.best_speed())) == data


@given(
    st.binary(min_size=1, max_size=50),
    st.integers(min_value=2, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_repetitive_data_compresses(chunk, reps):
    data = chunk * reps
    blob = deflate(data)
    assert inflate(blob) == data
    if len(data) > 400:
        assert len(blob) < len(data)


@given(st.binary(max_size=1500))
@settings(max_examples=30, deadline=None)
def test_lz77_parse_reconstruct_identity(data):
    ts = LZ77Encoder().parse(data)
    assert ts.reconstruct() == data


@given(st.binary(max_size=1500))
@settings(max_examples=30, deadline=None)
def test_gzip_stage_identity_both_modes(data):
    for mode in LosslessMode:
        st_ = GzipStage(mode=mode)
        assert st_.decompress(st_.compress(data)) == data
