"""Property tests for consistent-hash placement.

The two guarantees the gateway's scaling story rests on, checked over
randomized cluster shapes and key populations:

* **uniformity** — with the default virtual-node count, no shard's share
  of a large key population strays too far from ``1/N``;
* **bounded rebalance** — adding (or removing) one shard re-homes about
  ``1/N`` (``1/(N+1)``) of the keys and never shuffles a key between two
  surviving shards: every move involves the shard that changed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import ShardRing

shard_counts = st.integers(min_value=2, max_value=8)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _keys(seed: int, n: int = 600) -> list[str]:
    return [f"key-{seed}-{i}" for i in range(n)]


class TestUniformity:
    @settings(max_examples=25, deadline=None)
    @given(n=shard_counts, seed=seeds)
    def test_no_shard_hoards_or_starves(self, n, seed):
        ring = ShardRing([f"s{i}" for i in range(n)])
        keys = _keys(seed)
        counts = dict.fromkeys(ring.shard_ids, 0)
        for k in keys:
            counts[ring.owner(k)] += 1
        ideal = len(keys) / n
        # 64 vnodes keeps every shard within ~2.5x of its fair share and
        # never empty; the bound is deliberately loose — placement only
        # needs to balance bytes, not split them exactly.
        for sid, c in counts.items():
            assert c > 0, f"{sid} owns nothing"
            assert c < ideal * 2.5, f"{sid} owns {c} of ~{ideal:.0f}"

    @settings(max_examples=15, deadline=None)
    @given(n=shard_counts, seed=seeds)
    def test_replica_sets_are_distinct_shards(self, n, seed):
        ring = ShardRing([f"s{i}" for i in range(n)])
        r = min(3, n)
        for k in _keys(seed, 50):
            owners = ring.owners(k, r)
            assert len(owners) == len(set(owners)) == r


class TestBoundedRebalance:
    @settings(max_examples=25, deadline=None)
    @given(n=shard_counts, seed=seeds)
    def test_adding_one_shard_moves_about_one_over_n(self, n, seed):
        ring = ShardRing([f"s{i}" for i in range(n)])
        grown = ring.with_shard("new")
        keys = _keys(seed)
        moved = [k for k in keys if ring.owner(k) != grown.owner(k)]
        # ideal fraction is 1/(n+1); allow hash-variance slack
        assert len(moved) <= len(keys) * (1 / (n + 1) + 0.12)
        for k in moved:
            assert grown.owner(k) == "new", (
                "a key moved between surviving shards"
            )

    @settings(max_examples=25, deadline=None)
    @given(n=shard_counts, seed=seeds)
    def test_removing_one_shard_only_rehomes_its_keys(self, n, seed):
        ring = ShardRing([f"s{i}" for i in range(n)])
        shrunk = ring.without_shard("s0")
        for k in _keys(seed, 300):
            if ring.owner(k) != "s0":
                assert shrunk.owner(k) == ring.owner(k), (
                    "a key not owned by the removed shard moved"
                )

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_membership_round_trip_restores_placement(self, seed):
        ring = ShardRing(["a", "b", "c"])
        back = ring.with_shard("d").without_shard("d")
        for k in _keys(seed, 200):
            assert ring.owner(k) == back.owner(k)
