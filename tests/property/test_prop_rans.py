"""Differential property suite for the rANS / RLE / histogram kernels.

PR 5 pattern: every ``REPRO_KERNELS`` twin must be *byte-identical*
across dispatch modes on arbitrary inputs, and the host round trip must
be lossless over adversarial distributions — all-zero, single-symbol,
uniform, heavy-tail — which stress the table normalization (extreme
skew), the RLE activation rule, and the lane renormalization paths.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.codec.registry import get_codec
from repro.kernels import forced
from repro.rans import (
    RansTable,
    decode_tokens,
    encode_tokens,
    normalize_freqs,
    probe_codes,
    rle_collapse,
    rle_expand,
)
from repro.streams import decompress_auto


def _table_for(tokens):
    values, counts = np.unique(tokens, return_counts=True)
    return RansTable.from_counts(values.astype(np.int64), counts.astype(np.int64))


# Adversarial code streams: each branch is one distribution family.
code_streams = st.one_of(
    # all one symbol (degenerate table, maximal runs)
    st.builds(
        lambda n, s: np.full(n, s, dtype=np.int64),
        st.integers(1, 3000),
        st.integers(0, 1 << 16),
    ),
    # uniform over a window
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(1, 2000),
        elements=st.integers(0, 600),
    ),
    # heavy-tail: mostly one symbol, rare wide literals
    st.builds(
        lambda seed, n: (
            lambda rng: np.where(
                rng.random(n) < 0.85, 512, rng.integers(0, 4000, n)
            ).astype(np.int64)
        )(np.random.default_rng(seed)),
        st.integers(0, 2**31),
        st.integers(1, 3000),
    ),
    # blocky runs (RLE chunk-splitting paths)
    st.builds(
        lambda seed, blocks: (
            lambda rng: np.repeat(
                rng.integers(0, 30, blocks), rng.integers(1, 400, blocks)
            ).astype(np.int64)
        )(np.random.default_rng(seed)),
        st.integers(0, 2**31),
        st.integers(1, 12),
    ),
)


@given(code_streams)
@settings(max_examples=60, deadline=None)
def test_coder_roundtrip_and_mode_parity(codes):
    table = _table_for(codes)
    blobs = {}
    for mode in ("reference", "fast"):
        with forced(mode):
            blob = encode_tokens(codes, table)
            back = decode_tokens(blob, table, codes.size)
        assert (back == codes).all(), mode
        blobs[mode] = blob
    assert blobs["reference"] == blobs["fast"]


@given(code_streams)
@settings(max_examples=60, deadline=None)
def test_rle_roundtrip_and_mode_parity(codes):
    probe = probe_codes(codes)
    run_symbol = probe.run_symbol
    results = {}
    for mode in ("reference", "fast"):
        with forced(mode):
            tokens, runs = rle_collapse(codes, run_symbol)
            back = rle_expand(tokens, runs, run_symbol)
        assert (back == codes).all(), mode
        results[mode] = (tokens.tobytes(), runs.tobytes())
    assert results["reference"] == results["fast"]


@given(code_streams)
@settings(max_examples=60, deadline=None)
def test_full_rans_plan_roundtrip(codes):
    """Probe → table → (collapse) → encode → decode → (expand)."""
    probe = probe_codes(codes)
    if not probe.rans_ok:
        return
    table = RansTable.from_counts(probe.values, probe.token_counts)
    if probe.use_rle:
        tokens, runs = rle_collapse(codes, probe.run_symbol)
    else:
        tokens, runs = codes, None
    assert tokens.size == probe.n_tokens
    blob = encode_tokens(tokens, table)
    back = decode_tokens(blob, table, tokens.size)
    if runs is not None:
        back = rle_expand(back, runs, probe.run_symbol)
    assert (back == codes).all()


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(1, 200),
        elements=st.integers(1, 10**9),
    )
)
@settings(max_examples=80, deadline=None)
def test_normalize_freqs_invariants(counts):
    freqs = normalize_freqs(counts)
    assert int(freqs.sum()) == 4096
    assert (freqs >= 1).all()


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(1, 4000),
        elements=st.integers(0, 1 << 20),
    )
)
@settings(max_examples=40, deadline=None)
def test_histogram_mode_parity(flat):
    from repro.encoding.histogram import symbol_histogram

    with forced("reference"):
        v_ref, c_ref = symbol_histogram(flat)
    with forced("fast"):
        v_fast, c_fast = symbol_histogram(flat)
    assert (v_ref == v_fast).all()
    assert (c_ref == c_fast).all()
    assert int(c_ref.sum()) == flat.size


@given(
    st.integers(0, 2**31),
    st.sampled_from(["wavesz-dp-rans", "wavesz-dp-auto", "sz14-rans"]),
    st.sampled_from(["fast", "reference"]),
)
@settings(max_examples=15, deadline=None)
def test_stage_level_roundtrip_is_bounded(seed, profile, mode):
    """End-to-end: the entropy backend never affects the error bound."""
    rng = np.random.default_rng(seed)
    f = np.cumsum(rng.standard_normal((24, 30)).astype(np.float32), axis=0) / 8
    eb = 1e-3
    with forced(mode):
        comp = get_codec(profile)
        cf = comp.compress(f, eb, "vr_rel")
        out = decompress_auto(cf.payload)
    eb_abs = cf.meta.get("eb_abs")
    if eb_abs is None:
        vr = float(f.max() - f.min())
        eb_abs = eb * vr if vr > 0 else eb
    assert np.abs(out.astype(np.float64) - f.astype(np.float64)).max() <= eb_abs * (
        1 + 1e-9
    )
