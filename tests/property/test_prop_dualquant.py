"""Property tests for the dual-quant engine and the waveSZ-dp codec.

The dual-quant refactor's headline claims, driven with hypothesis:

* the error bound holds pointwise on arbitrary finite 1D/2D/3D fields in
  every bound mode, under **both** kernel dispatch modes — the bound is a
  property of the wire format, not of friendly data;
* decode is bit-exactly deterministic and the fast diff/cumsum sweeps
  produce payloads identical to the raster-order reference twins;
* the engine's integer phase-2 round trip is exact even when residuals
  overflow the quantizer range (outlier deltas) or points fall off the
  lattice (raw points).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.registry import get_codec
from repro.config import QuantizerConfig
from repro.kernels import forced, resolve
from repro.sz.dualquant import dq_compress, dq_decompress

Q = QuantizerConfig()

shapes = st.one_of(
    st.tuples(st.integers(2, 400)),
    st.tuples(st.integers(2, 24), st.integers(2, 24)),
    st.tuples(st.integers(2, 8), st.integers(2, 8), st.integers(2, 8)),
)
bounds = st.sampled_from([1e-1, 1e-2, 1e-3, 1e-4])
scales = st.sampled_from([1e-3, 1.0, 1e4])
kernel_modes = st.sampled_from(["reference", "fast"])


def _field(seed: int, shape: tuple[int, ...], scale: float, smooth: bool):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape) * scale
    if smooth:
        for axis in range(x.ndim):
            x = np.cumsum(x, axis=axis)
        x = x / x.size**0.5
    return x.astype(np.float32)


@given(
    st.integers(0, 2**31), shapes, scales, st.booleans(), bounds,
    st.sampled_from(["abs", "vr_rel"]), kernel_modes,
)
@settings(max_examples=60, deadline=None)
def test_bound_holds_any_rank_any_mode(seed, shape, scale, smooth, eb, mode,
                                       kmode):
    x = _field(seed, shape, scale, smooth)
    c = get_codec("wavesz-dp")
    with forced(kmode):
        cf = c.compress(x, eb, mode)
        out = c.decompress(cf.payload)
    assert out.shape == x.shape and out.dtype == x.dtype
    err = np.abs(out.astype(np.float64) - x.astype(np.float64))
    assert float(err.max()) <= cf.bound.absolute


@given(st.integers(0, 2**31), shapes, scales, bounds)
@settings(max_examples=30, deadline=None)
def test_pw_rel_bound_holds(seed, shape, scale, eb):
    x = np.abs(_field(seed, shape, scale, smooth=False)) + scale * 0.25
    c = get_codec("wavesz-dp")
    cf = c.compress(x, eb, "pw_rel")
    out = c.decompress(cf.payload)
    rel = np.abs(out.astype(np.float64) / x.astype(np.float64) - 1.0)
    # pw_rel rides the log transform; its bound carries the standard
    # first-order slack used by the other variants' suites.
    assert float(rel.max()) <= 2.0 * eb


@given(st.integers(0, 2**31), shapes, scales, st.booleans(), bounds)
@settings(max_examples=40, deadline=None)
def test_payload_identical_across_kernel_modes(seed, shape, scale, smooth, eb):
    x = _field(seed, shape, scale, smooth)
    c = get_codec("wavesz-dp")
    with forced("reference"):
        ref = c.compress(x, eb, "vr_rel")
    with forced("fast"):
        fast = c.compress(x, eb, "vr_rel")
    assert ref.payload == fast.payload
    with forced("reference"):
        out_ref = c.decompress(ref.payload)
    with forced("fast"):
        out_fast = c.decompress(ref.payload)
    np.testing.assert_array_equal(out_ref, out_fast)


@given(st.integers(0, 2**31), shapes)
@settings(max_examples=30, deadline=None)
def test_phase2_integer_roundtrip_is_exact(seed, shape):
    # Lattice coordinates with huge jumps: every residual class (codable,
    # outlier delta) must reconstruct q bit-exactly.
    rng = np.random.default_rng(seed)
    q = rng.integers(-(2**45), 2**45, size=shape, dtype=np.int64)
    delta = resolve("dualquant.delta_encode")(q)
    back = resolve("dualquant.delta_integrate")(delta)
    np.testing.assert_array_equal(back, q)


@given(st.integers(0, 2**31), shapes, bounds)
@settings(max_examples=30, deadline=None)
def test_engine_handles_nonfinite_and_extreme(seed, shape, eb):
    x = _field(seed, shape, 1.0, smooth=False).astype(np.float64)
    flat = x.reshape(-1)
    rng = np.random.default_rng(seed + 1)
    pick = rng.integers(0, flat.size, size=min(4, flat.size))
    flat[pick[:1]] = np.nan
    flat[pick[1:2]] = np.inf
    flat[pick[2:3]] = -1e300  # lattice overflow -> raw
    result = dq_compress(x, eb, Q)
    out = dq_decompress(
        result.codes, result.outlier_deltas, result.raw_idx,
        result.raw_values, precision=eb, quant=Q, dtype=x.dtype,
    )
    finite = np.isfinite(x)
    err = np.abs(out[finite] - x[finite])
    assert float(err.max(initial=0.0)) <= eb
    np.testing.assert_array_equal(out[~finite], x[~finite])
