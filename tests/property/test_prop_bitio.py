"""Property tests: bit IO is a faithful MSB-first codec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitio import BitReader, BitWriter, pack_codes

fields = st.lists(
    st.integers(min_value=1, max_value=57).flatmap(
        lambda n: st.tuples(st.integers(min_value=0, max_value=(1 << n) - 1),
                            st.just(n))
    ),
    max_size=200,
)


@given(fields)
@settings(max_examples=100, deadline=None)
def test_writer_reader_roundtrip(pairs):
    w = BitWriter()
    for v, n in pairs:
        w.write(v, n)
    r = BitReader(w.getvalue())
    for v, n in pairs:
        assert r.read(n) == v


@given(fields)
@settings(max_examples=100, deadline=None)
def test_pack_codes_equals_scalar_writer(pairs):
    w = BitWriter()
    for v, n in pairs:
        w.write(v, n)
    if pairs:
        codes = np.array([v for v, _ in pairs], dtype=np.uint64)
        lens = np.array([n for _, n in pairs], dtype=np.int64)
        payload, nbits = pack_codes(codes, lens)
        assert payload == w.getvalue()
        assert nbits == sum(n for _, n in pairs)


@given(st.binary(max_size=200), st.integers(min_value=0, max_value=57))
@settings(max_examples=100, deadline=None)
def test_peek_then_read_consistent(data, n):
    r = BitReader(data)
    avail = r.bits_remaining
    peeked = r.peek(n)
    if n <= avail:
        assert r.read(n) == peeked
    else:
        # Peek zero-pads; the padded tail must be zeros.
        pad = n - avail
        assert peeked & ((1 << pad) - 1) == 0
