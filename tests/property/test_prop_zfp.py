"""Property tests: the ZFP-like codec's fixed-accuracy guarantee."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zfp import ZFPCompressor

codec = ZFPCompressor()


def _field(seed: int, d0: int, d1: int, scale: float, smooth: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(d0, d1)) * scale
    if smooth:
        x = np.cumsum(x, axis=1) / d1**0.5
    return x.astype(np.float32)


params = st.tuples(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=2, max_value=25),
    st.integers(min_value=2, max_value=25),
    st.sampled_from([1e-4, 1.0, 1e5]),
    st.booleans(),
)
bounds = st.sampled_from([1e-1, 1e-2, 1e-3, 1e-4])


@given(params, bounds)
@settings(max_examples=40, deadline=None)
def test_bound_and_determinism(p, eb):
    x = _field(*p)
    cf = codec.compress(x, eb, "vr_rel")
    out = codec.decompress(cf)
    assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute
    assert codec.compress(x, eb, "vr_rel").payload == cf.payload


@given(st.integers(min_value=0, max_value=2**31), bounds)
@settings(max_examples=20, deadline=None)
def test_bound_3d(seed, eb):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.normal(size=(9, 10, 11)), axis=2).astype(np.float32)
    cf = codec.compress(x, eb, "vr_rel")
    out = codec.decompress(cf)
    assert np.abs(out.astype(np.float64) - x).max() <= cf.bound.absolute


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_idempotent(seed):
    x = _field(seed, 12, 16, 1.0, True)
    once = codec.decompress(codec.compress(x, 1e-3, "abs"))
    twice = codec.decompress(codec.compress(once, 1e-3, "abs"))
    assert (once == twice).all()
