"""waveSZ reproduction — hardware-algorithm co-design of SZ lossy compression.

A from-scratch Python reproduction of *waveSZ: A Hardware-Algorithm
Co-Design of Efficient Lossy Compression for Scientific Data* (Tian et
al., PPoPP'20), including every substrate it depends on: the SZ-1.4 and
SZ-1.0 software compressors, the GhostSZ FPGA baseline, canonical Huffman
and DEFLATE-style lossless coding, an FPGA pipeline/resource model for the
ZC706, and synthetic SDRB-like datasets.

Quickstart::

    import numpy as np
    from repro import WaveSZCompressor, load_field

    field = load_field("CESM-ATM", "CLDLOW")
    wavesz = WaveSZCompressor(use_huffman=True)
    compressed = wavesz.compress(field, eb=1e-3, mode="vr_rel")
    restored = wavesz.decompress(compressed)
    assert np.abs(restored - field).max() <= compressed.bound.absolute
    print(f"ratio: {compressed.stats.ratio:.1f}x")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .config import ErrorBound, ErrorBoundMode, QuantizerConfig, resolve_error_bound
from .core import WaveSZCompressor
from .data import list_datasets, load_field
from .errors import ReproError
from .ghostsz import GhostSZCompressor
from .metrics import max_abs_error, psnr, rmse, verify_error_bound
from .selector import OnlineSelector
from .store import ArrayStore
from .sz import SZ10Compressor, SZ14Compressor, SZ20Compressor
from .zfp import ZFPCompressor
from .types import CompressedField, CompressionStats, ResourceReport, ThroughputReport

__version__ = "1.0.0"

__all__ = [
    "ErrorBound",
    "ErrorBoundMode",
    "QuantizerConfig",
    "resolve_error_bound",
    "WaveSZCompressor",
    "GhostSZCompressor",
    "SZ14Compressor",
    "SZ10Compressor",
    "SZ20Compressor",
    "ZFPCompressor",
    "OnlineSelector",
    "ArrayStore",
    "list_datasets",
    "load_field",
    "ReproError",
    "max_abs_error",
    "psnr",
    "rmse",
    "verify_error_bound",
    "CompressedField",
    "CompressionStats",
    "ResourceReport",
    "ThroughputReport",
    "__version__",
]
