"""Command-line interface, mirroring the artifact's ``sz`` invocations.

The artifact drives SZ as ``sz -z -f -c sz.config -M REL -R 1E-3 -i data
-2 3600 1800`` and waveSZ/GhostSZ as ``cpurun d0 d1 1 -3 base10 data wave
VRREL``.  This CLI provides the same workflow on the reproduction:

    wavesz compress  snapshot.f32 --dims 180 360 --variant wavesz \
        --eb 1e-3 --mode vr_rel -o snapshot.wsz
    wavesz decompress snapshot.wsz -o restored.f32
    wavesz info       snapshot.wsz
    wavesz datasets
    wavesz generate   CESM-ATM CLDLOW -o cldlow.f32

Exit status is non-zero on any error; all output goes to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .codec.registry import REGISTRY, get_codec
from .config import ErrorBoundMode
from .data import DATASETS, load_field
from .errors import ReproError
from .io import Archive, Container, read_raw_field, write_raw_field
from .metrics import max_abs_error, psnr

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="wavesz",
        description="waveSZ reproduction: error-bounded lossy compression "
        "for scientific data",
    )
    p.add_argument("--version", action="version", version=__version__)
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress a raw binary field")
    c.add_argument("input", type=Path)
    c.add_argument("--dims", type=int, nargs="+", required=True,
                   help="field dimensions, slowest axis first")
    c.add_argument("--variant", choices=REGISTRY.short_names(),
                   default="wavesz")
    c.add_argument("--eb", type=float, default=1e-3, help="error bound")
    c.add_argument("--mode", choices=[m.value for m in ErrorBoundMode],
                   default="vr_rel")
    c.add_argument("--dtype", choices=["float32", "float64"],
                   default="float32")
    c.add_argument("-o", "--output", type=Path, required=True)
    c.add_argument("--verify", action="store_true",
                   help="decompress and verify the bound after compressing")

    d = sub.add_parser("decompress", help="decompress a .wsz payload")
    d.add_argument("input", type=Path)
    d.add_argument("-o", "--output", type=Path, required=True)

    i = sub.add_parser("info", help="print a payload's header and sections")
    i.add_argument("input", type=Path)

    sub.add_parser("datasets", help="list the synthetic SDRB datasets")

    g = sub.add_parser("generate", help="generate a synthetic field")
    g.add_argument("dataset", choices=sorted(DATASETS))
    g.add_argument("field")
    g.add_argument("--scale", type=int, default=1)
    g.add_argument("-o", "--output", type=Path, required=True)

    a = sub.add_parser("archive",
                       help="compress a whole synthetic snapshot")
    a.add_argument("dataset", choices=sorted(DATASETS))
    a.add_argument("--variant", choices=REGISTRY.short_names(),
                   default="wavesz")
    a.add_argument("--eb", type=float, default=1e-3)
    a.add_argument("-o", "--output", type=Path, required=True)

    e = sub.add_parser("extract", help="extract one field from an archive")
    e.add_argument("input", type=Path)
    e.add_argument("field")
    e.add_argument("-o", "--output", type=Path, required=True)

    r = sub.add_parser("report",
                       help="print the waveSZ HLS synthesis report")
    r.add_argument("--dims", type=int, nargs=2, required=True,
                   metavar=("D0", "D1"))
    r.add_argument("--base10", action="store_true",
                   help="model the base-10 (divider) datapath instead")

    v = sub.add_parser(
        "verify",
        help="check a payload's checksums, decodability and (optionally) "
        "its error bound against the original field")
    v.add_argument("input", type=Path)
    v.add_argument("--original", type=Path,
                   help="raw binary field to check the error bound against")
    v.add_argument("--dims", type=int, nargs="+",
                   help="dimensions of --original, slowest axis first")
    v.add_argument("--dtype", choices=["float32", "float64"],
                   default="float32")

    sub.add_parser("codecs", help="list registered codecs and aliases")

    s = sub.add_parser(
        "serve",
        help="run the batch-compression service over TCP")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8123)
    s.add_argument("--workers", type=int, default=None,
                   help="worker count (default: CPU count; 0 = inline)")
    s.add_argument("--pool", choices=["process", "thread", "inline"],
                   default="process")
    s.add_argument("--queue-size", type=int, default=128,
                   help="bounded queue capacity (backpressure threshold)")
    s.add_argument("--max-retries", type=int, default=2)
    s.add_argument("--transport", choices=["auto", "shm", "pickle"],
                   default="auto",
                   help="field transport across the pool: shared-memory "
                   "FieldRefs (process pools, zero-copy) or pickled "
                   "arrays; auto picks shm whenever it pays")
    s.add_argument("--batch-bytes", type=int, default=32768,
                   help="coalesce jobs smaller than this many bytes into "
                   "one worker dispatch (0 disables micro-batching)")
    s.add_argument("--store", type=Path, default=None,
                   help="array-store root to expose over the "
                   "store_put/store_read/store_slice ops")
    s.add_argument("--shards", default=None,
                   help="comma-separated host:port list of the cluster "
                   "this server is one shard of; served on the "
                   "shard_map op so clients can bootstrap failover")
    s.add_argument("--replicas", type=int, default=2,
                   help="replication factor advertised with --shards")

    b = sub.add_parser(
        "batch",
        help="run a manifest of compression jobs through the service "
        "scheduler and write the payloads")
    b.add_argument("manifest", type=Path,
                   help="JSON manifest: {defaults: {...}, jobs: [...]}; "
                   "each job names either input+dims or dataset+field")
    b.add_argument("-o", "--outdir", type=Path, required=True)
    b.add_argument("--workers", type=int, default=None,
                   help="worker count (default: CPU count; 0 = inline)")
    b.add_argument("--pool", choices=["process", "thread", "inline"],
                   default="process")
    b.add_argument("--queue-size", type=int, default=128)
    b.add_argument("--transport", choices=["auto", "shm", "pickle"],
                   default="auto",
                   help="field transport across the pool (see serve)")
    b.add_argument("--batch-bytes", type=int, default=32768,
                   help="micro-batch threshold in bytes (0 disables)")
    b.add_argument("--report", type=Path, default=None,
                   help="also write per-job results + ServiceStats as JSON")

    st = sub.add_parser(
        "store",
        help="persistent compressed array store (tile-level random access)")
    st.add_argument("--root", type=Path, default=None,
                    help="store directory (created on first put)")
    st.add_argument("--gateway", default=None,
                    help="operate on a sharded store instead of a local "
                    "directory: host:port of a gateway / cluster member "
                    "(shard map is fetched), or a full comma-separated "
                    "shard list")
    st.add_argument("--replicas", type=int, default=2,
                    help="replication factor when --gateway lists the "
                    "shards directly (ignored when the map is fetched)")
    stsub = st.add_subparsers(dest="store_command", required=True)

    sp = stsub.add_parser("put", help="compress a raw field into the store")
    sp.add_argument("input", type=Path)
    sp.add_argument("name", help="dataset name ([A-Za-z0-9._-], ≤128 chars)")
    sp.add_argument("--dims", type=int, nargs="+", required=True,
                    help="field dimensions, slowest axis first")
    sp.add_argument("--dtype", choices=["float32", "float64"],
                    default="float32")
    sp.add_argument("--variant", choices=REGISTRY.short_names(),
                    default="wavesz")
    sp.add_argument("--eb", type=float, default=1e-3)
    sp.add_argument("--mode", choices=[m.value for m in ErrorBoundMode],
                    default="vr_rel")
    sp.add_argument("--tiles", type=int, default=4,
                    help="tile count (clamped to the field's feasible max)")

    sg = stsub.add_parser("get", help="read a full field back bit-exactly")
    sg.add_argument("name")
    sg.add_argument("-o", "--output", type=Path, required=True)
    sg.add_argument("--no-strict", action="store_true",
                    help="skip damaged tiles (zero-filled) instead of "
                    "failing; lost tile indices print to stderr")

    ss = stsub.add_parser(
        "slice",
        help="read a sub-window, decoding only the tiles it overlaps")
    ss.add_argument("name")
    ss.add_argument("--window", required=True,
                    help="per-axis start:stop windows, e.g. '8:24,0:90' "
                    "(empty end = to the edge, omitted axis = full)")
    ss.add_argument("-o", "--output", type=Path, required=True)
    ss.add_argument("--no-strict", action="store_true")

    stsub.add_parser("ls", help="list stored datasets")
    stsub.add_parser("gc", help="remove objects no manifest references "
                     "and stale crash leftovers")

    sf = stsub.add_parser(
        "fsck",
        help="audit manifests, objects and the journal; optionally repair")
    sf.add_argument("--repair", action="store_true",
                    help="roll back interrupted puts, drop orphans and "
                    "crash leftovers")
    sf.add_argument("--deep", action="store_true",
                    help="also decode every object and check tile shapes")

    sh = sub.add_parser(
        "shard",
        help="sharded store: run a gateway over N shard servers, probe "
        "cluster health")
    shsub = sh.add_subparsers(dest="shard_command", required=True)

    shs = shsub.add_parser(
        "serve",
        help="run a shard gateway fronting N wavesz servers with stores")
    shs.add_argument("--listen", default="127.0.0.1:8124",
                     help="host:port the gateway listens on")
    shs.add_argument("--shards", required=True,
                     help="comma-separated host:port list of the shard "
                     "servers (each a 'wavesz serve --store DIR')")
    shs.add_argument("--replicas", type=int, default=2,
                     help="copies of every tile object and manifest "
                     "(clamped to the shard count)")

    sht = shsub.add_parser(
        "status",
        help="probe every shard's health and print per-shard telemetry")
    sht.add_argument("--gateway", required=True,
                     help="host:port of a gateway / cluster member, or "
                     "the full comma-separated shard list")
    sht.add_argument("--replicas", type=int, default=2)

    ch = sub.add_parser(
        "chaos",
        help="run seeded fault-schedule sweeps and check the durability "
        "and at-most-once invariants")
    ch.add_argument("--suite", choices=["store", "service", "shard", "all"],
                    default="store")
    ch.add_argument("--seed", type=int, default=0,
                    help="master seed; a failing run replays from "
                    "(seed, run) alone")
    ch.add_argument("--schedules", type=int, default=200,
                    help="store schedules to sweep (service runs are "
                    "capped at schedules // 25 + 2)")
    ch.add_argument("--workdir", type=Path, default=None,
                    help="scratch directory (default: a temp dir)")
    return p


def _cmd_compress(args: argparse.Namespace) -> int:
    dtype = np.dtype(args.dtype)
    data = read_raw_field(args.input, tuple(args.dims), dtype)
    comp = get_codec(args.variant)
    cf = comp.compress(data, args.eb, args.mode)
    args.output.write_bytes(cf.payload)
    s = cf.stats
    print(f"{args.input} -> {args.output}")
    print(f"  variant {cf.variant}, bound {cf.bound.mode.value} "
          f"{cf.bound.value:g} (abs {cf.bound.absolute:.3e})")
    print(f"  {s.original_bytes} -> {s.compressed_bytes} bytes, "
          f"ratio {s.ratio:.2f}x, {s.bit_rate:.2f} bits/point")
    if args.verify:
        out = comp.decompress(cf.payload)
        err = max_abs_error(data, out)
        print(f"  verified: max error {err:.3e}, PSNR {psnr(data, out):.1f} dB")
        if cf.bound.mode is not ErrorBoundMode.PW_REL and (
            err > cf.bound.absolute
        ):
            print("  ERROR: bound violated", file=sys.stderr)
            return 2
    return 0


def _inner_variant(header: dict) -> str:
    """The registry name behind a payload header (tiled or plain)."""
    variant = str(header.get("variant", ""))
    if variant.startswith("tiled[") and variant.endswith("]"):
        return str(header.get("inner_variant", variant[6:-1]))
    return variant


def _cmd_decompress(args: argparse.Namespace) -> int:
    from .streams import decompress_auto

    payload = args.input.read_bytes()
    header = Container.from_bytes(payload).header
    variant = str(header.get("variant", ""))
    if _inner_variant(header) not in REGISTRY:
        print(f"unknown variant {variant!r} in payload", file=sys.stderr)
        return 2
    out = decompress_auto(payload)
    write_raw_field(args.output, out)
    print(f"{args.input} -> {args.output} "
          f"({variant}, shape {tuple(header['shape'])}, {header['dtype']})")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    container = Container.from_bytes(args.input.read_bytes())
    print(json.dumps(container.header, indent=2, sort_keys=True))
    for s in container.sections:
        print(f"  section {s.name:<18} {len(s.payload):>10} bytes")
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    for name, spec in DATASETS.items():
        print(f"{name}: {spec.description}")
        print(f"  paper dims {spec.paper_dims} x {spec.paper_fields} fields; "
              f"repro dims {spec.repro_dims}")
        for f in spec.fields:
            print(f"    {f.name:<22} {f.description}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    field = load_field(args.dataset, args.field, scale=args.scale)
    write_raw_field(args.output, field)
    print(f"{args.dataset}/{args.field} {field.shape} {field.dtype} "
          f"-> {args.output} ({field.nbytes} bytes)")
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    from .data import DATASETS as _D

    spec = _D[args.dataset]
    comp = get_codec(args.variant)
    fields = {f: load_field(args.dataset, f) for f in spec.field_names}
    arch = Archive.build(fields, comp, args.eb, "vr_rel")
    args.output.write_bytes(arch.to_bytes())
    total_raw = sum(f.nbytes for f in fields.values())
    print(f"{args.dataset} snapshot ({len(fields)} fields, {total_raw} B) "
          f"-> {args.output} ({args.output.stat().st_size} B)")
    for entry in arch.entries:
        print(f"  {entry.name:<22} {entry.variant:<9} "
              f"ratio {entry.ratio:6.1f}x  {entry.compressed_bytes} B")
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    arch = Archive.from_bytes(args.input.read_bytes())
    entry = next((e for e in arch.entries if e.name == args.field), None)
    if entry is None:
        print(f"error: archive has no field {args.field!r}; "
              f"available: {arch.field_names}", file=sys.stderr)
        return 1
    if entry.variant not in REGISTRY:
        print(f"error: unknown variant {entry.variant!r}", file=sys.stderr)
        return 2
    out = arch.extract(args.field, get_codec(entry.variant))
    write_raw_field(args.output, out)
    print(f"{args.field} {entry.shape} -> {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .metrics import verify_error_bound
    from .streams import bound_from_header

    blob = args.input.read_bytes()
    report = Container.scan(blob)
    for s in report.sections:
        if not s.ok:
            print(f"{args.input}: section {s.name!r}: {s.detail}",
                  file=sys.stderr)
    for prob in report.problems:
        print(f"{args.input}: {prob}", file=sys.stderr)
    if not report.ok:
        print(f"{args.input}: FAILED integrity check", file=sys.stderr)
        return 1

    from .streams import decompress_auto

    header = Container.from_bytes(blob).header
    variant = str(header.get("variant", ""))
    if _inner_variant(header) not in REGISTRY:
        print(f"{args.input}: unknown variant {variant!r} in payload",
              file=sys.stderr)
        return 2
    out = decompress_auto(blob)
    msg = (f"{args.input}: OK (v{report.version}, "
           f"{report.n_sections} sections, {variant}, shape {out.shape})")

    if args.original is not None:
        if not args.dims:
            print("error: --original requires --dims", file=sys.stderr)
            return 2
        data = read_raw_field(args.original, tuple(args.dims),
                              np.dtype(args.dtype))
        if "bound" in header:
            bound_abs = bound_from_header(header.get("bound")).absolute
        else:  # tiled containers carry the resolved absolute bound
            bound_abs = float(header["eb_abs"])
        verify_error_bound(data, out, bound_abs)
        err = max_abs_error(data, out)
        msg += f", max error {err:.3e} <= bound {bound_abs:.3e}"
    print(msg)
    return 0


def _cmd_codecs(_: argparse.Namespace) -> int:
    for entry in REGISTRY.describe():
        names = ", ".join(entry["aliases"] + entry["profiles"])
        row = f" (Table 2: {entry['table2']})" if entry["table2"] else ""
        backends = entry.get("entropy_backends") or []
        tail = f" [entropy: {'|'.join(backends)}]" if backends else ""
        print(f"{entry['name']}: {names}{row}{tail}")
    from .service.shm import ShmArena

    resolved = "shm" if ShmArena.available() else "pickle"
    print(f"service transport: {resolved} resolved for process pools "
          "(thread/inline pools always use pickle in-process)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service.server import serve

    shard_map = None
    if args.shards is not None:
        from .shard import ShardMap

        shard_map = ShardMap.from_addresses(
            args.shards, replicas=args.replicas
        ).to_dict()
    try:
        asyncio.run(serve(
            args.host,
            args.port,
            workers=args.workers,
            pool_kind=args.pool,
            queue_size=args.queue_size,
            max_retries=args.max_retries,
            transport=args.transport,
            batch_bytes=args.batch_bytes,
            store_root=None if args.store is None else str(args.store),
            shard_map=shard_map,
        ))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _load_batch_manifest(args: argparse.Namespace) -> list:
    """Parse the manifest into validated CompressionJobs (order kept)."""
    from .service.jobs import make_job

    spec = json.loads(args.manifest.read_text())
    defaults = spec.get("defaults", {})
    jobs = []
    for i, entry in enumerate(spec.get("jobs", [])):
        merged = {**defaults, **entry}
        if "input" in merged:
            data = read_raw_field(
                args.manifest.parent / merged["input"],
                tuple(merged["dims"]),
                np.dtype(merged.get("dtype", "float32")),
            )
            name = Path(merged["input"]).stem
        elif "dataset" in merged:
            data = load_field(
                merged["dataset"], merged["field"],
                scale=int(merged.get("scale", 1)),
            )
            name = f"{merged['dataset']}_{merged['field']}"
        else:
            raise ReproError(
                f"manifest job {i} names neither 'input' nor 'dataset'"
            )
        out_name = merged.get("output", f"{name}.wsz")
        if any(out_name == taken for taken, _ in jobs):
            stem, dot, suffix = out_name.partition(".")
            out_name = f"{stem}_{i}{dot}{suffix}"
        jobs.append((out_name, make_job(
            merged.get("codec", "wavesz"),
            data,
            eb=float(merged.get("eb", 1e-3)),
            mode=merged.get("mode", "vr_rel"),
            priority=int(merged.get("priority", 0)),
            deadline_s=merged.get("deadline_s"),
            n_tiles=int(merged.get("tiles", 1)),
        )))
    if not jobs:
        raise ReproError("manifest contains no jobs")
    return jobs


def _cmd_batch(args: argparse.Namespace) -> int:
    from .service.scheduler import run_batch

    named = _load_batch_manifest(args)
    results, stats = run_batch(
        [j for _, j in named],
        workers=args.workers,
        pool_kind=args.pool,
        queue_size=args.queue_size,
        transport=args.transport,
        batch_bytes=args.batch_bytes,
    )
    args.outdir.mkdir(parents=True, exist_ok=True)
    failed = 0
    report = []
    for (out_name, job), result in zip(named, results):
        if result is None:
            failed += 1
            print(f"  {out_name:<28} FAILED ({job.codec})", file=sys.stderr)
            report.append({"output": out_name, "codec": job.codec,
                           "ok": False})
            continue
        (args.outdir / out_name).write_bytes(result.output)
        s = result.stats
        print(f"  {out_name:<28} {job.codec:<9} "
              f"ratio {s.ratio:6.2f}x  {result.total_s * 1e3:7.1f} ms "
              f"({result.attempts} attempt(s))")
        report.append({
            "output": out_name, "codec": job.codec, "ok": True,
            "ratio": s.ratio, "latency_s": result.total_s,
            "attempts": result.attempts,
        })
    t = stats.totals
    print(f"batch: {t['completed']}/{t['submitted']} jobs ok, "
          f"{t['retried']} retries, queue high-water "
          f"{stats.queue_high_water}/{stats.queue_capacity}, "
          f"{stats.throughput_jobs_per_s:.1f} jobs/s")
    if args.report is not None:
        args.report.write_text(json.dumps(
            {"jobs": report, "stats": stats.to_dict()}, indent=2
        ))
        print(f"report -> {args.report}")
    return 1 if failed else 0


def _parse_window(text: str) -> tuple:
    """Parse a ``'8:24,0:90'``-style window into per-axis bound pairs."""
    window = []
    for axis, token in enumerate(text.split(",")):
        token = token.strip()
        if ":" not in token:
            raise ReproError(
                f"axis {axis}: window {token!r} is not start:stop"
            )
        lo_s, _, hi_s = token.partition(":")
        try:
            window.append((
                int(lo_s) if lo_s.strip() else None,
                int(hi_s) if hi_s.strip() else None,
            ))
        except ValueError as exc:
            raise ReproError(
                f"axis {axis}: bad window bounds {token!r}"
            ) from exc
    return tuple(window)


def _store(args: argparse.Namespace):
    """The store the subcommand operates on: local directory or cluster."""
    if (args.root is None) == (args.gateway is None):
        raise ReproError(
            "pass exactly one of --root (local store) or --gateway "
            "(sharded store)"
        )
    if args.gateway is not None:
        from .shard import ShardGateway

        return ShardGateway.from_any(args.gateway, replicas=args.replicas)
    from .store import ArrayStore

    return ArrayStore(args.root)


def _store_desc(args: argparse.Namespace) -> str:
    return str(args.root) if args.root is not None else f"[{args.gateway}]"


def _report_damage(result, name: str) -> None:
    for d in result.damaged:
        print(f"{name}: tile {d.index} lost ({d.stage}: {d.error})",
              file=sys.stderr)


def _cmd_store_put(args: argparse.Namespace) -> int:
    data = read_raw_field(args.input, tuple(args.dims), np.dtype(args.dtype))
    result = _store(args).put(
        args.name, data, args.variant, args.eb, args.mode, n_tiles=args.tiles
    )
    print(f"{args.input} -> {_store_desc(args)}/{result.name} "
          f"({result.codec}, {result.n_tiles} tiles, "
          f"ratio {result.ratio:.2f}x)")
    print(f"  {result.new_objects} new object(s), {result.stored_bytes} B "
          f"written; {result.dedup_objects} deduplicated "
          f"({result.dedup_bytes} B saved)")
    return 0


def _cmd_store_get(args: argparse.Namespace) -> int:
    result = _store(args).read(args.name, strict=not args.no_strict)
    _report_damage(result, args.name)
    write_raw_field(args.output, result.data)
    print(f"{_store_desc(args)}/{args.name} -> {args.output} "
          f"(shape {result.data.shape}, {result.data.dtype})")
    return 0 if result.ok else 3


def _cmd_store_slice(args: argparse.Namespace) -> int:
    result = _store(args).read_slice(
        args.name, _parse_window(args.window), strict=not args.no_strict
    )
    _report_damage(result, args.name)
    write_raw_field(args.output, result.data)
    print(f"{_store_desc(args)}/{args.name}[{args.window}] -> {args.output} "
          f"(shape {result.data.shape}, {len(result.tile_indices)} "
          f"tile(s) touched)")
    return 0 if result.ok else 3


def _cmd_store_ls(args: argparse.Namespace) -> int:
    rows = _store(args).ls()
    for r in rows:
        shape = "x".join(str(d) for d in r["shape"])
        ratio = (
            r["original_bytes"] / r["compressed_bytes"]
            if r["compressed_bytes"] else 0.0
        )
        print(f"{r['name']:<24} {shape:>12} {r['dtype']:<8} "
              f"{r['codec']:<9} eb {r['eb']:g} {r['n_tiles']:>3} tiles  "
              f"{r.get('entropy', '-'):<8} "
              f"{r['compressed_bytes']:>10} B  ratio {ratio:6.2f}x")
    if not rows:
        print("(empty store)")
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    result = _store(args).gc()
    print(f"gc: removed {result.n_removed} object(s), "
          f"reclaimed {result.reclaimed_bytes} B, kept {result.kept}")
    if result.tmp_removed:
        print(f"gc: swept {len(result.tmp_removed)} stale temp file(s)")
    return 0


def _cmd_store_fsck(args: argparse.Namespace) -> int:
    if args.gateway is not None:
        raise ReproError(
            "fsck audits one store directory; run it shard by shard "
            "with --root (a shard holding tiles whose manifests live on "
            "other shards will correctly report them as remote)"
        )
    store = _store(args)
    if not store.recovery.clean:
        for kind, name in store.recovery.actions:
            print(f"recovery: {kind} {name}")
    report = store.fsck(repair=args.repair, deep=args.deep)
    print(report.summary())
    for f in report.findings:
        mark = " [repaired]" if f.repaired else ""
        print(f"  {f.severity}: {f.kind} {f.subject}: {f.detail}{mark}")
    for a in report.actions:
        print(f"  action: {a}")
    # repaired findings are gone; only what remains broken fails the run.
    return 1 if any(not f.repaired for f in report.errors) else 0


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .shard import ShardGateway, ShardMap, serve_gateway

    host, _, port_s = args.listen.rpartition(":")
    if not host:
        raise ReproError(f"--listen {args.listen!r} is not host:port")
    try:
        port = int(port_s)
    except ValueError as exc:
        raise ReproError(f"--listen {args.listen!r} has a bad port") from exc
    gateway = ShardGateway(
        ShardMap.from_addresses(args.shards, replicas=args.replicas)
    )
    try:
        asyncio.run(serve_gateway(gateway, host, port))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_shard_status(args: argparse.Namespace) -> int:
    from .shard import ShardGateway

    with ShardGateway.from_any(
        args.gateway, replicas=args.replicas
    ) as gateway:
        status = gateway.status()
    print(f"cluster: {status['shards_up']}/{status['n_shards']} shard(s) "
          f"up, replicas={status['replicas']}")
    for sid, s in status["shards"].items():
        if s["up"]:
            print(f"  {sid:<24} up    {s['status']:<9} "
                  f"latency {s['latency_ms']:7.3f} ms  "
                  f"failovers {s['failovers']}  ({s['store']})")
        else:
            print(f"  {sid:<24} DOWN  {s['error']}")
    return 0 if status["shards_up"] == status["n_shards"] else 3


_SHARD_COMMANDS = {
    "serve": _cmd_shard_serve,
    "status": _cmd_shard_status,
}


def _cmd_shard(args: argparse.Namespace) -> int:
    return _SHARD_COMMANDS[args.shard_command](args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from .faults import ChaosHarness

    harness = ChaosHarness(seed=args.seed)
    reports = []
    if args.suite in ("store", "all"):
        with tempfile.TemporaryDirectory(prefix="wavesz-chaos-") as tmp:
            workdir = args.workdir if args.workdir is not None else tmp
            reports.append(
                harness.run_store(workdir, runs=args.schedules)
            )
            print(reports[-1].summary())
    if args.suite in ("service", "all"):
        reports.append(
            harness.run_service(runs=args.schedules // 25 + 2)
        )
        print(reports[-1].summary())
    if args.suite in ("shard", "all"):
        with tempfile.TemporaryDirectory(prefix="wavesz-chaos-") as tmp:
            workdir = args.workdir if args.workdir is not None else tmp
            reports.append(
                harness.run_shard(workdir, runs=args.schedules // 25 + 2)
            )
            print(reports[-1].summary())
    bad = [v for r in reports for v in r.violations]
    for v in bad[:20]:
        print(f"  {v}", file=sys.stderr)
    return 1 if bad else 0


_STORE_COMMANDS = {
    "put": _cmd_store_put,
    "get": _cmd_store_get,
    "slice": _cmd_store_slice,
    "ls": _cmd_store_ls,
    "gc": _cmd_store_gc,
    "fsck": _cmd_store_fsck,
}


def _cmd_store(args: argparse.Namespace) -> int:
    return _STORE_COMMANDS[args.store_command](args)


def _cmd_report(args: argparse.Namespace) -> int:
    from .fpga.report import synthesis_report

    print(synthesis_report(args.dims[0], args.dims[1],
                           base2=not args.base10))
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "info": _cmd_info,
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "archive": _cmd_archive,
    "extract": _cmd_extract,
    "report": _cmd_report,
    "verify": _cmd_verify,
    "codecs": _cmd_codecs,
    "serve": _cmd_serve,
    "batch": _cmd_batch,
    "store": _cmd_store,
    "shard": _cmd_shard,
    "chaos": _cmd_chaos,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
