"""Fast-path kernels for the lossless hot loops, behind bit-exact dispatch.

``repro.kernels`` holds vectorized rewrites of the loops every
compress/decompress bottoms out in — the per-symbol Huffman decode, the
LZ77 hash-chain parse, bit packing/unpacking — selected at call time
through :mod:`repro.kernels.dispatch`.  Set ``REPRO_KERNELS=reference``
to fall back to the scalar reference implementations (the default is
``fast``); every fast kernel is guaranteed byte-identical to the
reference it shadows.  See ``docs/PERF.md`` for the dispatch contract
and the measured speedups.
"""

from .dispatch import (
    ENV_VAR,
    MODES,
    active_mode,
    forced,
    kernel_table,
    register_kernel,
    resolve,
    set_mode,
)

__all__ = [
    "ENV_VAR",
    "MODES",
    "active_mode",
    "forced",
    "kernel_table",
    "register_kernel",
    "resolve",
    "set_mode",
]
