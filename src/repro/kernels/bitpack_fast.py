"""Memory-lean bit packing/unpacking — the ``bitio.*`` fast kernels.

``pack_codes``'s reference path expands every output bit into three
parallel ``int64`` index arrays (symbol-of-bit, bit-rank, shift) before
a single ``packbits`` — ~24 bytes of scratch per packed *bit*.  The fast
packer never touches individual bits: each code is left-shifted into a
small big-endian *byte window* anchored at its start byte (3 bytes cover
any code of up to 17 bits at any bit offset; rare longer codes get the
full 8-byte window).  Codes occupy disjoint bit ranges, so overlapping
windows sum without carries: start offsets are sorted, so one integer
``add.reduceat`` collapses each same-start-byte run of windows, and a
handful of shifted adds spread the run sums over the output bytes —
replacing the reference's per-bit scatter with a few whole-array ops.

``unpack_codes`` is the matching reader: for fields up to 25 bits wide
it gathers a 32-bit big-endian window at each value's start byte and
shifts/masks the whole array at once, replacing the per-value
``BitReader.read`` loop that dominates ``inflate``'s extra-bits stage.
"""

from __future__ import annotations

import numpy as np

from ..errors import BitstreamError

__all__ = ["pack_codes_windowed", "unpack_codes_windowed"]

_MAX_WINDOW_WIDTH = 25  # widest field a 32-bit window serves at any bit offset


def pack_codes_windowed(
    codes: np.ndarray, lengths: np.ndarray
) -> tuple[bytes, int]:
    """Window/bincount MSB-first packing; byte-identical to reference.

    The host (:func:`repro.encoding.bitio.pack_codes`) has validated
    shapes and the ``[1, 57]`` length range and handled the empty case.
    Byte sums stay below 256 (the summed windows never overlap in bits)
    and are therefore exact in ``bincount``'s float64 accumulator.
    """
    ends = np.cumsum(lengths)
    total_bits = int(ends[-1])
    starts = ends - lengths
    nbytes = (total_bits + 7) >> 3
    # A code of length L starting at bit offset r (< 8) spans the bytes
    # [q, q + ceil((r + L) / 8)); 3 window columns cover L <= 17
    # (r + L <= 7 + 17 = 24 bits), 8 columns cover the [1, 57] maximum.
    nwin = 3 if int(lengths.max()) <= 17 else 8
    top = 8 * nwin
    q = starts >> 3
    shift = (top - (starts & 7)) - lengths
    w = codes << shift.astype(np.uint64)
    # ``starts`` is sorted, so codes anchored at the same byte form one
    # contiguous run; their windows occupy disjoint bit ranges, so a
    # single integer reduceat sums each run's windows exactly.
    nseg = int(q[-1]) + 1
    counts = np.bincount(q, minlength=nseg)
    offsets = np.zeros(nseg, dtype=np.intp)
    np.cumsum(counts[:-1], out=offsets[1:])
    segsum = np.add.reduceat(w, offsets)
    empty = counts == 0
    if empty.any():
        segsum[empty] = 0  # reduceat copies w[offset] for empty runs
    # Spread each run's window across its nwin output bytes; byte values
    # never exceed 255 (global bit-disjointness), so int64 adds are exact.
    acc = np.zeros(nbytes + nwin, dtype=np.int64)
    mask = np.int64(0xFF)
    for k in range(nwin):
        col = (segsum >> np.uint64(top - 8 - 8 * k)).astype(np.int64)
        if k:
            col &= mask  # the top column is already < 256
        acc[k : k + nseg] += col
    return acc[:nbytes].astype(np.uint8).tobytes(), total_bits


def unpack_codes_windowed(payload: bytes, widths: np.ndarray) -> np.ndarray:
    """Batched MSB-first unpack of consecutive ``widths``-bit fields.

    Value-identical to the reference ``BitReader.read`` loop, including
    raising :class:`BitstreamError` when the fields overrun the payload.
    Falls back to the reference for widths beyond the 32-bit window.
    """
    if int(widths.max()) > _MAX_WINDOW_WIDTH:
        from ..encoding.bitio import _unpack_codes_reference

        return _unpack_codes_reference(payload, widths)
    ends = np.cumsum(widths)
    if int(ends[-1]) > 8 * len(payload):
        raise BitstreamError(
            f"bitstream exhausted: {int(ends[-1])} field bits, "
            f"{8 * len(payload)} available"
        )
    starts = ends - widths
    raw = np.frombuffer(payload, dtype=np.uint8)
    buf = np.zeros(raw.size + 4, dtype=np.int64)
    buf[: raw.size] = raw
    q = starts >> 3
    w32 = (buf[q] << 24) | (buf[q + 1] << 16) | (buf[q + 2] << 8) | buf[q + 3]
    shift = 32 - (starts & 7) - widths
    return (w32 >> shift) & ((np.int64(1) << widths) - 1)
