"""Fast twin of the ``histogram.counts`` kernel.

One ``np.bincount`` pass when the alphabet is dense and small (the
16-bit quant-code case — by far the common one), ``np.unique`` for
sparse/large alphabets.  Identical output contract to the scalar
reference in :mod:`repro.encoding.histogram`: increasing int64 values
with matching int64 counts.  Shared by the Huffman and rANS table
builds and the ``auto`` entropy probe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["symbol_counts"]


def symbol_counts(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(values, counts)`` of a validated flat non-negative int array."""
    hi = int(flat.max())
    if hi < 1 << 22:  # dense path: one pass, no sort
        counts = np.bincount(flat.astype(np.int64, copy=False))
        values = np.nonzero(counts)[0]
        return values.astype(np.int64), counts[values].astype(np.int64)
    values, counts = np.unique(flat, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)
