"""Kernel dispatch registry — bit-exact fast paths for the lossless hot loops.

The lossless layer's reference implementations (the per-symbol Huffman
decode loop, the LZ77 hash-chain walk, the bit packer) are written for
clarity and live next to the wire-format definitions they implement.
This registry lets each of those call sites swap in a vectorized kernel
without touching the format code: the host module asks
:func:`resolve` for the active implementation of a named kernel and
calls whatever comes back.

The contract every fast kernel must honour:

* **Bit-exactness.**  For every input the reference accepts, the fast
  kernel returns an identical value — byte-identical streams on the
  encode side, bit-identical arrays on the decode side.  There is no
  "close enough" tier; the differential suite in
  ``tests/property/test_prop_kernels.py`` enforces equality across both
  dispatch modes.
* **Same failure taxonomy.**  Inputs the reference rejects must raise
  the same exception *class* from the fast kernel (``HuffmanError`` for
  invalid codes, ``BitstreamError`` for truncated payloads, ...).  Host
  modules run their validation *before* dispatching, so most error
  paths never reach the kernel at all.
* **No wire-format knowledge leaks.**  Kernels transform values; the
  container/stream layout stays owned by the host module.

Mode selection, in priority order:

1. :func:`forced` context manager (scoped override, used by tests and
   the differential harness),
2. :func:`set_mode` (process-wide explicit API),
3. the ``REPRO_KERNELS`` environment variable (``fast`` | ``reference``),
4. the default, ``fast``.

The environment variable is re-read on every resolve, so test harnesses
that monkeypatch ``os.environ`` see the change immediately; resolution
itself is two dict lookups and stays out of the hot loops (call sites
dispatch once per payload, not once per symbol).
"""

from __future__ import annotations

import importlib
import os
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from ..errors import ConfigError

__all__ = [
    "MODES",
    "ENV_VAR",
    "register_kernel",
    "resolve",
    "active_mode",
    "set_mode",
    "forced",
    "kernel_table",
]

ENV_VAR = "REPRO_KERNELS"
MODES = ("fast", "reference")
_DEFAULT = "fast"

# Process-wide override installed by set_mode(); None defers to the
# environment.  forced() layers a thread-local override on top so
# concurrent tests (the service runs thread pools) don't race.
_process_mode: str | None = None
_local = threading.local()


class _Kernel:
    """One dispatchable hot loop: a reference callable + a lazy fast path.

    The fast implementation is stored as a ``"module:attr"`` string and
    imported on first use — kernel modules import their host module for
    shared tables, so eager imports would cycle.
    """

    __slots__ = ("name", "reference", "_fast_spec", "_fast")

    def __init__(self, name: str, reference: Callable[..., Any], fast_spec: str):
        self.name = name
        self.reference = reference
        self._fast_spec = fast_spec
        self._fast: Callable[..., Any] | None = None

    @property
    def fast(self) -> Callable[..., Any]:
        if self._fast is None:
            mod_name, _, attr = self._fast_spec.partition(":")
            module = importlib.import_module(mod_name)
            self._fast = getattr(module, attr)
        return self._fast


_REGISTRY: dict[str, _Kernel] = {}


def register_kernel(
    name: str, reference: Callable[..., Any], fast: str
) -> Callable[..., Any]:
    """Register a hot loop under ``name`` and return its reference impl.

    ``fast`` is a ``"package.module:function"`` spec resolved lazily.
    Host modules call this at import time::

        _decode_kernel = register_kernel(
            "huffman.decode", _decode_reference,
            fast="repro.kernels.huffman_fast:decode_payload")

    Re-registering a name replaces the entry (keeps ``importlib.reload``
    of host modules working in notebooks).
    """
    _REGISTRY[name] = _Kernel(name, reference, fast)
    return reference


def _check_mode(mode: str) -> str:
    if mode not in MODES:
        raise ConfigError(
            f"unknown kernel mode {mode!r}: expected one of {'/'.join(MODES)}"
        )
    return mode


def active_mode() -> str:
    """The dispatch mode resolve() would use right now."""
    mode = getattr(_local, "mode", None)
    if mode is not None:
        return mode
    if _process_mode is not None:
        return _process_mode
    env = os.environ.get(ENV_VAR)
    if env is None or env == "":
        return _DEFAULT
    return _check_mode(env)


def set_mode(mode: str | None) -> None:
    """Install a process-wide dispatch mode; ``None`` defers to the env."""
    global _process_mode
    _process_mode = None if mode is None else _check_mode(mode)


@contextmanager
def forced(mode: str) -> Iterator[None]:
    """Force ``mode`` for the current thread inside the ``with`` block.

    This is the differential harness's tool: run the same call under
    ``forced("reference")`` and ``forced("fast")`` and compare bytes.
    """
    _check_mode(mode)
    prev = getattr(_local, "mode", None)
    _local.mode = mode
    try:
        yield
    finally:
        _local.mode = prev


def resolve(name: str) -> Callable[..., Any]:
    """Return the active implementation of kernel ``name``."""
    try:
        kernel = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel {name!r}: registered kernels are "
            f"{sorted(_REGISTRY) or '(none)'}"
        ) from None
    if active_mode() == "fast":
        return kernel.fast
    return kernel.reference


def kernel_table() -> dict[str, str]:
    """Registered kernels and their fast-path specs (for docs/CLI)."""
    return {name: k._fast_spec for name, k in sorted(_REGISTRY.items())}
