"""Fused wavefront sweeps — the ``pqd.*_sweep`` fast kernels.

The reference sweep spends ~40 small-array NumPy calls per wavefront
(stencil gather, ``quantize_vector``, masking, scatters).  Wavefronts
are short — a few hundred points on 2D fields, a single point per
wavefront on 1D chains — so per-call dispatch overhead dominates the
arithmetic.  This kernel keeps the arithmetic identical but
restructures the loop around it:

* a cached per-shape *plan* (concatenated wavefront indices, the
  ``(N, m)`` neighbour-gather matrix, segment bounds) hoists every
  shape-derived computation out of the loop;
* scratch lives in preallocated buffers reused across wavefronts
  (``out=`` everywhere; no ``np.where`` / ``.all()``, which cost ~3x a
  basic ufunc call at wavefront sizes);
* the quantizer's integer pipeline is evaluated in the float domain:
  ``floor((floor(q) + 1) / 2)`` over floats equals the reference
  ``code0 // 2`` exactly for every quantizable point (``code0 <
  capacity <= 2**32`` keeps all intermediates exact), and every point
  the float-domain capacity test rejects is one the reference also
  codes 0 — including NaN and the ``>= 2**63`` int64-overflow inputs,
  which the reference's post-reconstruction bound / code-range checks
  reject after the fact;
* fields whose wavefronts are all single points (1D chains) switch to
  a pure-scalar Python loop carrying the feedback value in a local —
  a Python float op costs ~20ns where a 1-element ufunc costs ~400.

Bit-exactness notes (mirroring ``stencil_predict``): accumulation
stays in stencil order, with the ``±1`` one-layer coefficients folded
into add/subtract (``x + 1.0*g == x + g`` and ``x + (-1.0*g) == x - g``
bitwise); float32 rounding uses the same C double→float conversion as
``astype`` (``struct.pack`` on the scalar path).  Inputs outside the
fast path's preconditions (multi-layer stencils, quantizers with
``capacity != 2 * radius``) delegate to the reference sweep unchanged.
"""

from __future__ import annotations

from functools import lru_cache
from struct import pack, unpack

import numpy as np

from ..sz.lorenzo import neighbor_offsets
from ..sz.wavefront_index import interior_wavefronts

__all__ = ["compress_sweep", "decompress_sweep"]


@lru_cache(maxsize=8)
def _sweep_plan(eff_shape: tuple[int, ...], margin: int, layers: int):
    """Shape-derived constants of a sweep, cached like the wavefront index.

    Returns ``(offsets, signs, fronts, all_idx, bounds, gidx, max_n)``
    where ``gidx[a:b]`` is the ``(n, m)`` neighbour-gather index block
    of the wavefront spanning ``all_idx[a:b]``.
    """
    offsets, signs = neighbor_offsets(eff_shape, layers)
    fronts = interior_wavefronts(eff_shape, margin)
    sizes = [f.size for f in fronts]
    bounds = [0]
    for s in sizes:
        bounds.append(bounds[-1] + s)
    all_idx = (
        np.concatenate(fronts) if fronts else np.empty(0, dtype=np.int64)
    )
    gidx = all_idx[:, None] - offsets
    # Per-front views of the gather matrix, so the loop never re-slices.
    gblocks = [gidx[a:b] for a, b in zip(bounds, bounds[1:])]
    return offsets, signs, fronts, all_idx, bounds, gblocks, max(sizes, default=0)


def _round_scalar(dtype: np.dtype):
    """Scalar equivalent of ``.astype(dtype)`` for one Python float."""
    if dtype == np.float32:

        def f32(v: float) -> float:
            try:
                return unpack("f", pack("f", v))[0]
            except OverflowError:  # astype overflows to inf silently
                return float("inf") if v > 0 else float("-inf")

        return f32
    return lambda v: v


def _fast_path_ok(signs: np.ndarray, quant) -> bool:
    """Preconditions of the fused arithmetic (see module docstring)."""
    return (
        quant.capacity == 2 * quant.radius
        and signs[0] == 1.0
        and (signs.size < 2 or signs[1] == 1.0)  # loop seeds with g0 + g1
        and bool(np.all(np.abs(signs) == 1.0))
    )


def compress_sweep(
    work_flat: np.ndarray,
    orig_flat: np.ndarray,
    codes_flat: np.ndarray,
    *,
    eff_shape: tuple[int, ...],
    margin: int,
    layers: int,
    precision: float,
    quant,
    dtype: np.dtype,
    transform,
    skip_first: bool,
) -> None:
    """Fused closed-loop PQD sweep; mutates ``work_flat``/``codes_flat``."""
    offsets, signs, fronts, all_idx, bounds, gblocks, max_n = _sweep_plan(
        eff_shape, margin, layers
    )
    if not _fast_path_ok(signs, quant):
        from ..sz.pqd import _compress_sweep_reference

        _compress_sweep_reference(
            work_flat,
            orig_flat,
            codes_flat,
            eff_shape=eff_shape,
            margin=margin,
            layers=layers,
            precision=precision,
            quant=quant,
            dtype=dtype,
            transform=transform,
            skip_first=skip_first,
        )
        return
    if max_n == 0:
        return
    if len(eff_shape) == 1:
        # The all-scalar chain needs the 1D layout (contiguous interior,
        # single previous-point neighbor); a multi-D field whose fronts
        # happen to be single points must still use the scatter path.
        _compress_scalar_chain(
            work_flat,
            orig_flat,
            codes_flat,
            margin=margin,
            precision=precision,
            quant=quant,
            dtype=dtype,
            transform=transform,
            skip_first=skip_first,
        )
        return

    capm1 = float(quant.capacity - 1)
    r = quant.radius
    twop = 2.0 * precision
    d_all = orig_flat[all_idx]

    pred = np.empty(max_n)
    diff = np.empty(max_n)
    qbuf = np.empty(max_n)
    hs = np.empty(max_n)
    e64 = np.empty(max_n)
    w64 = np.empty(max_n)
    r32 = np.empty(max_n, dtype=dtype)
    ci = np.empty(max_n, dtype=np.int64)
    qm = np.empty(max_n, dtype=bool)
    ib = np.empty(max_n, dtype=bool)
    ok = np.empty(max_n, dtype=bool)

    n_off = offsets.size
    a = 0
    for k, idx in enumerate(fronts):
        n = idx.size
        b = a + n
        if skip_first and k == 0:
            work_flat[idx] = transform(orig_flat[idx]).astype(np.float64)
            a = b
            continue
        db = d_all[a:b]
        g = work_flat[gblocks[k]]
        p_ = pred[:n]
        if n_off == 1:
            np.copyto(p_, g[:, 0])  # signs[0] == +1 checked above
        else:
            np.add(g[:, 0], g[:, 1], out=p_)
            for m in range(2, n_off):
                if signs[m] > 0:
                    np.add(p_, g[:, m], out=p_)
                else:
                    np.subtract(p_, g[:, m], out=p_)
        df = diff[:n]
        np.subtract(db, p_, out=df)
        q_ = qbuf[:n]
        np.abs(df, out=q_)
        np.divide(q_, precision, out=q_)
        np.floor(q_, out=q_)  # fq = floor(|diff| / p)
        qm_ = qm[:n]
        np.less(q_, capm1, out=qm_)  # quantizable: code0 = fq+1 < capacity
        np.multiply(q_, 0.5, out=q_)
        np.ceil(q_, out=q_)  # h = ceil(fq/2) == (fq+1) // 2, exact in float
        hs_ = hs[:n]
        np.copysign(q_, df, out=hs_)  # signed half = code_dot - r
        e_ = e64[:n]
        np.multiply(hs_, twop, out=e_)
        # The reference derives this term from *integers*, so a zero is
        # always +0.0; copysign can make hs a -0.0.  x + 0.0 normalizes
        # the sign of zero and is the identity on every other float.
        np.add(e_, 0.0, out=e_)
        np.add(e_, p_, out=e_)  # d_re = pred + 2*(code_dot - r)*p
        r32_ = r32[:n]
        r32_[...] = e_  # round to storage dtype, like astype
        w_ = w64[:n]
        w_[...] = r32_  # widen back: the feedback / overbound value
        np.subtract(w_, db, out=e_)
        np.abs(e_, out=e_)
        ib_ = ib[:n]
        np.less_equal(e_, precision, out=ib_)
        ok_ = ok[:n]
        np.logical_and(qm_, ib_, out=ok_)
        ci_ = ci[:n]
        ci_[...] = hs_  # trunc-toward-zero cast: exact on ±half
        np.add(ci_, r, out=ci_)  # code_dot
        if np.count_nonzero(ok_) == n:
            codes_flat[idx] = ci_
            work_flat[idx] = w_
        else:
            np.logical_not(ok_, out=ok_)  # ok_ is now the fail mask
            ci_[ok_] = 0
            w_[ok_] = transform(db[ok_])
            codes_flat[idx] = ci_
            work_flat[idx] = w_
        a = b


def _compress_scalar_chain(
    work_flat: np.ndarray,
    orig_flat: np.ndarray,
    codes_flat: np.ndarray,
    *,
    margin: int,
    precision: float,
    quant,
    dtype: np.dtype,
    transform,
    skip_first: bool,
) -> None:
    """All-scalar sweep for 1D chains (every wavefront a single point)."""
    n0 = work_flat.size
    if n0 <= margin:
        return
    rnd = _round_scalar(dtype)
    capm1 = float(quant.capacity - 1)
    r = quant.radius
    twop = 2.0 * precision
    d_list = orig_flat.tolist()
    prev = float(work_flat[margin - 1])
    codes_out = [0] * (n0 - margin)
    work_out = [0.0] * (n0 - margin)
    first = margin if skip_first else -1
    for i in range(margin, n0):
        d = d_list[i]
        if i != first:
            diff = d - prev
            q = abs(diff) / precision
            if q < capm1:  # NaN/overflow fail here, as in the reference
                half = (int(q) + 1) >> 1
                t = half if diff > 0.0 else -half
                v = rnd(prev + t * twop)
                if abs(v - d) <= precision:
                    codes_out[i - margin] = t + r
                    work_out[i - margin] = v
                    prev = v
                    continue
        fb = float(transform(np.array([d]))[0])
        work_out[i - margin] = fb
        prev = fb
    codes_flat[margin:] = codes_out
    work_flat[margin:] = work_out


def decompress_sweep(
    work_flat: np.ndarray,
    codes_flat: np.ndarray,
    *,
    eff_shape: tuple[int, ...],
    margin: int,
    layers: int,
    precision: float,
    quant,
    dtype: np.dtype,
) -> None:
    """Fused reconstruction sweep; mutates ``work_flat`` in place."""
    offsets, signs, fronts, all_idx, bounds, gblocks, max_n = _sweep_plan(
        eff_shape, margin, layers
    )
    if not _fast_path_ok(signs, quant):
        from ..sz.pqd import _decompress_sweep_reference

        _decompress_sweep_reference(
            work_flat,
            codes_flat,
            eff_shape=eff_shape,
            margin=margin,
            layers=layers,
            precision=precision,
            quant=quant,
            dtype=dtype,
        )
        return
    if max_n == 0:
        return

    r = quant.radius
    c_all = codes_flat[all_idx]
    # Elementwise identical to the reference's per-wavefront
    # (2.0 * (c - r) * precision), just computed for all fronts at once.
    scaled = (2.0 * (c_all - r)) * precision

    if len(eff_shape) == 1:
        # Same 1D-layout requirement as the compress-side scalar chain.
        _decompress_scalar_chain(
            work_flat, c_all, scaled, margin=margin, dtype=dtype
        )
        return

    # Points with code 0 keep their preset (border/outlier) values: the
    # sweep scatters whole wavefronts, then restores the presets saved
    # before the loop — cheaper than masking every front.
    zrel = np.flatnonzero(c_all == 0)
    zpos = all_idx[zrel]
    zvals = work_flat[zpos]
    zbounds = np.searchsorted(zrel, bounds).tolist()

    pred = np.empty(max_n)
    r32 = np.empty(max_n, dtype=dtype)
    w64 = np.empty(max_n)
    n_off = offsets.size
    a = 0
    for k, idx in enumerate(fronts):
        n = idx.size
        b = a + n
        g = work_flat[gblocks[k]]
        p_ = pred[:n]
        if n_off == 1:
            np.copyto(p_, g[:, 0])
        else:
            np.add(g[:, 0], g[:, 1], out=p_)
            for m in range(2, n_off):
                if signs[m] > 0:
                    np.add(p_, g[:, m], out=p_)
                else:
                    np.subtract(p_, g[:, m], out=p_)
        np.add(p_, scaled[a:b], out=p_)
        r32_ = r32[:n]
        r32_[...] = p_  # round to storage dtype
        w_ = w64[:n]
        w_[...] = r32_  # widen: casting scatters cost ~4x plain ones
        work_flat[idx] = w_
        za = zbounds[k]
        zb = zbounds[k + 1]
        if zb > za:
            work_flat[zpos[za:zb]] = zvals[za:zb]
        a = b


def _decompress_scalar_chain(
    work_flat: np.ndarray,
    c_all: np.ndarray,
    scaled: np.ndarray,
    *,
    margin: int,
    dtype: np.dtype,
) -> None:
    """All-scalar reconstruction for 1D chains."""
    n0 = work_flat.size
    rnd = _round_scalar(dtype)
    wl = work_flat.tolist()
    cl = c_all.tolist()
    sl = scaled.tolist()
    prev = wl[margin - 1]
    for j in range(n0 - margin):
        i = j + margin
        if cl[j]:
            v = rnd(prev + sl[j])
            wl[i] = v
            prev = v
        else:
            prev = wl[i]  # preset border/outlier value feeds back
    work_flat[:] = wl
