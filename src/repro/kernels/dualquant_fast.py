"""Fused data-parallel sweeps for the dual-quant phase-2 kernels.

The reference twins in :mod:`repro.sz.dualquant` gather the Lorenzo
stencil point by point.  Over *integers* with a zero halo, the 1-layer
Lorenzo residual is exactly the mixed first difference — one
``np.diff(..., prepend=0)`` per axis — and its inverse is the matching
chain of per-axis prefix sums.  Both chains are whole-array vectorized
ops with no carried dependency between lanes, which is the entire point
of the dual-quant decoupling: the sweep that used to serialize on the
wavefront is now ``ndim`` BLAS-free passes over contiguous memory.

Bit-exactness with the reference twins is trivial (identical int64
arithmetic, associativity intact), but the differential suites enforce it
anyway as part of the kernel contract.

Overflow headroom: prequantization caps ``|q| < 2**53``, so any partial
mixed difference or prefix sum stays below ``2**ndim * 2**53 <= 2**56``,
far inside int64.
"""

from __future__ import annotations

import numpy as np

__all__ = ["delta_encode", "delta_integrate"]

_ZERO = np.int64(0)


def delta_encode(q: np.ndarray) -> np.ndarray:
    """Lorenzo residual of the lattice: one zero-prepended diff per axis."""
    delta = np.ascontiguousarray(q, dtype=np.int64)
    for axis in range(delta.ndim):
        delta = np.diff(delta, axis=axis, prepend=_ZERO)
    return delta


def delta_integrate(delta: np.ndarray) -> np.ndarray:
    """Invert the residual: one in-place prefix sum per axis."""
    q = np.array(delta, dtype=np.int64, order="C", copy=True)
    for axis in range(q.ndim):
        np.cumsum(q, axis=axis, out=q)
    return q
