"""Flat-array LZ77 parse — the ``lz77.parse`` fast kernel.

Same greedy hash-chain semantics as ``LZ77Encoder.parse`` (identical
token stream for every input and parameter set), with the per-position
costs stripped out of the Python loop:

* **Implicit literals.**  The loop records only matches; literal tokens
  are the uncovered positions, recovered afterwards with one
  ``bincount``/``cumsum`` coverage pass and merged into token order with
  two ``searchsorted`` scatters.  For data that barely matches (the
  worst case for an LZ parser) the loop body is just the hash-chain
  bookkeeping.
* **Word-compare match extension.**  A candidate is extended by XOR-ing
  the two windows as big-endian integers: the highest set bit of the
  XOR names the first differing byte, so one ``int.from_bytes`` pair
  replaces the NumPy slice compare and its argmax.  A one-byte quick
  reject (``data[cand + best_len] != data[i + best_len]`` implies the
  candidate cannot beat the current best) skips most extensions
  entirely, exactly preserving the greedy choice.
* **Precomputed chains for the thorough level.**  With ``insert_all``
  every position below the hash limit enters its chain exactly once, in
  increasing order — so the whole mutable head/prev structure collapses
  into a static ``prev_same`` array ("previous position with my hash"),
  computed wholesale with a two-pass radix argsort.  The fast level
  (``insert_all=False``) keeps a live head/prev pair, as flat lists
  indexed by the 18-bit hash.
"""

from __future__ import annotations

import numpy as np

__all__ = ["parse_tokens"]

_HASH_SLOTS = 1 << 18  # (b0 << 10) ^ (b1 << 5) ^ b2 < 2**18


def _hash_all(buf: np.ndarray) -> np.ndarray:
    """The reference 3-byte rolling hash at every position (int64)."""
    return (
        (buf[:-2].astype(np.int64) << 10)
        ^ (buf[1:-1].astype(np.int64) << 5)
        ^ buf[2:].astype(np.int64)
    )


def _prev_same(h: np.ndarray) -> list[int]:
    """For each position, the nearest earlier position with the same hash.

    Stable-sorts positions by hash value — two radix passes (uint16 low
    bits, then the two high bits as uint8) keep it O(n) where a direct
    int64 argsort would fall back to comparison sorting — then links
    neighbours within each equal-hash run.
    """
    low = (h & 0xFFFF).astype(np.uint16)
    o1 = np.argsort(low, kind="stable")
    hi2 = (h >> 16).astype(np.uint8)[o1]
    order = o1[np.argsort(hi2, kind="stable")]
    sh = h[order]
    prev = np.full(h.size, -1, dtype=np.int64)
    same = sh[1:] == sh[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev.tolist()


def parse_tokens(encoder, data: bytes):
    """Greedy-parse ``data``; token-identical to the reference parse.

    The host has already handled the empty and too-short-to-match cases.
    """
    from ..lossless.lz77 import MAX_MATCH, MIN_MATCH, TokenStream

    n = len(data)
    buf = np.frombuffer(data, dtype=np.uint8)
    window = encoder.window
    max_chain = encoder.max_chain
    good_len = encoder.good_len
    insert_all = encoder.insert_all
    hash_limit = n - 2

    h = _hash_all(buf)
    hl = h.tolist()
    if insert_all:
        # Static chains: every position < hash_limit is inserted once,
        # in order, so "previous with same hash" is the whole structure.
        prev_s = _prev_same(h[:hash_limit])
    else:
        head = [-1] * _HASH_SLOTS
        prev = [-1] * hash_limit

    match_pos: list[int] = []
    match_len: list[int] = []
    match_dist: list[int] = []
    add_pos = match_pos.append
    add_len = match_len.append
    add_dist = match_dist.append

    i = 0
    while i < hash_limit:
        if insert_all:
            cand = prev_s[i]
        else:
            hv = hl[i]
            cand = c0 = head[hv]
        best_len = 0
        best_dist = 0
        if cand >= 0:
            limit = MAX_MATCH if n - i > MAX_MATCH else n - i
            target = None
            chain = max_chain
            lo = i - window
            if lo < 0:
                lo = 0
            while cand >= lo and chain:
                # Quick reject: a candidate that differs at best_len
                # cannot produce a strictly longer match.
                if data[cand + best_len] == data[i + best_len]:
                    if target is None:
                        target = int.from_bytes(data[i : i + limit], "big")
                    x = target ^ int.from_bytes(
                        data[cand : cand + limit], "big"
                    )
                    ml = (
                        limit
                        if x == 0
                        else limit - ((x.bit_length() + 7) >> 3)
                    )
                    if ml > best_len:
                        best_len = ml
                        best_dist = i - cand
                        if ml >= good_len or ml == limit:
                            break
                cand = prev_s[cand] if insert_all else prev[cand]
                chain -= 1
        if not insert_all:
            prev[i] = c0
            head[hv] = i
        if best_len >= MIN_MATCH:
            add_pos(i)
            add_len(best_len)
            add_dist(best_dist)
            i += best_len
        else:
            i += 1

    nm = len(match_pos)
    if nm == 0:
        return TokenStream(
            np.zeros(n, dtype=np.uint8),
            buf.astype(np.int32),
            np.zeros(n, dtype=np.int32),
        )

    mp = np.array(match_pos, dtype=np.int64)
    ml_arr = np.array(match_len, dtype=np.int64)
    md = np.array(match_dist, dtype=np.int64)
    # Literals are the positions no match covers.
    delta = np.bincount(mp, minlength=n + 1) - np.bincount(
        mp + ml_arr, minlength=n + 1
    )
    covered = np.cumsum(delta[:n]) > 0
    lit_pos = np.flatnonzero(~covered)
    nl = lit_pos.size

    # Merge into position order: both lists are sorted, so each token's
    # final index is its own rank plus the other kind's count before it.
    nt = nm + nl
    at_m = np.searchsorted(lit_pos, mp) + np.arange(nm)
    at_l = np.searchsorted(mp, lit_pos) + np.arange(nl)
    kinds = np.zeros(nt, dtype=np.uint8)
    kinds[at_m] = 1
    values = np.empty(nt, dtype=np.int32)
    values[at_l] = buf[lit_pos]
    values[at_m] = ml_arr
    dists = np.zeros(nt, dtype=np.int32)
    dists[at_m] = md
    return TokenStream(kinds, values, dists)
