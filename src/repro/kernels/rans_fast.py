"""Vectorized fast twins of the rANS and RLE kernels.

Byte-identical to the scalar references in :mod:`repro.rans.coder` and
:mod:`repro.rans.rle` (the differential suites in
``tests/unit/test_rans.py`` / ``tests/property/test_prop_rans.py``
enforce it), same :class:`~repro.errors.RansError` taxonomy on damage.

The lane interleaving was designed for these loops: the reference
encoder walks steps last-to-first emitting at most two renorm bytes per
lane, and after the decode transform the number of bytes a lane needs
is a pure function of its state (``0`` if ``x >= 2^23``, ``1`` if
``x >= 2^15``, else ``2``).  So each step vectorizes across all lanes:

* **encode** — build an ``(lanes, 2)`` byte/emit matrix per step,
  reverse the lane axis (the reference walks lanes high-to-low), and
  masked-ravel it into the step's chunk; the final stream is the
  concatenation of the reversed chunks, each byte-reversed (the
  reference reverses one flat buffer at the end).
* **decode** — gather each lane's slot/symbol, apply the transform,
  compute the per-lane byte need from the thresholds above, and turn
  ``cumsum(need)`` into gather offsets into the byte stream — no data
  dependence between lanes inside a step.
"""

from __future__ import annotations

import numpy as np

from ..errors import RansError
from ..rans.coder import PROB_BITS, PROB_SCALE, RANS_L
from ..rans.rle import RUN_MAX

__all__ = ["encode_stream", "decode_stream", "collapse_runs", "expand_runs"]


def encode_stream(
    idx: np.ndarray, freqs: np.ndarray, cum: np.ndarray, n_lanes: int
) -> tuple[np.ndarray, bytes]:
    """Interleaved rANS encode, vectorized across lanes per step."""
    m = idx.size
    x = np.full(n_lanes, RANS_L, dtype=np.int64)
    chunks: list[np.ndarray] = []
    n_steps = -(-m // n_lanes)
    # one gather over the whole stream; steps take contiguous slices
    f_all = freqs[idx]
    c_all = cum[idx]
    bytes_mat = np.zeros((n_lanes, 2), dtype=np.uint8)
    emit_mat = np.zeros((n_lanes, 2), dtype=bool)
    for step in range(n_steps - 1, -1, -1):
        base = step * n_lanes
        hi = min(n_lanes, m - base)
        f = f_all[base:base + hi]
        c = c_all[base:base + hi]
        xs = x[:hi]
        limit = f << 19
        emit = xs >= limit
        if emit.any():
            bm = bytes_mat[:hi]
            em = emit_mat[:hi]
            np.bitwise_and(xs, 0xFF, out=bm[:, 0], casting="unsafe")
            em[:, 0] = emit
            xs = np.where(emit, xs >> 8, xs)
            emit2 = xs >= limit  # second renorm byte (never a third)
            em[:, 1] = emit2
            if emit2.any():
                np.bitwise_and(xs, 0xFF, out=bm[:, 1], casting="unsafe")
                xs = np.where(emit2, xs >> 8, xs)
            # lanes high-to-low, each lane low byte first
            chunks.append(bm[::-1].reshape(-1)[em[::-1].reshape(-1)])
        q, r = np.divmod(xs, f)
        x[:hi] = (q << PROB_BITS) + r + c
    if chunks:
        stream = np.concatenate(
            [ch[::-1] for ch in reversed(chunks)]
        ).tobytes()
    else:
        stream = b""
    return x.astype(np.uint32), stream


def decode_stream(
    stream: bytes,
    states: np.ndarray,
    m: int,
    freqs: np.ndarray,
    cum: np.ndarray,
    slot_map: np.ndarray,
) -> np.ndarray:
    """Interleaved rANS decode, vectorized across lanes per step."""
    buf = np.frombuffer(stream, dtype=np.uint8).astype(np.int64)
    x = states.astype(np.int64, copy=True)
    n_lanes = x.size
    out = np.empty(m, dtype=np.int64)
    pos = 0
    total_bytes = buf.size
    slot_mask = PROB_SCALE - 1
    n_steps = -(-m // n_lanes)
    for step in range(n_steps):
        base = step * n_lanes
        hi = min(n_lanes, m - base)
        xs = x[:hi]
        slots = xs & slot_mask
        idxs = slot_map[slots]
        out[base:base + hi] = idxs
        xs = freqs[idxs] * (xs >> PROB_BITS) + slots - cum[idxs]
        need = (xs < RANS_L).astype(np.int64) + (xs < (1 << 15))
        total = int(need.sum())
        if total:
            if pos + total > total_bytes:
                raise RansError("rANS byte stream exhausted mid-decode")
            ends = np.cumsum(need)
            starts = ends - need
            one = need >= 1
            first = np.zeros(hi, dtype=np.int64)
            first[one] = buf[pos + starts[one]]
            xs = np.where(one, (xs << 8) | first, xs)
            two = need == 2
            if two.any():
                second = np.zeros(hi, dtype=np.int64)
                second[two] = buf[pos + starts[two] + 1]
                xs = np.where(two, (xs << 8) | second, xs)
            pos += total
        x[:hi] = xs
    if pos != total_bytes:
        raise RansError(
            f"rANS stream carries {total_bytes - pos} trailing bytes"
        )
    if (x != RANS_L).any():
        raise RansError("rANS lanes do not terminate at the coder lower bound")
    return out


def collapse_runs(
    codes: np.ndarray, run_symbol: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized zero-run collapse (maximal runs chunked to <= 255)."""
    mask = codes == run_symbol
    if not mask.any():
        return codes.astype(np.int64, copy=True), np.empty(0, dtype=np.uint8)
    idx = np.flatnonzero(mask)
    brk = np.flatnonzero(np.diff(idx) > 1)
    starts = idx[np.concatenate(([0], brk + 1))]
    ends = idx[np.concatenate((brk, [idx.size - 1]))]
    lens = ends - starts + 1
    n_chunks = (lens + RUN_MAX - 1) // RUN_MAX
    total_chunks = int(n_chunks.sum())
    runs = np.full(total_chunks, RUN_MAX, dtype=np.uint8)
    runs[np.cumsum(n_chunks) - 1] = (
        lens - RUN_MAX * (n_chunks - 1)
    ).astype(np.uint8)
    # token index of each run's first chunk: literals before the run
    # (its start minus the run-symbol occurrences before it) plus the
    # chunks of earlier runs
    excl_occ = np.concatenate(([0], np.cumsum(lens)[:-1]))
    excl_chunks = np.concatenate(([0], np.cumsum(n_chunks)[:-1]))
    start_tok = (starts - excl_occ) + excl_chunks
    offs = np.arange(total_chunks) - np.repeat(excl_chunks, n_chunks)
    run_pos = np.repeat(start_tok, n_chunks) + offs
    m = (codes.size - idx.size) + total_chunks
    tokens = np.empty(m, dtype=np.int64)
    lit = np.ones(m, dtype=bool)
    lit[run_pos] = False
    tokens[run_pos] = run_symbol
    tokens[lit] = codes[~mask]
    return tokens, runs


def expand_runs(
    tokens: np.ndarray, runs: np.ndarray, run_symbol: int
) -> np.ndarray:
    """Vectorized zero-run expand: per-token repeat counts."""
    is_run = tokens == run_symbol
    n_run = int(is_run.sum())
    if n_run != runs.size:
        raise RansError(
            f"RLE side stream carries {runs.size} lengths for "
            f"{n_run} run tokens"
        )
    if runs.size == 0:
        return tokens.astype(np.int64, copy=True)
    if (runs == 0).any():
        raise RansError("zero-length run in the RLE side stream")
    counts = np.ones(tokens.size, dtype=np.int64)
    counts[is_run] = runs
    return np.repeat(tokens, counts)
