"""Chunked chain-walk Huffman decoder — the ``huffman.decode`` fast kernel.

The reference decoder costs two Python method calls (``peek``/``skip``)
plus a table probe *per symbol*.  This kernel inverts the loop: it first
builds, for **every bit position** of the payload, the decode *entry*
``(symbol << 6) | code_length`` with a vectorized fast-table gather —
then "chain-walks" the entries: start at bit 0, emit the symbol, jump
ahead by the code length, repeat.  The walk is a pure-Python loop but
does one list index and two integer ops per symbol, an order of
magnitude less work than the reference loop.

Codes longer than the fast window stay as ``-1`` escapes in the entry
table and are resolved **lazily**, one scalar canonical sweep per
*visited* escape.  Only one bit position per symbol is ever walked, and
long codes are by construction the rare symbols, so resolving every
escape bit position eagerly (most of which the walk jumps over) would
cost far more than the handful of scalar sweeps ever executed.

Entries are built in chunks (so a multi-MB payload never materializes a
per-bit table all at once), and chunk construction overlaps the walk
through :func:`repro.parallel.prefetch_map` once a payload is large
enough to amortize thread hand-off.

The ``-2`` sentinel marks a fast-table hit whose code runs past the end
of the payload, so the walk raises ``BitstreamError`` exactly where the
reference ``skip`` would fail after a zero-padded ``peek``; the lazy
escape sweep performs the same exhaustion check (and raises
``HuffmanError`` when no canonical range matches, like the reference
slow path exhausting ``maxlen``).
"""

from __future__ import annotations

import numpy as np

from ..errors import BitstreamError, HuffmanError

__all__ = ["decode_payload", "CHUNK_BITS"]

CHUNK_BITS = 1 << 19  # entry-table chunk: 64 KiB of payload per build
_PARALLEL_MIN_CHUNKS = 8  # prefetch chunk builds on threads beyond this
_STEP_MASK = 63  # low 6 bits of an entry hold the code length


def _chunk_entries(
    buf: np.ndarray,
    lo: int,
    hi: int,
    total_bits: int,
    codec,
) -> tuple[int, int, np.ndarray, list[int]]:
    """Decode entries for bit positions ``[lo, hi)`` of the padded buffer.

    Returns the entry array plus the per-position step list the walk
    iterates over.  Valid steps are code lengths in ``[1, 57]``; the
    sentinels surface as steps ``63`` (``-1 & 63``, escape) and ``62``
    (``-2 & 63``, exhausted), which no real code length can reach.
    """
    fast_bits = codec._fast_bits
    nbits = hi - lo
    b0 = lo >> 3
    nb = nbits >> 3  # lo/hi are byte-aligned by construction
    # 24-bit big-endian window starting at every byte: enough for the
    # fast-table probe at any bit offset r in [0, 8) (r + fast_bits <= 19).
    a = buf[b0 : b0 + nb + 2].astype(np.int64)
    w24 = (a[:nb] << 16) | (a[1 : nb + 1] << 8) | a[2 : nb + 2]
    win = np.empty(nbits, dtype=np.int64)
    mask = (1 << fast_bits) - 1
    for r in range(8):
        win[r::8] = (w24 >> (24 - fast_bits - r)) & mask
    entry = codec._fast_entry[win]

    maxlen = codec.table.max_length
    if hi + maxlen > total_bits:
        # Codes starting near the end may run past the payload; mark them
        # with the exhaustion sentinel so the walk raises BitstreamError
        # exactly where the reference skip() would.
        t0 = max(0, (total_bits - maxlen) - lo)
        tail = entry[t0:]
        over = (tail >= 0) & (
            np.arange(lo + t0, hi, dtype=np.int64) + (tail & _STEP_MASK)
            > total_bits
        )
        tail[over] = -2
    return lo, hi, entry, (entry & _STEP_MASK).tolist()


def _resolve_one(pb: bytes, pos: int, codec, total_bits: int) -> int:
    """Resolve one long code (beyond the fast window) at bit position ``pos``.

    Reads a 64-bit big-endian window (bit offset r <= 7 plus code length
    <= 57 always fits, and ``pb`` carries 8 padding bytes reproducing the
    reference ``peek``'s zero-fill) and sweeps the canonical per-length
    ranges, exactly like the reference slow path.  Returns the decode
    entry ``(symbol << 6) | length``.
    """
    q = pos >> 3
    r = pos & 7
    w = int.from_bytes(pb[q : q + 8], "big")

    first_code = codec._first_code
    first_idx = codec._first_idx
    len_count = codec._len_count
    symbols = codec.table.symbols

    for length in range(codec._fast_bits + 1, codec.table.max_length + 1):
        c = int(len_count[length]) if length < len(len_count) else 0
        if not c:
            continue
        fc = int(first_code[length])
        code = (w >> (64 - length - r)) & ((1 << length) - 1)
        if fc <= code < fc + c:
            if pos + length > total_bits:
                raise BitstreamError(
                    f"bitstream exhausted: code at bit {pos} runs past "
                    f"the {total_bits}-bit payload"
                )
            sym = int(symbols[int(first_idx[length]) + code - fc])
            return (sym << 6) | length
    raise HuffmanError("invalid code in bitstream")


def decode_payload(codec, payload: bytes, n_symbols: int) -> np.ndarray:
    """Decode ``n_symbols`` from ``payload`` against ``codec``'s table.

    Bit-identical to ``HuffmanCodec.decode``'s reference loop for every
    input; the host has already run its validations (positive count,
    non-degenerate table, payload long enough for the minimum lengths).
    """
    total_bits = 8 * len(payload)
    raw = np.frombuffer(payload, dtype=np.uint8)
    # Pad so every 24-bit window gather and 64-bit escape read stays in
    # bounds; the zero padding reproduces BitReader.peek's zero-fill
    # past the end.
    buf = np.zeros(raw.size + 8, dtype=np.uint8)
    buf[: raw.size] = raw
    pb = payload + b"\x00" * 8

    spans = [
        (lo, min(lo + CHUNK_BITS, total_bits))
        for lo in range(0, total_bits, CHUNK_BITS)
    ]

    def build(span: tuple[int, int]) -> tuple[int, int, np.ndarray, list[int]]:
        return _chunk_entries(buf, span[0], span[1], total_bits, codec)

    if len(spans) > _PARALLEL_MIN_CHUNKS:
        from ..parallel import prefetch_map

        chunks = prefetch_map(build, spans)
    else:
        chunks = map(build, spans)

    # The walk records only *positions*; symbols are gathered from the
    # entry array in one vector op per chunk.  That keeps the per-symbol
    # loop body down to a list index, a step compare, and two adds.
    out = np.empty(n_symbols, dtype=np.int64)
    pos = 0
    i = 0
    for lo, hi, entry, steps in chunks:
        rel = pos - lo
        span = hi - lo
        plist = [0] * (n_symbols - i)
        j = 0
        while rel < span:
            s = steps[rel]
            try:
                plist[j] = rel
            except IndexError:
                break  # all requested symbols decoded
            if s > 57:  # sentinel: no valid code length exceeds 57
                if s == 63:  # -1 escape: resolve lazily, patch for gather
                    e = _resolve_one(pb, lo + rel, codec, total_bits)
                    s = e & _STEP_MASK
                    entry[rel] = e
                    steps[rel] = s
                else:  # 62 is -2: the code runs past the payload
                    raise BitstreamError(
                        f"bitstream exhausted: code at bit {lo + rel} runs "
                        f"past the {total_bits}-bit payload"
                    )
            j += 1
            rel += s
        if j:
            p = np.array(plist[:j], dtype=np.int64)
            out[i : i + j] = entry[p] >> 6
            i += j
        pos = lo + rel
        if i == n_symbols:
            break
    if i < n_symbols:
        raise BitstreamError(
            f"bitstream exhausted: {n_symbols - i} of {n_symbols} symbols "
            f"undecoded at the end of the {total_bits}-bit payload"
        )
    return out
