"""GhostSZ — the prior FPGA design (Xiong et al., FCCM'19), reimplemented.

GhostSZ combines SZ-1.0's Order-{0,1,2} 1D curve fitting with SZ-1.4's
linear-scaling quantization, and removes the feedback dependency by

* decorrelating the field into independent rows (each row has its own
  pivot — Figure 4), and
* predicting from the *predicted* values of previous points instead of
  their decompressed values (Algorithm 1, GhostSZ write-back line).

Both choices trade compression ratio for pipelineability; this package
reproduces them faithfully so Tables 1/5/7/8 and Figures 1/9 can compare.
"""

from .predictor import ghost_row_loop, ghost_predict_open
from .ghostsz import GhostSZCompressor

__all__ = ["GhostSZCompressor", "ghost_row_loop", "ghost_predict_open"]
