"""GhostSZ's CF-with-predicted-value-feedback engine.

The defining quirk (paper §2.2 item 2, Algorithm 1 line 9): the basis used
to predict point ``j`` holds the *predictions* of points ``< j``, not their
decompressed values.  The quantized correction is never fed back, so
prediction errors drift inside smooth-but-sloped regions — the wide
CF-GhostSZ histogram of Figure 1 — while exactly-constant regions keep the
previous-value fit exact, which is why GhostSZ's *compression* error ends
up more concentrated (Figure 9, Table 8).

Rows are mutually independent, so the closed loop is vectorized across
rows: the Python loop runs along the row (the sequential direction) and
every operation inside is a vector over all rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import QuantizerConfig
from ..errors import ShapeError
from ..sz.quantizer import quantize_vector

__all__ = ["GhostRowResult", "ghost_row_loop", "ghost_row_decode", "ghost_predict_open"]

#: fit-type symbols stored in the top 2 bits of each 16-bit GhostSZ code
TYPE_UNPRED = 0
TYPE_ORDER0 = 1
TYPE_ORDER1 = 2
TYPE_ORDER2 = 3


@dataclass(frozen=True)
class GhostRowResult:
    """Everything the rowwise GhostSZ loop produces for one 2D field."""

    types: np.ndarray  # uint8 (rows, cols)
    codes: np.ndarray  # int64 (rows, cols), 14-bit quant codes (0 = unpred)
    decompressed: np.ndarray  # field dtype
    pred_errors: np.ndarray  # float64, NaN where no fit attempted
    verbatim_values: np.ndarray  # originals at code==0 positions, raster order

    @property
    def n_unpredictable(self) -> int:
        return int((self.codes == 0).sum())


def _candidate_preds(
    basis1: np.ndarray, basis2: np.ndarray, basis3: np.ndarray, j: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Order-{0,1,2} fits from the (predicted-value) basis at column ``j``."""
    p0 = basis1
    p1 = 2.0 * basis1 - basis2 if j >= 2 else None
    p2 = 3.0 * basis1 - 3.0 * basis2 + basis3 if j >= 3 else None
    return p0, p1, p2


def ghost_row_loop(
    data2d: np.ndarray, precision: float, quant: QuantizerConfig
) -> GhostRowResult:
    """Closed-loop GhostSZ pass over a rowwise-decorrelated 2D view."""
    if data2d.ndim != 2:
        raise ShapeError(f"GhostSZ engine expects a 2D view, got {data2d.ndim}D")
    dtype = data2d.dtype
    n_rows, n_cols = data2d.shape
    x = data2d.astype(np.float64)

    types = np.zeros((n_rows, n_cols), dtype=np.uint8)
    codes = np.zeros((n_rows, n_cols), dtype=np.int64)
    dec = np.empty((n_rows, n_cols), dtype=np.float64)
    pred_errors = np.full((n_rows, n_cols), np.nan)

    # Rolling basis of the last three *predicted* values per row.
    basis1 = x[:, 0].astype(dtype).astype(np.float64)  # column 0: verbatim
    basis2 = np.zeros(n_rows)
    basis3 = np.zeros(n_rows)
    dec[:, 0] = basis1  # row pivots stored exactly

    for j in range(1, n_cols):
        d = x[:, j]
        p0, p1, p2 = _candidate_preds(basis1, basis2, basis3, j)
        best_pred = p0
        best_err = np.abs(d - p0)
        best_type = np.full(n_rows, TYPE_ORDER0, dtype=np.uint8)
        if p1 is not None:
            e1 = np.abs(d - p1)
            better = e1 < best_err
            best_pred = np.where(better, p1, best_pred)
            best_err = np.where(better, e1, best_err)
            best_type = np.where(better, TYPE_ORDER1, best_type)
        if p2 is not None:
            e2 = np.abs(d - p2)
            better = e2 < best_err
            best_pred = np.where(better, p2, best_pred)
            best_err = np.where(better, e2, best_err)
            best_type = np.where(better, TYPE_ORDER2, best_type)

        pred_errors[:, j] = d - best_pred
        wf_codes, d_out = quantize_vector(d, best_pred, precision, quant, dtype)
        fail = wf_codes == 0
        types[:, j] = np.where(fail, TYPE_UNPRED, best_type)
        codes[:, j] = wf_codes
        dec[:, j] = d_out.astype(np.float64)
        # GhostSZ write-back: the basis takes the *prediction* for
        # quantized points, the exact original for unpredictable ones.
        new_basis = np.where(fail, x[:, j].astype(dtype).astype(np.float64), best_pred)
        basis3, basis2, basis1 = basis2, basis1, new_basis

    verbatim_mask = codes == 0
    verbatim_values = data2d.reshape(-1)[verbatim_mask.reshape(-1)]
    return GhostRowResult(
        types=types,
        codes=codes,
        decompressed=dec.astype(dtype),
        pred_errors=pred_errors,
        verbatim_values=verbatim_values,
    )


def ghost_row_decode(
    types: np.ndarray,
    codes: np.ndarray,
    verbatim_values: np.ndarray,
    *,
    precision: float,
    quant: QuantizerConfig,
    dtype: np.dtype,
) -> np.ndarray:
    """Replay the prediction chain from stored fit types and corrections."""
    n_rows, n_cols = types.shape
    r = quant.radius
    dec = np.empty((n_rows, n_cols), dtype=np.float64)

    verb = np.asarray(verbatim_values, dtype=np.float64)
    verbatim_mask = codes == 0
    verb_grid = np.zeros((n_rows, n_cols), dtype=np.float64)
    verb_grid.reshape(-1)[verbatim_mask.reshape(-1)] = verb

    basis1 = verb_grid[:, 0].copy()
    basis2 = np.zeros(n_rows)
    basis3 = np.zeros(n_rows)
    dec[:, 0] = basis1

    dtype = np.dtype(dtype)
    for j in range(1, n_cols):
        t = types[:, j]
        pred = basis1.copy()
        if j >= 2:
            sel = t == TYPE_ORDER1
            pred[sel] = 2.0 * basis1[sel] - basis2[sel]
        if j >= 3:
            sel = t == TYPE_ORDER2
            pred[sel] = 3.0 * basis1[sel] - 3.0 * basis2[sel] + basis3[sel]
        c = codes[:, j]
        d_re = (pred + 2.0 * (c - r) * precision).astype(dtype).astype(np.float64)
        fail = c == 0
        dec[:, j] = np.where(fail, verb_grid[:, j], d_re)
        basis3, basis2, basis1 = basis2, basis1, np.where(fail, verb_grid[:, j], pred)

    return dec.astype(dtype)


def ghost_predict_open(seq: np.ndarray) -> np.ndarray:
    """Open-loop CF-GhostSZ prediction errors along one sequence (Figure 1).

    Runs the predicted-value recurrence with bestfit steering but no
    quantization at all — the pure predictor view the Figure 1 histogram
    compares against LP-SZ-1.4 and CF-SZ-1.0.  Returns signed errors
    (NaN at the pivot).
    """
    x = np.asarray(seq, dtype=np.float64).reshape(1, -1)
    # Reuse the rowwise loop with an effectively-infinite bound so nothing
    # is unpredictable and the chain is pure prediction.
    quant = QuantizerConfig(bits=32)
    span = float(np.nanmax(x) - np.nanmin(x)) or 1.0
    res = ghost_row_loop(x.astype(np.float64), span * 16.0, quant)
    return res.pred_errors.reshape(-1)
