"""GhostSZ end-to-end compressor front-end.

Wire format mirrors the FPGA design: each point emits a 16-bit word whose
top 2 bits select the bestfit curve (Order-{0,1,2}, or unpredictable) and
whose low 14 bits hold the linear-scaling quantization code — hence only
16,384 usable bins versus SZ-1.4's 65,536 (paper §4.1).  The word stream
goes straight to the gzip stage (the Xilinx gzip IP in hardware); there is
no customized Huffman pass.  3D fields are interpreted rowwise as
``d0 x (d1*d2)``, exactly as the artifact invokes it.

The rowwise prediction loop and the packed type/code words are the
GhostSZ-specific stages; bound resolution and header assembly come from
:mod:`repro.codec.stages`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codec.pipeline import PipelineCompressor, PipelineContext, Stage
from ..codec.registry import register_codec
from ..codec.spec import PipelineSpec, StageSpec
from ..codec.stages import HeaderStage, ResolveBoundStage, gzip_if_smaller
from ..config import QuantizerConfig
from ..errors import ShapeError
from ..lossless import GzipStage, LosslessMode
from ..streams import MAX_FIELD_POINTS, header_dtype, header_int, values_to_bytes
from ..variants import Feature
from .predictor import ghost_row_decode, ghost_row_loop

__all__ = ["GhostSZCompressor", "GHOSTSZ_SPEC"]

_TYPE_SHIFT = 14

GHOSTSZ_SPEC = PipelineSpec(
    variant="GhostSZ",
    table2="GhostSZ",
    stages=(
        StageSpec("bound"),
        StageSpec("rows"),
        StageSpec(
            "ghost_predict",
            frozenset(
                {
                    Feature.ORDER012,
                    Feature.QUANTIZATION,
                    Feature.PREDICTION_WRITEBACK,
                    Feature.OVERFLOW_CHECK_HW,
                }
            ),
        ),
        StageSpec("header"),
        StageSpec("ghost_words", frozenset({Feature.GZIP})),
        StageSpec("verbatim"),
    ),
    # hardware-only execution features of the FPGA design
    unmodeled=frozenset({Feature.EXPLICIT_PIPELINING, Feature.LINE_BUFFER}),
)


def _as_rows(data: np.ndarray) -> np.ndarray:
    """Rowwise-decorrelated 2D view (Figure 4a): 3D becomes d0 x (d1*d2)."""
    if data.ndim == 1:
        return data.reshape(1, -1)
    if data.ndim == 2:
        return data
    if data.ndim == 3:
        return data.reshape(data.shape[0], -1)
    raise ShapeError(f"GhostSZ supports 1-3 dimensions, got {data.ndim}")


class _RowsViewStage:
    """Rowwise 2D interpretation, undone after reconstruction."""

    name = "rows"

    def forward(self, ctx: PipelineContext) -> None:
        rows = _as_rows(ctx.data)
        ctx.work = rows
        ctx.meta["rows"] = rows.shape[0]
        ctx.meta["row_length"] = rows.shape[1]

    def inverse(self, ctx: PipelineContext) -> None:
        ctx.out = ctx.out.reshape(ctx.shape)


class _GhostPredictStage:
    """Rowwise bestfit prediction with 14-bit codes and 2-bit types."""

    name = "ghost_predict"

    def forward(self, ctx: PipelineContext) -> None:
        res = ghost_row_loop(ctx.work, ctx.bound.absolute, ctx.quant)
        ctx.artifacts["ghost"] = res
        ctx.codes = (
            (res.types.astype(np.int64) << _TYPE_SHIFT) | res.codes
        ).reshape(-1)

    def inverse(self, ctx: PipelineContext) -> None:
        words = ctx.codes
        rows_shape = _as_rows(np.empty(ctx.shape, dtype=np.uint8)).shape
        types = (words >> _TYPE_SHIFT).astype(np.uint8).reshape(rows_shape)
        codes = (words & ((1 << _TYPE_SHIFT) - 1)).reshape(rows_shape)
        ctx.out = ghost_row_decode(
            types,
            codes,
            ctx.require("verbatim_values"),
            precision=ctx.bound.absolute,
            quant=ctx.quant,
            dtype=ctx.dtype,
        )


class _GhostHeaderStage(HeaderStage):
    """GhostSZ header: word and verbatim stream counts."""

    def __init__(self) -> None:
        super().__init__(with_quant=True)

    def write_extra(self, ctx: PipelineContext) -> None:
        res = ctx.require("ghost")
        ctx.header["n_codes"] = int(ctx.codes.size)
        ctx.header["n_verbatim"] = int(res.verbatim_values.size)


class _GhostWordsStage:
    """The packed 16-bit word stream, straight into the gzip IP."""

    name = "ghost_words"

    def __init__(self, lossless: GzipStage) -> None:
        self.lossless = lossless

    def forward(self, ctx: PipelineContext) -> None:
        raw = ctx.codes.astype("<u2").tobytes()
        stored, use_gz = gzip_if_smaller(self.lossless, raw)
        ctx.header["codes_gzipped"] = use_gz
        ctx.container.add("ghost_words", stored)
        ctx.encoded_code_bytes = len(stored)

    def inverse(self, ctx: PipelineContext) -> None:
        h = ctx.header
        raw = ctx.container.get("ghost_words")
        if h["codes_gzipped"]:
            raw = self.lossless.decompress(raw)
        ctx.codes = np.frombuffer(
            raw, dtype="<u2", count=header_int(h, "n_codes", hi=MAX_FIELD_POINTS)
        ).astype(np.int64)


class _GhostVerbatimStage:
    """Unpredictable originals (incl. row pivots), verbatim little-endian."""

    name = "verbatim"

    def forward(self, ctx: PipelineContext) -> None:
        res = ctx.require("ghost")
        verbatim_stream = values_to_bytes(res.verbatim_values)
        ctx.container.add("verbatim", verbatim_stream)
        ctx.outlier_bytes = len(verbatim_stream)
        ctx.n_unpredictable = res.n_unpredictable
        # row pivots are inside n_unpredictable
        ctx.n_border = int(ctx.work.shape[0])

    def inverse(self, ctx: PipelineContext) -> None:
        h = ctx.header
        dtype = header_dtype(h)
        ctx.artifacts["verbatim_values"] = np.frombuffer(
            ctx.container.get("verbatim"),
            dtype=np.dtype(dtype).newbyteorder("<"),
            count=header_int(h, "n_verbatim", hi=MAX_FIELD_POINTS),
        ).astype(dtype)


@register_codec(
    name="GhostSZ",
    aliases=("ghostsz",),
    table2="GhostSZ",
    spec=GHOSTSZ_SPEC,
)
@dataclass(frozen=True)
class GhostSZCompressor(PipelineCompressor):
    """The prior FPGA baseline: CF prediction, 14-bit bins, gzip-only."""

    quant: QuantizerConfig = field(
        default_factory=lambda: QuantizerConfig(bits=16, reserved_bits=2)
    )
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )

    name = "GhostSZ"
    spec = GHOSTSZ_SPEC

    def build_stages(self) -> tuple[Stage, ...]:
        return (
            ResolveBoundStage(quant=self.quant),
            _RowsViewStage(),
            _GhostPredictStage(),
            _GhostHeaderStage(),
            _GhostWordsStage(self.lossless),
            _GhostVerbatimStage(),
        )
