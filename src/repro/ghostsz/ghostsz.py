"""GhostSZ end-to-end compressor front-end.

Wire format mirrors the FPGA design: each point emits a 16-bit word whose
top 2 bits select the bestfit curve (Order-{0,1,2}, or unpredictable) and
whose low 14 bits hold the linear-scaling quantization code — hence only
16,384 usable bins versus SZ-1.4's 65,536 (paper §4.1).  The word stream
goes straight to the gzip stage (the Xilinx gzip IP in hardware); there is
no customized Huffman pass.  3D fields are interpreted rowwise as
``d0 x (d1*d2)``, exactly as the artifact invokes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ErrorBoundMode, QuantizerConfig, resolve_error_bound
from ..errors import ContainerError, ShapeError, decode_guard
from ..io.container import Container
from ..lossless import GzipStage, LosslessMode
from ..streams import (
    MAX_FIELD_POINTS,
    bound_from_header,
    bound_to_header,
    build_stats,
    header_dtype,
    header_int,
    header_shape,
    values_to_bytes,
)
from ..types import CompressedField
from .predictor import ghost_row_decode, ghost_row_loop

__all__ = ["GhostSZCompressor"]

_TYPE_SHIFT = 14


def _as_rows(data: np.ndarray) -> np.ndarray:
    """Rowwise-decorrelated 2D view (Figure 4a): 3D becomes d0 x (d1*d2)."""
    if data.ndim == 1:
        return data.reshape(1, -1)
    if data.ndim == 2:
        return data
    if data.ndim == 3:
        return data.reshape(data.shape[0], -1)
    raise ShapeError(f"GhostSZ supports 1-3 dimensions, got {data.ndim}")


@dataclass(frozen=True)
class GhostSZCompressor:
    """The prior FPGA baseline: CF prediction, 14-bit bins, gzip-only."""

    quant: QuantizerConfig = field(
        default_factory=lambda: QuantizerConfig(bits=16, reserved_bits=2)
    )
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )

    name = "GhostSZ"

    def compress(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    ) -> CompressedField:
        data = np.ascontiguousarray(data)
        bound = resolve_error_bound(data, eb, mode)
        p = bound.absolute
        rows = _as_rows(data)
        res = ghost_row_loop(rows, p, self.quant)

        words = (
            (res.types.astype(np.int64) << _TYPE_SHIFT) | res.codes
        ).reshape(-1)
        raw = words.astype("<u2").tobytes()
        gz = self.lossless.compress(raw)
        use_gz = len(gz) < len(raw)

        container = Container(
            header={
                "variant": self.name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "bound": bound_to_header(bound),
                "quant_bits": self.quant.bits,
                "reserved_bits": self.quant.reserved_bits,
                "n_codes": int(words.size),
                "n_verbatim": int(res.verbatim_values.size),
                "codes_gzipped": use_gz,
            }
        )
        container.add("ghost_words", gz if use_gz else raw)
        verbatim_stream = values_to_bytes(res.verbatim_values)
        container.add("verbatim", verbatim_stream)

        stats = build_stats(
            data=data,
            encoded_code_bytes=len(gz) if use_gz else len(raw),
            outlier_bytes=len(verbatim_stream),
            border_bytes=0,
            n_unpredictable=res.n_unpredictable,
            n_border=int(rows.shape[0]),  # row pivots are inside n_unpredictable
        )
        return CompressedField(
            variant=self.name,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            bound=bound,
            quant=self.quant,
            payload=container.to_bytes(),
            stats=stats,
            meta={"rows": rows.shape[0], "row_length": rows.shape[1]},
        )

    def decompress(self, compressed: CompressedField | bytes) -> np.ndarray:
        payload = (
            compressed.payload
            if isinstance(compressed, CompressedField)
            else compressed
        )
        with decode_guard(f"{self.name} payload"):
            return self._decompress(payload)

    def _decompress(self, payload: bytes) -> np.ndarray:
        container = Container.from_bytes(payload)
        h = container.header
        if h.get("variant") != self.name:
            raise ContainerError(
                f"payload was produced by {h.get('variant')!r}, not {self.name}"
            )
        shape = header_shape(h)
        dtype = header_dtype(h)
        bound = bound_from_header(h["bound"])
        quant = QuantizerConfig(
            bits=header_int(h, "quant_bits", lo=2, hi=32),
            reserved_bits=header_int(h, "reserved_bits"),
        )
        raw = container.get("ghost_words")
        if h["codes_gzipped"]:
            raw = self.lossless.decompress(raw)
        words = np.frombuffer(
            raw, dtype="<u2", count=header_int(h, "n_codes", hi=MAX_FIELD_POINTS)
        ).astype(np.int64)
        rows_shape = _as_rows(np.empty(shape, dtype=np.uint8)).shape
        types = (words >> _TYPE_SHIFT).astype(np.uint8).reshape(rows_shape)
        codes = (words & ((1 << _TYPE_SHIFT) - 1)).reshape(rows_shape)
        verbatim = np.frombuffer(
            container.get("verbatim"),
            dtype=np.dtype(dtype).newbyteorder("<"),
            count=header_int(h, "n_verbatim", hi=MAX_FIELD_POINTS),
        ).astype(dtype)
        dec = ghost_row_decode(
            types,
            codes,
            verbatim,
            precision=bound.absolute,
            quant=quant,
            dtype=dtype,
        )
        return dec.reshape(shape)
