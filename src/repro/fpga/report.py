"""Vivado-HLS-style synthesis report for the waveSZ kernel.

Renders the report a designer would read after synthesizing Listing 1:
the loop hierarchy (HeadH/V, BodyH/V, TailH/V) with trip counts, achieved
initiation intervals and latencies, the PQD stage breakdown, the resource
bill and the projected kernel performance — all derived from the same
models the Table 5/6 benches use, so the report and the benches can never
disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.layout import LoopPartition
from ..core.pipeline import pqd_latency, wavesz_pqd_stages
from ..errors import ModelError
from .device import FPGADevice, ZC706
from .hls import HLSLoopNest
from .resources import wavesz_resources
from .timing import DELTA_PQD, WAVESZ_CLOCK_HZ, wavesz_cycles

__all__ = ["synthesis_report", "kernel_loop_nests"]


def kernel_loop_nests(d0: int, d1: int, *, base2: bool = True) -> list[HLSLoopNest]:
    """The six loop nests of Listing 1 as scheduler objects."""
    part = LoopPartition(d0, d1)
    lam = part.lam
    delta = max(pqd_latency(wavesz_pqd_stages(base2)), 1)
    head_trip = lam // 2  # average head column length
    return [
        HLSLoopNest("HeadH", trip_count=len(part.head_columns), latency=1),
        HLSLoopNest("HeadV", trip_count=head_trip, latency=delta,
                    dependence_distance=max(head_trip, 1)),
        HLSLoopNest("BodyH", trip_count=len(part.body_columns), latency=1),
        HLSLoopNest("BodyV", trip_count=lam, latency=min(delta, lam),
                    dependence_distance=lam),
        HLSLoopNest("TailH", trip_count=len(part.tail_columns), latency=1),
        HLSLoopNest("TailV", trip_count=head_trip, latency=delta,
                    dependence_distance=max(head_trip, 1)),
    ]


def synthesis_report(
    d0: int,
    d1: int,
    *,
    base2: bool = True,
    lanes: int = 3,
    device: FPGADevice = ZC706,
) -> str:
    """Render the full synthesis report text for a (d0, d1) instance."""
    if d0 < 2 or d1 < d0:
        raise ModelError(f"report needs 2 <= d0 <= d1, got {d0}x{d1}")
    part = LoopPartition(d0, d1)
    stages = wavesz_pqd_stages(base2)
    res = wavesz_resources(lanes)
    util = res.utilization(device)
    cycles = wavesz_cycles((d0, d1))
    mhz = WAVESZ_CLOCK_HZ / 1e6

    lines = [
        "=" * 64,
        f"waveSZ kernel synthesis report — wave<float,{part.lam}>"
        f" on {device.name}",
        "=" * 64,
        "",
        f"target clock: {mhz:.2f} MHz   pipeline depth Λ = {part.lam}"
        f"   base-2: {'yes' if base2 else 'no'}",
        f"estimated kernel latency: {cycles} cycles"
        f" ({cycles / WAVESZ_CLOCK_HZ * 1e3:.2f} ms per field)",
        "",
        "+ PQD datapath stages " + "-" * 40,
        f"{'stage':<22}{'ops':<28}{'latency':>8}",
    ]
    for s in stages:
        lines.append(f"{s.name:<22}{'+'.join(s.ops):<28}{s.latency:>8}")
    lines.append(f"{'TOTAL Δ (logic)':<50}{pqd_latency(stages):>8}")
    lines.append(f"{'Δ with line-buffer turnaround (calibrated)':<50}"
                 f"{DELTA_PQD:>8}")
    lines.append("")
    lines.append("+ loop hierarchy " + "-" * 45)
    lines.append(f"{'loop':<8}{'trip':>8}{'II tgt':>8}{'II ach':>8}"
                 f"{'latency':>9}{'cycles':>10}")
    for nest in kernel_loop_nests(d0, d1, base2=base2):
        lines.append(
            f"{nest.label:<8}{nest.trip_count:>8}{nest.target_pii:>8}"
            f"{nest.achieved_pii:>8}{nest.latency:>9}{nest.cycles:>10}"
        )
    lines.append("")
    lines.append("+ utilization estimates " + "-" * 38)
    lines.append(f"{'resource':<12}{'used':>10}{'total':>10}{'%':>8}")
    for key, used, total in (
        ("BRAM_18K", res.bram_18k, device.bram_18k),
        ("DSP48E", res.dsp48e, device.dsp48e),
        ("FF", res.ff, device.ff),
        ("LUT", res.lut, device.lut),
    ):
        lines.append(f"{key:<12}{used:>10}{total:>10}{util[key]:>8.2f}")
    lines.append("")
    body = part.spans()
    lines.append(
        f"notes: body loop is stall-free ({body['body']} perfect columns); "
        f"head/tail span {body['head']}+{body['tail']} imperfect columns."
    )
    return "\n".join(lines)
