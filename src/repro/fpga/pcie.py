"""PCIe link throughput caps (the reference lines of Figure 8).

The ZC706 exposes 4x PCIe gen2 (5 GT/s, 8b/10b encoding -> 4 Gb/s usable
per lane, "peak perf for ZC706"); the gen3 x4 line (8 GT/s, 128b/130b) is
plotted as the roofline a newer part would move to.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError

__all__ = ["PCIeLink", "PCIE_GEN2_X4", "PCIE_GEN3_X4"]

_GEN_PARAMS = {
    # gen: (GT/s per lane, encoding efficiency)
    1: (2.5, 8 / 10),
    2: (5.0, 8 / 10),
    3: (8.0, 128 / 130),
    4: (16.0, 128 / 130),
}


@dataclass(frozen=True)
class PCIeLink:
    gen: int
    lanes: int

    def __post_init__(self) -> None:
        if self.gen not in _GEN_PARAMS:
            raise ModelError(f"unknown PCIe generation {self.gen}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ModelError(f"invalid PCIe lane count {self.lanes}")

    @property
    def gbit_per_lane(self) -> float:
        gt, eff = _GEN_PARAMS[self.gen]
        return gt * eff

    @property
    def bytes_per_s(self) -> float:
        """Usable unidirectional payload bandwidth in bytes/s."""
        return self.gbit_per_lane * self.lanes * 1e9 / 8

    @property
    def mb_per_s(self) -> float:
        return self.bytes_per_s / 1e6

    def label(self) -> str:
        return f"PCIe gen{self.gen} x{self.lanes}"


#: The ZC706's own link ("peak perf for ZC706", Figure 8).
PCIE_GEN2_X4 = PCIeLink(gen=2, lanes=4)
#: The roofline reference line of Figure 8.
PCIE_GEN3_X4 = PCIeLink(gen=3, lanes=4)
