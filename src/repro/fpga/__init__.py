"""FPGA substrate: device model, HLS pipeline timing, resources, PCIe, lanes.

The paper's throughput and utilization results (Tables 5-6, Figure 8) come
from a Xilinx Zynq-7000 ZC706 running Vivado HLS output.  Reproducing them
in Python means modelling, not synthesizing: this package implements

* :mod:`repro.fpga.device` — the ZC706 resource/clock envelope,
* :mod:`repro.fpga.hls` — an HLS-style loop-nest scheduler (pII, unroll,
  pipeline depth) with an event-driven column simulator that verifies the
  closed-form timing of Figure 6,
* :mod:`repro.fpga.timing` — the waveSZ/GhostSZ cycle models of Table 5,
* :mod:`repro.fpga.resources` — an operator-level utilization estimator
  calibrated against Table 6,
* :mod:`repro.fpga.pcie` — PCIe gen2/gen3 link throughput caps,
* :mod:`repro.fpga.lanes` — multi-lane scaling under resource + link
  limits (Figure 8).

Calibration constants (Δ_PQD = 118 cycles, f = 250 MHz for waveSZ lanes)
are documented in DESIGN.md §3 and printed by the benches next to the
paper's numbers.
"""

from .device import ZC706, FPGADevice
from .hls import HLSLoopNest, simulate_columns
from .lanes import LaneScaling, max_lanes_by_bram, scale_lanes
from .pcie import PCIeLink, PCIE_GEN2_X4, PCIE_GEN3_X4
from .resources import design_resources, ghostsz_resources, wavesz_resources
from .timing import (
    cpu_sz14_throughput,
    ghostsz_throughput,
    wavesz_cycles,
    wavesz_throughput,
)

__all__ = [
    "ZC706",
    "FPGADevice",
    "HLSLoopNest",
    "simulate_columns",
    "LaneScaling",
    "max_lanes_by_bram",
    "scale_lanes",
    "PCIeLink",
    "PCIE_GEN2_X4",
    "PCIE_GEN3_X4",
    "design_resources",
    "ghostsz_resources",
    "wavesz_resources",
    "cpu_sz14_throughput",
    "ghostsz_throughput",
    "wavesz_cycles",
    "wavesz_throughput",
]
