"""FPGA customized-Huffman encoder model — the paper's future work.

The conclusion defers "the FPGA version for the customized Huffman
encoding, which can further improve compression ratios especially for
high-dimensional datasets".  This module models what that design costs,
so the repository can quantify the trade the paper left open:

* **architecture** — the standard two-pass streaming design: pass 1
  histograms the 16-bit quantization codes into BRAM; the canonical code
  table is built once per block (tree construction is tiny next to the
  streaming passes); pass 2 looks every symbol up and packs bits at one
  symbol per cycle.
* **throughput** — ~1 symbol/cycle/pass ⇒ half a symbol per cycle
  end-to-end, still faster than one PQD lane produces codes, so the
  Huffman stage never becomes the bottleneck (it pipelines behind PQD,
  adding latency, not rate).
* **resources** — the histogram (2^16 x 32 b) and code table
  (2^16 x 37 b) dominate: ~250 BRAM_18K per instance, comparable to the
  gzip IP's 303.  That BRAM bill is exactly why lane counts drop when H*
  moves on-chip — the quantitative version of "not the focus of this
  paper".

The functional behaviour *is* :class:`repro.encoding.huffman.HuffmanCodec`
(bit-identical output); this model adds the cycle and resource accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..encoding.histogram import symbol_histogram
from ..encoding.huffman import HuffmanCodec, HuffmanTable
from ..errors import ModelError
from ..types import ResourceReport, ThroughputReport
from .device import FPGADevice, ZC706
from .resources import GZIP_IP_BRAM

__all__ = [
    "HuffmanHWModel",
    "huffman_hw_resources",
    "simulate_huffman_encode",
    "hstar_lane_budget",
]

_BRAM_BITS = 18 * 1024


@dataclass(frozen=True)
class HuffmanHWModel:
    """Parameters of the streaming two-pass encoder."""

    symbol_bits: int = 16
    clock_hz: float = 250e6
    #: cycles per distinct symbol for the canonical table build (host or
    #: sequential FSM; heap-based build touches each leaf O(log n) times).
    build_cycles_per_symbol: int = 24

    def __post_init__(self) -> None:
        if not 2 <= self.symbol_bits <= 24:
            raise ModelError(f"symbol width {self.symbol_bits} unsupported")

    @property
    def histogram_bram(self) -> int:
        """Pass-1 count memory: 2^bits x 32-bit counters."""
        bits = (1 << self.symbol_bits) * 32
        return math.ceil(bits / _BRAM_BITS)

    @property
    def table_bram(self) -> int:
        """Pass-2 lookup: 2^bits x (32-bit code + 5-bit length)."""
        bits = (1 << self.symbol_bits) * 37
        return math.ceil(bits / _BRAM_BITS)

    @property
    def total_bram(self) -> int:
        return self.histogram_bram + self.table_bram

    def encode_cycles(self, n_symbols: int, n_distinct: int) -> int:
        """Two streaming passes plus the table build."""
        if n_symbols < 0 or n_distinct < 0:
            raise ModelError("negative symbol counts")
        return 2 * n_symbols + self.build_cycles_per_symbol * n_distinct

    def throughput(self, n_symbols: int, n_distinct: int,
                   *, dataset: str = "") -> ThroughputReport:
        cycles = self.encode_cycles(n_symbols, n_distinct)
        seconds = cycles / self.clock_hz
        return ThroughputReport(
            design="Huffman-HW",
            dataset=dataset,
            lanes=1,
            cycles=float(cycles),
            frequency_hz=self.clock_hz,
            n_points=n_symbols,
            bytes_per_point=4,
            mb_per_s=n_symbols * 4 / (seconds * 1e6),
        )


def huffman_hw_resources(model: HuffmanHWModel | None = None) -> ResourceReport:
    """Resource bill of one encoder instance (BRAM-dominated)."""
    model = model or HuffmanHWModel()
    return ResourceReport(
        design=f"Huffman-HW ({model.symbol_bits}-bit)",
        bram_18k=model.total_bram,
        dsp48e=0,
        ff=3200,  # bit-packer shifters + two pass FSMs (calibrated order)
        lut=5400,
    )


def simulate_huffman_encode(
    symbols: np.ndarray, model: HuffmanHWModel | None = None
) -> tuple[bytes, ThroughputReport]:
    """Functionally encode ``symbols`` and report the modelled cycles.

    The payload is bit-identical to the software codec's (the hardware is
    an implementation of the same canonical code)."""
    model = model or HuffmanHWModel()
    symbols = np.asarray(symbols).reshape(-1)
    vals, counts = symbol_histogram(symbols)
    codec = HuffmanCodec(HuffmanTable.from_frequencies(vals, counts))
    payload, _ = codec.encode(symbols)
    report = model.throughput(int(symbols.size), int(vals.size))
    return payload, report


def hstar_lane_budget(
    device: FPGADevice = ZC706,
    *,
    per_lane_pqd_bram: int = 3,
    model: HuffmanHWModel | None = None,
    infra_bram: int = 40,
) -> dict[str, int]:
    """Lanes that fit with and without the on-chip H* stage.

    Each lane needs PQD line buffers + gzip (303 BRAM); the H* variant
    adds a Huffman encoder per lane.  Returns both lane counts — the
    quantitative cost of the paper's future-work feature.
    """
    model = model or HuffmanHWModel()
    budget = device.bram_18k - infra_bram
    per_lane_gstar = per_lane_pqd_bram + GZIP_IP_BRAM
    per_lane_hstar = per_lane_gstar + model.total_bram
    return {
        "lanes_gstar": max(budget // per_lane_gstar, 0),
        "lanes_hstar": max(budget // per_lane_hstar, 0),
        "hstar_bram_per_lane": per_lane_hstar,
        "gstar_bram_per_lane": per_lane_gstar,
    }
