"""Multi-lane scaling under PCIe and BRAM limits (Figure 8).

FPGA throughput scales linearly with lane count until either the PCIe
link saturates (gen2 x4 ~= 2 GB/s on the ZC706) or the board runs out of
BRAM — each lane needs its own gzip instance at 303 BRAM_18K (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from .device import FPGADevice, ZC706
from .pcie import PCIeLink, PCIE_GEN2_X4
from .resources import GZIP_IP_BRAM

__all__ = ["LaneScaling", "scale_lanes", "max_lanes_by_bram"]


@dataclass(frozen=True)
class LaneScaling:
    """Throughput of an n-lane deployment and what limited it."""

    design: str
    lanes: int
    per_lane_mb_s: float
    mb_per_s: float
    limited_by: str  # "lanes" | "pcie" | "bram"


def max_lanes_by_bram(
    per_lane_bram: int,
    device: FPGADevice = ZC706,
    *,
    gzip_bram: int = GZIP_IP_BRAM,
    infra_bram: int = 40,
) -> int:
    """How many (PQD + gzip) lane pairs fit the device's BRAM."""
    budget = device.bram_18k - infra_bram
    per_lane = per_lane_bram + gzip_bram
    if per_lane <= 0:
        raise ModelError("per-lane BRAM must be positive")
    return max(budget // per_lane, 0)


def scale_lanes(
    design: str,
    per_lane_mb_s: float,
    lanes: int,
    *,
    pcie: PCIeLink = PCIE_GEN2_X4,
    device: FPGADevice = ZC706,
    per_lane_bram: int = 3,
    gzip_bram: int = GZIP_IP_BRAM,
) -> LaneScaling:
    """Aggregate throughput of ``lanes`` parallel compression lanes."""
    if lanes < 1:
        raise ModelError("lanes must be >= 1")
    if per_lane_mb_s <= 0:
        raise ModelError("per-lane throughput must be positive")
    bram_cap = max_lanes_by_bram(
        per_lane_bram, device, gzip_bram=gzip_bram
    )
    effective_lanes = min(lanes, bram_cap) if bram_cap else 0
    if effective_lanes == 0:
        raise ModelError(f"not even one lane fits {device.name}'s BRAM")
    linear = per_lane_mb_s * effective_lanes
    capped = min(linear, pcie.mb_per_s)
    if capped < linear:
        limit = "pcie"
    elif effective_lanes < lanes:
        limit = "bram"
    else:
        limit = "lanes"
    return LaneScaling(
        design=design,
        lanes=lanes,
        per_lane_mb_s=per_lane_mb_s,
        mb_per_s=capped,
        limited_by=limit,
    )
