"""Cycle/throughput models behind Table 5 and Figure 8.

All three models share the paper's conventions: throughput is *input*
megabytes (1e6 bytes) of float32 points per second, measured from data
arrival to compressed output, excluding file IO.

**waveSZ** — the wavefront column pipeline.  Column ``t+1``'s first point
depends on column ``t``'s first result, so the column switch time is
``max(len_t, Δ)`` where ``len_t`` is the column's interior point count
(pII = 1 issue) and Δ the chained PQD latency.  Body columns have
``len = Λ = d0-1``: when Λ >= Δ the pipeline is stall-free (Figure 6's
ideal mapping); when Λ < Δ every column stalls ``Δ - Λ`` cycles — that is
why Hurricane (Λ = 99 < Δ) runs ~16 % slower than CESM/NYX in Table 5.
Calibration (DESIGN.md §3): Δ = 118 cycles (the stage-sum of
:func:`repro.core.pipeline.wavesz_pqd_stages` plus line-buffer turnaround),
clock = 250 MHz (max-frequency IP configuration).

**GhostSZ** — rowwise pipeline whose issue rate is bound by the most
loaded of the three curve-fitting units: the quadratic fit does 4
elementary FP operations per point against a single issue slot
(§2.2's load imbalance), giving an effective initiation interval of 4 at
the 156.25 MHz default clock, plus a recurrence bound when too few rows
are interleaved.

**SZ-1.4 CPU** — per-point cycle cost on the 2.4 GHz Xeon Gold 6148
decomposed into load/store, prediction, quantization, Huffman and gzip
components; OpenMP scales sublinearly with efficiency
``1/(1 + α(n-1))`` calibrated to the paper's 59 % at 32 cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..types import ThroughputReport

__all__ = [
    "DELTA_PQD",
    "WAVESZ_CLOCK_HZ",
    "GHOSTSZ_CLOCK_HZ",
    "interior_column_lengths",
    "wavesz_cycles",
    "wavesz_throughput",
    "ghostsz_throughput",
    "cpu_sz14_throughput",
    "openmp_efficiency",
]

#: Calibrated chained PQD latency (cycles): logic stages (~93 at 250 MHz)
#: plus in-place-decompression line-buffer turnaround.  See DESIGN.md §3.
DELTA_PQD = 118

#: waveSZ lane clock: the "highest frequency" FP IP configuration.
WAVESZ_CLOCK_HZ = 250e6

#: GhostSZ clock: the paper's default fabric clock.
GHOSTSZ_CLOCK_HZ = 156.25e6

#: GhostSZ effective initiation interval: the quadratic curve-fit unit
#: issues 4 elementary FP ops per point through one slot (load imbalance).
GHOSTSZ_PII = 4

#: GhostSZ prediction-recurrence latency (cycles): fmul + 2 fadd chain.
GHOSTSZ_DELTA_CF = 30

#: CPU model: cycles per point by pipeline component (Xeon Gold 6148).
CPU_CYCLES = {
    "load_store": 10.0,
    "predict_2d": 16.0,  # 3-op stencil, short ILP chain
    "predict_3d": 12.0,  # 7-op stencil but a deeper ILP tree amortizes
    "quantize": 18.0,  # divide + round + bound check
    "huffman": 22.0,  # table lookup + bit packing
    "gzip": 12.0,  # best_speed, amortized over the Huffman bytes
    "loop": 8.0,
}
CPU_CLOCK_HZ = 2.4e9
OPENMP_ALPHA = (1 / 0.59 - 1) / 31  # 59 % parallel efficiency at 32 cores

_F32 = 4  # bytes per point (all SDRB fields are float32)


def _view_2d(shape: tuple[int, ...]) -> tuple[int, int]:
    """The artifact's 2D interpretation used by waveSZ and GhostSZ."""
    if len(shape) == 2:
        d0, d1 = shape
    elif len(shape) == 3:
        d0, d1 = shape[0], shape[1] * shape[2]
    else:
        raise ModelError(f"FPGA models take 2D/3D shapes, got {shape}")
    if d0 < 2 or d1 < 2:
        raise ModelError(f"degenerate shape {shape}")
    return d0, d1


def interior_column_lengths(d0: int, d1: int) -> np.ndarray:
    """Interior (PQD) point count of every wavefront column, vectorized."""
    t = np.arange(d0 + d1 - 1, dtype=np.int64)
    full = np.minimum.reduce([t, np.full_like(t, d0 - 1), np.full_like(t, d1 - 1),
                              d0 + d1 - 2 - t]) + 1
    border = (t <= d1 - 1).astype(np.int64) + ((t > 0) & (t <= d0 - 1)).astype(
        np.int64
    )
    border[0] = 1
    return np.maximum(full - border, 0)


def wavesz_cycles(shape: tuple[int, ...], *, delta: int = DELTA_PQD) -> int:
    """Total pipeline cycles for one field: ``sum(max(len_t, Δ)) + Δ`` drain."""
    d0, d1 = _view_2d(shape)
    lengths = interior_column_lengths(d0, d1)
    active = lengths[lengths > 0]
    return int(np.maximum(active, delta).sum()) + delta


def wavesz_throughput(
    shape: tuple[int, ...],
    *,
    dataset: str = "",
    lanes: int = 1,
    delta: int = DELTA_PQD,
    clock_hz: float = WAVESZ_CLOCK_HZ,
) -> ThroughputReport:
    """Modelled waveSZ compression throughput (Table 5 single-lane rows)."""
    if lanes < 1:
        raise ModelError("lanes must be >= 1")
    cycles = wavesz_cycles(shape, delta=delta)
    n_points = int(np.prod(shape))
    seconds = cycles / clock_hz
    mb = n_points * _F32 * lanes / (seconds * 1e6)
    return ThroughputReport(
        design="waveSZ",
        dataset=dataset,
        lanes=lanes,
        cycles=float(cycles),
        frequency_hz=clock_hz,
        n_points=n_points,
        bytes_per_point=_F32,
        mb_per_s=mb,
    )


def ghostsz_throughput(
    shape: tuple[int, ...],
    *,
    dataset: str = "",
    lanes: int = 1,
    pii: int = GHOSTSZ_PII,
    delta_cf: int = GHOSTSZ_DELTA_CF,
    clock_hz: float = GHOSTSZ_CLOCK_HZ,
) -> ThroughputReport:
    """Modelled GhostSZ throughput: issue-bound by the quadratic CF unit.

    With ``d0`` rows interleaved, the prediction recurrence (distance one
    point *within* a row, latency ``delta_cf``) bounds the interval between
    same-row issues; the achieved per-point interval is
    ``max(pii, ceil(delta_cf / d0))``.
    """
    if lanes < 1:
        raise ModelError("lanes must be >= 1")
    d0, d1 = _view_2d(shape)
    eff_pii = max(pii, math.ceil(delta_cf / d0))
    n_points = int(np.prod(shape))
    cycles = n_points * eff_pii + delta_cf  # fill
    seconds = cycles / clock_hz
    mb = n_points * _F32 * lanes / (seconds * 1e6)
    return ThroughputReport(
        design="GhostSZ",
        dataset=dataset,
        lanes=lanes,
        cycles=float(cycles),
        frequency_hz=clock_hz,
        n_points=n_points,
        bytes_per_point=_F32,
        mb_per_s=mb,
    )


def openmp_efficiency(n_cores: int, alpha: float = OPENMP_ALPHA) -> float:
    """SZ's OpenMP parallel efficiency: sublinear due to context switching."""
    if n_cores < 1:
        raise ModelError("n_cores must be >= 1")
    return 1.0 / (1.0 + alpha * (n_cores - 1))


def cpu_sz14_throughput(
    shape: tuple[int, ...],
    *,
    dataset: str = "",
    n_cores: int = 1,
    clock_hz: float = CPU_CLOCK_HZ,
) -> ThroughputReport:
    """Modelled SZ-1.4 CPU throughput (Table 5 / Figure 8 baselines)."""
    ndim = len(shape)
    if ndim not in (2, 3):
        raise ModelError(f"CPU model takes 2D/3D shapes, got {shape}")
    c = CPU_CYCLES
    per_point = (
        c["load_store"]
        + (c["predict_2d"] if ndim == 2 else c["predict_3d"])
        + c["quantize"]
        + c["huffman"]
        + c["gzip"]
        + c["loop"]
    )
    n_points = int(np.prod(shape))
    single = clock_hz / per_point  # points/s on one core
    rate = single * n_cores * openmp_efficiency(n_cores)
    cycles = n_points / rate * clock_hz
    return ThroughputReport(
        design="SZ-1.4 (CPU)" if n_cores == 1 else f"SZ-1.4 (omp x{n_cores})",
        dataset=dataset,
        lanes=n_cores,
        cycles=float(cycles),
        frequency_hz=clock_hz,
        n_points=n_points,
        bytes_per_point=_F32,
        mb_per_s=rate * _F32 / 1e6,
    )
