"""HLS-style loop-nest scheduling and an event-driven pipeline simulator.

Two views of the same machine:

* :class:`HLSLoopNest` mimics what Vivado HLS does with Listing 1's
  pragmas: given a loop's carried-dependence distance and the operation
  latency, it reports the achieved initiation interval (relaxing ``pII=1``
  to the smallest feasible value exactly as §3.3 describes) and a
  synthesis-report summary.
* :func:`simulate_columns` is an event-driven simulation of the wavefront
  column pipeline: points issue in order (one issue slot, ``pII`` cycles
  apart), each takes ``delta`` cycles of PQD, and a point cannot start
  before its Lorenzo dependencies in the previous two columns complete.
  The tests check it against the closed forms of Figure 6 (body start
  ``c*Λ + r``, end ``(c+1)*Λ + r - 1``) and against the aggregate cycle
  model in :mod:`repro.fpga.timing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

__all__ = ["HLSLoopNest", "simulate_columns", "ColumnSimResult"]


@dataclass(frozen=True)
class HLSLoopNest:
    """One pipelined inner loop of the kernel (HeadV / BodyV / TailV).

    ``dependence_distance`` is the loop-carried dependence distance in
    iterations: for the wavefront body loop it is Λ (the dependency sits
    one full column back), which is what lets pII = 1 be met.
    """

    label: str
    trip_count: int
    latency: int  # Δ: cycles from issue to writeback
    target_pii: int = 1
    dependence_distance: int | None = None  # None = no carried dependence

    def __post_init__(self) -> None:
        if self.trip_count < 0 or self.latency < 1 or self.target_pii < 1:
            raise ModelError(f"bad loop nest parameters for {self.label}")

    @property
    def achieved_pii(self) -> int:
        """The initiation interval the scheduler can actually meet.

        With a carried dependence of distance ``d`` and latency ``Δ``, the
        recurrence bound is ``pII >= Δ / d``; the synthesis tool relaxes
        the requested pII to the smallest legal value (§3.3).
        """
        if self.dependence_distance is None:
            return self.target_pii
        bound = math.ceil(self.latency / self.dependence_distance)
        return max(self.target_pii, bound)

    @property
    def cycles(self) -> int:
        """Schedule length: fill (Δ) plus one issue per iteration."""
        if self.trip_count == 0:
            return 0
        return self.latency + self.achieved_pii * (self.trip_count - 1)

    def report(self) -> str:
        """A Vivado-HLS-flavoured one-line synthesis summary."""
        return (
            f"{self.label}: trip={self.trip_count} latency={self.latency} "
            f"II(target)={self.target_pii} II(achieved)={self.achieved_pii} "
            f"cycles={self.cycles}"
        )


@dataclass(frozen=True)
class ColumnSimResult:
    """Outcome of the event-driven wavefront pipeline simulation."""

    start: list[np.ndarray]  # per column: issue cycle of each point
    finish: list[np.ndarray]  # per column: completion cycle of each point
    total_cycles: int
    stall_cycles: int  # issue-slot idle time due to dependencies


def simulate_columns(
    col_lengths: list[int] | np.ndarray,
    delta: int,
    *,
    pii: int = 1,
) -> ColumnSimResult:
    """Event-driven simulation of the wavefront column pipeline.

    ``col_lengths[t]`` is the number of PQD points issued for wavefront
    column ``t`` (interior points only — border points bypass the
    pipeline).  Point ``r`` of column ``t`` depends on points ``r-1`` and
    ``r`` of column ``t-1`` and point ``r-1`` of column ``t-2``; rows are
    aligned top-down, which upper-bounds the true wavefront stencil (the
    real dependencies are never *later* than these).
    """
    if delta < 1 or pii < 1:
        raise ModelError("delta and pii must be >= 1")
    starts: list[np.ndarray] = []
    finishes: list[np.ndarray] = []
    issue = 0
    stall = 0
    for t, length in enumerate(col_lengths):
        length = int(length)
        s = np.zeros(length, dtype=np.int64)
        f = np.zeros(length, dtype=np.int64)
        for r in range(length):
            dep = 0
            if t >= 1:
                prev = finishes[t - 1]
                if r < prev.size:
                    dep = max(dep, int(prev[r]))
                if 0 <= r - 1 < prev.size:
                    dep = max(dep, int(prev[r - 1]))
            if t >= 2:
                pprev = finishes[t - 2]
                if 0 <= r - 1 < pprev.size:
                    dep = max(dep, int(pprev[r - 1]))
            start = max(issue, dep)
            stall += start - issue
            s[r] = start
            f[r] = start + delta
            issue = start + pii
        starts.append(s)
        finishes.append(f)
    total = max((int(f[-1]) for f in finishes if f.size), default=0)
    return ColumnSimResult(
        start=starts, finish=finishes, total_cycles=total, stall_cycles=stall
    )
