"""Operator-level FPGA resource estimator (Table 6).

A design is a bill of materials over an operator library; utilization is
the resource-weighted sum.  Operator costs are 7-series floating-point /
integer operator figures *calibrated once against Table 6* (two designs x
four resource classes); the macro components (``balancing_fifos``,
``stream_interface`` ...) absorb what a synthesis netlist would distribute
across FIFOs, alignment registers and AXI glue.  The bench prints model
vs. paper so the calibration error is always visible.

The headline relationships the model must (and does) preserve:

* waveSZ uses **zero DSP48E** — the base-2 co-optimization removes every
  multiply/divide from the PQD path (§3.3);
* GhostSZ burns ~3x the FF and ~2.4x the LUT of waveSZ's *three* PQD
  lanes on a single pipeline, chiefly in the three imbalanced curve-fit
  units, the base-10 divider, and the latency-balancing FIFOs;
* gzip's 303 BRAM_18K per instance is what actually limits lane scaling
  (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..types import ResourceReport

__all__ = [
    "Operator",
    "OPERATORS",
    "GZIP_IP_BRAM",
    "design_resources",
    "wavesz_resources",
    "ghostsz_resources",
]

#: Xilinx Applications GZip IP BRAM cost (paper ref [59], §4.2).
GZIP_IP_BRAM = 303


@dataclass(frozen=True)
class Operator:
    """Per-instance resource cost of one hardware operator."""

    name: str
    ff: int
    lut: int
    dsp: int = 0
    bram: int = 0


OPERATORS: dict[str, Operator] = {
    op.name: op
    for op in [
        # Floating point, logic-only implementation (waveSZ: DSP-free).
        Operator("fadd_logic", ff=310, lut=540),
        # Floating point on DSP slices (GhostSZ's full-usage config).
        Operator("fadd_dsp", ff=340, lut=420, dsp=2),
        Operator("fmul_dsp", ff=150, lut=101, dsp=3),
        # High-frequency pipelined divider (base-10 quantization only).
        Operator("fdiv", ff=1600, lut=2600, dsp=20),
        Operator("f2i", ff=140, lut=200),
        Operator("i2f", ff=120, lut=180),
        Operator("fcmp", ff=66, lut=39),
        Operator("exp_unit", ff=60, lut=110),  # exponent add/extract (base-2)
        Operator("int_alu", ff=40, lut=70),
        Operator("int_cmp", ff=20, lut=40),
        Operator("mux32", ff=8, lut=24),
        Operator("line_buffer", ff=0, lut=0, bram=1),
        Operator("loop_control", ff=150, lut=280),
        # Calibrated macro blocks (see module docstring).
        Operator("addr_gen_shared", ff=240, lut=720),
        Operator("balancing_fifos", ff=4569, lut=6800, bram=6),
        Operator("ghost_control", ff=1200, lut=2400),
        Operator("stream_interface", ff=1200, lut=3271, bram=8),
        Operator("row_buffer_pair", ff=0, lut=0, bram=2),
    ]
}


def design_resources(name: str, bom: dict[str, int]) -> ResourceReport:
    """Aggregate a bill of materials into a :class:`ResourceReport`."""
    ff = lut = dsp = bram = 0
    for op_name, count in bom.items():
        if count < 0:
            raise ModelError(f"negative count for {op_name}")
        try:
            op = OPERATORS[op_name]
        except KeyError:
            raise ModelError(f"unknown operator {op_name!r}") from None
        ff += op.ff * count
        lut += op.lut * count
        dsp += op.dsp * count
        bram += op.bram * count
    return ResourceReport(design=name, bram_18k=bram, dsp48e=dsp, ff=ff, lut=lut)


def wavesz_resources(lanes: int = 3) -> ResourceReport:
    """waveSZ with ``lanes`` parallel PQD procedures (Table 6 uses 3, to
    match GhostSZ's three-predictor footprint)."""
    if lanes < 1:
        raise ModelError("lanes must be >= 1")
    per_lane = {
        "fadd_logic": 3,  # 2 Lorenzo adds + reconstruction add
        "i2f": 1,
        "exp_unit": 1,  # base-2 scaling: exponent arithmetic only
        "int_alu": 3,
        "int_cmp": 1,
        "mux32": 2,
        "loop_control": 1,
        "line_buffer": 3,  # N/W/NW line buffers at depth Λ
    }
    bom = {k: v * lanes for k, v in per_lane.items()}
    bom["addr_gen_shared"] = 1
    return design_resources(f"waveSZ ({lanes} PQD)", bom)


def ghostsz_resources() -> ResourceReport:
    """GhostSZ's single pipeline with its three curve-fit units."""
    bom = {
        # Order-{0,1,2} prediction units (order-0 is muxes only; the
        # quadratic unit carries 2x the linear unit's FP ops).
        "fmul_dsp": 4,  # order-1 (1) + order-2 (2) + reconstruction (1)
        "fadd_dsp": 8,  # order-1 (1) + order-2 (2) + bestfit subs (3)
        #                 + reconstruction (1) + overbound (1)
        "fdiv": 1,  # base-10 quantization divide
        "f2i": 1,
        "i2f": 1,
        "fcmp": 5,
        "int_alu": 2,
        "mux32": 7,
        "row_buffer_pair": 3,  # double-buffered row streams
        "balancing_fifos": 1,  # latency alignment across imbalanced units
        "ghost_control": 1,
        "stream_interface": 1,
    }
    return design_resources("GhostSZ", bom)
