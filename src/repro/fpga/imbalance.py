"""GhostSZ's predictor-unit load imbalance (paper §2.2, item 3).

GhostSZ instantiates three prediction units — previous-value, linear and
quadratic curve fitting — and every point runs all three before a bestfit
mux.  Their workloads differ 1:2:4 (quadratic does twice the linear
fit's computation), so when the units are clocked as one synchronous
pipeline the lighter units idle: "the FPGA units assigned for the linear
curve-fitting would stay idle much of time".

:func:`simulate_units` runs the three units cycle by cycle on a shared
point stream and reports per-unit busy fractions and the resulting
effective initiation interval — the quantity the GhostSZ throughput model
uses (``GHOSTSZ_PII``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..sz.curvefit import CURVEFIT_WORKLOADS

__all__ = ["UnitStats", "ImbalanceResult", "simulate_units"]


@dataclass(frozen=True)
class UnitStats:
    name: str
    work_per_point: int
    busy_cycles: int
    total_cycles: int

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.total_cycles if self.total_cycles else 0.0


@dataclass(frozen=True)
class ImbalanceResult:
    units: tuple[UnitStats, ...]
    total_cycles: int
    n_points: int

    @property
    def effective_pii(self) -> float:
        """Cycles between consecutive point issues, set by the slowest unit."""
        return self.total_cycles / self.n_points if self.n_points else 0.0

    @property
    def wasted_unit_cycles(self) -> int:
        """Idle unit-cycles across the three units — the resource waste."""
        return sum(u.total_cycles - u.busy_cycles for u in self.units)


def simulate_units(
    n_points: int,
    *,
    workloads: dict[int, int] | None = None,
    issue_width: int = 1,
) -> ImbalanceResult:
    """Synchronous-join simulation of the three curve-fitting units.

    Each point occupies unit ``k`` for ``workloads[k]`` cycles; the
    bestfit join cannot release a point until *all* units finish, so the
    next point issues ``max(workloads)`` cycles later (with ``issue_width``
    sub-units per predictor, that many cycles fewer).
    """
    if n_points < 1:
        raise ModelError("n_points must be >= 1")
    if issue_width < 1:
        raise ModelError("issue_width must be >= 1")
    workloads = dict(workloads or CURVEFIT_WORKLOADS)
    names = {0: "order-0 (previous value)", 1: "order-1 (linear)",
             2: "order-2 (quadratic)"}
    slowest = max(workloads.values())
    step = -(-slowest // issue_width)  # ceil
    total = step * n_points
    units = tuple(
        UnitStats(
            name=names.get(k, f"unit-{k}"),
            work_per_point=w,
            busy_cycles=min(-(-w // issue_width), step) * n_points,
            total_cycles=total,
        )
        for k, w in sorted(workloads.items())
    )
    return ImbalanceResult(units=units, total_cycles=total, n_points=n_points)
