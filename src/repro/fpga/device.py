"""FPGA device envelopes.

The evaluation platform is the Xilinx Zynq-7000 SoC ZC706 (XC7Z045): the
resource totals below are the denominators of Table 6's utilization
percentages, and the PCIe block is 4x gen2 (the "peak perf for ZC706" line
of Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError

__all__ = ["FPGADevice", "ZC706"]


@dataclass(frozen=True)
class FPGADevice:
    """Resource and clocking envelope of one FPGA part."""

    name: str
    bram_18k: int
    dsp48e: int
    ff: int
    lut: int
    default_clock_hz: float = 156.25e6  # paper §4.1 default
    max_clock_hz: float = 250e6  # "IP configured for highest frequency"

    def __post_init__(self) -> None:
        if min(self.bram_18k, self.dsp48e, self.ff, self.lut) <= 0:
            raise ModelError(f"device {self.name} has non-positive resources")
        if not 0 < self.default_clock_hz <= self.max_clock_hz:
            raise ModelError(f"device {self.name} clock envelope is inconsistent")

    def fits(self, bram_18k: int, dsp48e: int, ff: int, lut: int) -> bool:
        """Whether a design's totals fit this part."""
        return (
            bram_18k <= self.bram_18k
            and dsp48e <= self.dsp48e
            and ff <= self.ff
            and lut <= self.lut
        )


#: Zynq-7000 XC7Z045 on the ZC706 board (Table 6 'total' column).
ZC706 = FPGADevice(
    name="ZC706 (XC7Z045)",
    bram_18k=1090,
    dsp48e=900,
    ff=437_200,
    lut=218_600,
)
