"""Compression-ratio accounting (artifact appendix A.4.2).

Two conventions appear in the artifact:

* the *maximal possible* ratio, ``original / lossy_archive``, ignoring
  border points, and
* the conservative ratio with border points charged at full float width:
  ``original / (lossy_archive + n_border * sizeof(float32))`` — the
  convention Table 7 uses for waveSZ ("border points are counted as
  unpredictable data").

Our compressors already fold border bytes into their stats, so
:func:`ratio` is the Table 7 number; :func:`border_adjusted_ratio` lets
benches derive one convention from the other.
"""

from __future__ import annotations

from ..types import CompressionStats

__all__ = ["ratio", "border_adjusted_ratio"]


def ratio(stats: CompressionStats) -> float:
    """The Table 7 convention (borders included in the compressed size)."""
    return stats.ratio


def border_adjusted_ratio(stats: CompressionStats, *, count_borders: bool) -> float:
    """Ratio with or without charging border points.

    ``count_borders=True`` reproduces :func:`ratio`; ``False`` gives the
    artifact's "maximal possible compression ratio".
    """
    compressed = stats.compressed_bytes
    if not count_borders:
        compressed -= stats.border_bytes
    if compressed <= 0:
        raise ValueError("compressed size would be non-positive")
    return stats.original_bytes / compressed
