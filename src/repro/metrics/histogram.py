"""Error-distribution views used by Figures 1 and 9.

:func:`prediction_error_series` produces the three Figure 1 curves —
LP-SZ-1.4 (open-loop 2D Lorenzo), CF-SZ-1.0 (closed-loop bestfit curve
fitting over decompressed values) and CF-GhostSZ (the predicted-value
recurrence) — on any 2D field.  :func:`error_histogram` bins compression
errors for Figure 9's left panel.
"""

from __future__ import annotations

import numpy as np

from ..ghostsz.predictor import ghost_predict_open
from ..sz.curvefit import bestfit_predict
from ..sz.lorenzo import lorenzo_predict

__all__ = ["error_histogram", "prediction_error_series"]


def error_histogram(
    errors: np.ndarray,
    *,
    bins: int = 101,
    value_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of signed errors; NaNs ignored. Returns (centres, counts)."""
    e = np.asarray(errors, dtype=np.float64).reshape(-1)
    e = e[np.isfinite(e)]
    if value_range is None:
        m = float(np.abs(e).max()) if e.size else 1.0
        value_range = (-m, m)
    counts, edges = np.histogram(e, bins=bins, range=value_range)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, counts


def prediction_error_series(field2d: np.ndarray) -> dict[str, np.ndarray]:
    """Signed prediction errors of the three Figure 1 predictors.

    * ``LP-SZ-1.4``  — 2D Lorenzo over the true neighbours (open loop),
    * ``CF-SZ-1.0``  — bestfit Order-{0,1,2} along the linearized field,
    * ``CF-GhostSZ`` — the predicted-value recurrence along each row.

    All series are raw (unquantized) prediction errors with NaN where a
    predictor has no basis, so histograms are directly comparable.
    """
    data = np.asarray(field2d, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"Figure 1 analysis expects a 2D field, got {data.ndim}D")

    lp = data - lorenzo_predict(data)

    seq = data.reshape(-1)
    cf_pred, _ = bestfit_predict(seq)
    cf = seq - cf_pred

    ghost_rows = [ghost_predict_open(row) for row in data]
    ghost = np.concatenate(ghost_rows)

    return {
        "LP-SZ-1.4": lp.reshape(-1),
        "CF-SZ-1.0": cf,
        "CF-GhostSZ": ghost,
    }
