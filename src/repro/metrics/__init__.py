"""Evaluation metrics: PSNR/RMSE, compression ratio accounting, histograms."""

from .error import max_abs_error, psnr, rmse, verify_error_bound
from .histogram import error_histogram, prediction_error_series
from .rate_distortion import RDPoint, bd_rate_like, rd_sweep
from .ratio import border_adjusted_ratio, ratio

__all__ = [
    "max_abs_error",
    "psnr",
    "rmse",
    "verify_error_bound",
    "error_histogram",
    "prediction_error_series",
    "ratio",
    "border_adjusted_ratio",
    "RDPoint",
    "rd_sweep",
    "bd_rate_like",
]
