"""Distortion metrics (paper §4.1, "Performance Metrics").

PSNR is defined exactly as in the paper:
``PSNR = 20 * log10((d_max - d_min) / RMSE)`` with RMSE the root mean
squared pointwise error.  Larger PSNR = lower distortion.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ErrorBoundViolation

__all__ = ["rmse", "psnr", "max_abs_error", "verify_error_bound"]


def _diff(original: np.ndarray, decompressed: np.ndarray) -> np.ndarray:
    if original.shape != decompressed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {decompressed.shape}"
        )
    return original.astype(np.float64) - decompressed.astype(np.float64)


def rmse(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Root mean squared pointwise error."""
    d = _diff(original, decompressed)
    return float(np.sqrt(np.mean(d * d)))


def max_abs_error(original: np.ndarray, decompressed: np.ndarray) -> float:
    """L-infinity error — the quantity the error bound constrains."""
    return float(np.max(np.abs(_diff(original, decompressed))))


def psnr(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (paper definition).

    Returns ``inf`` for an exact reconstruction.
    """
    r = rmse(original, decompressed)
    vrange = float(np.max(original) - np.min(original))
    if r == 0:
        return math.inf
    if vrange == 0:
        return math.inf if r == 0 else -math.inf
    return 20.0 * math.log10(vrange / r)


def verify_error_bound(
    original: np.ndarray,
    decompressed: np.ndarray,
    bound: float,
    *,
    raise_on_fail: bool = True,
) -> bool:
    """Check the hard guarantee ``|d - d•| <= bound`` on every point."""
    worst = max_abs_error(original, decompressed)
    ok = worst <= bound
    if not ok and raise_on_fail:
        raise ErrorBoundViolation(
            f"max error {worst:.3e} exceeds bound {bound:.3e}"
        )
    return ok
