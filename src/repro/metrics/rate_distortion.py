"""Rate-distortion sweeps.

The standard way lossy-compression papers compare codecs (paper refs
[32, 36, 53]): sweep the error bound, record (bit rate, PSNR) pairs, and
compare curves.  ``rd_sweep`` runs any of this library's compressors over
a bound schedule and returns the curve; ``bd_rate_like`` computes a
Bjøntegaard-style average bit-rate difference between two curves (the
scalar summary "X needs N % fewer bits than Y at equal quality").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, Sequence

import numpy as np

from ..errors import ConfigError
from .error import psnr

__all__ = ["RDPoint", "rd_sweep", "bd_rate_like"]


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> Any: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class RDPoint:
    """One point on a rate-distortion curve."""

    eb: float
    bit_rate: float  # bits per point
    psnr_db: float
    ratio: float


def rd_sweep(
    compressor: _Compressor,
    data: np.ndarray,
    bounds: Sequence[float],
    mode: str = "vr_rel",
) -> list[RDPoint]:
    """Compress ``data`` at each bound; returns points in bound order."""
    if not bounds:
        raise ConfigError("rd_sweep needs at least one bound")
    points = []
    for eb in bounds:
        cf = compressor.compress(data, eb, mode)
        out = compressor.decompress(cf)
        points.append(
            RDPoint(
                eb=float(eb),
                bit_rate=cf.stats.bit_rate,
                psnr_db=psnr(data, out),
                ratio=cf.stats.ratio,
            )
        )
    return points


def bd_rate_like(
    reference: Sequence[RDPoint], candidate: Sequence[RDPoint]
) -> float:
    """Average log-rate difference at equal PSNR, in percent.

    Negative = the candidate needs fewer bits than the reference for the
    same quality.  Computed by integrating log2(bit rate) over the
    overlapping PSNR range of the two (monotonized) curves — the classic
    Bjøntegaard-delta construction with piecewise-linear interpolation.
    """
    def curve(points: Sequence[RDPoint]) -> tuple[np.ndarray, np.ndarray]:
        pts = sorted(points, key=lambda p: p.psnr_db)
        q = np.array([p.psnr_db for p in pts])
        r = np.log2(np.array([p.bit_rate for p in pts]))
        keep = np.concatenate(([True], np.diff(q) > 1e-9))
        return q[keep], r[keep]

    q1, r1 = curve(reference)
    q2, r2 = curve(candidate)
    lo = max(q1.min(), q2.min())
    hi = min(q1.max(), q2.max())
    if hi <= lo:
        raise ConfigError("curves do not overlap in PSNR; widen the sweep")
    grid = np.linspace(lo, hi, 128)
    d = np.interp(grid, q2, r2) - np.interp(grid, q1, r1)
    return float((2.0 ** d.mean() - 1.0) * 100.0)
