"""Shared serialization helpers used by the compressor front-ends.

SZ-1.4, GhostSZ and waveSZ all shuttle the same kinds of byte streams into
the container — quantization codes (raw 16-bit or Huffman-coded),
truncated/verbatim value streams — differing only in which combination the
variant uses (paper Table 2).  Centralizing the encodings here keeps the
variants byte-compatible where the paper says they are.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .config import ErrorBound, ErrorBoundMode
from .encoding.huffman import HuffmanCodec, HuffmanTable
from .errors import ContainerError
from .io.container import Container
from .types import CompressionStats

if TYPE_CHECKING:
    from .lossless import GzipStage

__all__ = [
    "encode_codes_huffman",
    "decode_codes_huffman",
    "decode_codes_rans",
    "encode_codes_raw",
    "decode_codes_raw",
    "values_to_bytes",
    "values_from_bytes",
    "bound_to_header",
    "bound_from_header",
    "build_stats",
    "decompress_auto",
    "header_int",
    "header_shape",
    "header_dtype",
    "MAX_FIELD_POINTS",
]

#: Upper bound on the number of points a payload header may declare.  The
#: repro's largest fields are a few hundred million points; anything above
#: this is a corrupt/mutated header trying to force a giant allocation.
MAX_FIELD_POINTS = 1 << 28


def header_int(h: dict, key: str, *, lo: int | None = 0, hi: int | None = None) -> int:
    """Read an integer header field with range validation.

    Missing keys, non-integral values and out-of-range values all raise
    :class:`ContainerError` so corrupt headers cannot leak ``KeyError`` /
    ``TypeError`` or drive absurd allocations downstream.
    """
    if key not in h:
        raise ContainerError(f"header missing field {key!r}")
    v = h[key]
    if isinstance(v, bool) or not isinstance(v, int):
        raise ContainerError(f"header field {key!r} is not an integer: {v!r}")
    if lo is not None and v < lo:
        raise ContainerError(f"header field {key!r} = {v} below minimum {lo}")
    if hi is not None and v > hi:
        raise ContainerError(f"header field {key!r} = {v} above maximum {hi}")
    return v


def header_shape(
    h: dict, key: str = "shape", *, max_points: int = MAX_FIELD_POINTS
) -> tuple[int, ...]:
    """Read and sanity-check a shape tuple from a payload header."""
    if key not in h:
        raise ContainerError(f"header missing field {key!r}")
    raw = h[key]
    if not isinstance(raw, (list, tuple)) or not raw or len(raw) > 4:
        raise ContainerError(f"header field {key!r} is not a 1-4D shape: {raw!r}")
    shape = []
    points = 1
    for d in raw:
        if isinstance(d, bool) or not isinstance(d, int) or d <= 0:
            raise ContainerError(f"bad dimension {d!r} in header {key!r}")
        points *= d
        if points > max_points:
            raise ContainerError(
                f"header {key!r} declares more than {max_points} points"
            )
        shape.append(d)
    return tuple(shape)


def header_dtype(h: dict, key: str = "dtype") -> np.dtype:
    """Read the field dtype from a payload header (float32/float64 only)."""
    raw = h.get(key)
    if raw not in ("float32", "float64"):
        raise ContainerError(f"header field {key!r} is not a float dtype: {raw!r}")
    return np.dtype(raw)


def encode_codes_huffman(container: Container, codes_flat: np.ndarray) -> int:
    """Add the customized-Huffman sections for a code stream.

    Returns the payload size in bytes (table + bitstream) for accounting.
    """
    table = HuffmanTable.from_symbols(codes_flat)
    codec = HuffmanCodec(table)
    payload, nbits = codec.encode(codes_flat)
    container.add("huffman_table", table.to_bytes())
    container.add("huffman_codes", payload)
    container.header["n_codes"] = int(codes_flat.size)
    container.header["huffman_bits"] = int(nbits)
    return len(payload) + len(table.to_bytes())


def decode_codes_huffman(container: Container) -> np.ndarray:
    table, _ = HuffmanTable.from_bytes(container.get("huffman_table"))
    n = header_int(container.header, "n_codes", hi=MAX_FIELD_POINTS)
    return HuffmanCodec(table).decode(container.get("huffman_codes"), n)


def decode_codes_rans(container: Container, lossless: "GzipStage") -> np.ndarray:
    """Decode the RLE+rANS sections written by ``EntropyCodesStage``.

    Wire layout: a ``rans_table`` section (2^12-normalized frequency
    table), a ``rans_codes`` section (interleaved-lane byte stream) and,
    when the zero-run pre-pass fired, a ``rle_runs`` side stream of u8
    run lengths (gzipped when that wins, ``rle_runs_gz`` flag) with the
    collapsed symbol in the ``rle_symbol`` header field.
    """
    from .rans import RansTable, decode_tokens, rle_expand

    h = container.header
    n = header_int(h, "n_codes", hi=MAX_FIELD_POINTS)
    m = header_int(h, "rans_tokens", hi=MAX_FIELD_POINTS)
    table = RansTable.from_bytes(container.get("rans_table"))
    tokens = decode_tokens(container.get("rans_codes"), table, m)
    if container.has("rle_runs"):
        run_symbol = header_int(h, "rle_symbol")
        runs_raw = container.get("rle_runs")
        if h.get("rle_runs_gz"):
            runs_raw = lossless.decompress(runs_raw)
        runs = np.frombuffer(runs_raw, dtype=np.uint8)
        codes = rle_expand(tokens, runs, run_symbol)
    else:
        if m != n:
            raise ContainerError(
                f"rANS header declares {m} tokens for {n} codes without RLE"
            )
        codes = tokens
    if codes.size != n:
        raise ContainerError(
            f"rANS stream expands to {codes.size} codes, header says {n}"
        )
    return codes


def encode_codes_raw(container: Container, codes_flat: np.ndarray, bits: int) -> int:
    """Add a raw fixed-width little-endian code stream (the FPGA format).

    Both GhostSZ and waveSZ emit 16-bit codes straight into the FPGA gzip
    IP; raw packing is that wire format.
    """
    if bits <= 16:
        payload = codes_flat.astype("<u2").tobytes()
    elif bits <= 32:
        payload = codes_flat.astype("<u4").tobytes()
    else:
        raise ContainerError(f"raw code width {bits} unsupported")
    container.add("raw_codes", payload)
    container.header["n_codes"] = int(codes_flat.size)
    container.header["raw_code_bits"] = 16 if bits <= 16 else 32
    return len(payload)


def decode_codes_raw(container: Container) -> np.ndarray:
    n = header_int(container.header, "n_codes", hi=MAX_FIELD_POINTS)
    width = header_int(container.header, "raw_code_bits")
    if width not in (16, 32):
        raise ContainerError(f"raw code width {width} unsupported")
    dt = "<u2" if width == 16 else "<u4"
    payload = container.get("raw_codes")
    if len(payload) < n * (width // 8):
        raise ContainerError(
            f"raw code stream holds {len(payload)} bytes, "
            f"needs {n * (width // 8)}"
        )
    return np.frombuffer(payload, dtype=dt, count=n).astype(np.int64)


def values_to_bytes(values: np.ndarray) -> bytes:
    """Verbatim little-endian float stream (waveSZ border/outlier path)."""
    return np.ascontiguousarray(values).astype(values.dtype.newbyteorder("<")).tobytes()


def values_from_bytes(payload: bytes, n: int, dtype: np.dtype) -> np.ndarray:
    dt = np.dtype(dtype).newbyteorder("<")
    if n < 0 or len(payload) < n * dt.itemsize:
        raise ContainerError(
            f"value stream holds {len(payload)} bytes, needs {n} x {dt.itemsize}"
        )
    return np.frombuffer(payload, dtype=dt, count=n).astype(np.dtype(dtype))


def bound_to_header(bound: ErrorBound) -> dict:
    return {
        "mode": bound.mode.value,
        "value": bound.value,
        "absolute": bound.absolute,
        "base2": bound.base2,
        "exponent": bound.exponent,
    }


def bound_from_header(h: dict) -> ErrorBound:
    try:
        bound = ErrorBound(
            mode=ErrorBoundMode(h["mode"]),
            value=float(h["value"]),
            absolute=float(h["absolute"]),
            base2=bool(h["base2"]),
            exponent=None if h["exponent"] is None else int(h["exponent"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ContainerError(f"corrupt error-bound header: {exc}") from exc
    if not (bound.absolute > 0.0) or not np.isfinite(bound.absolute):
        raise ContainerError(
            f"corrupt error-bound header: absolute bound {bound.absolute!r}"
        )
    return bound


def decompress_auto(payload: bytes) -> np.ndarray:
    """Decode any field payload by its ``variant`` header.

    This is the single decode path: plain payloads dispatch through the
    central codec registry (:func:`repro.codec.registry.decode_payload`);
    tiled containers (``variant = "tiled[...]"``) reassemble through
    :func:`repro.parallel.tile_decompress`, which itself resolves the band
    codec from the ``inner_variant`` header.  Callers holding an opaque
    payload need neither the producing compressor nor its name.  Imports
    are local because the codec layer builds on this module.
    """
    from .codec.registry import REGISTRY, decode_payload

    if REGISTRY.peek_variant(payload).startswith("tiled["):
        from .parallel import tile_decompress

        return tile_decompress(None, payload)
    return decode_payload(payload)


def build_stats(
    *,
    data: np.ndarray,
    encoded_code_bytes: int,
    outlier_bytes: int,
    border_bytes: int,
    n_unpredictable: int,
    n_border: int,
    extra_bytes: int = 0,
) -> CompressionStats:
    """Size accounting matching the artifact's ratio formula."""
    original = int(data.size * data.dtype.itemsize)
    compressed = encoded_code_bytes + outlier_bytes + border_bytes + extra_bytes
    return CompressionStats(
        original_bytes=original,
        compressed_bytes=compressed,
        encoded_code_bytes=encoded_code_bytes,
        outlier_bytes=outlier_bytes,
        border_bytes=border_bytes,
        n_points=int(data.size),
        n_unpredictable=n_unpredictable,
        n_border=n_border,
    )
