"""SZ-variant feature matrix (paper Table 2).

Each variant is a selection from the functionality groups of the SZ model:
preprocessing, prediction, lossy encoding, lossless stage — plus whether
each feature is pan-platform (P) or platform-specific (S), and whether the
variant's design goal is performance- or data-quality-oriented.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "Feature",
    "Platform",
    "Goal",
    "VariantSpec",
    "VARIANTS",
    "feature_matrix",
    "compressor_for",
]


class Platform(enum.Enum):
    CPU = "CPU"
    FPGA = "FPGA"


class Goal(enum.Enum):
    PERFORMANCE = "performance-oriented"
    DATA_QUALITY = "data-quality-oriented"


class Feature(enum.Enum):
    """Functionality modules of Table 2 (group, name, P/S scope)."""

    # preprocessing
    BLOCKING = ("preprocessing", "blocking", "P")
    MEMORY_LAYOUT_TRANSFORM = ("preprocessing", "memory layout transform", "P")
    LOG_TRANSFORM = ("preprocessing", "logarithmic transform", "P")
    BASE2_MAPPING = ("preprocessing", "base 10->2 mapping", "P")
    # prediction
    ORDER012 = ("prediction", "Order-{0,1,2} curve fitting", "P")
    LORENZO = ("prediction", "Lorenzo (l)", "P")
    LINEAR_REGRESSION = ("prediction", "linear regression", "P")
    # lossy encoding machinery
    OPENMP = ("lossy encoding", "OpenMP", "S")
    EXPLICIT_PIPELINING = ("lossy encoding", "explicit pipelining", "S")
    LINE_BUFFER = ("lossy encoding", "line buffer", "S")
    QUANTIZATION = ("lossy encoding", "linear-scaling quantization", "P")
    DECOMPRESSION_WRITEBACK = ("lossy encoding", "decompression writeback", "S")
    PREDICTION_WRITEBACK = ("lossy encoding", "prediction writeback", "S")
    OVERBOUND_CHECK_SW = ("lossy encoding", "overbound check (s/w)", "S")
    OVERFLOW_CHECK_HW = ("lossy encoding", "over/under-flow check (h/w)", "S")
    # lossless
    CUSTOM_HUFFMAN = ("lossless", "customized Huffman", "P")
    GZIP = ("lossless", "gzip", "P")
    ZSTD = ("lossless", "Zstandard", "P")

    @property
    def group(self) -> str:
        return self.value[0]

    @property
    def label(self) -> str:
        return self.value[1]

    @property
    def scope(self) -> str:
        return self.value[2]


@dataclass(frozen=True)
class VariantSpec:
    name: str
    platform: Platform
    goal: Goal
    required: frozenset[Feature]
    optional: frozenset[Feature] = field(default_factory=frozenset)

    def uses(self, feature: Feature) -> bool:
        return feature in self.required or feature in self.optional


VARIANTS: dict[str, VariantSpec] = {
    "SZ-0.1-1.0": VariantSpec(
        name="SZ-0.1-1.0",
        platform=Platform.CPU,
        goal=Goal.DATA_QUALITY,
        required=frozenset(
            {Feature.ORDER012, Feature.OVERBOUND_CHECK_SW, Feature.GZIP,
             Feature.DECOMPRESSION_WRITEBACK}
        ),
    ),
    "SZ-1.4": VariantSpec(
        name="SZ-1.4",
        platform=Platform.CPU,
        goal=Goal.DATA_QUALITY,
        required=frozenset(
            {Feature.BLOCKING, Feature.LORENZO, Feature.QUANTIZATION,
             Feature.DECOMPRESSION_WRITEBACK, Feature.OVERBOUND_CHECK_SW,
             Feature.CUSTOM_HUFFMAN, Feature.GZIP}
        ),
        optional=frozenset({Feature.OPENMP}),
    ),
    "SZ-2.0+": VariantSpec(
        name="SZ-2.0+",
        platform=Platform.CPU,
        goal=Goal.DATA_QUALITY,
        required=frozenset(
            {Feature.BLOCKING, Feature.LOG_TRANSFORM, Feature.LORENZO,
             Feature.LINEAR_REGRESSION, Feature.QUANTIZATION,
             Feature.DECOMPRESSION_WRITEBACK, Feature.OVERBOUND_CHECK_SW,
             Feature.CUSTOM_HUFFMAN, Feature.ZSTD}
        ),
        optional=frozenset({Feature.OPENMP, Feature.GZIP}),
    ),
    "GhostSZ": VariantSpec(
        name="GhostSZ",
        platform=Platform.FPGA,
        goal=Goal.PERFORMANCE,
        required=frozenset(
            {Feature.ORDER012, Feature.QUANTIZATION, Feature.PREDICTION_WRITEBACK,
             Feature.EXPLICIT_PIPELINING, Feature.LINE_BUFFER,
             Feature.OVERFLOW_CHECK_HW, Feature.GZIP}
        ),
    ),
    "waveSZ": VariantSpec(
        name="waveSZ",
        platform=Platform.FPGA,
        goal=Goal.PERFORMANCE,
        required=frozenset(
            {Feature.MEMORY_LAYOUT_TRANSFORM, Feature.BASE2_MAPPING,
             Feature.LORENZO, Feature.QUANTIZATION,
             Feature.DECOMPRESSION_WRITEBACK, Feature.EXPLICIT_PIPELINING,
             Feature.LINE_BUFFER, Feature.OVERFLOW_CHECK_HW, Feature.GZIP}
        ),
        optional=frozenset({Feature.CUSTOM_HUFFMAN}),
    ),
}


def compressor_for(variant: str):
    """Instantiate the compressor registered under a payload variant name.

    The name is the ``variant`` field a payload header carries (e.g.
    ``"SZ-1.4"``, ``"waveSZ"``); this is the resolver archives and the CLI
    use to pick a decoder for stored streams.  Thin shim over the central
    :data:`repro.codec.registry.REGISTRY` kept for existing callers; the
    registry also resolves aliases (``"SZ-2.0+"``, CLI short names) that
    this function historically rejected.  Import is local so this leaf
    module stays cycle-free.
    """
    from .codec.registry import get_codec

    return get_codec(variant)


def feature_matrix() -> list[dict[str, object]]:
    """Rows of Table 2: one dict per variant with feature markers."""
    rows = []
    for spec in VARIANTS.values():
        row: dict[str, object] = {
            "version": spec.name,
            "platform": spec.platform.value,
            "goal": spec.goal.value,
        }
        for feat in Feature:
            if feat in spec.required:
                row[feat.label] = "required"
            elif feat in spec.optional:
                row[feat.label] = "optional"
            else:
                row[feat.label] = ""
        rows.append(row)
    return rows
