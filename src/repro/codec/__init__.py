"""Declarative stage-pipeline codec layer.

The paper's Table 2 frames every SZ-family variant as a *selection of
functionality modules* (preprocessing → prediction → lossy encoding →
lossless).  This package makes that framing executable:

* :mod:`repro.codec.pipeline` — the :class:`Stage` protocol (paired
  ``forward``/``inverse`` transforms over a shared
  :class:`PipelineContext`) and the :class:`StagePipeline` runner every
  compressor front-end drives.
* :mod:`repro.codec.stages` — the shared stage implementations extracted
  from the original hand-rolled compressors: error-bound resolution
  (incl. base-2 tightening), the PW_REL logarithmic transform with
  sign/zero side channels, the PQD closed loop, quantizer-code entropy
  coding (customized Huffman → gzip), unpredictable-value packing
  (truncation vs. verbatim), and container header/section assembly.
* :mod:`repro.codec.spec` — :class:`PipelineSpec`, the declarative stage
  list per variant, validated against the Table 2 feature matrix in
  :mod:`repro.variants` so spec and implementation cannot drift.
* :mod:`repro.codec.registry` — the central :class:`CodecRegistry`
  (decorator-registered) that resolves canonical variant names and
  aliases to compressor factories and dispatches decode on a payload's
  ``variant`` header.

Variant modules keep only their genuinely variant-specific stages
(wavefront layout, GhostSZ prediction write-back, the ZFP transform);
everything else is assembled from the shared stages above.
"""

from .pipeline import PipelineCompressor, PipelineContext, Stage, StagePipeline
from .registry import (
    REGISTRY,
    CodecEntry,
    CodecRegistry,
    available_codecs,
    decode_payload,
    get_codec,
    peek_variant,
    register_codec,
)
from .spec import PipelineSpec, StageSpec, validate_spec

__all__ = [
    "Stage",
    "StagePipeline",
    "PipelineContext",
    "PipelineCompressor",
    "PipelineSpec",
    "StageSpec",
    "validate_spec",
    "CodecRegistry",
    "CodecEntry",
    "REGISTRY",
    "register_codec",
    "get_codec",
    "available_codecs",
    "decode_payload",
    "peek_variant",
]
