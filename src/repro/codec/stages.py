"""Shared stage implementations extracted from the hand-rolled compressors.

Each class here used to exist as near-identical inline code in two or more
of the six ``compress``/``decompress`` pairs; the wire behaviour of every
stage is bit-identical to the code it replaced (guarded by the golden
streams under ``tests/data/``).

Artifact keys published on :attr:`PipelineContext.artifacts`:

``pqd``
    The :class:`~repro.sz.pqd.PQDResult` of the forward PQD loop.
``border_values`` / ``outlier_values``
    Decoded value streams (inverse direction), raster order.
``log_transform``
    The forward :class:`~repro.sz.preprocess.LogTransform` side channels.
``dq_pre`` / ``dq_q``
    Dual-quant phase-1 output: the :class:`~repro.sz.dualquant.
    PrequantResult` and the int64 lattice (forward direction; the inverse
    :class:`DualQuantStage` republishes ``dq_q`` for the phase-1 inverse).
``dq_outlier_deltas`` / ``dq_raw_idx`` / ``dq_raw_values``
    Dual-quant side streams (decoded by :class:`DualQuantValuesStage` on
    the inverse path), raster order.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, ContextManager

import numpy as np

from ..config import ErrorBoundMode, QuantizerConfig, resolve_error_bound
from ..encoding.huffman import HuffmanCodec, HuffmanTable
from ..errors import ConfigError, ContainerError, ShapeError
from ..kernels import resolve as resolve_kernel
from ..perf.stages import active_recorder
from ..rans import RansTable, encode_tokens, probe_codes, rle_collapse
from ..sz.dualquant import (
    codes_to_deltas,
    lattice_to_values,
    predict_encode,
    prequantize,
)
from ..sz.pqd import BorderMode, pqd_compress, pqd_decompress
from ..sz.preprocess import LogTransform, forward_log2, inverse_log2
from ..sz.unpredictable import decode_truncated, encode_truncated
from ..streams import (
    MAX_FIELD_POINTS,
    bound_from_header,
    bound_to_header,
    decode_codes_huffman,
    decode_codes_rans,
    header_dtype,
    header_int,
    header_shape,
    values_to_bytes,
)

if TYPE_CHECKING:
    from ..lossless import GzipStage
    from .pipeline import PipelineContext

__all__ = [
    "ResolveBoundStage",
    "ValidateInputStage",
    "HeaderStage",
    "PQDStage",
    "PrequantStage",
    "DualQuantStage",
    "DualQuantValuesStage",
    "PwRelForwardStage",
    "PwRelMasksStage",
    "EntropyCodesStage",
    "HuffmanGzipCodesStage",
    "TruncatedValuesStage",
    "VerbatimValuesStage",
    "gzip_if_smaller",
]


def _substage(name: str) -> "ContextManager[None]":
    """Attribute time to a sub-stage key when a recorder is installed.

    The pipeline runner already wraps the whole stage in its name, so
    these nested keys (``codes_entropy.table`` / ``codes_entropy.stream``)
    land as *additional* flat entries in the same profile — the parent
    key keeps the stage total.
    """
    recorder = active_recorder()
    return recorder.stage(name) if recorder is not None else nullcontext()


def gzip_if_smaller(lossless: "GzipStage", raw: bytes) -> tuple[bytes, bool]:
    """The ubiquitous "store gzipped only when that wins" decision."""
    if not raw:
        return raw, False
    gz = lossless.compress(raw)
    if len(gz) < len(raw):
        return gz, True
    return raw, False


class ValidateInputStage:
    """Variant-specific input validation, run before bound resolution.

    The original compressors check dtype/shape *before* resolving the
    error bound, so e.g. non-finite integer input raises
    :class:`DTypeError` rather than a bound-resolution
    :class:`ConfigError`; keeping validation as its own first stage
    preserves that exception ordering.
    """

    name = "checks"

    def __init__(self, check: Callable[[np.ndarray], None]) -> None:
        self._check = check

    def forward(self, ctx: "PipelineContext") -> None:
        self._check(ctx.data)

    def inverse(self, ctx: "PipelineContext") -> None:
        pass


class ResolveBoundStage:
    """Error-bound resolution (Table 2 "base 10->2 mapping" when base2).

    Forward resolves the user bound against the data (ABS / VR_REL /
    PW_REL), optionally tightening to a power of two for waveSZ's
    exponent-only arithmetic.  Inverse is a no-op: the resolved bound
    travels in the header and is re-read by the header stage.
    """

    name = "bound"

    def __init__(
        self,
        *,
        base2: bool = False,
        quant: QuantizerConfig | None = None,
        forbid_pw_rel: str | None = None,
    ) -> None:
        self.base2 = base2
        self.quant = quant
        self.forbid_pw_rel = forbid_pw_rel

    def forward(self, ctx: "PipelineContext") -> None:
        ctx.bound = resolve_error_bound(ctx.data, ctx.eb, ctx.mode, base2=self.base2)
        if self.forbid_pw_rel and ctx.bound.mode is ErrorBoundMode.PW_REL:
            raise ShapeError(self.forbid_pw_rel)
        ctx.quant = self.quant

    def inverse(self, ctx: "PipelineContext") -> None:
        pass


class HeaderStage:
    """Container header assembly: the shared core of every variant header.

    Forward writes the common keys (``shape``/``dtype``/``bound`` and the
    quantizer pair when the variant has one) plus whatever the variant
    hook adds; inverse validates them and populates the typed context
    fields every later inverse stage relies on.  Variant header stages
    subclass this and extend :meth:`write_extra` / :meth:`read_extra`.
    """

    name = "header"

    def __init__(self, *, with_quant: bool = True) -> None:
        self.with_quant = with_quant

    def forward(self, ctx: "PipelineContext") -> None:
        h = ctx.header
        h["shape"] = list(ctx.data.shape)
        h["dtype"] = str(ctx.data.dtype)
        h["bound"] = bound_to_header(ctx.bound)
        if self.with_quant:
            h["quant_bits"] = ctx.quant.bits
            h["reserved_bits"] = ctx.quant.reserved_bits
        ctx.shape = tuple(ctx.data.shape)
        ctx.dtype = ctx.data.dtype
        self.write_extra(ctx)

    def inverse(self, ctx: "PipelineContext") -> None:
        h = ctx.header
        ctx.shape = header_shape(h)
        ctx.dtype = header_dtype(h)
        ctx.bound = bound_from_header(h["bound"])
        if self.with_quant:
            ctx.quant = QuantizerConfig(
                bits=header_int(h, "quant_bits", lo=2, hi=32),
                reserved_bits=header_int(h, "reserved_bits"),
            )
        self.read_extra(ctx)

    def write_extra(self, ctx: "PipelineContext") -> None:
        pass

    def read_extra(self, ctx: "PipelineContext") -> None:
        pass


class PQDStage:
    """The closed Prediction-Quantization-Decompression loop (§2.1/§3.1).

    Covers Table 2's Lorenzo prediction, linear-scaling quantization,
    decompression write-back and overbound check in one feedback loop.
    ``border=None`` reads the border policy (and stencil depth) from the
    header on decode — the SZ-1.4 configuration; a fixed ``border`` pins
    it — waveSZ's verbatim policy.
    """

    name = "pqd"

    def __init__(
        self,
        *,
        border: BorderMode | None = None,
        layers: int = 1,
        from_header: bool = False,
    ) -> None:
        self.border = border
        self.layers = layers
        self.from_header = from_header

    def forward(self, ctx: "PipelineContext") -> None:
        res = pqd_compress(
            ctx.work,
            ctx.bound.absolute,
            ctx.quant,
            border=self.border if self.border is not None else "padded",
            layers=self.layers,
        )
        ctx.artifacts["pqd"] = res
        ctx.codes = res.codes

    def inverse(self, ctx: "PipelineContext") -> None:
        h = ctx.header
        if self.from_header:
            border: BorderMode = h["border"]
            if border not in ("padded", "truncate", "verbatim"):
                raise ContainerError(f"unknown border mode {border!r}")
            layers = int(h.get("layers", 1))
        else:
            border = self.border
            layers = self.layers
        codes = ctx.codes
        if codes.ndim == 1:
            codes = codes.reshape(ctx.shape)
        ctx.out = pqd_decompress(
            codes,
            ctx.require("border_values"),
            ctx.require("outlier_values"),
            precision=ctx.bound.absolute,
            quant=ctx.quant,
            dtype=ctx.dtype,
            border=border,
            layers=layers,
        )


class PrequantStage:
    """Dual-quant phase 1: snap the field to the error-bound lattice.

    The *only* lossy stage of the dual-quant pipeline — everything after
    it is exact integer arithmetic, which is what makes the wavesz-dp
    wire format bit-exact against its own spec.  Forward publishes the
    int64 lattice (plus the raw-point side channel for points the lattice
    cannot hold within the bound); inverse maps the reconstructed lattice
    back to values and overlays the raw points verbatim.
    """

    name = "prequant"

    def forward(self, ctx: "PipelineContext") -> None:
        pre = prequantize(ctx.work, ctx.bound.absolute)
        ctx.artifacts["dq_pre"] = pre
        ctx.artifacts["dq_q"] = pre.q

    def inverse(self, ctx: "PipelineContext") -> None:
        q = ctx.require("dq_q")
        out = lattice_to_values(q, ctx.bound.absolute, ctx.dtype)
        raw_idx = ctx.require("dq_raw_idx")
        raw_values = ctx.require("dq_raw_values")
        if raw_idx.size:
            flat = out.reshape(-1)
            if int(raw_idx.min()) < 0 or int(raw_idx.max()) >= flat.size:
                raise ContainerError("raw-point index out of field bounds")
            flat[raw_idx] = raw_values
        ctx.out = out


class DualQuantStage:
    """Dual-quant phase 2: data-parallel Lorenzo residuals over integers.

    Forward turns the lattice into quant codes through the dispatchable
    ``dualquant.delta_encode`` sweep (residuals beyond the quantizer
    range become verbatim outlier deltas behind code 0); inverse merges
    the two streams back and reconstructs the lattice with the
    ``dualquant.delta_integrate`` prefix-sum sweep.  No feedback loop in
    either direction — this stage is why dp tiles may fan out across
    workers.
    """

    name = "predict_quant"

    def forward(self, ctx: "PipelineContext") -> None:
        codes, outlier_deltas = predict_encode(ctx.require("dq_q"), ctx.quant)
        ctx.codes = codes
        ctx.artifacts["dq_outlier_deltas"] = outlier_deltas

    def inverse(self, ctx: "PipelineContext") -> None:
        codes = ctx.codes
        if codes.ndim == 1:
            codes = codes.reshape(ctx.shape)
        delta = codes_to_deltas(
            codes, ctx.require("dq_outlier_deltas"), ctx.quant
        )
        ctx.artifacts["dq_q"] = resolve_kernel("dualquant.delta_integrate")(delta)


class DualQuantValuesStage:
    """Dual-quant side streams: outlier deltas + raw points, gzip-aware.

    Outlier residuals are little-endian int64 raster streams; raw points
    travel as (flat index, verbatim value) pairs.  Each stream is stored
    gzipped only when that wins (``outliers_gzipped`` / ``raw_gzipped``
    header flags), mirroring waveSZ's verbatim-through-gzip policy.
    """

    name = "values"

    def __init__(self, lossless: "GzipStage") -> None:
        self.lossless = lossless

    def _pack(self, ctx: "PipelineContext", name: str, raw: bytes) -> tuple[int, bool]:
        stored, use_gz = gzip_if_smaller(self.lossless, raw)
        ctx.container.add(name, stored)
        return len(stored), use_gz

    def forward(self, ctx: "PipelineContext") -> None:
        pre = ctx.require("dq_pre")
        outlier_deltas = ctx.require("dq_outlier_deltas")
        h = ctx.header
        out_bytes, out_gz = self._pack(
            ctx, "outliers", outlier_deltas.astype("<i8").tobytes()
        )
        raw_stream = (
            pre.raw_idx.astype("<i8").tobytes()
            + values_to_bytes(pre.raw_values)
        )
        raw_bytes, raw_gz = self._pack(ctx, "raw_points", raw_stream)
        h["outliers_gzipped"] = out_gz
        h["raw_gzipped"] = raw_gz
        ctx.outlier_bytes = out_bytes
        ctx.extra_bytes += raw_bytes
        ctx.n_unpredictable = int(outlier_deltas.size) + pre.n_raw
        ctx.n_border = 0

    def inverse(self, ctx: "PipelineContext") -> None:
        h = ctx.header
        container = ctx.container
        n_out = header_int(h, "n_outliers", hi=MAX_FIELD_POINTS)
        n_raw = header_int(h, "n_raw", hi=MAX_FIELD_POINTS)
        dtype = header_dtype(h)
        out_raw = container.get("outliers")
        if h.get("outliers_gzipped"):
            out_raw = self.lossless.decompress(out_raw)
        if len(out_raw) < n_out * 8:
            raise ContainerError(
                f"outlier-delta stream holds {len(out_raw)} bytes, "
                f"needs {n_out * 8}"
            )
        ctx.artifacts["dq_outlier_deltas"] = np.frombuffer(
            out_raw, dtype="<i8", count=n_out
        ).astype(np.int64)
        raw_stream = container.get("raw_points")
        if h.get("raw_gzipped"):
            raw_stream = self.lossless.decompress(raw_stream)
        need = n_raw * (8 + np.dtype(dtype).itemsize)
        if len(raw_stream) < need:
            raise ContainerError(
                f"raw-point stream holds {len(raw_stream)} bytes, needs {need}"
            )
        ctx.artifacts["dq_raw_idx"] = np.frombuffer(
            raw_stream, dtype="<i8", count=n_raw
        ).astype(np.int64)
        ctx.artifacts["dq_raw_values"] = np.frombuffer(
            raw_stream, dtype=np.dtype(dtype).newbyteorder("<"),
            count=n_raw, offset=n_raw * 8,
        ).astype(dtype)


class PwRelForwardStage:
    """SZ-2.0's logarithmic transform for pointwise-relative bounds.

    Forward swaps the working field for ``log2|d|`` and stashes the
    sign/zero bitmaps; inverse (running after the PQD reconstruction)
    reads the side-channel sections emitted by :class:`PwRelMasksStage`
    and maps the reconstruction back out of log space.
    """

    name = "pw_rel_log"

    def __init__(self, lossless: "GzipStage") -> None:
        self.lossless = lossless

    def forward(self, ctx: "PipelineContext") -> None:
        if ctx.bound.mode is ErrorBoundMode.PW_REL:
            transform = forward_log2(ctx.data)
            ctx.artifacts["log_transform"] = transform
            ctx.work = transform.log_values

    def inverse(self, ctx: "PipelineContext") -> None:
        if ctx.bound.mode is not ErrorBoundMode.PW_REL:
            return
        h = ctx.header
        container = ctx.container
        neg = container.get("pw_negative")
        zero = container.get("pw_zero")
        if h.get("pw_neg_gz"):
            neg = self.lossless.decompress(neg)
        if h.get("pw_zero_gz"):
            zero = self.lossless.decompress(zero)
        negative, zeros = LogTransform.masks_from_bytes(neg, zero, ctx.shape)
        ctx.out = inverse_log2(ctx.out, negative, zeros)


class PwRelMasksStage:
    """Emit the PW_REL sign/zero bitmaps as (optionally gzipped) sections.

    Section emission is a separate stage from the transform so the
    sections land *after* the value streams, preserving the original wire
    layout; the inverse side is a no-op because
    :class:`PwRelForwardStage.inverse` consumes the sections directly.
    """

    name = "pw_rel_masks"

    def __init__(self, lossless: "GzipStage") -> None:
        self.lossless = lossless

    def forward(self, ctx: "PipelineContext") -> None:
        transform = ctx.artifacts.get("log_transform")
        if transform is None:
            return
        container = ctx.container
        neg, zero = transform.masks_to_bytes()
        neg_gz = self.lossless.compress(neg)
        zero_gz = self.lossless.compress(zero)
        container.add("pw_negative", neg_gz if len(neg_gz) < len(neg) else neg)
        container.add("pw_zero", zero_gz if len(zero_gz) < len(zero) else zero)
        container.header["pw_neg_gz"] = len(neg_gz) < len(neg)
        container.header["pw_zero_gz"] = len(zero_gz) < len(zero)
        ctx.extra_bytes += min(len(neg_gz), len(neg)) + min(len(zero_gz), len(zero))

    def inverse(self, ctx: "PipelineContext") -> None:
        pass


class EntropyCodesStage:
    """Pluggable entropy coding of the quant-code stream.

    The SZ lossless tail (Table 2) made backend-selectable:

    ``huffman``
        The customized Huffman pass with gzip riding along on the
        already-dense stream; the smaller representation wins
        (``codes_gzipped`` header flag, ``huffman_codes`` vs
        ``huffman_codes_gz`` section).  Byte-identical to the original
        hardwired stage — pre-rANS payloads carry no ``entropy`` header
        key and keep decoding unchanged.
    ``rans``
        The zero-run RLE pre-pass (when the dominant-symbol runs warrant
        it) followed by the interleaved-lane static rANS coder of
        :mod:`repro.rans`.  Falls back to Huffman when the alphabet
        exceeds the 4096-slot table.
    ``auto``
        Resolve per payload via :func:`repro.rans.probe_codes` — one
        histogram (reused as the rANS table build) plus closed-form size
        estimates.

    The *resolved* backend is recorded in the container header
    (``entropy`` key, written only when it is ``rans``) so the inverse
    direction needs no knowledge of the knob, and in ``ctx.meta`` so
    stats consumers (store manifests, service) can surface it.  Table
    build and stream coding report separate ``codes_entropy.table`` /
    ``codes_entropy.stream`` timing keys when a stage recorder is
    installed.
    """

    name = "codes_entropy"

    def __init__(
        self,
        lossless: "GzipStage",
        *,
        backend: str = "huffman",
        meta_bits: bool = True,
    ) -> None:
        from .spec import ENTROPY_BACKENDS

        if backend not in ENTROPY_BACKENDS:
            raise ConfigError(
                f"unknown entropy backend {backend!r}; "
                f"expected one of {ENTROPY_BACKENDS}"
            )
        self.lossless = lossless
        self.backend = backend
        self.meta_bits = meta_bits

    def forward(self, ctx: "PipelineContext") -> None:
        codes_flat = ctx.codes.reshape(-1)
        resolved = self.backend
        probe = None
        if resolved != "huffman":
            probe = probe_codes(codes_flat)
            if resolved == "auto":
                resolved = probe.pick
            elif not probe.rans_ok:
                resolved = "huffman"
        if resolved == "rans":
            self._forward_rans(ctx, codes_flat, probe)
        else:
            self._forward_huffman(ctx, codes_flat)
        ctx.meta["entropy"] = resolved

    def _forward_huffman(self, ctx: "PipelineContext", codes_flat: np.ndarray) -> None:
        container = ctx.container
        with _substage("codes_entropy.table"):
            table = HuffmanTable.from_symbols(codes_flat)
            table_blob = table.to_bytes()
        with _substage("codes_entropy.stream"):
            payload, nbits = HuffmanCodec(table).encode(codes_flat)
            container.add("huffman_table", table_blob)
            container.add("huffman_codes", payload)
            container.header["n_codes"] = int(codes_flat.size)
            container.header["huffman_bits"] = int(nbits)
            gz = self.lossless.compress(payload)
            if len(gz) < len(payload):
                container.sections[:] = [
                    s for s in container.sections if s.name != "huffman_codes"
                ]
                container.add("huffman_codes_gz", gz)
                container.header["codes_gzipped"] = True
                code_stream_bytes = len(gz)
            else:
                container.header["codes_gzipped"] = False
                code_stream_bytes = len(payload)
        ctx.encoded_code_bytes = len(table_blob) + code_stream_bytes
        if self.meta_bits:
            ctx.meta["huffman_bits"] = container.header["huffman_bits"]

    def _forward_rans(
        self, ctx: "PipelineContext", codes_flat: np.ndarray, probe
    ) -> None:
        container = ctx.container
        h = container.header
        with _substage("codes_entropy.table"):
            table = RansTable.from_counts(probe.values, probe.token_counts)
            table_blob = table.to_bytes()
        with _substage("codes_entropy.stream"):
            if probe.use_rle:
                tokens, runs = rle_collapse(codes_flat, probe.run_symbol)
            else:
                tokens, runs = codes_flat, None
            blob = encode_tokens(tokens, table)
            container.add("rans_table", table_blob)
            container.add("rans_codes", blob)
            h["entropy"] = "rans"
            h["n_codes"] = int(codes_flat.size)
            h["rans_tokens"] = int(tokens.size)
            runs_bytes = 0
            if runs is not None:
                stored, use_gz = gzip_if_smaller(self.lossless, runs.tobytes())
                container.add("rle_runs", stored)
                h["rle_symbol"] = int(probe.run_symbol)
                h["rle_runs_gz"] = use_gz
                runs_bytes = len(stored)
        ctx.encoded_code_bytes = len(table_blob) + len(blob) + runs_bytes
        if self.meta_bits:
            ctx.meta["rans_tokens"] = int(tokens.size)

    def inverse(self, ctx: "PipelineContext") -> None:
        container = ctx.container
        backend = container.header.get("entropy", "huffman")
        if backend == "huffman":
            if container.header.get("codes_gzipped"):
                container.add(
                    "huffman_codes",
                    self.lossless.decompress(container.get("huffman_codes_gz")),
                )
            ctx.codes = decode_codes_huffman(container)
        elif backend == "rans":
            ctx.codes = decode_codes_rans(container, self.lossless)
        else:
            raise ContainerError(f"unknown entropy backend {backend!r} in header")


class HuffmanGzipCodesStage(EntropyCodesStage):
    """The original hardwired Huffman + gzip tail, kept as a pinned alias.

    Construction-compatible with the pre-rANS stage; decoding still
    dispatches on the ``entropy`` header key, so a pipeline built with
    this class reads rANS payloads too.
    """

    def __init__(self, lossless: "GzipStage", *, meta_bits: bool = True) -> None:
        super().__init__(lossless, backend="huffman", meta_bits=meta_bits)


class TruncatedValuesStage:
    """SZ-1.4 border/outlier packing: truncation analysis or raw floats.

    With the ``truncate`` border policy the streams go through the
    truncation-based binary analysis of :mod:`repro.sz.unpredictable`;
    otherwise they are stored as native-endian raw floats.  The policy is
    pinned on compress and read back from the ``border`` header field on
    decode.
    """

    name = "values"

    def __init__(self, border: BorderMode = "padded") -> None:
        self.border = border

    def forward(self, ctx: "PipelineContext") -> None:
        res = ctx.require("pqd")
        container = ctx.container
        p = ctx.bound.absolute
        if self.border == "truncate":
            border_stream = encode_truncated(res.border_values, p)
            outlier_stream = encode_truncated(res.outlier_values, p)
        else:
            border_stream = res.border_values.tobytes()
            outlier_stream = res.outlier_values.tobytes()
        container.add("border", border_stream)
        container.add("outliers", outlier_stream)
        ctx.border_bytes = len(border_stream)
        ctx.outlier_bytes = len(outlier_stream)
        ctx.n_border = res.n_border
        ctx.n_unpredictable = res.n_outliers

    def inverse(self, ctx: "PipelineContext") -> None:
        h = ctx.header
        container = ctx.container
        border_mode = h.get("border")
        if border_mode not in ("padded", "truncate", "verbatim"):
            raise ContainerError(f"unknown border mode {border_mode!r}")
        p = bound_from_header(h["bound"]).absolute
        dtype = header_dtype(h)
        n_border = header_int(h, "n_border", hi=MAX_FIELD_POINTS)
        n_out = header_int(h, "n_outliers", hi=MAX_FIELD_POINTS)
        if border_mode == "truncate":
            border_vals = decode_truncated(container.get("border"), n_border, p, dtype)
            outlier_vals = decode_truncated(container.get("outliers"), n_out, p, dtype)
        else:
            border_vals = np.frombuffer(
                container.get("border"), dtype=dtype, count=n_border
            )
            outlier_vals = np.frombuffer(
                container.get("outliers"), dtype=dtype, count=n_out
            )
        ctx.artifacts["border_values"] = border_vals
        ctx.artifacts["outlier_values"] = outlier_vals


class VerbatimValuesStage:
    """waveSZ border/outlier packing: verbatim floats through the gzip IP.

    §3.2: unpredictable data goes straight to the lossless stage, so each
    stream is stored gzipped when that wins (``border_gzipped`` /
    ``outliers_gzipped`` flags) and still counts as unpredictable data in
    the ratio — Table 7's conservative accounting.
    """

    name = "values"

    def __init__(self, lossless: "GzipStage") -> None:
        self.lossless = lossless

    def _pack(self, ctx: "PipelineContext", name: str, values: np.ndarray) -> tuple[int, bool]:
        raw = values_to_bytes(values)
        stored, use_gz = gzip_if_smaller(self.lossless, raw)
        ctx.container.add(name, stored)
        return len(stored), use_gz

    def forward(self, ctx: "PipelineContext") -> None:
        res = ctx.require("pqd")
        h = ctx.header
        border_bytes, border_gz = self._pack(ctx, "border", res.border_values)
        outlier_bytes, outlier_gz = self._pack(ctx, "outliers", res.outlier_values)
        h["border_gzipped"] = border_gz
        h["outliers_gzipped"] = outlier_gz
        ctx.border_bytes = border_bytes
        ctx.outlier_bytes = outlier_bytes
        ctx.n_border = res.n_border
        ctx.n_unpredictable = res.n_outliers + res.n_border

    def inverse(self, ctx: "PipelineContext") -> None:
        h = ctx.header
        container = ctx.container
        dtype = header_dtype(h)
        lt = np.dtype(dtype).newbyteorder("<")
        border_raw = container.get("border")
        if h.get("border_gzipped"):
            border_raw = self.lossless.decompress(border_raw)
        outlier_raw = container.get("outliers")
        if h.get("outliers_gzipped"):
            outlier_raw = self.lossless.decompress(outlier_raw)
        ctx.artifacts["border_values"] = np.frombuffer(
            border_raw, dtype=lt, count=header_int(h, "n_border", hi=MAX_FIELD_POINTS)
        ).astype(dtype)
        ctx.artifacts["outlier_values"] = np.frombuffer(
            outlier_raw, dtype=lt, count=header_int(h, "n_outliers", hi=MAX_FIELD_POINTS)
        ).astype(dtype)
