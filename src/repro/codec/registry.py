"""Central codec registry: canonical variant names, aliases, dispatch.

Compressor classes register themselves with the :func:`register_codec`
decorator; consumers (archives, the CLI, the online selector, the tiled
runner) resolve names and payloads through the singleton
:data:`REGISTRY` instead of hard-coded factory dicts.

Three kinds of names resolve:

* the **canonical** wire name a payload header carries (``"SZ-1.4"``,
  ``"waveSZ"``, ...),
* **aliases** — alternate spellings mapped onto the canonical entry,
  including the Table 2 row names where they differ from the wire name
  (``"SZ-2.0+"`` → ``"SZ-2.0"``) and the CLI short names (``"sz14"``),
* **profiles** — aliases with their *own factory configuration* (e.g.
  ``"wavesz-g"`` builds waveSZ without the Huffman pass).  A profile's
  payloads still carry the canonical wire name, so decode dispatch is
  unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..errors import ContainerError, decode_guard
from .spec import PipelineSpec, validate_spec

__all__ = [
    "CodecEntry",
    "CodecRegistry",
    "REGISTRY",
    "register_codec",
    "get_codec",
    "available_codecs",
    "decode_payload",
    "peek_variant",
]

Factory = Callable[[], Any]


@dataclass(frozen=True)
class CodecEntry:
    """One registered compressor variant."""

    name: str  # canonical wire name (payload header "variant")
    factory: Factory
    aliases: tuple[str, ...] = ()
    profiles: dict[str, Factory] = field(default_factory=dict)
    table2: str | None = None  # VARIANTS row this variant implements
    spec: PipelineSpec | None = None
    #: True when the codec's sweeps carry no cross-point feedback loop
    #: (dual-quant family), so one field's tile bands may legally fan out
    #: across a worker pool; the scheduler keys its tile routing on this.
    data_parallel: bool = False
    #: ``codes_entropy`` backends this codec's pipeline accepts (empty for
    #: codecs without the stage).  Informational: surfaced by
    #: :meth:`CodecRegistry.describe` for the CLI and service listings.
    entropy_backends: tuple[str, ...] = ()


class CodecRegistry:
    """Name → compressor resolution and payload decode dispatch."""

    def __init__(self) -> None:
        self._entries: dict[str, CodecEntry] = {}
        self._aliases: dict[str, str] = {}
        self._profiles: dict[str, tuple[str, Factory]] = {}
        self._populated = False

    # -- registration ---------------------------------------------------

    def register(self, entry: CodecEntry) -> None:
        if entry.spec is not None:
            validate_spec(entry.spec)
        for taken in (entry.name, *entry.aliases, *entry.profiles):
            if taken in self._entries or taken in self._aliases \
                    or taken in self._profiles:
                raise ContainerError(
                    f"codec name {taken!r} registered twice"
                )
        self._entries[entry.name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = entry.name
        for profile, factory in entry.profiles.items():
            self._profiles[profile] = (entry.name, factory)

    def _ensure_populated(self) -> None:
        """Import the compressor packages so their decorators have run.

        Local imports keep this module cycle-free; idempotent because
        registration happens at class-definition time.
        """
        if self._populated:
            return
        from .. import core, ghostsz, sz, zfp  # noqa: F401

        self._populated = True

    # -- resolution -----------------------------------------------------

    def canonical(self, name: str) -> str:
        """Resolve any registered name to its canonical wire name."""
        self._ensure_populated()
        if name in self._entries:
            return name
        if name in self._aliases:
            return self._aliases[name]
        if name in self._profiles:
            return self._profiles[name][0]
        raise ContainerError(f"no compressor registered for variant {name!r}")

    def entry(self, name: str) -> CodecEntry:
        return self._entries[self.canonical(name)]

    def is_data_parallel(self, name: str) -> bool:
        """Whether ``name`` resolves to a wavefront-free (dp) codec."""
        return self.entry(name).data_parallel

    def create(self, name: str) -> Any:
        """Instantiate the compressor registered under any known name."""
        self._ensure_populated()
        if name in self._profiles:
            return self._profiles[name][1]()
        return self._entries[self.canonical(name)].factory()

    def __contains__(self, name: str) -> bool:
        try:
            self.canonical(name)
        except ContainerError:
            return False
        return True

    def __iter__(self) -> Iterator[CodecEntry]:
        self._ensure_populated()
        return iter(self._entries.values())

    def names(self) -> tuple[str, ...]:
        """Canonical wire names, registration order."""
        self._ensure_populated()
        return tuple(self._entries)

    def all_names(self) -> tuple[str, ...]:
        """Every resolvable name: canonical + aliases + profiles, sorted."""
        self._ensure_populated()
        return tuple(
            sorted({*self._entries, *self._aliases, *self._profiles})
        )

    def short_names(self) -> tuple[str, ...]:
        """The lowercase aliases and profiles — the CLI vocabulary.

        By convention every variant registers one all-lowercase alias
        (``"sz14"``, ``"zfp-like"``); wire names and Table 2 row names
        carry uppercase and are excluded, keeping ``--variant`` choices
        short and shell-friendly.
        """
        self._ensure_populated()
        return tuple(
            sorted(
                n
                for n in {*self._aliases, *self._profiles}
                if n == n.lower()
            )
        )

    def describe(self) -> list[dict[str, Any]]:
        """A JSON-serializable listing of every registered variant.

        One dict per canonical entry with its aliases, profile names and
        Table 2 row — the payload of the service's ``codecs`` op and the
        ``wavesz codecs`` command.
        """
        self._ensure_populated()
        return [
            {
                "name": e.name,
                "aliases": list(e.aliases),
                "profiles": sorted(e.profiles),
                "table2": e.table2,
                "data_parallel": e.data_parallel,
                "entropy_backends": list(e.entropy_backends),
            }
            for e in self._entries.values()
        ]

    def specs(self) -> tuple[PipelineSpec, ...]:
        """The pipeline specs of all registered variants that declare one."""
        self._ensure_populated()
        return tuple(
            e.spec for e in self._entries.values() if e.spec is not None
        )

    # -- payload dispatch -----------------------------------------------

    def peek_variant(self, payload: bytes) -> str:
        """Read the wire variant name out of a container payload."""
        from ..io.container import Container

        with decode_guard("container header"):
            h = Container.from_bytes(payload).header
        variant = h.get("variant")
        if not isinstance(variant, str):
            raise ContainerError(
                f"container header carries no variant name: {variant!r}"
            )
        return variant

    def decode(self, payload: bytes) -> np.ndarray:
        """Decompress a payload, dispatching on its header variant."""
        return self.create(self.peek_variant(payload)).decompress(payload)


#: The process-wide registry every consumer dispatches through.
REGISTRY = CodecRegistry()


def register_codec(
    *,
    name: str,
    aliases: tuple[str, ...] = (),
    profiles: dict[str, Factory] | None = None,
    table2: str | None = None,
    spec: PipelineSpec | None = None,
    factory: Factory | None = None,
    data_parallel: bool = False,
    entropy_backends: tuple[str, ...] = (),
    registry: CodecRegistry = REGISTRY,
):
    """Class decorator registering a compressor variant.

    ``factory`` defaults to the class itself (zero-arg construction);
    pass an explicit factory when the canonical configuration needs
    arguments.  Registration happens at class-definition time, so any
    import of the variant module populates the registry.
    """

    def wrap(cls):
        registry.register(
            CodecEntry(
                name=name,
                factory=factory if factory is not None else cls,
                aliases=aliases,
                profiles=dict(profiles or {}),
                table2=table2,
                spec=spec,
                data_parallel=data_parallel,
                entropy_backends=entropy_backends,
            )
        )
        return cls

    return wrap


def get_codec(name: str) -> Any:
    """Instantiate the compressor registered under ``name`` (any alias)."""
    return REGISTRY.create(name)


def available_codecs() -> tuple[str, ...]:
    """Every name :func:`get_codec` accepts, sorted."""
    return REGISTRY.all_names()


def peek_variant(payload: bytes) -> str:
    """Read the wire variant name out of a container payload."""
    return REGISTRY.peek_variant(payload)


def decode_payload(payload: bytes) -> np.ndarray:
    """One-call decode: dispatch on the payload's variant header."""
    return REGISTRY.decode(payload)
