"""Stage protocol, pipeline context and the pipeline runner.

A compressor is a *sequence of stages*.  Each stage is a paired
``forward``/``inverse`` transform over a shared :class:`PipelineContext`:
``forward`` consumes the context the previous stages produced and adds
header keys / sections to the container being built; ``inverse`` undoes
its forward against a parsed container.  Decompression runs the stage
list in reverse, so a pipeline that compresses

    bound → predict → header → codes → values

decompresses ``values → codes → header → predict → bound`` — the
dependency symmetry every hand-rolled ``compress``/``decompress`` pair
used to maintain by convention is now structural.

Inverse stages that run *before* the header stage (in reverse order) read
what they need straight from the parsed header dict through the validated
:mod:`repro.streams` helpers; the header stage then populates the typed
context fields (``shape``, ``dtype``, ``bound``, ``quant``) every later
inverse stage uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import ErrorBound, ErrorBoundMode, QuantizerConfig
from ..errors import ContainerError, decode_guard
from ..io.container import Container
from ..perf.stages import active_recorder
from ..streams import build_stats
from ..types import CompressedField

__all__ = ["PipelineContext", "Stage", "StagePipeline", "PipelineCompressor"]


@dataclass
class PipelineContext:
    """Mutable state threaded through a stage pipeline, both directions.

    Forward (compression) starts from ``data``/``eb``/``mode`` and an
    empty container; stages fill in the typed fields, add sections, and
    accumulate the size accounting.  Inverse (decompression) starts from
    a parsed container; stages rebuild the typed fields and finish with
    the reconstruction in ``out``.

    ``artifacts`` is the typed inter-stage side channel for everything
    variant-shaped (a :class:`~repro.sz.pqd.PQDResult`, a wavefront code
    stream, regression coefficient rows, ...): stages publish under a
    documented key and downstream stages fetch with :meth:`require`.
    """

    # forward inputs
    data: np.ndarray | None = None
    eb: float = 1e-3
    mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL

    # the container being built (forward) or read (inverse)
    container: Container | None = None

    # typed fields shared by most stages
    bound: ErrorBound | None = None
    quant: QuantizerConfig | None = None
    shape: tuple[int, ...] | None = None
    dtype: np.dtype | None = None

    # working arrays
    work: np.ndarray | None = None  # the field view being predicted
    codes: np.ndarray | None = None  # quantization-code stream
    out: np.ndarray | None = None  # reconstruction (inverse direction)

    # free-form inter-stage artifacts
    artifacts: dict[str, Any] = field(default_factory=dict)

    # size accounting (forward direction, consumed by build_stats)
    encoded_code_bytes: int = 0
    outlier_bytes: int = 0
    border_bytes: int = 0
    extra_bytes: int = 0
    n_unpredictable: int = 0
    n_border: int = 0

    # free-form result metadata surfaced on CompressedField.meta
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def header(self) -> dict:
        """The container header dict (raises if no container is open)."""
        if self.container is None:
            raise ContainerError("pipeline context has no open container")
        return self.container.header

    def require(self, key: str) -> Any:
        """Fetch an artifact a previous stage must have published."""
        try:
            return self.artifacts[key]
        except KeyError:
            raise ContainerError(
                f"pipeline stage ordering bug: artifact {key!r} missing"
            ) from None


@runtime_checkable
class Stage(Protocol):
    """One functionality module of the SZ dataflow (Table 2).

    ``name`` identifies the stage in the variant's
    :class:`~repro.codec.spec.PipelineSpec`.  ``forward`` transforms the
    context toward the wire format; ``inverse`` undoes it.  A stage whose
    work is inherently one-directional (e.g. emitting side-channel
    sections read back by an earlier stage's inverse) implements the
    other direction as a no-op.
    """

    name: str

    def forward(self, ctx: PipelineContext) -> None: ...

    def inverse(self, ctx: PipelineContext) -> None: ...


class StagePipeline:
    """Runs a stage list forward (compress) or reversed (decompress)."""

    def __init__(self, variant: str, stages: Sequence[Stage]) -> None:
        self.variant = variant
        self.stages = tuple(stages)
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ContainerError(
                f"{variant} pipeline has duplicate stage names: {names}"
            )

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def run_forward(self, ctx: PipelineContext) -> PipelineContext:
        ctx.container = Container(header={"variant": self.variant})
        recorder = active_recorder()
        if recorder is None:
            for stage in self.stages:
                stage.forward(ctx)
        else:
            for stage in self.stages:
                with recorder.stage(stage.name):
                    stage.forward(ctx)
        return ctx

    def run_inverse(self, payload: bytes) -> PipelineContext:
        container = Container.from_bytes(payload)
        h = container.header
        if h.get("variant") != self.variant:
            raise ContainerError(
                f"payload was produced by {h.get('variant')!r}, not {self.variant}"
            )
        ctx = PipelineContext(container=container)
        recorder = active_recorder()
        if recorder is None:
            for stage in reversed(self.stages):
                stage.inverse(ctx)
        else:
            for stage in reversed(self.stages):
                with recorder.stage(stage.name):
                    stage.inverse(ctx)
        return ctx


class PipelineCompressor:
    """Base class driving compress/decompress through a stage pipeline.

    Concrete compressors provide ``name`` (the canonical wire variant
    name), ``spec`` (their :class:`~repro.codec.spec.PipelineSpec`) and
    :meth:`build_stages`; everything else — running the stages, stats
    assembly, the decode guard, the variant check — is shared here.
    """

    name: str

    def build_stages(self) -> Sequence[Stage]:
        raise NotImplementedError

    def _pipeline(self) -> StagePipeline:
        pipeline = StagePipeline(self.name, self.build_stages())
        spec = getattr(self, "spec", None)
        if spec is not None and pipeline.stage_names != spec.stage_names:
            raise ContainerError(
                f"{self.name} stages {pipeline.stage_names} do not match "
                f"spec {spec.stage_names}"
            )
        return pipeline

    def compress(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    ) -> CompressedField:
        """Compress a field under the given error bound."""
        data = np.ascontiguousarray(data)
        ctx = PipelineContext(data=data, eb=eb, mode=mode)
        ctx.work = data
        self._pipeline().run_forward(ctx)
        stats = build_stats(
            data=data,
            encoded_code_bytes=ctx.encoded_code_bytes,
            outlier_bytes=ctx.outlier_bytes,
            border_bytes=ctx.border_bytes,
            n_unpredictable=ctx.n_unpredictable,
            n_border=ctx.n_border,
            extra_bytes=ctx.extra_bytes,
        )
        assert ctx.container is not None
        return CompressedField(
            variant=self.name,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            bound=ctx.bound,
            quant=ctx.quant,
            payload=ctx.container.to_bytes(),
            stats=stats,
            meta=dict(ctx.meta),
        )

    def decompress(self, compressed: CompressedField | bytes) -> np.ndarray:
        """Reconstruct the field from a compressed payload."""
        payload = (
            compressed.payload
            if isinstance(compressed, CompressedField)
            else compressed
        )
        with decode_guard(f"{self.name} payload"):
            ctx = self._pipeline().run_inverse(payload)
            if ctx.out is None:
                raise ContainerError(
                    f"{self.name} pipeline produced no reconstruction"
                )
            return ctx.out
