"""Declarative per-variant pipeline specs, validated against Table 2.

A :class:`PipelineSpec` says *which stages a variant assembles and which
Table 2 functionality modules each stage realizes*.  It is validated
against the corresponding :class:`~repro.variants.VariantSpec` row, so
the feature matrix in :mod:`repro.variants` actually constrains the
implementation instead of being documentation:

* every feature a stage claims must appear in the variant's
  ``required``/``optional`` set (or be declared an implementation
  ``extra``), and
* every *required* feature must be realized by some stage or be
  explicitly declared ``unmodeled`` (e.g. FPGA pipelining in a software
  reproduction, Zstandard when the repro ships gzip).

``validate_spec`` runs at registration time, so a drifting spec fails at
import, not in production decode paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..variants import VARIANTS, Feature

__all__ = ["ENTROPY_BACKENDS", "StageSpec", "PipelineSpec", "validate_spec"]

#: Valid values of the ``codes_entropy`` backend knob.  ``auto`` probes the
#: code histogram per payload and resolves to one of the concrete two; the
#: resolved choice is recorded in the container header (``entropy`` key,
#: omitted for Huffman so pre-rANS streams stay byte-identical).
ENTROPY_BACKENDS = ("huffman", "rans", "auto")


@dataclass(frozen=True)
class StageSpec:
    """One stage of a variant pipeline and the Table 2 modules it realizes."""

    name: str
    features: frozenset[Feature] = field(default_factory=frozenset)


@dataclass(frozen=True)
class PipelineSpec:
    """The declarative stage list of one compressor variant.

    ``table2`` names the row of :data:`repro.variants.VARIANTS` this
    pipeline implements (``None`` for comparison codecs outside the SZ
    family, e.g. ZFP).  ``unmodeled`` lists required Table 2 features the
    software reproduction deliberately does not realize; ``extra`` lists
    features the implementation provides beyond its Table 2 row.
    """

    variant: str
    stages: tuple[StageSpec, ...]
    table2: str | None = None
    unmodeled: frozenset[Feature] = field(default_factory=frozenset)
    extra: frozenset[Feature] = field(default_factory=frozenset)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    @property
    def features(self) -> frozenset[Feature]:
        """Union of the Table 2 modules realized across all stages."""
        out: frozenset[Feature] = frozenset()
        for stage in self.stages:
            out |= stage.features
        return out

    def stage_for(self, feature: Feature) -> str | None:
        """Name of the first stage realizing a feature, if any."""
        for stage in self.stages:
            if feature in stage.features:
                return stage.name
        return None


def validate_spec(spec: PipelineSpec) -> None:
    """Check a pipeline spec against its Table 2 variant row.

    Raises :class:`ConfigError` on any drift.  Specs with ``table2=None``
    (codecs outside the SZ family) are exempt.
    """
    names = [s.name for s in spec.stages]
    if len(set(names)) != len(names):
        raise ConfigError(
            f"{spec.variant} pipeline spec has duplicate stage names: {names}"
        )
    if spec.table2 is None:
        return
    row = VARIANTS.get(spec.table2)
    if row is None:
        raise ConfigError(
            f"{spec.variant} pipeline spec references unknown Table 2 row "
            f"{spec.table2!r}"
        )
    provided = spec.features
    allowed = row.required | row.optional | spec.extra
    rogue = provided - allowed
    if rogue:
        raise ConfigError(
            f"{spec.variant} stages claim features outside the "
            f"{spec.table2!r} Table 2 row: "
            f"{sorted(f.name for f in rogue)}"
        )
    missing = row.required - provided - spec.unmodeled
    if missing:
        raise ConfigError(
            f"{spec.variant} pipeline realizes no stage for required "
            f"{spec.table2!r} features {sorted(f.name for f in missing)} "
            "(declare them unmodeled if that is intentional)"
        )
    pointless = spec.unmodeled & provided
    if pointless:
        raise ConfigError(
            f"{spec.variant} declares features unmodeled that its stages "
            f"do realize: {sorted(f.name for f in pointless)}"
        )
