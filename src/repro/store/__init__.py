"""Persistent compressed array store: tile objects, manifests, cache.

``repro.store`` keeps scientific fields on disk in compressed form and
reads them back whole or by slice, decoding only the tiles a request
touches:

    from repro.store import ArrayStore

    store = ArrayStore("snapshots/")
    store.put("run42.TS", field, codec="sz14", eb=1e-3, n_tiles=8)
    full = store.read("run42.TS").data                 # bit-exact
    part = store.read_slice("run42.TS", (slice(10, 20),)).data

Objects are content-addressed (``objects/<sha256>``), so identical tiles
across fields and versions are stored once; ``gc()`` reclaims objects no
manifest references.  Decoded tiles flow through a byte-budgeted LRU
:class:`TileCache` whose counters export as ``store.cache.*`` gauges on
a :class:`~repro.service.metrics.MetricsRegistry`.  Damaged tiles are
detected by content digest + container-v2 checksums; ``strict=False``
reads skip them and report the lost tile indices.
"""

from .cache import DEFAULT_CACHE_BYTES, TileCache
from .fsck import FsckFinding, FsckReport, run_fsck
from .store import (
    JOURNAL_FORMAT,
    MANIFEST_FORMAT,
    ArrayStore,
    GCResult,
    PutResult,
    RecoveryResult,
    StoreReadResult,
    TileDamage,
    assemble_tiles,
    compress_field_tiles,
    decode_tile_blob,
)

__all__ = [
    "ArrayStore",
    "assemble_tiles",
    "compress_field_tiles",
    "decode_tile_blob",
    "TileCache",
    "DEFAULT_CACHE_BYTES",
    "PutResult",
    "StoreReadResult",
    "TileDamage",
    "GCResult",
    "RecoveryResult",
    "FsckFinding",
    "FsckReport",
    "run_fsck",
    "MANIFEST_FORMAT",
    "JOURNAL_FORMAT",
]
