"""Byte-budgeted LRU cache of decoded tiles, keyed by content digest.

Decoding a tile costs orders of magnitude more than copying it, so the
store keeps recently decoded tiles resident.  Keys are the tiles'
*content* digests — the same addressing the object area uses — which
means deduplicated tiles (identical bytes across fields or versions)
share one cache entry: a warm read of dataset B can be served entirely
by tiles decoded for dataset A.

The budget is in bytes of decoded array data, not entry count, because
tile sizes vary wildly with field shape.  Eviction is straight LRU.
Counters (hits / misses / evictions / resident bytes) are kept locally
and, when a :class:`~repro.service.metrics.MetricsRegistry` is attached,
mirrored into its gauges under ``store.cache.*`` on every mutation — the
gauges register at construction (all zero) so a metrics snapshot is
meaningful before the first read arrives.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.metrics import MetricsRegistry

__all__ = ["TileCache"]

#: Default decoded-tile budget: enough for a few full snapshots of the
#: repro's synthetic fields without ever mattering on a laptop.
DEFAULT_CACHE_BYTES = 64 << 20


class TileCache:
    """LRU ``digest -> decoded ndarray`` map under a byte budget."""

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        *,
        metrics: "MetricsRegistry | None" = None,
        gauge_prefix: str = "store.cache",
    ) -> None:
        if max_bytes < 0:
            raise ConfigError(f"cache budget must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_bytes = 0
        self._metrics = metrics
        self._prefix = gauge_prefix
        self._publish()  # register the gauge series before first traffic

    def __len__(self) -> int:
        return len(self._entries)

    # -- core --------------------------------------------------------------

    def get(self, digest: str) -> np.ndarray | None:
        """Look up a decoded tile; counts a hit or a miss."""
        with self._lock:
            tile = self._entries.get(digest)
            if tile is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(digest)
        self._publish()
        return tile

    def put(self, digest: str, tile: np.ndarray) -> None:
        """Insert a decoded tile, evicting LRU entries past the budget.

        Tiles larger than the whole budget are simply not cached.  The
        stored array is marked read-only: every consumer receives the
        same object, so a writable view would let one reader silently
        corrupt every later read of that tile.
        """
        tile = np.ascontiguousarray(tile)
        tile.setflags(write=False)
        with self._lock:
            old = self._entries.pop(digest, None)
            if old is not None:
                self.resident_bytes -= old.nbytes
            if tile.nbytes <= self.max_bytes:
                self._entries[digest] = tile
                self.resident_bytes += tile.nbytes
                while self.resident_bytes > self.max_bytes:
                    _, evicted = self._entries.popitem(last=False)
                    self.resident_bytes -= evicted.nbytes
                    self.evictions += 1
        self._publish()

    def discard(self, digest: str) -> None:
        """Drop one entry (e.g. its object was just garbage-collected)."""
        with self._lock:
            tile = self._entries.pop(digest, None)
            if tile is not None:
                self.resident_bytes -= tile.nbytes
        self._publish()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.resident_bytes = 0
        self._publish()

    # -- observation -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Point-in-time counter values (also mirrored as gauges)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "resident_bytes": self.resident_bytes,
                "entries": len(self._entries),
                "max_bytes": self.max_bytes,
            }

    def _publish(self) -> None:
        if self._metrics is None:
            return
        self._metrics.set_gauges(
            {f"{self._prefix}.{k}": v for k, v in self.stats().items()}
        )
