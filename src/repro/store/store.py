"""Content-addressed compressed array store with tile-level random access.

The persistence layer between the codec registry and the serving layer:
fields land on disk *compressed* (CEAZ's parallel-I/O premise) and are
read back selectively at tile granularity (cuSZ's chunk axis).  On
``put`` a field is split into the same independent bands the tiled
compressor uses (:func:`repro.parallel.plan_bands`, clamped to the
field's feasible tile count), each band is compressed under the globally
resolved absolute bound, and the resulting container-v2 payloads are
written once per unique content digest:

```
root/
  manifests/<name>.json     dataset name, shape, dtype, codec, bound,
                            tile grid, per-tile content digests
  objects/<sha256>          one compressed tile payload (container v2)
```

Byte-identical tiles — across fields, versions, or datasets — share one
object, so re-putting a snapshot that changed in two bands stores two
objects.  ``read`` reassembles the full field bit-exactly;
``read_slice`` decodes only the tiles overlapping the requested window.
Both go through a byte-budgeted LRU :class:`~repro.store.cache.TileCache`
of decoded tiles and report damage structurally: with ``strict=False`` a
corrupt tile (caught by the container checksums or the content digest)
is skipped and its index reported instead of failing the whole read.

Crash consistency (see ``docs/RESILIENCE.md``): every on-disk mutation
goes through an injectable :class:`~repro.faults.fsim.OsFileSystem` with
full fsync discipline (temp file synced before the rename, parent
directory synced after), ``put`` writes a journal entry *before* any
tile or manifest write, and opening the store replays the journal —
rolling interrupted puts back so the invariant holds: **an acked put is
durable, an interrupted put is invisible**.  :meth:`ArrayStore.fsck`
audits (and optionally repairs) the whole layout; :meth:`ArrayStore.gc`
also sweeps stale ``.tmp-*`` files left by crashed writers.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ..codec.registry import REGISTRY, get_codec
from ..errors import ChecksumError, ContainerError, ReproError, StoreError
from ..faults.fsim import OsFileSystem
from ..io.container import Container
from ..parallel import plan_bands
from ..tiling import TileGrid, normalize_slices
from .cache import DEFAULT_CACHE_BYTES, TileCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.metrics import MetricsRegistry
    from .fsck import FsckReport

__all__ = [
    "ArrayStore",
    "PutResult",
    "StoreReadResult",
    "TileDamage",
    "GCResult",
    "RecoveryResult",
    "MANIFEST_FORMAT",
    "JOURNAL_FORMAT",
    "compress_field_tiles",
    "decode_tile_blob",
    "assemble_tiles",
    "summarize_entropy",
]

MANIFEST_FORMAT = 1
JOURNAL_FORMAT = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")

_TX_SEQ = itertools.count(1)


def compress_field_tiles(
    field: np.ndarray,
    codec: str = "wavesz",
    eb: float = 1e-3,
    mode: str = "vr_rel",
    *,
    n_tiles: int = 4,
) -> tuple[dict[str, Any], dict[str, bytes]]:
    """Phase 0 of any put: compress ``field`` into its tile payloads.

    Pure compute — nothing touches disk or the network.  Returns the
    manifest dict (format :data:`MANIFEST_FORMAT`) and the unique
    payloads keyed by content digest.  Both :meth:`ArrayStore.put` and
    the shard gateway's replicated put are built on this one function,
    which is what makes a sharded read bit-exact with the local path:
    the bytes placed on the wire are the same bytes a single store
    would have written.
    """
    data = np.ascontiguousarray(field)
    compressor = get_codec(codec)
    canonical = REGISTRY.canonical(codec)
    bound, slices = plan_bands(data, eb, mode, n_tiles, clamp=True)

    digests: list[str] = []
    tile_bytes: list[int] = []
    tile_entropy: list[str | None] = []
    payloads: dict[str, bytes] = {}
    for sl in slices:
        cf = compressor.compress(
            np.ascontiguousarray(data[sl]), bound.absolute, "abs"
        )
        payload = cf.payload
        digest = hashlib.sha256(payload).hexdigest()
        digests.append(digest)
        tile_bytes.append(len(payload))
        tile_entropy.append(cf.meta.get("entropy"))
        payloads.setdefault(digest, payload)

    manifest = {
        "format": MANIFEST_FORMAT,
        "name": None,  # filled in by the caller once the name is checked
        "shape": [int(d) for d in data.shape],
        "dtype": str(data.dtype),
        "codec": canonical,
        "eb": float(eb),
        "mode": str(mode),
        "eb_abs": float(bound.absolute),
        "band_starts": [int(s.start) for s in slices],
        "tiles": digests,
        "tile_bytes": tile_bytes,
        # resolved codes_entropy backend per tile; None for codecs
        # without the stage (the probe may resolve per tile under "auto")
        "tile_entropy": tile_entropy,
        "original_bytes": int(data.size * data.dtype.itemsize),
    }
    return manifest, payloads


def summarize_entropy(tile_entropy: Any) -> str:
    """One-token summary of a manifest's per-tile entropy backends.

    ``"-"`` for pre-entropy manifests and codecs without the stage;
    otherwise the sorted distinct backends joined with ``+`` (the
    ``auto`` knob may legitimately resolve differently per tile).
    """
    if not isinstance(tile_entropy, list):
        return "-"
    seen = sorted({e for e in tile_entropy if isinstance(e, str)})
    if not seen:
        return "-"
    return "+".join(seen)


def decode_tile_blob(
    m: dict[str, Any], grid: TileGrid, index: int, blob: bytes
) -> np.ndarray:
    """Verify and decode one tile payload against its manifest entry.

    Raises :class:`ChecksumError` (content digest or container checksum
    mismatch) or :class:`ContainerError` (undecodable payload / wrong
    decoded shape).  Shared by the local store's read path and the shard
    gateway, so damage classifies identically wherever the bytes came
    from.
    """
    digest = m["tiles"][index]
    if hashlib.sha256(blob).hexdigest() != digest:
        raise ChecksumError(
            f"object {digest} content does not match its digest"
        )
    # The digest catches any post-write mutation; the container scan
    # additionally catches payloads that were damaged *before* they
    # reached the object area (an object imported or written by an
    # outside tool whose name does match its corrupt content).
    report = Container.scan(blob)
    if not report.ok:
        raise ChecksumError(
            f"object {digest} failed container integrity: "
            + "; ".join(report.problems or ("section checksum mismatch",))
        )
    tile = get_codec(str(m["codec"])).decompress(blob)
    expected = grid.tile_shape(index)
    if tuple(tile.shape) != expected:
        raise ContainerError(
            f"object {digest} decoded to shape {tuple(tile.shape)}, "
            f"tile {index} needs {expected}"
        )
    return tile


def assemble_tiles(
    m: dict[str, Any],
    grid: TileGrid,
    window: tuple[slice, ...],
    tiles,
    fetch,
    *,
    strict: bool,
) -> StoreReadResult:
    """Assemble decoded tiles into the requested window.

    ``fetch(index)`` returns one decoded tile or raises a
    :class:`ReproError`; with ``strict=False`` those failures become
    :class:`TileDamage` rows (stage ``missing`` for :class:`StoreError`,
    ``checksum`` for :class:`ChecksumError`, ``decode`` otherwise) and
    the damaged rows stay zero-filled.  One assembly loop serves both
    the local store and the shard gateway, so a distributed read is the
    same arithmetic as a local one.
    """
    out = np.zeros(
        tuple(s.stop - s.start for s in window), dtype=np.dtype(m["dtype"])
    )
    rest = tuple(window[1:])
    damage: list[TileDamage] = []
    touched: list[int] = []
    for t in tiles:
        touched.append(t)
        try:
            tile = fetch(t)
        except ReproError as exc:
            if strict:
                raise
            stage = (
                "missing" if isinstance(exc, StoreError)
                else "checksum" if isinstance(exc, ChecksumError)
                else "decode"
            )
            damage.append(
                TileDamage(
                    index=t, digest=m["tiles"][t], stage=stage,
                    error=str(exc),
                )
            )
            continue
        t0, t1 = grid.band_range(t)
        lo = max(t0, window[0].start)
        hi = min(t1, window[0].stop)
        out[(slice(lo - window[0].start, hi - window[0].start),)] = tile[
            (slice(lo - t0, hi - t0),) + rest
        ]
    return StoreReadResult(
        data=out, damaged=tuple(damage), tile_indices=tuple(touched)
    )


@dataclass(frozen=True)
class PutResult:
    """Outcome of one ``put``: what was written, what deduplicated away."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    codec: str
    eb_abs: float
    tile_digests: tuple[str, ...]
    new_objects: int
    dedup_objects: int
    stored_bytes: int  # bytes newly written to the object area
    dedup_bytes: int  # bytes that existing objects saved us
    original_bytes: int

    @property
    def n_tiles(self) -> int:
        return len(self.tile_digests)

    @property
    def ratio(self) -> float:
        compressed = self.stored_bytes + self.dedup_bytes
        return self.original_bytes / compressed if compressed else 0.0


@dataclass(frozen=True)
class TileDamage:
    """Why one tile of a read could not be recovered."""

    index: int
    digest: str
    stage: str  # "missing" | "checksum" | "decode"
    error: str


@dataclass(frozen=True)
class StoreReadResult:
    """A (possibly partial) read: the data plus structured damage.

    ``data`` always has the full requested shape; rows of damaged tiles
    are zero-filled.  ``damaged`` lists what was lost — empty on a clean
    read — and ``tile_indices`` records which tiles the read touched at
    all (the slice reader's proof that it decoded only overlapping
    tiles).
    """

    data: np.ndarray
    damaged: tuple[TileDamage, ...] = ()
    tile_indices: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.damaged

    @property
    def damaged_tiles(self) -> tuple[int, ...]:
        return tuple(d.index for d in self.damaged)


@dataclass(frozen=True)
class GCResult:
    """Outcome of a garbage-collection pass over the object area."""

    removed: tuple[str, ...]
    reclaimed_bytes: int
    kept: int
    tmp_removed: tuple[str, ...] = ()

    @property
    def n_removed(self) -> int:
        return len(self.removed)


@dataclass(frozen=True)
class RecoveryResult:
    """What opening the store had to clean up.

    ``actions`` is a tuple of ``(kind, subject)`` pairs — ``kind`` one of
    ``"rolled-back"`` (a journaled put undone), ``"torn-journal"`` (an
    unreadable journal entry removed; by write-ahead ordering nothing
    after it was written), ``"stale-tmp"`` (a ``.tmp-*`` leftover swept).
    An empty tuple means the store was already clean.
    """

    actions: tuple[tuple[str, str], ...] = ()

    @property
    def clean(self) -> bool:
        return not self.actions

    def count(self, kind: str) -> int:
        return sum(1 for k, _ in self.actions if k == kind)


class ArrayStore:
    """A directory of compressed, tiled, content-addressed arrays."""

    def __init__(
        self,
        root: str | Path,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        metrics: "MetricsRegistry | None" = None,
        fs: OsFileSystem | None = None,
        recover: bool = True,
    ) -> None:
        self.root = Path(root)
        self.fs = fs if fs is not None else OsFileSystem()
        self.metrics = metrics
        self.cache = TileCache(cache_bytes, metrics=metrics)
        #: Tiles actually decompressed (cache misses included, hits not) —
        #: the counter the "slice decodes only overlapping tiles" and
        #: "warm reads decode nothing" guarantees are asserted against.
        self.decode_calls = 0
        #: what the opening recovery pass found (empty on a clean store)
        self.recovery = RecoveryResult()
        if recover:
            self.recovery = self.recover()

    def _incr(self, name: str, n: int = 1) -> None:
        if self.metrics is not None and n:
            self.metrics.incr(name, n)

    # -- paths ------------------------------------------------------------

    @property
    def _manifest_dir(self) -> Path:
        return self.root / "manifests"

    @property
    def _object_dir(self) -> Path:
        return self.root / "objects"

    @property
    def _journal_dir(self) -> Path:
        return self.root / "journal"

    def _manifest_path(self, name: str) -> Path:
        return self._manifest_dir / f"{name}.json"

    def _object_path(self, digest: str) -> Path:
        return self._object_dir / digest

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise StoreError(
                f"bad dataset name {name!r}: use 1-128 characters from "
                "[A-Za-z0-9._-], starting with a letter or digit"
            )
        return name

    # -- durable writing ---------------------------------------------------

    def _atomic_write(self, path: Path, blob: bytes) -> None:
        """Write-then-rename with full fsync discipline.

        The temp file is synced *before* the rename (so the entry can
        never point at torn data) and the parent directory *after* (so
        the entry itself survives a crash).  A survivable failure (e.g.
        ENOSPC) cleans its temp file up; a crash leaves it for
        :meth:`recover`/:meth:`gc` to sweep.
        """
        tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
        try:
            self.fs.write_bytes(tmp, blob)
            self.fs.fsync_file(tmp)
            self.fs.replace(tmp, path)
        except OSError:
            try:
                if tmp.exists():
                    self.fs.unlink(tmp)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        self.fs.fsync_dir(path.parent)

    def _durable_unlink(self, path: Path) -> None:
        self.fs.unlink(path)
        self.fs.fsync_dir(path.parent)

    # -- writing ----------------------------------------------------------

    def put(
        self,
        name: str,
        field: np.ndarray,
        codec: str = "wavesz",
        eb: float = 1e-3,
        mode: str = "vr_rel",
        *,
        n_tiles: int = 4,
    ) -> PutResult:
        """Compress ``field`` per tile and persist it under ``name``.

        ``codec`` is any registry name (alias/profile included); the
        manifest records the canonical wire name so reads dispatch the
        same way payload headers do.  ``n_tiles`` is clamped to the
        field's feasible band count, so small fields store as one tile
        instead of failing.  Re-putting an existing name replaces its
        manifest; superseded objects stay until :meth:`gc`.

        Crash contract: all compression happens up front, then a journal
        entry naming the transaction (prior manifest bytes + the tile
        digests about to be written) is made durable *before* any tile
        or manifest write.  Returning — the ack — happens only after the
        manifest is durable and the journal entry is gone.  A crash at
        any interior step is rolled back by :meth:`recover` on the next
        open; a survivable I/O failure (ENOSPC, a failed rename) is
        rolled back immediately and re-raised as :class:`StoreError`.
        """
        self._check_name(name)
        # Phase 0: pure compute — nothing on disk can be hurt yet.
        manifest, payloads = compress_field_tiles(
            field, codec, eb, mode, n_tiles=n_tiles
        )
        manifest["name"] = name
        digests = list(manifest["tiles"])
        tile_bytes = list(manifest["tile_bytes"])

        self.fs.mkdir(self._manifest_dir)
        self.fs.mkdir(self._object_dir)
        self.fs.mkdir(self._journal_dir)

        new_digests = [
            d for d in dict.fromkeys(digests)
            if not self._object_path(d).exists()
        ]
        mpath = self._manifest_path(name)
        prior_text = mpath.read_text() if mpath.exists() else None

        # Phase 1: the write-ahead journal entry — durable before any
        # other byte moves, so recovery always knows how to undo us.
        entry = {
            "format": JOURNAL_FORMAT,
            "txid": f"{os.getpid()}-{next(_TX_SEQ)}",
            "name": name,
            "prior_manifest": prior_text,
            "new_tiles": new_digests,
        }
        jpath = self._journal_dir / f"tx-{entry['txid']}.json"
        try:
            self._atomic_write(jpath, json.dumps(entry, indent=2).encode())
        except OSError as exc:
            # nothing was written yet — the put simply never happened.
            raise StoreError(
                f"put {name!r} could not journal its transaction: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

        # Phase 2: tiles, then manifest — each individually atomic.
        try:
            for digest in new_digests:
                self._atomic_write(self._object_path(digest), payloads[digest])
            self._atomic_write(
                mpath, json.dumps(manifest, indent=2, sort_keys=True).encode()
            )
        except OSError as exc:
            self._rollback(entry)
            try:
                self._durable_unlink(jpath)
            except OSError:  # pragma: no cover - sweep catches it later
                pass
            self._incr("store.put_rollbacks")
            raise StoreError(
                f"put {name!r} failed and was rolled back: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

        # Phase 3: commit — the journal entry disappears, then we ack.
        self._durable_unlink(jpath)

        new_objects = len(new_digests)
        stored_bytes = sum(len(payloads[d]) for d in new_digests)
        dedup_bytes = sum(tile_bytes) - stored_bytes
        return PutResult(
            name=name,
            shape=tuple(manifest["shape"]),
            dtype=str(manifest["dtype"]),
            codec=str(manifest["codec"]),
            eb_abs=float(manifest["eb_abs"]),
            tile_digests=tuple(digests),
            new_objects=new_objects,
            dedup_objects=len(digests) - new_objects,
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            original_bytes=manifest["original_bytes"],
        )

    # -- manifests ---------------------------------------------------------

    def manifest(self, name: str) -> dict[str, Any]:
        """Load and validate one dataset manifest."""
        self._check_name(name)
        path = self._manifest_path(name)
        if not path.exists():
            raise StoreError(
                f"store at {self.root} has no dataset {name!r}"
            )
        try:
            m = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"manifest for {name!r} is unreadable: {exc}") from exc
        return self._validate_manifest(name, m)

    @staticmethod
    def _validate_manifest(name: str, m: Any) -> dict[str, Any]:
        if not isinstance(m, dict):
            raise StoreError(f"manifest for {name!r} is not a JSON object")
        if m.get("format") != MANIFEST_FORMAT:
            raise StoreError(
                f"manifest for {name!r} has unsupported format "
                f"{m.get('format')!r}"
            )
        tiles = m.get("tiles")
        starts = m.get("band_starts")
        if (
            not isinstance(tiles, list)
            or not tiles
            or not all(isinstance(t, str) and _DIGEST_RE.match(t) for t in tiles)
        ):
            raise StoreError(f"manifest for {name!r} has a bad tile list")
        if not isinstance(starts, list) or len(starts) != len(tiles):
            raise StoreError(
                f"manifest for {name!r}: {len(tiles)} tiles but band starts "
                f"{starts!r}"
            )
        for key in ("shape", "dtype", "codec"):
            if key not in m:
                raise StoreError(f"manifest for {name!r} misses {key!r}")
        return m

    def _grid(self, m: dict[str, Any]) -> TileGrid:
        return TileGrid.from_starts(m["shape"], m["band_starts"])

    def ls(self) -> list[dict[str, Any]]:
        """One summary row per dataset, sorted by name."""
        rows = []
        if self._manifest_dir.is_dir():
            for path in sorted(self._manifest_dir.glob("*.json")):
                m = self.manifest(path.stem)
                rows.append(
                    {
                        "name": m["name"],
                        "shape": tuple(m["shape"]),
                        "dtype": m["dtype"],
                        "codec": m["codec"],
                        "eb": m.get("eb"),
                        "mode": m.get("mode"),
                        "n_tiles": len(m["tiles"]),
                        "entropy": summarize_entropy(m.get("tile_entropy")),
                        "original_bytes": m.get("original_bytes", 0),
                        "compressed_bytes": sum(m.get("tile_bytes", [])),
                    }
                )
        return rows

    def names(self) -> tuple[str, ...]:
        return tuple(r["name"] for r in self.ls())

    def delete(self, name: str) -> None:
        """Drop a dataset's manifest (its objects reclaim on :meth:`gc`)."""
        self._check_name(name)
        path = self._manifest_path(name)
        if not path.exists():
            raise StoreError(f"store at {self.root} has no dataset {name!r}")
        self._durable_unlink(path)

    # -- shard-facing primitives -------------------------------------------
    #
    # A shard of a distributed store receives *individual* tile objects
    # and replicated manifests from the gateway rather than whole fields;
    # these methods are that narrow surface.  They share the durable
    # `_atomic_write` discipline with `put`, so a shard's crash story is
    # the same as a standalone store's.

    def put_object(
        self, blob: bytes, digest: str | None = None, *, overwrite: bool = False
    ) -> tuple[str, bool]:
        """Store one content-addressed object; returns (digest, written).

        ``digest``, when given, is verified against the blob's SHA-256 —
        a gateway replicating a tile cannot silently store bytes under
        the wrong name.  An existing object is left untouched unless
        ``overwrite=True`` (the read-repair path for a replica whose
        on-disk bytes rotted: its content no longer matches its name).
        """
        actual = hashlib.sha256(blob).hexdigest()
        if digest is not None and digest != actual:
            raise ChecksumError(
                f"object content hashes to {actual}, not the declared "
                f"digest {digest}"
            )
        path = self._object_path(actual)
        if path.exists() and not overwrite:
            return actual, False
        self.fs.mkdir(self._object_dir)
        try:
            self._atomic_write(path, blob)
        except OSError as exc:
            raise StoreError(
                f"object {actual} could not be stored: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self.cache.discard(actual)
        return actual, True

    def get_object(self, digest: str) -> bytes:
        """Read one object's raw payload, verifying content == digest."""
        if not isinstance(digest, str) or not _DIGEST_RE.match(digest):
            raise StoreError(f"bad object digest {digest!r}")
        path = self._object_path(digest)
        if not path.exists():
            raise StoreError(f"object {digest} is missing from {self.root}")
        blob = path.read_bytes()
        if hashlib.sha256(blob).hexdigest() != digest:
            raise ChecksumError(
                f"object {digest} content does not match its digest"
            )
        return blob

    def has_objects(self, digests) -> dict[str, bool]:
        """Which of ``digests`` exist here (the gateway's dedup probe)."""
        out: dict[str, bool] = {}
        for d in digests:
            if not isinstance(d, str) or not _DIGEST_RE.match(d):
                raise StoreError(f"bad object digest {d!r}")
            out[d] = self._object_path(d).exists()
        return out

    def put_manifest(self, name: str, manifest: dict[str, Any]) -> None:
        """Durably (re)write one dataset manifest, validated first.

        The gateway's replication path: the manifest may reference tiles
        that live on *other* shards, which is why a sharded shard's
        ``fsck`` is expected to report those digests missing — see
        ``docs/API.md`` on sharded layouts.
        """
        self._check_name(name)
        m = self._validate_manifest(name, manifest)
        self.fs.mkdir(self._manifest_dir)
        try:
            self._atomic_write(
                self._manifest_path(name),
                json.dumps(m, indent=2, sort_keys=True).encode(),
            )
        except OSError as exc:
            raise StoreError(
                f"manifest for {name!r} could not be stored: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    # -- recovery ----------------------------------------------------------

    def _referenced_tolerant(self) -> frozenset[str]:
        """Referenced digests, skipping manifests recovery can't read yet."""
        refs: set[str] = set()
        if self._manifest_dir.is_dir():
            for path in self._manifest_dir.glob("*.json"):
                try:
                    refs.update(self.manifest(path.stem)["tiles"])
                except ReproError:
                    continue
        return frozenset(refs)

    def _rollback(self, entry: dict[str, Any]) -> None:
        """Undo one journaled put: restore the prior manifest, drop the
        tiles the transaction introduced (unless another manifest now
        references them)."""
        name = str(entry.get("name", ""))
        mpath = self._manifest_path(name)
        prior = entry.get("prior_manifest")
        if prior is not None:
            if not mpath.exists() or mpath.read_text() != prior:
                self._atomic_write(mpath, str(prior).encode())
        elif mpath.exists():
            self._durable_unlink(mpath)
        refs = self._referenced_tolerant()
        for digest in entry.get("new_tiles", ()):
            if not isinstance(digest, str) or not _DIGEST_RE.match(digest):
                continue
            path = self._object_path(digest)
            if digest not in refs and path.exists():
                self._durable_unlink(path)
            self.cache.discard(digest)

    def recover(self) -> RecoveryResult:
        """Replay-or-roll-back the journal and sweep crash leftovers.

        Runs automatically when the store is opened.  Idempotent: a crash
        *during* recovery is repaired by the next recovery.  Journal
        entries that survive a crash mean the put never acked (the commit
        point is the entry's durable removal), so each one is rolled
        back; an unreadable (torn) entry means the crash happened while
        the entry itself was being written — write-ahead ordering
        guarantees nothing else moved, so it is simply dropped.
        """
        actions: list[tuple[str, str]] = []
        jdir = self._journal_dir
        if jdir.is_dir():
            for jpath in sorted(jdir.glob("*.json")):
                try:
                    entry = json.loads(jpath.read_text())
                    if (
                        not isinstance(entry, dict)
                        or entry.get("format") != JOURNAL_FORMAT
                        or not isinstance(entry.get("name"), str)
                    ):
                        raise ValueError("bad journal entry")
                except (OSError, ValueError):
                    self._durable_unlink(jpath)
                    actions.append(("torn-journal", jpath.name))
                    continue
                self._rollback(entry)
                self._durable_unlink(jpath)
                actions.append(("rolled-back", str(entry["name"])))
        for d in (self._manifest_dir, self._object_dir, jdir):
            if not d.is_dir():
                continue
            for tmp in sorted(d.glob(".tmp-*")):
                try:
                    self._durable_unlink(tmp)
                except OSError:  # pragma: no cover - racing writer
                    continue
                actions.append(("stale-tmp", tmp.name))
        self._incr("store.rollbacks", sum(
            1 for k, _ in actions if k == "rolled-back"
        ))
        return RecoveryResult(tuple(actions))

    def fsck(self, *, repair: bool = False, deep: bool = False) -> "FsckReport":
        """Audit every manifest, object, journal entry and temp file.

        See :func:`repro.store.fsck.run_fsck` for the finding taxonomy.
        ``repair=True`` fixes what can be fixed (journal rollback, orphan
        and temp-file removal); ``deep=True`` additionally decodes every
        referenced tile and checks its shape.
        """
        from .fsck import run_fsck

        return run_fsck(self, repair=repair, deep=deep)

    # -- reading ----------------------------------------------------------

    def _decode_tile(
        self, m: dict[str, Any], grid: TileGrid, index: int
    ) -> np.ndarray:
        """Fetch one decoded tile via the cache, verifying everything.

        Raises :class:`StoreError` (object missing), :class:`ChecksumError`
        (content digest or container checksum mismatch) or
        :class:`ContainerError` (undecodable payload); the read loop maps
        these onto :class:`TileDamage` stages.
        """
        digest = m["tiles"][index]
        cached = self.cache.get(digest)
        if cached is not None:
            return cached
        path = self._object_path(digest)
        if not path.exists():
            raise StoreError(f"object {digest} is missing from {self.root}")
        tile = decode_tile_blob(m, grid, index, path.read_bytes())
        self.decode_calls += 1
        self.cache.put(digest, tile)
        return tile

    def read(self, name: str, *, strict: bool = True) -> StoreReadResult:
        """Reassemble the full field, bit-exact with the serial tiled path.

        ``strict=False`` survives damaged tiles: their rows come back
        zero-filled and their indices are reported in ``damaged``.
        """
        m = self.manifest(name)
        grid = self._grid(m)
        return self._assemble(
            m, grid, tuple(slice(0, d) for d in grid.shape),
            range(grid.n_tiles), strict=strict,
        )

    def read_slice(self, name: str, slices, *, strict: bool = True) -> StoreReadResult:
        """Decode only the tiles overlapping ``slices`` and cut the window.

        ``slices`` is anything :func:`repro.tiling.normalize_slices`
        accepts: a tuple of ``slice`` objects / ``(start, stop)`` pairs /
        ``None`` per axis, trailing axes defaulting to full extent.
        """
        m = self.manifest(name)
        grid = self._grid(m)
        window = normalize_slices(grid.shape, slices)
        return self._assemble(
            m, grid, window, grid.overlapping(window[0]), strict=strict
        )

    def _assemble(
        self,
        m: dict[str, Any],
        grid: TileGrid,
        window: tuple[slice, ...],
        tiles,
        *,
        strict: bool,
    ) -> StoreReadResult:
        return assemble_tiles(
            m, grid, window, tiles,
            lambda t: self._decode_tile(m, grid, t), strict=strict,
        )

    # -- garbage collection ------------------------------------------------

    def referenced_digests(self) -> frozenset[str]:
        """Every object digest some manifest currently points at."""
        refs: set[str] = set()
        if self._manifest_dir.is_dir():
            for path in self._manifest_dir.glob("*.json"):
                if path.name.startswith(".tmp-"):
                    continue  # crashed writer leftovers, swept by gc
                refs.update(self.manifest(path.stem)["tiles"])
        return frozenset(refs)

    def gc(self, *, extra_refs=()) -> GCResult:
        """Remove objects no manifest references (superseded versions,
        deleted datasets) and sweep stale ``.tmp-*`` files left behind by
        crashed writers.  Safe to run any time; referenced objects,
        journal entries and foreign files are never touched.

        ``extra_refs`` extends the keep-set with digests referenced from
        *outside* this directory — the shard gateway passes the union of
        every manifest in the cluster, because a shard may hold tiles
        whose manifests replicate on other shards.  Running a bare
        ``gc()`` on one shard of a sharded deployment would sweep those,
        so shard gc must go through the gateway.
        """
        refs = self.referenced_digests() | frozenset(extra_refs)
        removed: list[str] = []
        tmp_removed: list[str] = []
        reclaimed = 0
        kept = 0
        if self._object_dir.is_dir():
            for path in sorted(self._object_dir.iterdir()):
                if not _DIGEST_RE.match(path.name):
                    continue  # temp files / foreign junk handled below
                if path.name in refs:
                    kept += 1
                    continue
                reclaimed += path.stat().st_size
                self.fs.unlink(path)
                self.cache.discard(path.name)
                removed.append(path.name)
            self.fs.fsync_dir(self._object_dir)
        for d in (self._manifest_dir, self._object_dir, self._journal_dir):
            if not d.is_dir():
                continue
            for path in sorted(d.glob(".tmp-*")):
                reclaimed += path.stat().st_size
                try:
                    self._durable_unlink(path)
                except OSError:  # pragma: no cover - racing writer
                    continue
                tmp_removed.append(path.name)
        return GCResult(
            removed=tuple(removed), reclaimed_bytes=reclaimed, kept=kept,
            tmp_removed=tuple(tmp_removed),
        )
