"""Store-wide consistency check: walk everything, report, optionally repair.

``fsck`` is the offline complement to the store's online recovery: where
:meth:`~repro.store.ArrayStore.recover` undoes the *known* in-flight
transaction recorded in the journal, ``fsck`` audits the whole layout
against the durability invariants and classifies every deviation:

========================  ========  =============================================
kind                      severity  meaning / repair
========================  ========  =============================================
``dangling-journal``      error     an interrupted put not yet rolled back —
                                    repair runs the rollback
``torn-journal``          error     unreadable journal entry — repair removes it
``bad-manifest``          error     manifest unparseable or structurally invalid
                                    — never auto-deleted (it may name real data)
``missing-object``        error     a manifest references an object that is gone
                                    — unrepairable without the data
``digest-mismatch``       error     object bytes do not hash to their name
``container-damage``      error     object fails container-v2 integrity
``decode-damage``         error     (``deep``) object does not decode to the
                                    tile shape the manifest promises
``orphan-object``         warning   no manifest references it — repair removes
``stale-tmp``             warning   ``.tmp-*`` crash leftover — repair removes
========================  ========  =============================================

A clean store yields an empty report; after any single crash the pair
``recover()`` (automatic on open) + ``fsck(repair=True)`` converges to
zero findings — the property the chaos harness asserts across hundreds
of seeded crash schedules.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..codec.registry import get_codec
from ..errors import ReproError, StoreError
from ..io.container import Container
from .store import _DIGEST_RE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import ArrayStore

__all__ = ["FsckFinding", "FsckReport", "run_fsck"]


@dataclass(frozen=True)
class FsckFinding:
    """One inconsistency: what, where, how bad, and whether it was fixed."""

    kind: str
    severity: str  # "error" | "warning"
    subject: str  # dataset name, object digest, or file name
    detail: str
    repaired: bool = False


@dataclass(frozen=True)
class FsckReport:
    """Everything one fsck pass saw."""

    findings: tuple[FsckFinding, ...]
    manifests_checked: int
    objects_checked: int
    deep: bool
    repair: bool
    actions: tuple[str, ...] = field(default=())

    @property
    def errors(self) -> tuple[FsckFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[FsckFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def repaired(self) -> int:
        return sum(1 for f in self.findings if f.repaired)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        mode = "deep" if self.deep else "fast"
        if self.ok:
            return (
                f"fsck ({mode}): OK — {self.manifests_checked} manifest(s), "
                f"{self.objects_checked} object(s), no findings"
            )
        kinds: dict[str, int] = {}
        for f in self.findings:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return (
            f"fsck ({mode}): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) [{parts}], "
            f"{self.repaired} repaired"
        )

    def assert_clean(self) -> None:
        if self.ok:
            return
        lines = [
            f"  {f.severity}: {f.kind} {f.subject}: {f.detail}"
            for f in self.findings[:8]
        ]
        raise StoreError(
            f"fsck found {len(self.findings)} problem(s):\n" + "\n".join(lines)
        )


def _check_object(
    store: "ArrayStore",
    digest: str,
    manifest: dict,
    tile_index: int,
    *,
    deep: bool,
) -> FsckFinding | None:
    path = store._object_path(digest)
    if not path.exists():
        return FsckFinding(
            "missing-object", "error", digest,
            f"referenced by {manifest['name']!r} tile {tile_index}, not on disk",
        )
    blob = path.read_bytes()
    if hashlib.sha256(blob).hexdigest() != digest:
        return FsckFinding(
            "digest-mismatch", "error", digest,
            f"content of {path.name} does not hash to its name "
            f"(referenced by {manifest['name']!r} tile {tile_index})",
        )
    report = Container.scan(blob)
    if not report.ok:
        return FsckFinding(
            "container-damage", "error", digest,
            "; ".join(report.problems or ("section checksum mismatch",)),
        )
    if deep:
        try:
            tile = get_codec(str(manifest["codec"])).decompress(blob)
        except ReproError as exc:
            return FsckFinding(
                "decode-damage", "error", digest,
                f"{type(exc).__name__}: {exc}",
            )
        expected = store._grid(manifest).tile_shape(tile_index)
        if tuple(tile.shape) != expected:
            return FsckFinding(
                "decode-damage", "error", digest,
                f"decoded to shape {tuple(tile.shape)}, manifest "
                f"{manifest['name']!r} tile {tile_index} needs {expected}",
            )
    return None


def run_fsck(
    store: "ArrayStore", *, repair: bool = False, deep: bool = False
) -> FsckReport:
    """Walk the store; see the module docstring for the finding taxonomy.

    With ``repair=True``, repairable findings are fixed *and reported as
    repaired* — a second pass proves convergence by coming back empty.
    """
    findings: list[FsckFinding] = []
    actions: list[str] = []

    # 1. journal: anything here is an un-acked transaction.
    jdir = store._journal_dir
    if jdir.is_dir():
        for jpath in sorted(jdir.glob("*.json")):
            try:
                entry = json.loads(jpath.read_text())
                if not isinstance(entry, dict) or not isinstance(
                    entry.get("name"), str
                ):
                    raise ValueError("not a journal object")
            except (OSError, ValueError) as exc:
                if repair:
                    store._durable_unlink(jpath)
                    actions.append(f"removed torn journal {jpath.name}")
                findings.append(FsckFinding(
                    "torn-journal", "error", jpath.name,
                    f"unreadable journal entry: {exc}", repaired=repair,
                ))
                continue
            if repair:
                store._rollback(entry)
                store._durable_unlink(jpath)
                actions.append(
                    f"rolled back interrupted put of {entry['name']!r}"
                )
            findings.append(FsckFinding(
                "dangling-journal", "error", jpath.name,
                f"interrupted put of {entry['name']!r} "
                + ("rolled back" if repair else "awaiting rollback"),
                repaired=repair,
            ))

    # 2. manifests and every object they reference.
    manifests_checked = 0
    checked: dict[str, FsckFinding | None] = {}
    referenced: set[str] = set()
    if store._manifest_dir.is_dir():
        for mpath in sorted(store._manifest_dir.glob("*.json")):
            manifests_checked += 1
            try:
                m = store.manifest(mpath.stem)
            except ReproError as exc:
                findings.append(FsckFinding(
                    "bad-manifest", "error", mpath.stem, str(exc),
                ))
                continue
            grid_ok = True
            try:
                store._grid(m)
            except ReproError as exc:
                grid_ok = False
                findings.append(FsckFinding(
                    "bad-manifest", "error", mpath.stem,
                    f"tile grid invalid: {exc}",
                ))
            for i, digest in enumerate(m["tiles"]):
                referenced.add(digest)
                if digest not in checked:
                    checked[digest] = _check_object(
                        store, digest, m, i, deep=deep and grid_ok
                    )
                if checked[digest] is not None:
                    findings.append(checked[digest])

    # 3. object area: orphans and crash leftovers.
    objects_checked = len(checked)
    if store._object_dir.is_dir():
        for path in sorted(store._object_dir.iterdir()):
            name = path.name
            if name.startswith(".tmp-"):
                continue  # handled with the other dirs below
            if not _DIGEST_RE.match(name):
                findings.append(FsckFinding(
                    "orphan-object", "warning", name,
                    "foreign file in the object area (left in place)",
                ))
                continue
            if name in referenced:
                continue
            objects_checked += 1
            if repair:
                store._durable_unlink(path)
                store.cache.discard(name)
                actions.append(f"removed orphan object {name[:12]}…")
            findings.append(FsckFinding(
                "orphan-object", "warning", name,
                "no manifest references it", repaired=repair,
            ))

    for d in (store._manifest_dir, store._object_dir, store._journal_dir):
        if not d.is_dir():
            continue
        for path in sorted(d.glob(".tmp-*")):
            if repair:
                store._durable_unlink(path)
                actions.append(f"removed stale temp {path.name}")
            findings.append(FsckFinding(
                "stale-tmp", "warning", path.name,
                f"crash leftover in {d.name}/", repaired=repair,
            ))

    if repair:
        store._incr("store.fsck_repairs", sum(
            1 for f in findings if f.repaired
        ))
    return FsckReport(
        findings=tuple(findings),
        manifests_checked=manifests_checked,
        objects_checked=objects_checked,
        deep=deep,
        repair=repair,
        actions=tuple(actions),
    )
