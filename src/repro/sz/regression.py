"""Blockwise linear-regression predictor (the SZ-2.0 model, paper ref [32]).

SZ-2.0 splits the field into small blocks (6x6 / 6x6x6) and, per block,
chooses between the Lorenzo predictor and a least-squares hyperplane
``v ~ b0 + b1*i + b2*j (+ b3*k)``.  Regression blocks need no neighbour
feedback at all — the decompressor rebuilds the plane from the stored
coefficients — which is why SZ-2.0 wins at low precision on smooth data
but only ties SZ-1.4 at the high-precision bounds waveSZ targets (§2.1's
rationale for building on 1.4).

Coefficients are *quantized before use* so compressor and decompressor
evaluate bit-identical planes: slope steps scale with 1/(block-1) so the
worst-case plane perturbation stays a fraction of the error bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError

__all__ = ["PlaneFit", "fit_plane", "coeff_steps", "quantize_coeffs",
           "dequantize_coeffs", "eval_plane"]


@dataclass(frozen=True)
class PlaneFit:
    """Least-squares hyperplane coefficients (b0 at the block origin)."""

    coeffs: np.ndarray  # float64, length ndim+1


def _axis_grids(shape: tuple[int, ...]) -> list[np.ndarray]:
    return list(np.meshgrid(*[np.arange(n, dtype=np.float64) for n in shape],
                            indexing="ij"))


def fit_plane(block: np.ndarray) -> PlaneFit:
    """Closed-form least squares of ``v ~ b0 + sum_k b_k * x_k``.

    Uses centred coordinates so each slope decouples:
    ``b_k = cov(v, x_k) / var(x_k)``.
    """
    if block.ndim not in (1, 2, 3):
        raise ShapeError(f"plane fit supports 1-3D blocks, got {block.ndim}D")
    v = block.astype(np.float64)
    grids = _axis_grids(block.shape)
    vmean = v.mean()
    coeffs = [0.0] * (block.ndim + 1)
    for k, g in enumerate(grids):
        gc = g - g.mean()
        denom = float((gc * gc).sum())
        coeffs[k + 1] = float((v * gc).sum() / denom) if denom > 0 else 0.0
    # Re-express the intercept at the block origin (i = j = k = 0).
    b0 = vmean - sum(
        coeffs[k + 1] * float(g.mean()) for k, g in enumerate(grids)
    )
    coeffs[0] = b0
    return PlaneFit(coeffs=np.array(coeffs))


def coeff_steps(precision: float, shape: tuple[int, ...]) -> np.ndarray:
    """Quantization step per coefficient.

    The intercept moves the plane uniformly (step p/4); each slope is
    amplified by up to ``n-1`` across the block (step p / (4 * (n-1))),
    so the total plane perturbation stays below ~p/2 * (ndim+1)/2.
    """
    steps = [precision / 4.0]
    for n in shape:
        steps.append(precision / (4.0 * max(n - 1, 1)))
    return np.array(steps)


def quantize_coeffs(fit: PlaneFit, precision: float,
                    shape: tuple[int, ...]) -> np.ndarray:
    """Integer codes ``round(b / step)`` (int64)."""
    steps = coeff_steps(precision, shape)
    return np.round(fit.coeffs / steps).astype(np.int64)


def dequantize_coeffs(codes: np.ndarray, precision: float,
                      shape: tuple[int, ...]) -> np.ndarray:
    return codes.astype(np.float64) * coeff_steps(precision, shape)


def eval_plane(coeffs: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Evaluate the (dequantized) hyperplane over a block."""
    grids = _axis_grids(shape)
    out = np.full(shape, float(coeffs[0]))
    for k, g in enumerate(grids):
        out += float(coeffs[k + 1]) * g
    return out
