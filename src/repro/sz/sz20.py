"""SZ-2.0: blockwise hybrid Lorenzo / linear-regression compressor.

The modern SZ model (paper ref [32], Table 2 row "2.0+"): the field is
tiled into small blocks; each block is predicted either by the 1-layer
Lorenzo stencil (feedback over decompressed values, via the same local
wavefront schedule as everywhere else in this library) or by a
least-squares hyperplane whose quantized coefficients travel with the
stream (no feedback at all).  Residuals go through the standard
linear-scaling quantizer, so the absolute error bound holds regardless of
which predictor a block uses.

§2.1 of the waveSZ paper motivates building on SZ-1.4 rather than 2.0:
at the relatively *low* error bounds scientists ask for, 2.0's regression
rarely beats Lorenzo — the `bench_sz20_vs_sz14` bench measures exactly
that crossover on the synthetic datasets.

The blockwise hybrid predictor and its side streams (block-type bitmap,
delta-coded regression coefficients, outlier values) are the
SZ-2.0-specific stages here; bound resolution, header assembly and the
Huffman → gzip code path come from :mod:`repro.codec.stages`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..codec.pipeline import PipelineCompressor, PipelineContext, Stage
from ..codec.registry import register_codec
from ..codec.spec import PipelineSpec, StageSpec
from ..codec.stages import (
    EntropyCodesStage,
    HeaderStage,
    ResolveBoundStage,
    ValidateInputStage,
    gzip_if_smaller,
)
from ..config import QuantizerConfig
from ..errors import ContainerError, DTypeError, ShapeError
from ..lossless import GzipStage, LosslessMode
from ..streams import MAX_FIELD_POINTS, header_dtype, header_int, header_shape
from ..variants import Feature
from .lorenzo import neighbor_offsets, stencil_predict
from .quantizer import quantize_vector
from .wavefront_index import interior_wavefronts

__all__ = ["SZ20Compressor", "SZ20_SPEC"]

_LORENZO, _REGRESSION = 0, 1

SZ20_SPEC = PipelineSpec(
    variant="SZ-2.0",
    table2="SZ-2.0+",
    stages=(
        StageSpec("checks"),
        StageSpec("bound"),
        StageSpec(
            "block_hybrid",
            frozenset(
                {
                    Feature.BLOCKING,
                    Feature.LORENZO,
                    Feature.LINEAR_REGRESSION,
                    Feature.QUANTIZATION,
                    Feature.DECOMPRESSION_WRITEBACK,
                    Feature.OVERBOUND_CHECK_SW,
                }
            ),
        ),
        StageSpec("header"),
        StageSpec(
            "codes_entropy", frozenset({Feature.CUSTOM_HUFFMAN, Feature.GZIP})
        ),
        StageSpec("block_types"),
        StageSpec("coeffs", frozenset({Feature.GZIP})),
        StageSpec("outliers"),
    ),
    # the repro rejects PW_REL bounds and ships gzip instead of Zstandard
    unmodeled=frozenset({Feature.LOG_TRANSFORM, Feature.ZSTD}),
)


def _check_input(data: np.ndarray) -> None:
    if data.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise DTypeError(f"SZ-2.0 supports float32/float64, got {data.dtype}")
    if data.ndim not in (2, 3):
        raise ShapeError(f"SZ-2.0 supports 2D/3D fields, got {data.ndim}D")


def _block_grid(shape: tuple[int, ...], bs: int):
    """Yield (block_index, slices) over the field in raster order."""
    ranges = [range(0, n, bs) for n in shape]
    for starts in itertools.product(*ranges):
        yield tuple(
            slice(s, min(s + bs, n)) for s, n in zip(starts, shape)
        )


def _open_loop_lorenzo_padded(data: np.ndarray) -> np.ndarray:
    """Zero-halo open-loop Lorenzo prediction of every point (selection
    heuristic only — the real feedback loop runs per block)."""
    ext_shape = tuple(n + 1 for n in data.shape)
    ext = np.zeros(ext_shape)
    ext[tuple(slice(1, None) for _ in data.shape)] = data
    from .lorenzo import lorenzo_predict

    pred = lorenzo_predict(ext)
    return pred[tuple(slice(1, None) for _ in data.shape)]


def _halo_fill(
    lwork: np.ndarray, work: np.ndarray, sl: tuple[slice, ...]
) -> None:
    """Fill a block's extended-halo faces from the global work array."""
    for axis, s in enumerate(sl):
        if s.start == 0:
            continue  # field border: halo stays zero (padded semantics)
        src = list(sl)
        src[axis] = slice(s.start - 1, s.start)
        dst = [slice(1, None)] * len(sl)
        dst[axis] = slice(0, 1)
        # Halo corners/edges also need earlier-block values; widen the
        # source for already-handled axes.
        for prev_axis in range(axis):
            if sl[prev_axis].start > 0:
                src[prev_axis] = slice(
                    sl[prev_axis].start - 1, sl[prev_axis].stop
                )
                dst[prev_axis] = slice(0, None)
        lwork[tuple(dst)] = work[tuple(src)]


def _lorenzo_block(
    orig: np.ndarray,
    work: np.ndarray,
    codes: np.ndarray,
    sl: tuple[slice, ...],
    p: float,
    quant: QuantizerConfig,
    dtype: np.dtype,
    *,
    origin_verbatim: bool,
) -> np.ndarray:
    """Closed-loop Lorenzo over one block; halo from decompressed
    neighbours (zero outside the field).  Returns outlier originals in
    local raster order."""
    bshape = tuple(s.stop - s.start for s in sl)
    ext_shape = tuple(n + 1 for n in bshape)
    lwork = np.zeros(ext_shape, dtype=np.float64)
    inner = tuple(slice(1, None) for _ in bshape)
    _halo_fill(lwork, work, sl)
    lorig = np.zeros(ext_shape, dtype=np.float64)
    lorig[inner] = orig[sl]

    lcodes = np.zeros(int(np.prod(ext_shape)), dtype=np.int64)
    lwork_flat = lwork.reshape(-1)
    lorig_flat = lorig.reshape(-1)
    offsets, signs = neighbor_offsets(ext_shape)
    outliers: list[np.ndarray] = []

    for k, idx in enumerate(interior_wavefronts(ext_shape)):
        if origin_verbatim and k == 0:
            # The field origin is stored verbatim (see pqd.py).
            lwork_flat[idx] = lorig_flat[idx]
            continue
        pred = stencil_predict(lwork_flat, idx, offsets, signs)
        d = lorig_flat[idx]
        wf_codes, d_out = quantize_vector(d, pred, p, quant, dtype)
        lcodes[idx] = wf_codes
        lwork_flat[idx] = d_out.astype(np.float64)

    lcodes = lcodes.reshape(ext_shape)[inner]
    codes[sl] = lcodes
    work[sl] = lwork[inner]
    fail_local = lcodes.reshape(-1) == 0
    if fail_local.any():
        outliers.append(orig[sl].reshape(-1)[fail_local].astype(dtype))
    return (
        np.concatenate(outliers) if outliers else np.empty(0, dtype=dtype)
    )


def _lorenzo_block_decode(
    work: np.ndarray,
    bcodes: np.ndarray,
    sl: tuple[slice, ...],
    p: float,
    quant: QuantizerConfig,
    dtype: np.dtype,
    outliers: np.ndarray,
    out_pos: int,
) -> int:
    bshape = bcodes.shape
    ext_shape = tuple(n + 1 for n in bshape)
    inner = tuple(slice(1, None) for _ in bshape)
    lwork = np.zeros(ext_shape, dtype=np.float64)
    _halo_fill(lwork, work, sl)

    lcodes = np.zeros(ext_shape, dtype=np.int64)
    lcodes[inner] = bcodes
    lcodes_flat = lcodes.reshape(-1)
    lwork_flat = lwork.reshape(-1)
    offsets, signs = neighbor_offsets(ext_shape)
    r = quant.radius

    # Scatter outliers (code 0 interior) before the sweep: they feed
    # later predictions.  Local raster order matches the encoder.
    inner_flat = np.zeros(ext_shape, dtype=bool)
    inner_flat[inner] = True
    fail_mask = (lcodes_flat == 0) & inner_flat.reshape(-1)
    fail_idx = np.flatnonzero(fail_mask)
    n_fail = fail_idx.size
    if n_fail:
        lwork_flat[fail_idx] = outliers[
            out_pos : out_pos + n_fail
        ].astype(np.float64)
        out_pos += n_fail

    for idx in interior_wavefronts(ext_shape):
        c = lcodes_flat[idx]
        sel = c != 0
        if not sel.any():
            continue
        pred = stencil_predict(lwork_flat, idx, offsets, signs)
        d_re = (pred + 2.0 * (c - r) * p).astype(dtype)
        tgt = idx[sel]
        lwork_flat[tgt] = d_re[sel].astype(np.float64)

    work[sl] = lwork[inner]
    return out_pos


class _BlockHybridStage:
    """Blockwise hybrid Lorenzo/regression prediction + quantization."""

    name = "block_hybrid"

    def __init__(self, quant: QuantizerConfig, block_size: int) -> None:
        self.quant = quant
        self.block_size = block_size

    def forward(self, ctx: PipelineContext) -> None:
        from .regression import (
            dequantize_coeffs,
            eval_plane,
            fit_plane,
            quantize_coeffs,
        )

        data = ctx.data
        p = ctx.bound.absolute
        dtype = data.dtype
        bs = self.block_size

        work = np.zeros(data.shape, dtype=np.float64)
        codes = np.zeros(data.shape, dtype=np.int64)
        orig = data.astype(np.float64)
        open_loop_err = np.abs(orig - _open_loop_lorenzo_padded(orig))

        types: list[int] = []
        coeff_rows: list[np.ndarray] = []
        outliers: list[np.ndarray] = []
        first_block = True

        for sl in _block_grid(data.shape, bs):
            block = orig[sl]
            fit = fit_plane(block)
            ccodes = quantize_coeffs(fit, p, block.shape)
            qcoeffs = dequantize_coeffs(ccodes, p, block.shape)
            pred_reg = eval_plane(qcoeffs, block.shape)
            err_reg = float(np.abs(block - pred_reg).mean())
            err_lor = float(open_loop_err[sl].mean())

            if err_reg < err_lor:
                types.append(_REGRESSION)
                coeff_rows.append(ccodes)
                wf_codes, d_out = quantize_vector(
                    block.reshape(-1), pred_reg.reshape(-1), p, self.quant, dtype
                )
                fail = wf_codes == 0
                if fail.any():
                    outliers.append(block.reshape(-1)[fail].astype(dtype))
                codes[sl] = wf_codes.reshape(block.shape)
                work[sl] = d_out.astype(np.float64).reshape(block.shape)
            else:
                types.append(_LORENZO)
                out_vals = _lorenzo_block(
                    orig, work, codes, sl, p, self.quant, dtype,
                    origin_verbatim=first_block,
                )
                if out_vals.size:
                    outliers.append(out_vals)
            first_block = False

        ctx.codes = codes
        ctx.artifacts["block_types"] = types
        ctx.artifacts["coeff_rows"] = coeff_rows
        ctx.artifacts["outlier_values"] = (
            np.concatenate(outliers) if outliers else np.empty(0, dtype=dtype)
        )

    def inverse(self, ctx: PipelineContext) -> None:
        from .regression import dequantize_coeffs, eval_plane

        h = ctx.header
        shape = ctx.shape
        dtype = ctx.dtype
        quant = ctx.quant
        p = ctx.bound.absolute
        bs = header_int(h, "block_size", lo=1, hi=4096)
        r = quant.radius

        codes = ctx.codes.reshape(shape)
        types = ctx.require("block_types")
        cmat = ctx.require("coeff_matrix")
        outliers = ctx.require("outlier_values")

        work = np.zeros(shape, dtype=np.float64)
        reg_i = 0
        out_pos = 0
        for b, sl in enumerate(_block_grid(shape, bs)):
            bshape = tuple(s.stop - s.start for s in sl)
            bcodes = codes[sl]
            if types[b] == _REGRESSION:
                qcoeffs = dequantize_coeffs(cmat[reg_i], p, bshape)
                reg_i += 1
                pred = eval_plane(qcoeffs, bshape)
                d_re = (pred + 2.0 * (bcodes - r) * p).astype(dtype)
                fail = bcodes == 0
                n_fail = int(fail.sum())
                block_out = np.asarray(d_re, dtype=np.float64)
                if n_fail:
                    block_out[fail] = outliers[
                        out_pos : out_pos + n_fail
                    ].astype(np.float64)
                    out_pos += n_fail
                work[sl] = block_out
            else:
                out_pos = _lorenzo_block_decode(
                    work, bcodes, sl, p, quant, dtype, outliers, out_pos
                )
        ctx.out = work.astype(dtype)


class _SZ20HeaderStage(HeaderStage):
    """SZ-2.0 header: block geometry and per-predictor block counts."""

    def __init__(self, compressor: "SZ20Compressor") -> None:
        super().__init__(with_quant=True)
        self._c = compressor

    def write_extra(self, ctx: PipelineContext) -> None:
        types = ctx.require("block_types")
        h = ctx.header
        h["block_size"] = self._c.block_size
        h["n_blocks"] = len(types)
        h["n_reg_blocks"] = int(sum(types))
        ctx.meta["n_blocks"] = len(types)
        ctx.meta["regression_fraction"] = (
            float(np.mean(types)) if types else 0.0
        )

    def read_extra(self, ctx: PipelineContext) -> None:
        h = ctx.header
        bs = header_int(h, "block_size", lo=1, hi=4096)
        n_blocks = header_int(h, "n_blocks", hi=MAX_FIELD_POINTS)
        expected_blocks = 1
        for s in ctx.shape:
            expected_blocks *= -(-s // bs)
        if n_blocks != expected_blocks:
            raise ContainerError(
                f"header declares {n_blocks} blocks, shape implies "
                f"{expected_blocks}"
            )


class _BlockTypesStage:
    """Per-block predictor selection bitmap (packed 1 bit per block)."""

    name = "block_types"

    def forward(self, ctx: PipelineContext) -> None:
        types_arr = np.array(ctx.require("block_types"), dtype=np.uint8)
        payload = np.packbits(types_arr).tobytes()
        ctx.container.add("block_types", payload)
        ctx.extra_bytes += len(payload)

    def inverse(self, ctx: PipelineContext) -> None:
        n_blocks = header_int(ctx.header, "n_blocks", hi=MAX_FIELD_POINTS)
        ctx.artifacts["block_types"] = np.unpackbits(
            np.frombuffer(ctx.container.get("block_types"), dtype=np.uint8),
            count=n_blocks,
        )


class _CoeffsStage:
    """Delta-coded regression-coefficient rows, gzipped when that wins."""

    name = "coeffs"

    def __init__(self, lossless: GzipStage) -> None:
        self.lossless = lossless

    def forward(self, ctx: PipelineContext) -> None:
        coeff_rows = ctx.require("coeff_rows")
        if coeff_rows:
            cmat = np.stack(coeff_rows)
            # Delta-code coefficient streams (adjacent blocks have similar
            # planes); int64 on the wire since intercept codes scale with
            # value/eb.
            deltas = np.diff(cmat, axis=0, prepend=cmat[:1] * 0)
            raw = deltas.astype("<i8").tobytes()
        else:
            raw = b""
        stored, use_gz = gzip_if_smaller(self.lossless, raw)
        ctx.container.add("coeffs", stored)
        ctx.header["coeffs_gz"] = use_gz
        ctx.extra_bytes += len(stored)

    def inverse(self, ctx: PipelineContext) -> None:
        h = ctx.header
        raw = ctx.container.get("coeffs")
        if h["coeffs_gz"]:
            raw = self.lossless.decompress(raw)
        n_blocks = header_int(h, "n_blocks", hi=MAX_FIELD_POINTS)
        n_reg = header_int(h, "n_reg_blocks", hi=n_blocks)
        ndimp1 = len(header_shape(h)) + 1
        if n_reg:
            deltas = np.frombuffer(raw, dtype="<i8").reshape(n_reg, ndimp1)
            cmat = np.cumsum(deltas, axis=0, dtype=np.int64)
        else:
            cmat = np.empty((0, ndimp1), dtype=np.int64)
        ctx.artifacts["coeff_matrix"] = cmat


class _OutliersStage:
    """Raw quantizer-overflow originals, raster order across blocks."""

    name = "outliers"

    def forward(self, ctx: PipelineContext) -> None:
        out_vals = ctx.require("outlier_values")
        ctx.container.add("outliers", out_vals.tobytes())
        ctx.header["n_outliers"] = int(out_vals.size)
        ctx.outlier_bytes = int(out_vals.size * out_vals.dtype.itemsize)
        ctx.n_unpredictable = int(out_vals.size)

    def inverse(self, ctx: PipelineContext) -> None:
        h = ctx.header
        ctx.artifacts["outlier_values"] = np.frombuffer(
            ctx.container.get("outliers"),
            dtype=header_dtype(h),
            count=int(h["n_outliers"]),
        )


@register_codec(
    name="SZ-2.0",
    aliases=("SZ-2.0+", "sz20"),
    table2="SZ-2.0+",
    spec=SZ20_SPEC,
    entropy_backends=("huffman", "rans", "auto"),
)
@dataclass(frozen=True)
class SZ20Compressor(PipelineCompressor):
    """Blockwise hybrid predictor with 16-bit linear-scaling quantization."""

    quant: QuantizerConfig = field(default_factory=QuantizerConfig)
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )
    block_size: int = 6
    #: ``codes_entropy`` backend (``huffman`` | ``rans`` | ``auto``).
    entropy: str = "huffman"

    name = "SZ-2.0"
    spec = SZ20_SPEC

    def build_stages(self) -> tuple[Stage, ...]:
        return (
            ValidateInputStage(_check_input),
            ResolveBoundStage(
                quant=self.quant,
                forbid_pw_rel="SZ-2.0 reproduction supports ABS/VR_REL bounds",
            ),
            _BlockHybridStage(self.quant, self.block_size),
            _SZ20HeaderStage(self),
            EntropyCodesStage(self.lossless, backend=self.entropy, meta_bits=False),
            _BlockTypesStage(),
            _CoeffsStage(self.lossless),
            _OutliersStage(),
        )
