"""SZ-2.0: blockwise hybrid Lorenzo / linear-regression compressor.

The modern SZ model (paper ref [32], Table 2 row "2.0+"): the field is
tiled into small blocks; each block is predicted either by the 1-layer
Lorenzo stencil (feedback over decompressed values, via the same local
wavefront schedule as everywhere else in this library) or by a
least-squares hyperplane whose quantized coefficients travel with the
stream (no feedback at all).  Residuals go through the standard
linear-scaling quantizer, so the absolute error bound holds regardless of
which predictor a block uses.

§2.1 of the waveSZ paper motivates building on SZ-1.4 rather than 2.0:
at the relatively *low* error bounds scientists ask for, 2.0's regression
rarely beats Lorenzo — the `bench_sz20_vs_sz14` bench measures exactly
that crossover on the synthetic datasets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..config import ErrorBoundMode, QuantizerConfig, resolve_error_bound
from ..errors import ContainerError, DTypeError, ShapeError, decode_guard
from ..io.container import Container
from ..lossless import GzipStage, LosslessMode
from ..streams import (
    MAX_FIELD_POINTS,
    bound_from_header,
    bound_to_header,
    build_stats,
    decode_codes_huffman,
    encode_codes_huffman,
    header_dtype,
    header_int,
    header_shape,
)
from ..types import CompressedField
from .lorenzo import neighbor_offsets
from .quantizer import quantize_vector
from .wavefront_index import interior_wavefronts

__all__ = ["SZ20Compressor"]

_LORENZO, _REGRESSION = 0, 1


def _block_grid(shape: tuple[int, ...], bs: int):
    """Yield (block_index, slices) over the field in raster order."""
    ranges = [range(0, n, bs) for n in shape]
    for starts in itertools.product(*ranges):
        yield tuple(
            slice(s, min(s + bs, n)) for s, n in zip(starts, shape)
        )


def _open_loop_lorenzo_padded(data: np.ndarray) -> np.ndarray:
    """Zero-halo open-loop Lorenzo prediction of every point (selection
    heuristic only — the real feedback loop runs per block)."""
    ext_shape = tuple(n + 1 for n in data.shape)
    ext = np.zeros(ext_shape)
    ext[tuple(slice(1, None) for _ in data.shape)] = data
    from .lorenzo import lorenzo_predict

    pred = lorenzo_predict(ext)
    return pred[tuple(slice(1, None) for _ in data.shape)]


@dataclass(frozen=True)
class SZ20Compressor:
    """Blockwise hybrid predictor with 16-bit linear-scaling quantization."""

    quant: QuantizerConfig = field(default_factory=QuantizerConfig)
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )
    block_size: int = 6

    name = "SZ-2.0"

    # ------------------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    ) -> CompressedField:
        from .regression import (
            dequantize_coeffs,
            eval_plane,
            fit_plane,
            quantize_coeffs,
        )

        data = np.ascontiguousarray(data)
        if data.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise DTypeError(f"SZ-2.0 supports float32/float64, got {data.dtype}")
        if data.ndim not in (2, 3):
            raise ShapeError(f"SZ-2.0 supports 2D/3D fields, got {data.ndim}D")
        bound = resolve_error_bound(data, eb, mode)
        if bound.mode is ErrorBoundMode.PW_REL:
            raise ShapeError("SZ-2.0 reproduction supports ABS/VR_REL bounds")
        p = bound.absolute
        dtype = data.dtype
        bs = self.block_size

        work = np.zeros(data.shape, dtype=np.float64)
        codes = np.zeros(data.shape, dtype=np.int64)
        orig = data.astype(np.float64)
        open_loop_err = np.abs(orig - _open_loop_lorenzo_padded(orig))

        types: list[int] = []
        coeff_rows: list[np.ndarray] = []
        outliers: list[np.ndarray] = []
        first_block = True

        for sl in _block_grid(data.shape, bs):
            block = orig[sl]
            fit = fit_plane(block)
            ccodes = quantize_coeffs(fit, p, block.shape)
            qcoeffs = dequantize_coeffs(ccodes, p, block.shape)
            pred_reg = eval_plane(qcoeffs, block.shape)
            err_reg = float(np.abs(block - pred_reg).mean())
            err_lor = float(open_loop_err[sl].mean())

            if err_reg < err_lor:
                types.append(_REGRESSION)
                coeff_rows.append(ccodes)
                wf_codes, d_out = quantize_vector(
                    block.reshape(-1), pred_reg.reshape(-1), p, self.quant, dtype
                )
                fail = wf_codes == 0
                if fail.any():
                    outliers.append(block.reshape(-1)[fail].astype(dtype))
                codes[sl] = wf_codes.reshape(block.shape)
                work[sl] = d_out.astype(np.float64).reshape(block.shape)
            else:
                types.append(_LORENZO)
                out_vals = self._lorenzo_block(
                    orig, work, codes, sl, p, dtype,
                    origin_verbatim=first_block,
                )
                if out_vals.size:
                    outliers.append(out_vals)
            first_block = False

        container = Container(
            header={
                "variant": self.name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "bound": bound_to_header(bound),
                "quant_bits": self.quant.bits,
                "reserved_bits": self.quant.reserved_bits,
                "block_size": bs,
                "n_blocks": len(types),
                "n_reg_blocks": int(sum(types)),
            }
        )
        encode_codes_huffman(container, codes.reshape(-1))
        table_bytes = len(container.get("huffman_table"))
        huff_payload = container.get("huffman_codes")
        gz_codes = self.lossless.compress(huff_payload)
        if len(gz_codes) < len(huff_payload):
            container.sections[:] = [
                s for s in container.sections if s.name != "huffman_codes"
            ]
            container.add("huffman_codes_gz", gz_codes)
            container.header["codes_gzipped"] = True
            huff_bytes = table_bytes + len(gz_codes)
        else:
            container.header["codes_gzipped"] = False
            huff_bytes = table_bytes + len(huff_payload)
        types_arr = np.array(types, dtype=np.uint8)
        container.add("block_types", np.packbits(types_arr).tobytes())

        if coeff_rows:
            cmat = np.stack(coeff_rows)
            # Delta-code coefficient streams (adjacent blocks have similar
            # planes); int64 on the wire since intercept codes scale with
            # value/eb.
            deltas = np.diff(cmat, axis=0, prepend=cmat[:1] * 0)
            raw = deltas.astype("<i8").tobytes()
        else:
            raw = b""
        gz = self.lossless.compress(raw) if raw else raw
        use_gz = bool(raw) and len(gz) < len(raw)
        container.add("coeffs", gz if use_gz else raw)
        container.header["coeffs_gz"] = use_gz
        coeff_bytes = len(gz) if use_gz else len(raw)

        out_vals = (
            np.concatenate(outliers) if outliers else np.empty(0, dtype=dtype)
        )
        container.add("outliers", out_vals.tobytes())
        container.header["n_outliers"] = int(out_vals.size)

        stats = build_stats(
            data=data,
            encoded_code_bytes=huff_bytes,
            outlier_bytes=out_vals.size * dtype.itemsize,
            border_bytes=0,
            n_unpredictable=int(out_vals.size),
            n_border=0,
            extra_bytes=coeff_bytes + len(container.get("block_types")),
        )
        return CompressedField(
            variant=self.name,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            bound=bound,
            quant=self.quant,
            payload=container.to_bytes(),
            stats=stats,
            meta={
                "n_blocks": len(types),
                "regression_fraction": float(np.mean(types)) if types else 0.0,
            },
        )

    def _lorenzo_block(
        self,
        orig: np.ndarray,
        work: np.ndarray,
        codes: np.ndarray,
        sl: tuple[slice, ...],
        p: float,
        dtype: np.dtype,
        *,
        origin_verbatim: bool,
    ) -> np.ndarray:
        """Closed-loop Lorenzo over one block; halo from decompressed
        neighbours (zero outside the field).  Returns outlier originals in
        local raster order."""
        bshape = tuple(s.stop - s.start for s in sl)
        ext_shape = tuple(n + 1 for n in bshape)
        lwork = np.zeros(ext_shape, dtype=np.float64)
        inner = tuple(slice(1, None) for _ in bshape)
        # Fill the halo faces from the global work array.
        for axis, s in enumerate(sl):
            if s.start == 0:
                continue  # field border: halo stays zero (padded semantics)
            src = list(sl)
            src[axis] = slice(s.start - 1, s.start)
            dst = [slice(1, None)] * len(sl)
            dst[axis] = slice(0, 1)
            # Halo corners/edges also need earlier-block values; widen the
            # source for already-handled axes.
            for prev_axis in range(axis):
                if sl[prev_axis].start > 0:
                    src[prev_axis] = slice(
                        sl[prev_axis].start - 1, sl[prev_axis].stop
                    )
                    dst[prev_axis] = slice(0, None)
            lwork[tuple(dst)] = work[tuple(src)]
        lorig = np.zeros(ext_shape, dtype=np.float64)
        lorig[inner] = orig[sl]

        lcodes = np.zeros(int(np.prod(ext_shape)), dtype=np.int64)
        lwork_flat = lwork.reshape(-1)
        lorig_flat = lorig.reshape(-1)
        offsets, signs = neighbor_offsets(ext_shape)
        outliers: list[np.ndarray] = []

        for k, idx in enumerate(interior_wavefronts(ext_shape)):
            if origin_verbatim and k == 0:
                # The field origin is stored verbatim (see pqd.py).
                lwork_flat[idx] = lorig_flat[idx]
                continue
            pred = signs[0] * lwork_flat[idx - offsets[0]]
            for m in range(1, offsets.size):
                pred += signs[m] * lwork_flat[idx - offsets[m]]
            d = lorig_flat[idx]
            wf_codes, d_out = quantize_vector(d, pred, p, self.quant, dtype)
            lcodes[idx] = wf_codes
            lwork_flat[idx] = d_out.astype(np.float64)

        lcodes = lcodes.reshape(ext_shape)[inner]
        codes[sl] = lcodes
        work[sl] = lwork[inner]
        fail_local = lcodes.reshape(-1) == 0
        if fail_local.any():
            outliers.append(orig[sl].reshape(-1)[fail_local].astype(dtype))
        return (
            np.concatenate(outliers) if outliers else np.empty(0, dtype=dtype)
        )

    # ------------------------------------------------------------------

    def decompress(self, compressed: CompressedField | bytes) -> np.ndarray:
        payload = (
            compressed.payload
            if isinstance(compressed, CompressedField)
            else compressed
        )
        with decode_guard(f"{self.name} payload"):
            return self._decompress(payload)

    def _decompress(self, payload: bytes) -> np.ndarray:
        from .regression import dequantize_coeffs, eval_plane

        container = Container.from_bytes(payload)
        h = container.header
        if h.get("variant") != self.name:
            raise ContainerError(
                f"payload was produced by {h.get('variant')!r}, not {self.name}"
            )
        shape = header_shape(h)
        dtype = header_dtype(h)
        bound = bound_from_header(h["bound"])
        quant = QuantizerConfig(
            bits=header_int(h, "quant_bits", lo=2, hi=32),
            reserved_bits=header_int(h, "reserved_bits"),
        )
        p = bound.absolute
        bs = header_int(h, "block_size", lo=1, hi=4096)
        n_blocks = header_int(h, "n_blocks", hi=MAX_FIELD_POINTS)
        expected_blocks = 1
        for s in shape:
            expected_blocks *= -(-s // bs)
        if n_blocks != expected_blocks:
            raise ContainerError(
                f"header declares {n_blocks} blocks, shape implies "
                f"{expected_blocks}"
            )
        r = quant.radius

        if h.get("codes_gzipped"):
            container.add(
                "huffman_codes",
                self.lossless.decompress(container.get("huffman_codes_gz")),
            )
        codes = decode_codes_huffman(container).reshape(shape)
        types = np.unpackbits(
            np.frombuffer(container.get("block_types"), dtype=np.uint8),
            count=n_blocks,
        )
        raw = container.get("coeffs")
        if h["coeffs_gz"]:
            raw = self.lossless.decompress(raw)
        n_reg = header_int(h, "n_reg_blocks", hi=n_blocks)
        ndimp1 = len(shape) + 1
        if n_reg:
            deltas = np.frombuffer(raw, dtype="<i8").reshape(n_reg, ndimp1)
            cmat = np.cumsum(deltas, axis=0, dtype=np.int64)
        else:
            cmat = np.empty((0, ndimp1), dtype=np.int64)
        outliers = np.frombuffer(
            container.get("outliers"),
            dtype=dtype,
            count=int(h["n_outliers"]),
        )

        work = np.zeros(shape, dtype=np.float64)
        reg_i = 0
        out_pos = 0
        for b, sl in enumerate(_block_grid(shape, bs)):
            bshape = tuple(s.stop - s.start for s in sl)
            bcodes = codes[sl]
            if types[b] == _REGRESSION:
                qcoeffs = dequantize_coeffs(cmat[reg_i], p, bshape)
                reg_i += 1
                pred = eval_plane(qcoeffs, bshape)
                d_re = (pred + 2.0 * (bcodes - r) * p).astype(dtype)
                fail = bcodes == 0
                n_fail = int(fail.sum())
                block_out = np.asarray(d_re, dtype=np.float64)
                if n_fail:
                    block_out[fail] = outliers[
                        out_pos : out_pos + n_fail
                    ].astype(np.float64)
                    out_pos += n_fail
                work[sl] = block_out
            else:
                out_pos = self._lorenzo_block_decode(
                    work, bcodes, sl, p, quant, dtype, outliers, out_pos
                )
        return work.astype(dtype)

    def _lorenzo_block_decode(
        self,
        work: np.ndarray,
        bcodes: np.ndarray,
        sl: tuple[slice, ...],
        p: float,
        quant: QuantizerConfig,
        dtype: np.dtype,
        outliers: np.ndarray,
        out_pos: int,
    ) -> int:
        bshape = bcodes.shape
        ext_shape = tuple(n + 1 for n in bshape)
        inner = tuple(slice(1, None) for _ in bshape)
        lwork = np.zeros(ext_shape, dtype=np.float64)
        for axis, s in enumerate(sl):
            if s.start == 0:
                continue
            src = list(sl)
            src[axis] = slice(s.start - 1, s.start)
            dst = [slice(1, None)] * len(sl)
            dst[axis] = slice(0, 1)
            for prev_axis in range(axis):
                if sl[prev_axis].start > 0:
                    src[prev_axis] = slice(
                        sl[prev_axis].start - 1, sl[prev_axis].stop
                    )
                    dst[prev_axis] = slice(0, None)
            lwork[tuple(dst)] = work[tuple(src)]

        lcodes = np.zeros(ext_shape, dtype=np.int64)
        lcodes[inner] = bcodes
        lcodes_flat = lcodes.reshape(-1)
        lwork_flat = lwork.reshape(-1)
        offsets, signs = neighbor_offsets(ext_shape)
        r = quant.radius

        # Scatter outliers (code 0 interior) before the sweep: they feed
        # later predictions.  Local raster order matches the encoder.
        fail_mask = np.zeros(int(np.prod(ext_shape)), dtype=bool)
        inner_flat = np.zeros(ext_shape, dtype=bool)
        inner_flat[inner] = True
        fail_mask = (lcodes_flat == 0) & inner_flat.reshape(-1)
        fail_idx = np.flatnonzero(fail_mask)
        n_fail = fail_idx.size
        if n_fail:
            lwork_flat[fail_idx] = outliers[
                out_pos : out_pos + n_fail
            ].astype(np.float64)
            out_pos += n_fail

        for idx in interior_wavefronts(ext_shape):
            c = lcodes_flat[idx]
            sel = c != 0
            if not sel.any():
                continue
            pred = signs[0] * lwork_flat[idx - offsets[0]]
            for m in range(1, offsets.size):
                pred += signs[m] * lwork_flat[idx - offsets[m]]
            d_re = (pred + 2.0 * (c - r) * p).astype(dtype)
            tgt = idx[sel]
            lwork_flat[tgt] = d_re[sel].astype(np.float64)

        work[sl] = lwork[inner]
        return out_pos
    # ------------------------------------------------------------------
