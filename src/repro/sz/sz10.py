"""SZ-1.0: bestfit curve-fitting compressor (the deprecated model, §2.2).

Each point of the linearized field is predicted by the three curve fits
over *decompressed* values; if the best prediction lands within the error
bound, only a 2-bit fit type is stored and the prediction itself becomes
the decompressed value.  Otherwise the point is unpredictable and stored
through truncation-based binary analysis.  No linear-scaling quantization
exists in this model — that is what SZ-1.4 added.

The closed loop along the 1D sequence is inherently sequential (each
prediction needs the previous decompressed values), so the engine is a
scalar loop; it is only used on the small Figure 1 / Table 1 workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ErrorBoundMode, resolve_error_bound
from ..errors import ContainerError, decode_guard
from ..io.container import Container
from ..lossless import GzipStage, LosslessMode
from ..streams import (
    MAX_FIELD_POINTS,
    bound_from_header,
    bound_to_header,
    build_stats,
    header_dtype,
    header_int,
    header_shape,
)
from ..encoding.huffman import HuffmanCodec, HuffmanTable
from ..types import CompressedField
from .unpredictable import decode_truncated, encode_truncated, truncate_roundtrip

__all__ = ["SZ10Compressor", "sz10_predict_loop"]

_UNPRED = 0  # fit-type symbols: 0 unpredictable, 1..3 = order 0..2


def sz10_predict_loop(
    seq: np.ndarray, precision: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-loop bestfit pass over a linearized sequence.

    Returns ``(fit_types, decompressed, pred_errors)``; ``pred_errors`` is
    the signed bestfit prediction error per point (NaN where no fit was
    attempted), the quantity plotted in Figure 1 for CF-SZ-1.0.
    """
    x = np.asarray(seq, dtype=np.float64).reshape(-1)
    n = x.size
    # Predictions are stored (and fed back) rounded to the field dtype so
    # the decompressor's recurrence reproduces them bit-exactly.
    cast = np.asarray(seq).dtype.type
    types = np.zeros(n, dtype=np.uint8)
    dec = np.empty(n, dtype=np.float64)
    errs = np.full(n, np.nan)
    stored = truncate_roundtrip(seq.reshape(-1), precision).astype(np.float64)
    for i in range(n):
        d = x[i]
        best_err = np.inf
        best_type = _UNPRED
        best_pred = 0.0
        if i >= 1:
            p0 = dec[i - 1]
            e0 = abs(d - p0)
            if e0 < best_err:
                best_err, best_type, best_pred = e0, 1, p0
        if i >= 2:
            p1 = 2.0 * dec[i - 1] - dec[i - 2]
            e1 = abs(d - p1)
            if e1 < best_err:
                best_err, best_type, best_pred = e1, 2, p1
        if i >= 3:
            p2 = 3.0 * dec[i - 1] - 3.0 * dec[i - 2] + dec[i - 3]
            e2 = abs(d - p2)
            if e2 < best_err:
                best_err, best_type, best_pred = e2, 3, p2
        if best_type != _UNPRED:
            errs[i] = d - best_pred
            stored_pred = float(cast(best_pred))
            if abs(d - stored_pred) <= precision:
                types[i] = best_type
                dec[i] = stored_pred
                continue
        types[i] = _UNPRED
        dec[i] = stored[i]
    return types, dec, errs


@dataclass(frozen=True)
class SZ10Compressor:
    """End-to-end SZ-1.0: 2-bit fit types + truncated unpredictables."""

    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )

    name = "SZ-1.0"

    def compress(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    ) -> CompressedField:
        data = np.ascontiguousarray(data)
        bound = resolve_error_bound(data, eb, mode)
        p = bound.absolute
        types, dec, _ = sz10_predict_loop(data, p)

        container = Container(
            header={
                "variant": self.name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "bound": bound_to_header(bound),
                "n_unpred": int((types == _UNPRED).sum()),
            }
        )
        table = HuffmanTable.from_symbols(types.astype(np.int64))
        codec = HuffmanCodec(table)
        payload, _ = codec.encode(types.astype(np.int64))
        gz = self.lossless.compress(payload)
        type_stream = gz if len(gz) < len(payload) else payload
        container.header["types_gzipped"] = len(gz) < len(payload)
        container.add("huffman_table", table.to_bytes())
        container.add("fit_types", type_stream)
        container.header["n_codes"] = int(types.size)

        unpred_vals = data.reshape(-1)[types == _UNPRED]
        unpred_stream = encode_truncated(unpred_vals, p)
        container.add("unpredictable", unpred_stream)

        stats = build_stats(
            data=data,
            encoded_code_bytes=len(type_stream) + len(table.to_bytes()),
            outlier_bytes=len(unpred_stream),
            border_bytes=0,
            n_unpredictable=int((types == _UNPRED).sum()),
            n_border=0,
        )
        return CompressedField(
            variant=self.name,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            bound=bound,
            quant=None,  # no linear-scaling quantizer in the 1.0 model
            payload=container.to_bytes(),
            stats=stats,
        )

    def decompress(self, compressed: CompressedField | bytes) -> np.ndarray:
        payload = (
            compressed.payload
            if isinstance(compressed, CompressedField)
            else compressed
        )
        with decode_guard(f"{self.name} payload"):
            return self._decompress(payload)

    def _decompress(self, payload: bytes) -> np.ndarray:
        container = Container.from_bytes(payload)
        h = container.header
        if h.get("variant") != self.name:
            raise ContainerError(
                f"payload was produced by {h.get('variant')!r}, not {self.name}"
            )
        shape = header_shape(h)
        dtype = header_dtype(h)
        bound = bound_from_header(h["bound"])
        p = bound.absolute
        n = header_int(h, "n_codes", hi=MAX_FIELD_POINTS)

        table, _ = HuffmanTable.from_bytes(container.get("huffman_table"))
        stream = container.get("fit_types")
        if h["types_gzipped"]:
            stream = self.lossless.decompress(stream)
        types = HuffmanCodec(table).decode(stream, n).astype(np.uint8)

        n_unpred = header_int(h, "n_unpred", hi=MAX_FIELD_POINTS)
        unpred = decode_truncated(
            container.get("unpredictable"), n_unpred, p, dtype
        ).astype(np.float64)

        cast = dtype.type
        dec = np.empty(n, dtype=np.float64)
        u = 0
        for i in range(n):
            t = types[i]
            if t == _UNPRED:
                dec[i] = unpred[u]
                u += 1
            elif t == 1:
                dec[i] = cast(dec[i - 1])
            elif t == 2:
                dec[i] = cast(2.0 * dec[i - 1] - dec[i - 2])
            else:
                dec[i] = cast(3.0 * dec[i - 1] - 3.0 * dec[i - 2] + dec[i - 3])
        return dec.reshape(shape).astype(dtype)
