"""SZ-1.0: bestfit curve-fitting compressor (the deprecated model, §2.2).

Each point of the linearized field is predicted by the three curve fits
over *decompressed* values; if the best prediction lands within the error
bound, only a 2-bit fit type is stored and the prediction itself becomes
the decompressed value.  Otherwise the point is unpredictable and stored
through truncation-based binary analysis.  No linear-scaling quantization
exists in this model — that is what SZ-1.4 added.

The closed loop along the 1D sequence is inherently sequential (each
prediction needs the previous decompressed values), so the engine is a
scalar loop; it is only used on the small Figure 1 / Table 1 workloads.

The bestfit loop and its fit-type/unpredictable streams are the
SZ-1.0-specific stages; bound resolution and header assembly come from
:mod:`repro.codec.stages`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codec.pipeline import PipelineCompressor, PipelineContext, Stage
from ..codec.registry import register_codec
from ..codec.spec import PipelineSpec, StageSpec
from ..codec.stages import HeaderStage, ResolveBoundStage, gzip_if_smaller
from ..encoding.huffman import HuffmanCodec, HuffmanTable
from ..lossless import GzipStage, LosslessMode
from ..streams import MAX_FIELD_POINTS, bound_from_header, header_dtype, header_int
from ..variants import Feature
from .unpredictable import decode_truncated, encode_truncated, truncate_roundtrip

__all__ = ["SZ10Compressor", "SZ10_SPEC", "sz10_predict_loop"]

_UNPRED = 0  # fit-type symbols: 0 unpredictable, 1..3 = order 0..2

SZ10_SPEC = PipelineSpec(
    variant="SZ-1.0",
    table2="SZ-0.1-1.0",
    stages=(
        StageSpec("bound"),
        StageSpec(
            "curvefit",
            frozenset(
                {
                    Feature.ORDER012,
                    Feature.OVERBOUND_CHECK_SW,
                    Feature.DECOMPRESSION_WRITEBACK,
                }
            ),
        ),
        StageSpec("header"),
        StageSpec(
            "type_entropy", frozenset({Feature.CUSTOM_HUFFMAN, Feature.GZIP})
        ),
        StageSpec("unpredictable"),
    ),
    # the repro Huffman-codes the 2-bit fit types (the original packed
    # them raw before gzip)
    extra=frozenset({Feature.CUSTOM_HUFFMAN}),
)


def sz10_predict_loop(
    seq: np.ndarray, precision: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-loop bestfit pass over a linearized sequence.

    Returns ``(fit_types, decompressed, pred_errors)``; ``pred_errors`` is
    the signed bestfit prediction error per point (NaN where no fit was
    attempted), the quantity plotted in Figure 1 for CF-SZ-1.0.
    """
    x = np.asarray(seq, dtype=np.float64).reshape(-1)
    n = x.size
    # Predictions are stored (and fed back) rounded to the field dtype so
    # the decompressor's recurrence reproduces them bit-exactly.
    cast = np.asarray(seq).dtype.type
    types = np.zeros(n, dtype=np.uint8)
    dec = np.empty(n, dtype=np.float64)
    errs = np.full(n, np.nan)
    stored = truncate_roundtrip(seq.reshape(-1), precision).astype(np.float64)
    for i in range(n):
        d = x[i]
        best_err = np.inf
        best_type = _UNPRED
        best_pred = 0.0
        if i >= 1:
            p0 = dec[i - 1]
            e0 = abs(d - p0)
            if e0 < best_err:
                best_err, best_type, best_pred = e0, 1, p0
        if i >= 2:
            p1 = 2.0 * dec[i - 1] - dec[i - 2]
            e1 = abs(d - p1)
            if e1 < best_err:
                best_err, best_type, best_pred = e1, 2, p1
        if i >= 3:
            p2 = 3.0 * dec[i - 1] - 3.0 * dec[i - 2] + dec[i - 3]
            e2 = abs(d - p2)
            if e2 < best_err:
                best_err, best_type, best_pred = e2, 3, p2
        if best_type != _UNPRED:
            errs[i] = d - best_pred
            stored_pred = float(cast(best_pred))
            if abs(d - stored_pred) <= precision:
                types[i] = best_type
                dec[i] = stored_pred
                continue
        types[i] = _UNPRED
        dec[i] = stored[i]
    return types, dec, errs


class _CurveFitStage:
    """The closed-loop bestfit pass and its decode recurrence."""

    name = "curvefit"

    def forward(self, ctx: PipelineContext) -> None:
        types, _, _ = sz10_predict_loop(ctx.data, ctx.bound.absolute)
        ctx.codes = types

    def inverse(self, ctx: PipelineContext) -> None:
        types = ctx.codes
        unpred = ctx.require("unpred_values")
        cast = ctx.dtype.type
        n = types.size
        dec = np.empty(n, dtype=np.float64)
        u = 0
        for i in range(n):
            t = types[i]
            if t == _UNPRED:
                dec[i] = unpred[u]
                u += 1
            elif t == 1:
                dec[i] = cast(dec[i - 1])
            elif t == 2:
                dec[i] = cast(2.0 * dec[i - 1] - dec[i - 2])
            else:
                dec[i] = cast(3.0 * dec[i - 1] - 3.0 * dec[i - 2] + dec[i - 3])
        ctx.out = dec.reshape(ctx.shape).astype(ctx.dtype)


class _SZ10HeaderStage(HeaderStage):
    """SZ-1.0 header: no quantizer, just the unpredictable count."""

    def __init__(self) -> None:
        super().__init__(with_quant=False)

    def write_extra(self, ctx: PipelineContext) -> None:
        ctx.header["n_unpred"] = int((ctx.codes == _UNPRED).sum())


class _TypeEntropyStage:
    """Huffman-coded fit types, gzipped when that wins."""

    name = "type_entropy"

    def __init__(self, lossless: GzipStage) -> None:
        self.lossless = lossless

    def forward(self, ctx: PipelineContext) -> None:
        container = ctx.container
        types = ctx.codes
        table = HuffmanTable.from_symbols(types.astype(np.int64))
        payload, _ = HuffmanCodec(table).encode(types.astype(np.int64))
        type_stream, use_gz = gzip_if_smaller(self.lossless, payload)
        container.header["types_gzipped"] = use_gz
        container.add("huffman_table", table.to_bytes())
        container.add("fit_types", type_stream)
        container.header["n_codes"] = int(types.size)
        ctx.encoded_code_bytes = len(type_stream) + len(table.to_bytes())

    def inverse(self, ctx: PipelineContext) -> None:
        container = ctx.container
        h = ctx.header
        n = header_int(h, "n_codes", hi=MAX_FIELD_POINTS)
        table, _ = HuffmanTable.from_bytes(container.get("huffman_table"))
        stream = container.get("fit_types")
        if h["types_gzipped"]:
            stream = self.lossless.decompress(stream)
        ctx.codes = HuffmanCodec(table).decode(stream, n).astype(np.uint8)


class _UnpredictableStage:
    """Truncation-coded unpredictable originals (§2.2's binary analysis)."""

    name = "unpredictable"

    def forward(self, ctx: PipelineContext) -> None:
        p = ctx.bound.absolute
        unpred_vals = ctx.data.reshape(-1)[ctx.codes == _UNPRED]
        unpred_stream = encode_truncated(unpred_vals, p)
        ctx.container.add("unpredictable", unpred_stream)
        ctx.outlier_bytes = len(unpred_stream)
        ctx.n_unpredictable = int(unpred_vals.size)

    def inverse(self, ctx: PipelineContext) -> None:
        h = ctx.header
        p = bound_from_header(h["bound"]).absolute
        dtype = header_dtype(h)
        n_unpred = header_int(h, "n_unpred", hi=MAX_FIELD_POINTS)
        ctx.artifacts["unpred_values"] = decode_truncated(
            ctx.container.get("unpredictable"), n_unpred, p, dtype
        ).astype(np.float64)


@register_codec(
    name="SZ-1.0",
    aliases=("SZ-0.1-1.0", "sz10"),
    table2="SZ-0.1-1.0",
    spec=SZ10_SPEC,
)
@dataclass(frozen=True)
class SZ10Compressor(PipelineCompressor):
    """End-to-end SZ-1.0: 2-bit fit types + truncated unpredictables."""

    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )

    name = "SZ-1.0"
    spec = SZ10_SPEC

    def build_stages(self) -> tuple[Stage, ...]:
        return (
            ResolveBoundStage(),
            _CurveFitStage(),
            _SZ10HeaderStage(),
            _TypeEntropyStage(self.lossless),
            _UnpredictableStage(),
        )
