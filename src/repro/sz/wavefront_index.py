"""Per-wavefront flat-index precompute.

§3.1 of the paper: all points with equal Manhattan distance from the pivot
are mutually independent under the Lorenzo stencil, so the PQD engine can
process one wavefront at a time with vector operations and full feedback
correctness.  This module enumerates, for each Manhattan distance ``s``,
the C-order flat indices of the *interior* points (every coordinate >= 1,
since distance-1 neighbours must exist) on that wavefront.

Index sets are arithmetic progressions:

* 2D ``(n0, n1)``: on wavefront ``s``, point ``(i, s-i)`` flattens to
  ``s + i*(n1-1)``.
* 3D ``(n0, n1, n2)``: for fixed ``i``, point ``(i, j, s-i-j)`` flattens to
  ``i*n1*n2 + (s-i) + j*(n2-1)`` — one progression per ``(s, i)`` pair.

Results are cached per shape (the engines call this for every field of a
dataset with identical dims).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ShapeError

__all__ = ["interior_wavefronts", "border_indices", "manhattan_grid"]


@lru_cache(maxsize=64)
def interior_wavefronts(
    shape: tuple[int, ...], margin: int = 1
) -> tuple[np.ndarray, ...]:
    """Flat indices of interior points, grouped by Manhattan distance.

    Returns a tuple ``W`` where ``W[k]`` holds the indices on the k-th
    non-empty interior wavefront, in increasing wavefront order.  Iterating
    the groups in order and vectorizing within each group respects every
    Lorenzo dependency (each point's neighbours lie on strictly earlier
    wavefronts or on the border).

    ``margin`` is the border width a stencil needs: interior points have
    every coordinate >= margin (a k-layer Lorenzo stencil needs
    margin = k).
    """
    ndim = len(shape)
    if margin < 1:
        raise ShapeError(f"margin must be >= 1, got {margin}")
    if ndim == 1:
        (n0,) = shape
        # 1D wavefronts are single points; group them singly to preserve
        # the sequential dependency of the order-1 chain.
        return tuple(
            np.array([i], dtype=np.int64) for i in range(margin, n0)
        )
    if ndim == 2:
        n0, n1 = shape
        out: list[np.ndarray] = []
        for s in range(2 * margin, n0 + n1 - 1):
            i_lo = max(margin, s - (n1 - 1))
            i_hi = min(n0 - 1, s - margin)
            if i_lo > i_hi:
                continue
            i = np.arange(i_lo, i_hi + 1, dtype=np.int64)
            out.append(s + i * (n1 - 1))
        return tuple(out)
    if ndim == 3:
        n0, n1, n2 = shape
        plane = n1 * n2
        out = []
        for s in range(3 * margin, n0 + n1 + n2 - 2):
            segs: list[np.ndarray] = []
            i_lo = max(margin, s - (n1 - 1) - (n2 - 1))
            i_hi = min(n0 - 1, s - 2 * margin)
            for i in range(i_lo, i_hi + 1):
                rem = s - i  # j + k
                j_lo = max(margin, rem - (n2 - 1))
                j_hi = min(n1 - 1, rem - margin)
                if j_lo > j_hi:
                    continue
                j = np.arange(j_lo, j_hi + 1, dtype=np.int64)
                segs.append(i * plane + rem + j * (n2 - 1))
            if segs:
                out.append(np.concatenate(segs))
        return tuple(out)
    raise ShapeError(f"wavefront iteration supports 1-3 dimensions, got {ndim}")


@lru_cache(maxsize=32)
def border_indices(shape: tuple[int, ...]) -> np.ndarray:
    """Flat indices of border points (any coordinate == 0), in raster order.

    These are the points the Lorenzo stencil cannot fully reach; the paper
    model marks them unpredictable (SZ: truncation analysis; waveSZ:
    verbatim to gzip).
    """
    grid = np.indices(shape)
    mask = (grid == 0).any(axis=0)
    return np.flatnonzero(mask.reshape(-1)).astype(np.int64)


def manhattan_grid(shape: tuple[int, ...]) -> np.ndarray:
    """Manhattan distance of every point from the pivot (Figures 3b/5b)."""
    grid = np.indices(shape)
    return grid.sum(axis=0)
