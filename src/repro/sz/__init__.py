"""SZ software baselines: SZ-1.4 (Lorenzo) and SZ-1.0 (1D curve fitting).

This package implements the prediction-based SZ compression model the paper
builds on (§2.1): data prediction over *decompressed* neighbour values,
linear-scaling quantization (Algorithm 1), customized Huffman encoding and a
gzip lossless stage.

* :mod:`repro.sz.lorenzo` — 1-layer Lorenzo predictors (1D/2D/3D).
* :mod:`repro.sz.quantizer` — Algorithm 1, scalar reference + vectorized.
* :mod:`repro.sz.unpredictable` — truncation-based binary analysis used by
  SZ for unpredictable points.
* :mod:`repro.sz.wavefront_index` — per-wavefront flat-index precompute
  (the dependency-free sets of §3.1, reused by every engine).
* :mod:`repro.sz.pqd` — the prediction→quantization→decompression engine
  with decompressed-value feedback.
* :mod:`repro.sz.dualquant` — the two-phase dual-quant engine (cuSZ-style
  prequantization + data-parallel integer Lorenzo, no feedback loop).
* :mod:`repro.sz.sz14` / :mod:`repro.sz.sz10` — end-to-end compressors.
* :mod:`repro.sz.curvefit` — Order-{0,1,2} 1D curve fitting (SZ-1.0).
"""

from .dualquant import DualQuantResult, dq_compress, dq_decompress
from .lorenzo import lorenzo_predict, neighbor_offsets
from .pqd import PQDResult, pqd_compress, pqd_decompress
from .quantizer import quantize_scalar, quantize_vector, reconstruct
from .sz10 import SZ10Compressor
from .sz14 import SZ14Compressor
from .sz20 import SZ20Compressor
from .unpredictable import decode_truncated, encode_truncated

__all__ = [
    "lorenzo_predict",
    "neighbor_offsets",
    "PQDResult",
    "pqd_compress",
    "pqd_decompress",
    "DualQuantResult",
    "dq_compress",
    "dq_decompress",
    "quantize_scalar",
    "quantize_vector",
    "reconstruct",
    "SZ10Compressor",
    "SZ14Compressor",
    "SZ20Compressor",
    "encode_truncated",
    "decode_truncated",
]
