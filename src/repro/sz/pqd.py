"""Prediction → Quantization → Decompression (PQD) engine with feedback.

This is the closed loop at the heart of the SZ model (§2.1): each point is
predicted from the *decompressed* values of its neighbours, so compression
must interleave prediction, quantization and in-place decompression.  The
engine iterates Manhattan-distance wavefronts (§3.1) — the points within a
wavefront are mutually independent, so each wavefront is one batch of
vector operations while the loop across wavefronts carries the feedback.

Processing order does not change the result: any schedule that respects the
dependency partial order produces identical codes, which is precisely the
property waveSZ exploits on the FPGA (and which the test-suite checks by
comparing this engine against a naive raster-order scalar loop).

Border handling selects the variant:

* ``truncate`` — SZ-1.4 paper model: borders and failed points stored via
  truncation-based binary analysis (their *truncated* values feed back).
* ``verbatim`` — waveSZ: borders/failed points stored as raw floats
  (exact values feed back), later swallowed by gzip.
* ``padded``   — production-style ablation: a virtual zero halo makes every
  real point predictable (first row degrades to 1D Lorenzo, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..config import QuantizerConfig
from ..errors import DTypeError, ShapeError
from ..kernels import register_kernel, resolve
from .lorenzo import neighbor_offsets, stencil_predict
from .quantizer import quantize_vector
from .unpredictable import truncate_roundtrip
from .wavefront_index import border_indices, interior_wavefronts

__all__ = ["PQDResult", "pqd_compress", "pqd_decompress", "BorderMode"]

BorderMode = Literal["truncate", "verbatim", "padded"]

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _check_input(data: np.ndarray) -> np.ndarray:
    data = np.ascontiguousarray(data)
    if data.dtype not in _SUPPORTED_DTYPES:
        raise DTypeError(f"PQD engine supports float32/float64, got {data.dtype}")
    if data.ndim not in (1, 2, 3):
        raise ShapeError(f"PQD engine supports 1-3 dimensions, got {data.ndim}")
    if data.size == 0:
        raise ShapeError("cannot compress an empty field")
    if min(data.shape) < 2 and data.ndim > 1:
        raise ShapeError(f"each dimension must be >= 2, got {data.shape}")
    return data


@dataclass(frozen=True)
class PQDResult:
    """Everything the PQD loop produces for one field.

    ``codes`` covers every point (0 = not quantized: border or outlier);
    ``decompressed`` is exactly what the decompressor will reconstruct;
    value streams are in raster order of their positions.
    """

    codes: np.ndarray  # int64, field shape
    decompressed: np.ndarray  # field dtype, field shape
    border_mask: np.ndarray  # bool, field shape
    outlier_mask: np.ndarray  # bool, field shape (interior code==0)
    border_values: np.ndarray  # original values at borders (raster order)
    outlier_values: np.ndarray  # original values at outliers (raster order)

    @property
    def n_border(self) -> int:
        return int(self.border_mask.sum())

    @property
    def n_outliers(self) -> int:
        return int(self.outlier_mask.sum())


def _pad_shape(shape: tuple[int, ...], width: int = 1) -> tuple[int, ...]:
    return tuple(n + width for n in shape)


def _interior_view(ext: np.ndarray, width: int = 1) -> np.ndarray:
    """The original-field region of a zero-halo extended array."""
    sl = tuple(slice(width, None) for _ in range(ext.ndim))
    return ext[sl]


def pqd_compress(
    data: np.ndarray,
    precision: float,
    quant: QuantizerConfig,
    *,
    border: BorderMode = "truncate",
    layers: int = 1,
) -> PQDResult:
    """Run the closed PQD loop over ``data``; see module docstring.

    ``layers`` selects the Lorenzo stencil depth; multi-layer stencils
    need a halo of the same width, so they require ``border="padded"``.
    """
    data = _check_input(data)
    if layers != 1 and border != "padded":
        raise ShapeError("multi-layer Lorenzo requires border='padded'")
    if layers != 1 and min(data.shape) <= layers:
        raise ShapeError(
            f"field {data.shape} too small for a {layers}-layer stencil"
        )
    dtype = data.dtype
    shape = data.shape
    flat = data.reshape(-1)

    if border == "padded":
        eff_shape = _pad_shape(shape, layers)
        work = np.zeros(eff_shape, dtype=np.float64)
        orig = np.zeros(eff_shape, dtype=np.float64)
        _interior_view(orig, layers)[...] = data
        orig_flat = orig.reshape(-1)
        work_flat = work.reshape(-1)
        border_idx = np.empty(0, dtype=np.int64)
    else:
        eff_shape = shape
        work_flat = np.zeros(flat.size, dtype=np.float64)
        orig_flat = flat.astype(np.float64)
        border_idx = border_indices(shape)

    codes_flat = np.zeros(int(np.prod(eff_shape)), dtype=np.int64)

    if border == "truncate":
        transform = lambda v: truncate_roundtrip(v.astype(dtype), precision)
    else:  # verbatim / padded store exact originals
        transform = lambda v: v.astype(dtype)

    if border_idx.size:
        stored_border = transform(orig_flat[border_idx])
        work_flat[border_idx] = stored_border.astype(np.float64)

    margin = layers if border == "padded" else 1
    resolve("pqd.compress_sweep")(
        work_flat,
        orig_flat,
        codes_flat,
        eff_shape=eff_shape,
        margin=margin,
        layers=layers,
        precision=precision,
        quant=quant,
        dtype=dtype,
        transform=transform,
        skip_first=border == "padded",
    )

    if border == "padded":
        codes = codes_flat.reshape(eff_shape)
        codes = _interior_view(codes, layers).copy()
        decompressed = _interior_view(
            work_flat.reshape(eff_shape), layers
        ).astype(dtype)
        border_mask = np.zeros(shape, dtype=bool)
    else:
        codes = codes_flat.reshape(shape)
        decompressed = work_flat.reshape(shape).astype(dtype)
        border_mask = np.zeros(flat.size, dtype=bool)
        border_mask[border_idx] = True
        border_mask = border_mask.reshape(shape)

    outlier_mask = (codes == 0) & ~border_mask
    out_idx = np.flatnonzero(outlier_mask.reshape(-1))
    return PQDResult(
        codes=codes,
        decompressed=decompressed,
        border_mask=border_mask,
        outlier_mask=outlier_mask,
        border_values=flat[border_indices(shape)]
        if border != "padded"
        else np.empty(0, dtype=dtype),
        outlier_values=flat[out_idx],
    )


def pqd_decompress(
    codes: np.ndarray,
    border_stored: np.ndarray,
    outlier_stored: np.ndarray,
    *,
    precision: float,
    quant: QuantizerConfig,
    dtype: np.dtype,
    border: BorderMode = "truncate",
    layers: int = 1,
) -> np.ndarray:
    """Reconstruct a field from quant codes and stored border/outlier values.

    ``border_stored`` / ``outlier_stored`` must hold the values *as stored*
    (truncated for the SZ path, exact for waveSZ), in raster order of their
    positions.
    """
    shape = tuple(codes.shape)
    dtype = np.dtype(dtype)

    if layers != 1 and border != "padded":
        raise ShapeError("multi-layer Lorenzo requires border='padded'")
    if border == "padded":
        eff_shape = _pad_shape(shape, layers)
        work = np.zeros(eff_shape, dtype=np.float64)
        codes_ext = np.zeros(eff_shape, dtype=np.int64)
        _interior_view(codes_ext, layers)[...] = codes
        codes_flat = codes_ext.reshape(-1)
        border_idx = np.empty(0, dtype=np.int64)
        # Raster order of outliers in the extended array matches raster
        # order in the original array (the halo is never an outlier).
        out_idx = np.flatnonzero(
            (codes_ext == 0) & ~_halo_mask(eff_shape, layers)
        )
        work_flat = work.reshape(-1)
    else:
        eff_shape = shape
        codes_flat = codes.reshape(-1).astype(np.int64)
        border_idx = border_indices(shape)
        work_flat = np.zeros(codes_flat.size, dtype=np.float64)
        is_border = np.zeros(codes_flat.size, dtype=bool)
        is_border[border_idx] = True
        out_idx = np.flatnonzero((codes_flat == 0) & ~is_border)

    if border_idx.size != border_stored.size and border != "padded":
        raise ShapeError(
            f"border stream has {border_stored.size} values, expected {border_idx.size}"
        )
    if out_idx.size != outlier_stored.size:
        raise ShapeError(
            f"outlier stream has {outlier_stored.size} values, expected {out_idx.size}"
        )

    if border_idx.size:
        work_flat[border_idx] = border_stored.astype(np.float64)
    if out_idx.size:
        work_flat[out_idx] = outlier_stored.astype(np.float64)

    margin = layers if border == "padded" else 1
    resolve("pqd.decompress_sweep")(
        work_flat,
        codes_flat,
        eff_shape=eff_shape,
        margin=margin,
        layers=layers,
        precision=precision,
        quant=quant,
        dtype=dtype,
    )

    if border == "padded":
        return _interior_view(
            work_flat.reshape(eff_shape), layers
        ).astype(dtype)
    return work_flat.reshape(shape).astype(dtype)


def _halo_mask(eff_shape: tuple[int, ...], width: int = 1) -> np.ndarray:
    """Boolean mask of the zero-halo cells of an extended array."""
    grid = np.indices(eff_shape)
    return (grid < width).any(axis=0)


def _compress_sweep_reference(
    work_flat: np.ndarray,
    orig_flat: np.ndarray,
    codes_flat: np.ndarray,
    *,
    eff_shape: tuple[int, ...],
    margin: int,
    layers: int,
    precision: float,
    quant: QuantizerConfig,
    dtype: np.dtype,
    transform,
    skip_first: bool,
) -> None:
    """The closed PQD loop over interior wavefronts (feedback carrier).

    Mutates ``work_flat`` (decompressed feedback values) and
    ``codes_flat`` in place; the ``pqd.compress_sweep`` kernel contract.
    """
    offsets, signs = neighbor_offsets(eff_shape, layers)
    for k, idx in enumerate(interior_wavefronts(eff_shape, margin)):
        if skip_first and k == 0:
            # The first wavefront of the extended array is the single point
            # (1,...,1) — the field's origin.  Production SZ stores the very
            # first point verbatim rather than predicting it from nothing;
            # this also prevents the zero halo from placing every
            # reconstruction on an exact k*2p lattice (an artifact that
            # would make constant regions reproduce exactly and inflate
            # PSNR for power-of-two bounds).
            work_flat[idx] = transform(orig_flat[idx]).astype(np.float64)
            continue  # codes stay 0 -> stored through the outlier stream
        pred = stencil_predict(work_flat, idx, offsets, signs)
        d = orig_flat[idx]
        wf_codes, d_out = quantize_vector(d, pred, precision, quant, dtype)
        fail = wf_codes == 0
        if fail.any():
            d_out = d_out.copy()
            d_out[fail] = transform(d[fail])
        codes_flat[idx] = wf_codes
        work_flat[idx] = d_out.astype(np.float64)


def _decompress_sweep_reference(
    work_flat: np.ndarray,
    codes_flat: np.ndarray,
    *,
    eff_shape: tuple[int, ...],
    margin: int,
    layers: int,
    precision: float,
    quant: QuantizerConfig,
    dtype: np.dtype,
) -> None:
    """Reconstruction sweep: codes + preset border/outlier values → field.

    Mutates ``work_flat`` in place; the ``pqd.decompress_sweep`` kernel
    contract.  Points with code 0 keep their preset values.
    """
    offsets, signs = neighbor_offsets(eff_shape, layers)
    r = quant.radius
    for idx in interior_wavefronts(eff_shape, margin):
        pred = stencil_predict(work_flat, idx, offsets, signs)
        c = codes_flat[idx]
        d_re = (pred + 2.0 * (c - r) * precision).astype(dtype)
        sel = c != 0
        tgt = idx[sel]
        work_flat[tgt] = d_re[sel].astype(np.float64)


register_kernel(
    "pqd.compress_sweep",
    _compress_sweep_reference,
    fast="repro.kernels.pqd_fast:compress_sweep",
)
register_kernel(
    "pqd.decompress_sweep",
    _decompress_sweep_reference,
    fast="repro.kernels.pqd_fast:decompress_sweep",
)
