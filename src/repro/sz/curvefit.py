"""Order-{0,1,2} 1D curve-fitting predictors (SZ-1.0, §2.2).

SZ-1.0 linearizes the multidimensional field and predicts each value along
the 1D sequence with three fits over *decompressed* neighbour values:

* order 0 (previous-value):  ``P = v[i-1]``
* order 1 (linear):          ``P = 2 v[i-1] - v[i-2]``
* order 2 (quadratic):       ``P = 3 v[i-1] - 3 v[i-2] + v[i-3]``

The bestfit (smallest |error|) is chosen per point.  Because the fits look
along one dimension only, prediction accuracy on 2D/3D data is much lower
than the Lorenzo predictor's — that is Figure 1 and the root cause of
GhostSZ's low compression ratios (Table 1).

Open-loop forms (:func:`curvefit_predict`, :func:`bestfit_predict`) are
vectorized and feed the Figure 1 analysis; the closed-loop compressor
lives in :mod:`repro.sz.sz10`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["curvefit_predict", "bestfit_predict", "CURVEFIT_WORKLOADS"]

#: Relative computational workload of each fit (adds+muls); the quadratic
#: fit costs twice the linear fit — the load-imbalance GhostSZ suffers from
#: on its three FPGA prediction units (§2.2 item 3).
CURVEFIT_WORKLOADS = {0: 1, 1: 2, 2: 4}


def curvefit_predict(seq: np.ndarray, order: int) -> np.ndarray:
    """Open-loop order-``order`` prediction of a 1D sequence.

    Entries without enough history are NaN.  Input is treated as the
    neighbour basis directly (original values), which isolates predictor
    quality from quantization feedback for the Figure 1 study.
    """
    seq = np.asarray(seq, dtype=np.float64).reshape(-1)
    pred = np.full(seq.shape, np.nan)
    if order == 0:
        pred[1:] = seq[:-1]
    elif order == 1:
        pred[2:] = 2.0 * seq[1:-1] - seq[:-2]
    elif order == 2:
        pred[3:] = 3.0 * seq[2:-1] - 3.0 * seq[1:-2] + seq[:-3]
    else:
        raise ConfigError(f"curve-fitting order must be 0, 1 or 2, got {order}")
    return pred


def bestfit_predict(seq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Open-loop bestfit among the three orders.

    Returns ``(pred, order)`` where ``order[i]`` is the fit with the
    smallest absolute error at ``i`` (NaN predictions never win).  This is
    the idealized CF quality bound — the closed-loop engines can only do
    worse.
    """
    seq = np.asarray(seq, dtype=np.float64).reshape(-1)
    preds = np.stack([curvefit_predict(seq, k) for k in range(3)])
    err = np.abs(preds - seq)
    err = np.where(np.isnan(err), np.inf, err)
    order = err.argmin(axis=0)
    pred = preds[order, np.arange(seq.size)]
    return pred, order
