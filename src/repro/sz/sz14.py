"""SZ-1.4 end-to-end compressor (the CPU baseline of the paper).

Pipeline (§2.1): Lorenzo prediction over decompressed neighbours →
linear-scaling quantization (16-bit bins by default) → customized Huffman
encoding → gzip in ``best_speed`` mode.  Unpredictable points — quantizer
overflows and, in the paper's model, the first-row/column border — are
stored via truncation-based binary analysis.

All stages are the shared :mod:`repro.codec.stages` implementations;
SZ-1.4 contributes only its header fields and the stage selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codec.pipeline import PipelineCompressor, PipelineContext, Stage
from ..codec.registry import register_codec
from ..codec.spec import PipelineSpec, StageSpec
from ..codec.stages import (
    EntropyCodesStage,
    HeaderStage,
    PQDStage,
    PwRelForwardStage,
    PwRelMasksStage,
    ResolveBoundStage,
    TruncatedValuesStage,
)
from ..config import QuantizerConfig
from ..lossless import GzipStage, LosslessMode
from ..variants import Feature
from .pqd import BorderMode

__all__ = ["SZ14Compressor", "SZ14_SPEC"]

SZ14_SPEC = PipelineSpec(
    variant="SZ-1.4",
    table2="SZ-1.4",
    stages=(
        StageSpec("bound"),
        StageSpec("pw_rel_log", frozenset({Feature.LOG_TRANSFORM})),
        StageSpec(
            "pqd",
            frozenset(
                {
                    Feature.LORENZO,
                    Feature.QUANTIZATION,
                    Feature.DECOMPRESSION_WRITEBACK,
                    Feature.OVERBOUND_CHECK_SW,
                }
            ),
        ),
        StageSpec("header"),
        StageSpec(
            "codes_entropy", frozenset({Feature.CUSTOM_HUFFMAN, Feature.GZIP})
        ),
        StageSpec("values"),
        StageSpec("pw_rel_masks"),
    ),
    # the repro predicts borders with lower-dimensional Lorenzo
    # degenerations instead of SZ-1.4's fixed-size blocking
    unmodeled=frozenset({Feature.BLOCKING}),
    # PW_REL support via the SZ-2.0 logarithmic transform is carried
    # beyond the SZ-1.4 Table 2 row
    extra=frozenset({Feature.LOG_TRANSFORM}),
)


class _SZ14HeaderStage(HeaderStage):
    """SZ-1.4 header: border policy, stencil depth, stream counts."""

    def __init__(self, compressor: "SZ14Compressor") -> None:
        super().__init__(with_quant=True)
        self._c = compressor

    def write_extra(self, ctx: PipelineContext) -> None:
        res = ctx.require("pqd")
        ctx.header["border"] = self._c.border
        ctx.header["layers"] = self._c.layers
        ctx.header["n_border"] = res.n_border
        ctx.header["n_outliers"] = res.n_outliers
        ctx.meta["decompressed_checks"] = True
        ctx.meta["lossless_mode"] = self._c.lossless.mode.value


@register_codec(
    name="SZ-1.4",
    aliases=("sz14",),
    profiles={
        "sz14-rans": lambda: SZ14Compressor(entropy="rans"),
    },
    table2="SZ-1.4",
    spec=SZ14_SPEC,
    entropy_backends=("huffman", "rans", "auto"),
)
@dataclass(frozen=True)
class SZ14Compressor(PipelineCompressor):
    """The SZ-1.4 software baseline.

    Defaults match the paper's evaluation setup (§4.1): 16-bit
    quantization, best_compression SZ mode is represented by the Lorenzo
    predictor itself, gzip at best_speed, VR-REL error bounds.
    """

    quant: QuantizerConfig = field(default_factory=QuantizerConfig)
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )
    #: "padded" is production SZ-1.4 behaviour (borders predicted with the
    #: lower-dimensional Lorenzo degenerations, only the origin stored
    #: verbatim); "truncate" is the paper's §3.2 description of the original
    #: model (whole first row/column unpredictable, truncation-coded) and
    #: is kept for the border-handling ablation bench.
    border: BorderMode = "padded"
    #: Lorenzo stencil depth (SZ-1.4's multi-layer option); layers > 1
    #: requires the padded border policy.
    layers: int = 1
    #: ``codes_entropy`` backend (``huffman`` | ``rans`` | ``auto``).
    entropy: str = "huffman"

    name = "SZ-1.4"
    spec = SZ14_SPEC

    def build_stages(self) -> tuple[Stage, ...]:
        return (
            ResolveBoundStage(quant=self.quant),
            PwRelForwardStage(self.lossless),
            PQDStage(border=self.border, layers=self.layers, from_header=True),
            _SZ14HeaderStage(self),
            EntropyCodesStage(self.lossless, backend=self.entropy),
            TruncatedValuesStage(border=self.border),
            PwRelMasksStage(self.lossless),
        )
