"""SZ-1.4 end-to-end compressor (the CPU baseline of the paper).

Pipeline (§2.1): Lorenzo prediction over decompressed neighbours →
linear-scaling quantization (16-bit bins by default) → customized Huffman
encoding → gzip in ``best_speed`` mode.  Unpredictable points — quantizer
overflows and, in the paper's model, the first-row/column border — are
stored via truncation-based binary analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ErrorBoundMode, QuantizerConfig, resolve_error_bound
from ..errors import ContainerError, decode_guard
from ..io.container import Container
from ..lossless import GzipStage, LosslessMode
from ..streams import (
    MAX_FIELD_POINTS,
    bound_from_header,
    bound_to_header,
    build_stats,
    decode_codes_huffman,
    encode_codes_huffman,
    header_dtype,
    header_int,
    header_shape,
)
from ..types import CompressedField
from .pqd import BorderMode, pqd_compress, pqd_decompress
from .preprocess import LogTransform, forward_log2, inverse_log2
from .unpredictable import decode_truncated, encode_truncated

__all__ = ["SZ14Compressor"]


@dataclass(frozen=True)
class SZ14Compressor:
    """The SZ-1.4 software baseline.

    Defaults match the paper's evaluation setup (§4.1): 16-bit
    quantization, best_compression SZ mode is represented by the Lorenzo
    predictor itself, gzip at best_speed, VR-REL error bounds.
    """

    quant: QuantizerConfig = field(default_factory=QuantizerConfig)
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )
    #: "padded" is production SZ-1.4 behaviour (borders predicted with the
    #: lower-dimensional Lorenzo degenerations, only the origin stored
    #: verbatim); "truncate" is the paper's §3.2 description of the original
    #: model (whole first row/column unpredictable, truncation-coded) and
    #: is kept for the border-handling ablation bench.
    border: BorderMode = "padded"
    #: Lorenzo stencil depth (SZ-1.4's multi-layer option); layers > 1
    #: requires the padded border policy.
    layers: int = 1

    name = "SZ-1.4"

    def compress(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    ) -> CompressedField:
        """Compress a 1-3D float field under the given error bound."""
        data = np.ascontiguousarray(data)
        bound = resolve_error_bound(data, eb, mode)
        p = bound.absolute

        # Pointwise-relative bounds run through the SZ-2.0 logarithmic
        # transform (Table 2): compress log2|d| under an ABS bound, carry
        # sign/zero bitmaps as side channels.
        transform: LogTransform | None = None
        work_field = data
        if bound.mode is ErrorBoundMode.PW_REL:
            transform = forward_log2(data)
            work_field = transform.log_values

        res = pqd_compress(
            work_field, p, self.quant, border=self.border, layers=self.layers
        )

        container = Container(
            header={
                "variant": self.name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "bound": bound_to_header(bound),
                "quant_bits": self.quant.bits,
                "reserved_bits": self.quant.reserved_bits,
                "border": self.border,
                "layers": self.layers,
                "n_border": res.n_border,
                "n_outliers": res.n_outliers,
            }
        )

        encode_codes_huffman(container, res.codes.reshape(-1))
        table_bytes = len(container.get("huffman_table"))
        huff_payload = container.get("huffman_codes")
        # SZ applies gzip after the customized Huffman encoding; on the
        # already-dense Huffman stream it mostly rides along (paper §4.2),
        # so keep whichever representation is smaller.
        gz = self.lossless.compress(huff_payload)
        if len(gz) < len(huff_payload):
            container.sections[:] = [
                s for s in container.sections if s.name != "huffman_codes"
            ]
            container.add("huffman_codes_gz", gz)
            container.header["codes_gzipped"] = True
            code_stream_bytes = len(gz)
        else:
            container.header["codes_gzipped"] = False
            code_stream_bytes = len(huff_payload)
        huff_bytes = table_bytes + code_stream_bytes

        if self.border == "truncate":
            border_stream = encode_truncated(res.border_values, p)
            outlier_stream = encode_truncated(res.outlier_values, p)
        else:
            border_stream = res.border_values.tobytes()
            outlier_stream = res.outlier_values.tobytes()
        container.add("border", border_stream)
        container.add("outliers", outlier_stream)

        mask_bytes = 0
        if transform is not None:
            neg, zero = transform.masks_to_bytes()
            neg_gz = self.lossless.compress(neg)
            zero_gz = self.lossless.compress(zero)
            container.add("pw_negative", neg_gz if len(neg_gz) < len(neg) else neg)
            container.add("pw_zero", zero_gz if len(zero_gz) < len(zero) else zero)
            container.header["pw_neg_gz"] = len(neg_gz) < len(neg)
            container.header["pw_zero_gz"] = len(zero_gz) < len(zero)
            mask_bytes = min(len(neg_gz), len(neg)) + min(len(zero_gz), len(zero))

        stats = build_stats(
            data=data,
            encoded_code_bytes=huff_bytes,
            outlier_bytes=len(outlier_stream),
            border_bytes=len(border_stream),
            n_unpredictable=res.n_outliers,
            n_border=res.n_border,
            extra_bytes=mask_bytes,
        )
        return CompressedField(
            variant=self.name,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            bound=bound,
            quant=self.quant,
            payload=container.to_bytes(),
            stats=stats,
            meta={
                "decompressed_checks": True,
                "lossless_mode": self.lossless.mode.value,
                "huffman_bits": container.header["huffman_bits"],
            },
        )

    def decompress(self, compressed: CompressedField | bytes) -> np.ndarray:
        """Reconstruct the field from a compressed payload."""
        payload = (
            compressed.payload
            if isinstance(compressed, CompressedField)
            else compressed
        )
        with decode_guard(f"{self.name} payload"):
            return self._decompress(payload)

    def _decompress(self, payload: bytes) -> np.ndarray:
        container = Container.from_bytes(payload)
        h = container.header
        if h.get("variant") != self.name:
            raise ContainerError(
                f"payload was produced by {h.get('variant')!r}, not {self.name}"
            )
        shape = header_shape(h)
        dtype = header_dtype(h)
        bound = bound_from_header(h["bound"])
        quant = QuantizerConfig(bits=header_int(h, "quant_bits", lo=2, hi=32),
                                reserved_bits=header_int(h, "reserved_bits"))
        border_mode: BorderMode = h["border"]
        if border_mode not in ("padded", "truncate", "verbatim"):
            raise ContainerError(f"unknown border mode {border_mode!r}")
        p = bound.absolute

        if h.get("codes_gzipped"):
            huff_payload = self.lossless.decompress(
                container.get("huffman_codes_gz")
            )
            container.add("huffman_codes", huff_payload)
        codes = decode_codes_huffman(container).reshape(shape)

        n_border = header_int(h, "n_border", hi=MAX_FIELD_POINTS)
        n_out = header_int(h, "n_outliers", hi=MAX_FIELD_POINTS)
        if border_mode == "truncate":
            border_vals = decode_truncated(container.get("border"), n_border, p, dtype)
            outlier_vals = decode_truncated(container.get("outliers"), n_out, p, dtype)
        else:
            border_vals = np.frombuffer(
                container.get("border"), dtype=dtype, count=n_border
            )
            outlier_vals = np.frombuffer(
                container.get("outliers"), dtype=dtype, count=n_out
            )
        dec = pqd_decompress(
            codes,
            border_vals,
            outlier_vals,
            precision=p,
            quant=quant,
            dtype=dtype,
            border=border_mode,
            layers=int(h.get("layers", 1)),
        )
        if bound.mode is ErrorBoundMode.PW_REL:
            neg = container.get("pw_negative")
            zero = container.get("pw_zero")
            if h.get("pw_neg_gz"):
                neg = self.lossless.decompress(neg)
            if h.get("pw_zero_gz"):
                zero = self.lossless.decompress(zero)
            negative, zeros = LogTransform.masks_from_bytes(neg, zero, shape)
            dec = inverse_log2(dec, negative, zeros)
        return dec
