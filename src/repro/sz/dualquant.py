"""Dual-quant PQD: the two-phase, data-parallel form of the SZ dataflow.

The classic PQD loop (:mod:`repro.sz.pqd`) predicts every point from its
*decompressed* neighbours, which closes a feedback loop and serializes the
sweep into a wavefront recurrence.  cuSZ (Tian et al.) breaks exactly this
dependency by splitting PQD into two phases:

**Phase 1 — prequantization** (the only lossy step).  Every value is
snapped to the error-bound lattice up front::

    q = rint(d / (2 * eb))          # int64 lattice coordinate
    d~ = dtype(q * 2 * eb)          # its reconstruction

so ``|d~ - d| <= eb`` by rounding.  Points where the lattice breaks down
(non-finite quotients, |q| beyond exact float64 integers, or a dtype
rounding that lands outside the bound) become **raw points**: they carry
``q = 0`` on the lattice — both sides agree — and their original value is
stored verbatim, so they reconstruct exactly.

**Phase 2 — prediction + quantization** (lossless, data-parallel).  The
Lorenzo residual is taken over the *prequantized integers* with a zero
halo::

    delta = q - pred(q)             # exact int64 arithmetic

Because the predictor reads prequantized values — which *are* the
decompressed lattice values — there is no feedback loop: the whole field's
residuals are one vectorized mixed first-difference, and the inverse is
the matching prefix sum.  Residuals that do not fit the quantizer range
are emitted verbatim as int64 **outlier deltas** (code 0), so the inverse
prefix sum needs no patching and reconstruction of ``q`` is bit-exact.

Both phase-2 sweeps are dispatchable kernels (``dualquant.delta_encode`` /
``dualquant.delta_integrate``): the reference twins below walk the stencil
point by point in raster order; the fast twins in
:mod:`repro.kernels.dualquant_fast` are the fused ``diff``/``cumsum``
chains.  Integer arithmetic makes the two trivially bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import QuantizerConfig
from ..errors import ContainerError, DTypeError, ShapeError
from ..kernels import register_kernel, resolve

__all__ = [
    "DualQuantResult",
    "PrequantResult",
    "prequantize",
    "lattice_to_values",
    "predict_encode",
    "codes_to_deltas",
    "dq_compress",
    "dq_decompress",
]

_SUPPORTED_DTYPES = (np.float32, np.float64)

#: Largest lattice magnitude kept on the integer pipeline: float64 holds
#: every integer below 2**53 exactly, so ``rint`` results at or above it
#: cannot be trusted to round-trip and the point goes raw instead.
_Q_LIMIT = float(2**53)


def _check_input(data: np.ndarray) -> np.ndarray:
    data = np.ascontiguousarray(data)
    if data.dtype not in _SUPPORTED_DTYPES:
        raise DTypeError(
            f"dual-quant engine supports float32/float64, got {data.dtype}"
        )
    if data.ndim not in (1, 2, 3):
        raise ShapeError(
            f"dual-quant engine supports 1-3 dimensions, got {data.ndim}"
        )
    if data.size == 0:
        raise ShapeError("cannot compress an empty field")
    return data


# ---------------------------------------------------------------------------
# phase 1: prequantization (the lossy step, isolated)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrequantResult:
    """Phase-1 output: the integer lattice plus the raw-point side channel.

    ``q`` covers every point (raw positions carry 0); ``raw_idx`` are flat
    raster indices into the field and ``raw_values`` the original values
    stored verbatim for them.
    """

    q: np.ndarray  # int64, field shape
    raw_idx: np.ndarray  # int64, 1D
    raw_values: np.ndarray  # input dtype, 1D

    @property
    def n_raw(self) -> int:
        return int(self.raw_idx.size)


def prequantize(work: np.ndarray, precision: float) -> PrequantResult:
    """Snap ``work`` to the ``2 * precision`` lattice (phase 1).

    A point stays on the lattice only when its reconstruction — computed
    here exactly as the decompressor will compute it — lands within the
    bound; everything else (non-finite data, lattice overflow, dtype
    rounding past the bound) goes raw.  That check is what makes the
    error-bound guarantee a *property of the wire format* rather than of
    typical data.
    """
    work = _check_input(work)
    twoeb = 2.0 * float(precision)
    d64 = work.astype(np.float64, copy=False)
    with np.errstate(invalid="ignore", over="ignore"):
        qf = np.rint(d64 / twoeb)
        on_lattice = np.isfinite(qf) & (np.abs(qf) < _Q_LIMIT)
        recon = np.where(on_lattice, qf, 0.0) * twoeb
        recon = recon.astype(work.dtype).astype(np.float64)
        on_lattice &= np.abs(recon - d64) <= precision
    q = np.where(on_lattice, qf, 0.0).astype(np.int64)
    raw_idx = np.flatnonzero(~on_lattice).astype(np.int64)
    raw_values = work.reshape(-1)[raw_idx].copy()
    return PrequantResult(q=q, raw_idx=raw_idx, raw_values=raw_values)


def lattice_to_values(
    q: np.ndarray, precision: float, dtype: np.dtype
) -> np.ndarray:
    """Reconstruct field values from lattice coordinates (phase-1 inverse)."""
    twoeb = 2.0 * float(precision)
    return (q.astype(np.float64) * twoeb).astype(dtype)


# ---------------------------------------------------------------------------
# phase 2: Lorenzo residuals over the integers (lossless, data-parallel)
# ---------------------------------------------------------------------------


def _pad_with_halo(q: np.ndarray) -> tuple[np.ndarray, tuple[slice, ...]]:
    """Embed ``q`` in a zero halo of one plane per leading axis edge."""
    pad = np.zeros(tuple(s + 1 for s in q.shape), dtype=np.int64)
    core = tuple(slice(1, None) for _ in q.shape)
    pad[core] = q
    return pad, core


def _lorenzo_terms(ndim: int) -> list[tuple[tuple[int, ...], int]]:
    """The 1-layer Lorenzo stencil: (offset per axis, sign) terms."""
    terms: list[tuple[tuple[int, ...], int]] = []
    for mask in range(1, 2**ndim):
        off = tuple(-1 if mask & (1 << ax) else 0 for ax in range(ndim))
        sign = -1 if bin(mask).count("1") % 2 == 0 else 1
        terms.append((off, sign))
    return terms


def _delta_encode_reference(q: np.ndarray) -> np.ndarray:
    """Point-by-point Lorenzo residual over the lattice (reference twin).

    Walks the field in raster order, gathering each point's zero-halo
    stencil explicitly — the shape an FPGA PE or a CUDA thread would
    evaluate, kept as the semantic anchor for the fused fast sweep.
    """
    pad, core = _pad_with_halo(q)
    terms = _lorenzo_terms(q.ndim)
    delta = np.zeros_like(pad)
    for idx in np.ndindex(q.shape):
        pidx = tuple(i + 1 for i in idx)
        pred = np.int64(0)
        for off, sign in terms:
            nidx = tuple(p + o for p, o in zip(pidx, off))
            pred += sign * pad[nidx]
        delta[pidx] = pad[pidx] - pred
    return delta[core]


def _delta_integrate_reference(delta: np.ndarray) -> np.ndarray:
    """Raster-order prefix reconstruction of the lattice (reference twin).

    ``q[i] = pred(q neighbours) + delta[i]`` over exact integers — the
    same recurrence the wavefront loop runs, except nothing here is
    approximate so the fast twin can replace it with per-axis prefix
    sums.
    """
    pad, core = _pad_with_halo(np.zeros_like(delta))
    terms = _lorenzo_terms(delta.ndim)
    for idx in np.ndindex(delta.shape):
        pidx = tuple(i + 1 for i in idx)
        pred = np.int64(0)
        for off, sign in terms:
            nidx = tuple(p + o for p, o in zip(pidx, off))
            pred += sign * pad[nidx]
        pad[pidx] = pred + delta[idx]
    return pad[core]


register_kernel(
    "dualquant.delta_encode",
    _delta_encode_reference,
    fast="repro.kernels.dualquant_fast:delta_encode",
)
register_kernel(
    "dualquant.delta_integrate",
    _delta_integrate_reference,
    fast="repro.kernels.dualquant_fast:delta_integrate",
)


def predict_encode(
    q: np.ndarray, quant: QuantizerConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Phase-2 forward: residuals → (codes, outlier deltas).

    ``codes`` covers every point: ``delta + radius`` where that fits in
    ``(0, capacity)``, 0 otherwise; the residuals behind the zeros are
    returned verbatim in raster order.
    """
    delta = resolve("dualquant.delta_encode")(q)
    r = quant.radius
    shifted = delta + r
    codable = (shifted > 0) & (shifted < quant.capacity)
    codes = np.where(codable, shifted, 0)
    outlier_deltas = delta.reshape(-1)[~codable.reshape(-1)].copy()
    return codes, outlier_deltas


def codes_to_deltas(
    codes: np.ndarray, outlier_deltas: np.ndarray, quant: QuantizerConfig
) -> np.ndarray:
    """Phase-2 inverse, step 1: merge the code and outlier streams."""
    delta = codes.astype(np.int64) - quant.radius
    flat = delta.reshape(-1)
    zero = codes.reshape(-1) == 0
    n_zero = int(np.count_nonzero(zero))
    if n_zero != outlier_deltas.size:
        raise ContainerError(
            f"code stream marks {n_zero} outliers but the delta stream "
            f"holds {outlier_deltas.size}"
        )
    flat[zero] = outlier_deltas
    return delta


# ---------------------------------------------------------------------------
# both phases end to end (the engine-level API the stages drive)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DualQuantResult:
    """Everything one dual-quant compression sweep produces."""

    codes: np.ndarray  # int64, field shape; 0 = outlier residual
    outlier_deltas: np.ndarray  # int64, raster order of the zero codes
    raw_idx: np.ndarray  # int64, flat raster indices of raw points
    raw_values: np.ndarray  # input dtype, verbatim raw values

    @property
    def n_outliers(self) -> int:
        return int(self.outlier_deltas.size)

    @property
    def n_raw(self) -> int:
        return int(self.raw_idx.size)


def dq_compress(
    work: np.ndarray, precision: float, quant: QuantizerConfig
) -> DualQuantResult:
    """Run both phases over ``work`` under an absolute bound."""
    pre = prequantize(work, precision)
    codes, outlier_deltas = predict_encode(pre.q, quant)
    return DualQuantResult(
        codes=codes,
        outlier_deltas=outlier_deltas,
        raw_idx=pre.raw_idx,
        raw_values=pre.raw_values,
    )


def dq_decompress(
    codes: np.ndarray,
    outlier_deltas: np.ndarray,
    raw_idx: np.ndarray,
    raw_values: np.ndarray,
    *,
    precision: float,
    quant: QuantizerConfig,
    dtype: np.dtype,
) -> np.ndarray:
    """Invert both phases: codes → lattice → values, raw points verbatim."""
    delta = codes_to_deltas(codes, outlier_deltas, quant)
    q = resolve("dualquant.delta_integrate")(delta)
    out = lattice_to_values(q, precision, dtype)
    if raw_idx.size:
        if raw_idx.size != raw_values.size:
            raise ContainerError(
                f"{raw_idx.size} raw indices but {raw_values.size} raw values"
            )
        flat_out = out.reshape(-1)
        if int(raw_idx.min()) < 0 or int(raw_idx.max()) >= flat_out.size:
            raise ContainerError("raw-point index out of field bounds")
        flat_out[raw_idx] = raw_values
    return out
