"""Linear-scaling quantization — Algorithm 1 of the paper.

Given precision ``p`` (the absolute error bound), capacity (number of
quantization bins) and radius ``r = capacity/2``, a prediction error
``diff = d - pred`` maps to

* ``code° = floor(|diff| / p) + 1``,
* sign applied:  ``code° <- ±code°``,
* ``code• = trunc(code°/2) + r``   (C integer cast truncates toward zero),
* reconstruction ``d_re = pred + 2*(code• - r)*p``.

This integer pipeline is exactly round-to-nearest of ``diff/(2p)`` (tested
against that closed form), guaranteeing ``|d_re - d| <= p`` whenever the
point is quantizable.  Code 0 is reserved for non-quantizable points
(Algorithm 1 line 13); the final overbound check (line 10) re-verifies the
bound *after* the reconstruction is rounded to the storage dtype, which is
what makes the guarantee hold for float32 fields.

:func:`quantize_scalar` is a literal transcription of Algorithm 1 used as
the test oracle; :func:`quantize_vector` is the NumPy implementation the
engines run.
"""

from __future__ import annotations

import numpy as np

from ..config import QuantizerConfig
from ..errors import ConfigError

__all__ = ["quantize_scalar", "quantize_vector", "reconstruct"]


def quantize_scalar(
    d: float,
    pred: float,
    precision: float,
    quant: QuantizerConfig,
) -> tuple[int, float]:
    """Algorithm 1 for one point. Returns ``(code•, d_re)``.

    ``code• == 0`` marks a non-quantizable point, in which case ``d_re``
    is the original value (the caller stores it through the unpredictable
    path).
    """
    if precision <= 0:
        raise ConfigError("precision must be positive")
    capacity = quant.capacity
    r = quant.radius
    diff = d - pred
    code0 = int(abs(diff) / precision) + 1  # floor for non-negative operand
    if code0 < capacity:
        signed = code0 if diff > 0 else -code0
        code_dot = int(signed / 2) + r  # C cast: trunc toward zero
        d_re = pred + 2 * (code_dot - r) * precision
        if abs(d_re - d) <= precision and 0 < code_dot < capacity:
            return code_dot, d_re
    return 0, d


def quantize_vector(
    d: np.ndarray,
    pred: np.ndarray,
    precision: float,
    quant: QuantizerConfig,
    out_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Algorithm 1.

    Returns ``(codes, d_re)`` where ``codes`` is int64 (0 = unpredictable)
    and ``d_re`` is the value to write back, already rounded to
    ``out_dtype`` (the decompressor will hold exactly these values, so the
    overbound check is performed on the rounded reconstruction).
    """
    capacity = quant.capacity
    r = quant.radius
    diff = d - pred
    code0 = np.floor(np.abs(diff) / precision).astype(np.int64) + 1
    quantizable = code0 < capacity
    signed = np.where(diff > 0, code0, -code0)
    code_dot = np.sign(signed) * (np.abs(signed) // 2) + r  # trunc toward 0
    d_re = (pred + 2.0 * (code_dot - r) * precision).astype(out_dtype)
    in_bound = np.abs(d_re.astype(np.float64) - d) <= precision
    ok = quantizable & in_bound & (code_dot > 0) & (code_dot < capacity)
    codes = np.where(ok, code_dot, 0)
    d_out = np.where(ok, d_re, d.astype(out_dtype))
    return codes, d_out


def reconstruct(
    codes: np.ndarray,
    pred: np.ndarray,
    precision: float,
    quant: QuantizerConfig,
    out_dtype: np.dtype,
) -> np.ndarray:
    """Decompression side of Algorithm 1: ``d_re = pred + 2*(code - r)*p``.

    Entries with ``code == 0`` are returned as NaN; the caller overwrites
    them from the unpredictable stream.
    """
    r = quant.radius
    d_re = (pred + 2.0 * (codes - r) * precision).astype(out_dtype)
    return np.where(codes == 0, np.asarray(np.nan, dtype=out_dtype), d_re)
