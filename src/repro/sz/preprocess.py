"""Pointwise-relative-bound preprocessing (SZ-2.0's logarithmic transform).

Table 2 lists the logarithmic transform as SZ-2.0's preprocessing step
(paper ref [31]): to bound the *relative* error of every point, compress
``log2|d|`` under an absolute bound ``eb2 = log2(1 + eb)``.  Then

    |log2 d - log2 d'| <= eb2  =>  d / (1+eb) <= d' <= d * (1+eb),

a strict pointwise-relative guarantee.  Signs are carried in a bitmap and
exact zeros in a second bitmap (zeros reconstruct exactly — the log of 0
is not representable and a relative bound on 0 means 0).

The forward transform emits the log field in the *input dtype* so the
regular PQD machinery runs unchanged; the small float32 rounding of the
log values is absorbed by a safety margin on the quantizer bound
(float32 log2 magnitudes stay below 2^7, so the rounding error is below
2^-17 — negligible against any practical ``eb2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, DTypeError

__all__ = ["LogTransform", "forward_log2", "inverse_log2", "pw_rel_abs_bound"]

#: Safety margin subtracted from the log-domain bound to absorb dtype
#: rounding of the transformed values.
_LOG_MARGIN = 2.0**-16


def pw_rel_abs_bound(eb: float) -> float:
    """The log2-domain absolute bound enforcing relative bound ``eb``."""
    if not (0 < eb < 1):
        raise ConfigError(f"pointwise-relative bound must be in (0, 1), got {eb}")
    eb2 = math.log2(1.0 + eb) - _LOG_MARGIN
    if eb2 <= 0:
        raise ConfigError(f"pointwise-relative bound {eb} too tight for float32")
    return eb2


@dataclass(frozen=True)
class LogTransform:
    """The side information of one forward transform."""

    log_values: np.ndarray  # log2|d| where d != 0; arbitrary filler at zeros
    negative: np.ndarray  # bool mask
    zero: np.ndarray  # bool mask

    def masks_to_bytes(self) -> tuple[bytes, bytes]:
        return (
            np.packbits(self.negative.reshape(-1)).tobytes(),
            np.packbits(self.zero.reshape(-1)).tobytes(),
        )

    @staticmethod
    def masks_from_bytes(
        neg: bytes, zero: bytes, shape: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        n = int(np.prod(shape))
        negative = np.unpackbits(
            np.frombuffer(neg, dtype=np.uint8), count=n
        ).astype(bool).reshape(shape)
        zeros = np.unpackbits(
            np.frombuffer(zero, dtype=np.uint8), count=n
        ).astype(bool).reshape(shape)
        return negative, zeros


def forward_log2(data: np.ndarray) -> LogTransform:
    """``d -> log2|d|`` with sign/zero side channels.

    Zero positions carry the *minimum* finite log value as filler so they
    remain smooth neighbours for the predictor instead of poisoning it.
    """
    data = np.asarray(data)
    if data.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise DTypeError(f"log transform supports float32/float64, got {data.dtype}")
    if not np.isfinite(data).all():
        raise DTypeError("log transform requires finite data")
    zero = data == 0
    negative = data < 0
    mag = np.abs(data.astype(np.float64))
    safe = np.where(zero, 1.0, mag)
    logs = np.log2(safe)
    if (~zero).any():
        filler = float(logs[~zero].min())
    else:
        filler = 0.0
    logs = np.where(zero, filler, logs).astype(data.dtype)
    return LogTransform(log_values=logs, negative=negative, zero=zero)


def inverse_log2(
    log_values: np.ndarray, negative: np.ndarray, zero: np.ndarray
) -> np.ndarray:
    """Invert the transform: ``d' = ±2**v``, exact zeros restored."""
    mag = np.exp2(log_values.astype(np.float64))
    out = np.where(negative, -mag, mag)
    out = np.where(zero, 0.0, out)
    return out.astype(log_values.dtype)
