"""1-layer Lorenzo predictors (paper Figure 2).

The Lorenzo predictor estimates a point from its already-processed
neighbours; the signum of each neighbour's contribution is ``(-1)**(L+1)``
where ``L`` is its Manhattan distance from the predicted point:

* 1D: ``P(x) = d[x-1]``
* 2D: ``P(x,y) = d[x-1,y] + d[x,y-1] - d[x-1,y-1]``
* 3D: ``P(x,y,z) = d[x-1,y,z] + d[x,y-1,z] + d[x,y,z-1]
  - d[x-1,y-1,z] - d[x-1,y,z-1] - d[x,y-1,z-1] + d[x-1,y-1,z-1]``

Two forms are provided: :func:`lorenzo_predict` computes predictions from a
*given* neighbour field in one vectorized pass (used for the open-loop
prediction-error study of Figure 1), while :func:`neighbor_offsets` exposes
the flat-index offsets and signs that the closed-loop PQD engine gathers
through during wavefront iteration.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ShapeError

__all__ = [
    "lorenzo_predict",
    "neighbor_offsets",
    "stencil_predict",
    "LORENZO_FLOPS",
]

#: Floating-point adds per prediction, by dimensionality (used by the
#: CPU/FPGA performance models): 2D = N + W - NW (2 ops), 3D = 6 ops.
LORENZO_FLOPS = {1: 0, 2: 2, 3: 6}


@lru_cache(maxsize=64)
def neighbor_offsets(
    shape: tuple[int, ...], layers: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Flat-index offsets and coefficients of the Lorenzo stencil.

    For a C-contiguous array of the given shape, a point at flat index
    ``f`` is predicted by ``sum(sign[k] * work[f - offset[k]])``.  Offsets
    are positive (they reach backwards).

    The k-layer Lorenzo predictor uses every neighbour in the
    ``[0..k]^ndim`` box except the point itself, with coefficient
    ``(-1)**(sum(d)+1) * prod(C(k, d_i))`` — its residual is the mixed
    k-th finite difference, so k = 2 is exact on per-axis-quadratic
    surfaces (SZ-1.4's multi-layer option).

    Cached per ``(shape, layers)`` like ``interior_wavefronts``: the PQD
    loop asks for the same stencil once per wavefront sweep, and blockwise
    codecs once per block.  The returned arrays are read-only.
    """
    ndim = len(shape)
    if ndim not in (1, 2, 3):
        raise ShapeError(f"Lorenzo predictor supports 1-3 dimensions, got {ndim}")
    if not 1 <= layers <= 3:
        raise ShapeError(f"Lorenzo layers must be in [1, 3], got {layers}")
    strides = [1]
    for n in reversed(shape[1:]):
        strides.insert(0, strides[0] * n)
    from itertools import product
    from math import comb

    offsets = []
    signs = []
    for deltas in product(range(layers + 1), repeat=ndim):
        if all(d == 0 for d in deltas):
            continue
        off = sum(d * s for d, s in zip(deltas, strides))
        coeff = (-1.0) ** (sum(deltas) + 1)
        for d in deltas:
            coeff *= comb(layers, d)
        offsets.append(off)
        signs.append(coeff)
    offset_arr = np.array(offsets, dtype=np.int64)
    sign_arr = np.array(signs)
    offset_arr.setflags(write=False)
    sign_arr.setflags(write=False)
    return offset_arr, sign_arr


def stencil_predict(
    work_flat: np.ndarray,
    idx: np.ndarray,
    offsets: np.ndarray,
    signs: np.ndarray,
) -> np.ndarray:
    """Lorenzo prediction at flat indices ``idx`` via one fancy gather.

    Gathers the whole ``(len(idx), len(offsets))`` neighbour block at
    once, then accumulates the columns *in offset order*.  The in-order
    accumulation is deliberate: it reproduces the reference per-offset
    sum term by term, so reconstructions stay bit-identical — a BLAS
    ``@ signs`` contraction would reassociate the floating-point sum and
    drift in the last ulp, which the closed PQD loop then amplifies into
    different quantization codes.
    """
    gathered = work_flat[idx[:, None] - offsets]
    pred = signs[0] * gathered[:, 0]
    for m in range(1, offsets.size):
        pred += signs[m] * gathered[:, m]
    return pred


def lorenzo_predict(data: np.ndarray, layers: int = 1) -> np.ndarray:
    """Open-loop Lorenzo prediction of every interior point from ``data``.

    Border points (any index < ``layers``) are returned as NaN so callers
    can mask them out.  This is the predictor quality view used by
    Figure 1: it feeds *original* values in, so it isolates predictor
    accuracy from quantization feedback.
    """
    data = np.asarray(data, dtype=np.float64)
    if layers != 1:
        return _lorenzo_predict_generic(data, layers)
    pred = np.full(data.shape, np.nan)
    if data.ndim == 1:
        pred[1:] = data[:-1]
    elif data.ndim == 2:
        pred[1:, 1:] = data[:-1, 1:] + data[1:, :-1] - data[:-1, :-1]
    elif data.ndim == 3:
        pred[1:, 1:, 1:] = (
            data[:-1, 1:, 1:]
            + data[1:, :-1, 1:]
            + data[1:, 1:, :-1]
            - data[:-1, :-1, 1:]
            - data[:-1, 1:, :-1]
            - data[1:, :-1, :-1]
            + data[:-1, :-1, :-1]
        )
    else:
        raise ShapeError(f"Lorenzo predictor supports 1-3 dimensions, got {data.ndim}")
    return pred


def _lorenzo_predict_generic(data: np.ndarray, layers: int) -> np.ndarray:
    """Slicing-based k-layer open-loop prediction (any ndim in 1-3)."""
    from itertools import product
    from math import comb

    ndim = data.ndim
    if ndim not in (1, 2, 3):
        raise ShapeError(f"Lorenzo predictor supports 1-3 dimensions, got {ndim}")
    if not 1 <= layers <= 3:
        raise ShapeError(f"Lorenzo layers must be in [1, 3], got {layers}")
    if any(n <= layers for n in data.shape):
        raise ShapeError(
            f"field {data.shape} too small for a {layers}-layer stencil"
        )
    pred = np.full(data.shape, np.nan)
    core = tuple(slice(layers, None) for _ in range(ndim))
    acc = np.zeros(tuple(n - layers for n in data.shape))
    for deltas in product(range(layers + 1), repeat=ndim):
        if all(d == 0 for d in deltas):
            continue
        coeff = (-1.0) ** (sum(deltas) + 1)
        for d in deltas:
            coeff *= comb(layers, d)
        src = tuple(
            slice(layers - d, n - d) for d, n in zip(deltas, data.shape)
        )
        acc += coeff * data[src]
    pred[core] = acc
    return pred
