"""Truncation-based binary analysis for unpredictable points (SZ-1.0 §).

Points whose prediction error exceeds the quantizable range — and, in the
original SZ model, the border points of the first row/column — are stored
through a bit-truncated IEEE-754 representation: keep the sign, the full
exponent, and only as many leading mantissa bits ``t`` as the error bound
requires.  For a value ``±m * 2**e`` truncated to ``t`` mantissa bits the
error is below ``2**(e-t)``, so ``t = max(0, e - floor(log2(eb)))`` keeps
the point within the bound.  The decoder recomputes ``t`` from the stored
exponent, so no per-point length field is needed.

waveSZ instead passes such points *verbatim* to gzip (paper §3.2) — that
path is plain ``tobytes`` and lives in the compressor front-ends; this
module is the SZ-1.4 behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import BitstreamError, DTypeError
from ..encoding.bitio import BitReader, pack_codes

__all__ = ["encode_truncated", "decode_truncated", "truncate_roundtrip", "FloatLayout"]


@dataclass(frozen=True)
class FloatLayout:
    """IEEE-754 bit layout parameters for a storage dtype."""

    uint_dtype: np.dtype
    exp_bits: int
    mant_bits: int
    bias: int

    @property
    def exp_mask(self) -> int:
        return (1 << self.exp_bits) - 1


_LAYOUTS = {
    np.dtype(np.float32): FloatLayout(np.dtype(np.uint32), 8, 23, 127),
    np.dtype(np.float64): FloatLayout(np.dtype(np.uint64), 11, 52, 1023),
}


def _layout(dtype: np.dtype) -> FloatLayout:
    try:
        return _LAYOUTS[np.dtype(dtype)]
    except KeyError:
        raise DTypeError(f"truncation analysis supports float32/float64, got {dtype}")


def _required_bits(exp_unbiased: np.ndarray, eb: float, mant_bits: int) -> np.ndarray:
    eb_exp = math.floor(math.log2(eb))
    t = exp_unbiased - eb_exp
    return np.clip(t, 0, mant_bits).astype(np.int64)


def truncate_roundtrip(values: np.ndarray, eb: float) -> np.ndarray:
    """The reconstruction :func:`decode_truncated` would produce, vectorized.

    The PQD feedback loop needs the *stored* value of each unpredictable
    point without paying for a bitstream round-trip; this computes it
    directly by masking the dropped mantissa bits.  Equality with the real
    encode/decode pair is property-tested.
    """
    values = np.asarray(values)
    lay = _layout(values.dtype)
    if values.size == 0:
        return values.copy()
    if not np.isfinite(values).all():
        raise DTypeError("cannot truncate non-finite values")
    bits = values.view(lay.uint_dtype).astype(np.uint64)
    expf = (bits >> np.uint64(lay.mant_bits)) & np.uint64(lay.exp_mask)
    exp_unbiased = expf.astype(np.int64) - lay.bias
    t = _required_bits(exp_unbiased, eb, lay.mant_bits)
    # Subnormals reconstruct as signed zero (exponent field survives as 0,
    # mantissa fully dropped).
    t[expf == 0] = 0
    # Dropping the low `mant_bits - t` bits reproduces the decode exactly:
    # for subnormals (t == 0) this zeroes the whole mantissa, leaving a
    # signed zero just like the decoder.
    drop = np.uint64(lay.mant_bits) - t.astype(np.uint64)
    kept = (bits >> drop) << drop
    if lay.uint_dtype == np.dtype(np.uint32):
        return kept.astype(np.uint32).view(np.float32)
    return kept.view(np.float64)


def encode_truncated(values: np.ndarray, eb: float) -> bytes:
    """Encode ``values`` with per-point mantissa truncation bounded by ``eb``."""
    values = np.asarray(values)
    lay = _layout(values.dtype)
    if values.size == 0:
        return b""
    if not np.isfinite(values).all():
        raise DTypeError("cannot truncate non-finite values")
    bits = values.view(lay.uint_dtype).astype(np.uint64)
    sign = bits >> np.uint64(lay.exp_bits + lay.mant_bits)
    expf = (bits >> np.uint64(lay.mant_bits)) & np.uint64(lay.exp_mask)
    mant = bits & np.uint64((1 << lay.mant_bits) - 1)
    # Subnormals (expf == 0) have magnitude < 2**(1-bias); storing them as
    # signed zero incurs error below any practical eb, and the exponent
    # field 0 signals the decoder to reconstruct zero. Required bits for
    # normals come from the unbiased exponent.
    exp_unbiased = expf.astype(np.int64) - lay.bias
    t = _required_bits(exp_unbiased, eb, lay.mant_bits)
    t[expf == 0] = 0
    kept_mant = mant >> (np.uint64(lay.mant_bits) - t.astype(np.uint64))
    # Packed field: sign | exponent | t mantissa bits (length 1+exp_bits+t).
    packed = (
        (sign << (np.uint64(lay.exp_bits) + t.astype(np.uint64)))
        | (expf << t.astype(np.uint64))
        | kept_mant
    )
    lengths = 1 + lay.exp_bits + t
    payload, _ = pack_codes(packed, lengths)
    return payload


def decode_truncated(
    payload: bytes, n_values: int, eb: float, dtype: np.dtype
) -> np.ndarray:
    """Inverse of :func:`encode_truncated`; returns truncated reconstructions."""
    lay = _layout(dtype)
    if n_values == 0:
        return np.zeros(0, dtype=np.uint64).view(lay.uint_dtype).astype(dtype)
    # Each value consumes at least 1 sign bit + the exponent field, so a
    # count the payload cannot satisfy is corrupt — refuse before the
    # allocation rather than decoding padding.
    if n_values < 0 or n_values * (1 + lay.exp_bits) > 8 * len(payload):
        raise BitstreamError(
            f"truncation stream too short for {n_values} values"
        )
    out_bits = np.zeros(n_values, dtype=np.uint64)
    reader = BitReader(payload)
    eb_exp = math.floor(math.log2(eb))
    exp_bits = lay.exp_bits
    mant_bits = lay.mant_bits
    bias = lay.bias
    for i in range(n_values):
        head = reader.read(1 + exp_bits)
        sign = head >> exp_bits
        expf = head & lay.exp_mask
        if expf == 0:
            t = 0
            kept = 0
        else:
            t = min(max(expf - bias - eb_exp, 0), mant_bits)
            kept = reader.read(t) if t else 0
            # Re-align the kept mantissa bits to the top of the field.
            kept <<= mant_bits - t
        if expf == 0:
            out_bits[i] = np.uint64(sign) << np.uint64(exp_bits + mant_bits)
        else:
            out_bits[i] = (
                (np.uint64(sign) << np.uint64(exp_bits + mant_bits))
                | (np.uint64(expf) << np.uint64(mant_bits))
                | np.uint64(kept)
            )
    uint_view = out_bits.astype(np.uint64)
    if lay.uint_dtype == np.dtype(np.uint32):
        return uint_view.astype(np.uint32).view(np.float32)
    return uint_view.view(np.float64)
