"""Snapshot archives: many compressed fields in one file.

A simulation snapshot is a set of named fields (Table 4: 79 CESM fields,
20 ISABEL fields, ...).  The archive wraps one compressed payload per
field with a manifest, so a whole snapshot ships as a single artifact and
individual fields extract without touching the rest — the unit of storage
the artifact's per-field ``*.sz`` files imply, made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Protocol

import numpy as np

from ..errors import ContainerError
from .container import Container

__all__ = ["Archive", "ArchiveEntry"]


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> Any: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class ArchiveEntry:
    """Manifest row for one field."""

    name: str
    variant: str
    shape: tuple[int, ...]
    ratio: float
    compressed_bytes: int


class Archive:
    """Build / read a multi-field compressed snapshot."""

    _MANIFEST_KEY = "fields"

    def __init__(self) -> None:
        self._container = Container(header={self._MANIFEST_KEY: []})

    def add_field(self, name: str, compressed: Any) -> None:
        """Add one compressed field (a CompressedField)."""
        if any(e["name"] == name for e in self._container.header[self._MANIFEST_KEY]):
            raise ContainerError(f"archive already holds field {name!r}")
        self._container.add(f"field:{name}", compressed.payload)
        self._container.header[self._MANIFEST_KEY].append(
            {
                "name": name,
                "variant": compressed.variant,
                "shape": list(compressed.shape),
                "ratio": compressed.stats.ratio,
                "compressed_bytes": compressed.stats.compressed_bytes,
            }
        )

    def to_bytes(self) -> bytes:
        return self._container.to_bytes()

    # -- reading -----------------------------------------------------------

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Archive":
        arch = cls.__new__(cls)
        arch._container = Container.from_bytes(blob)
        if cls._MANIFEST_KEY not in arch._container.header:
            raise ContainerError("not a snapshot archive (no manifest)")
        return arch

    @property
    def entries(self) -> list[ArchiveEntry]:
        return [
            ArchiveEntry(
                name=e["name"],
                variant=e["variant"],
                shape=tuple(e["shape"]),
                ratio=float(e["ratio"]),
                compressed_bytes=int(e["compressed_bytes"]),
            )
            for e in self._container.header[self._MANIFEST_KEY]
        ]

    @property
    def field_names(self) -> list[str]:
        return [e.name for e in self.entries]

    def payload(self, name: str) -> bytes:
        """Raw compressed payload of one field (random access)."""
        return self._container.get(f"field:{name}")

    def extract(self, name: str, compressor: _Compressor) -> np.ndarray:
        """Decompress one field without touching the others."""
        entry = next((e for e in self.entries if e.name == name), None)
        if entry is None:
            raise ContainerError(f"archive has no field {name!r}")
        if entry.variant != compressor.name:
            raise ContainerError(
                f"field {name!r} was compressed with {entry.variant!r}, "
                f"not {compressor.name!r}"
            )
        return compressor.decompress(self.payload(name))

    @classmethod
    def build(
        cls,
        fields: Mapping[str, np.ndarray],
        compressor: _Compressor,
        eb: float = 1e-3,
        mode: str = "vr_rel",
    ) -> "Archive":
        """Compress every field of a snapshot with one compressor."""
        arch = cls()
        for name, data in fields.items():
            arch.add_field(name, compressor.compress(data, eb, mode))
        return arch
