"""Snapshot archives: many compressed fields in one file.

A simulation snapshot is a set of named fields (Table 4: 79 CESM fields,
20 ISABEL fields, ...).  The archive wraps one compressed payload per
field with a manifest, so a whole snapshot ships as a single artifact and
individual fields extract without touching the rest — the unit of storage
the artifact's per-field ``*.sz`` files imply, made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

import numpy as np

from ..errors import ContainerError, ReproError, decode_guard
from .container import Container

__all__ = ["Archive", "ArchiveEntry", "FieldDamage", "ExtractionResult"]


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> Any: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class ArchiveEntry:
    """Manifest row for one field."""

    name: str
    variant: str
    shape: tuple[int, ...]
    ratio: float
    compressed_bytes: int


@dataclass(frozen=True)
class FieldDamage:
    """Why one field of a snapshot could not be recovered."""

    name: str
    variant: str
    stage: str  # "manifest" | "container" | "decode"
    error: str


@dataclass(frozen=True)
class ExtractionResult:
    """Outcome of :meth:`Archive.extract_all`: what survived, what did not."""

    fields: dict[str, np.ndarray] = field(default_factory=dict)
    damage: tuple[FieldDamage, ...] = ()
    problems: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.damage and not self.problems


class Archive:
    """Build / read a multi-field compressed snapshot."""

    _MANIFEST_KEY = "fields"

    def __init__(self) -> None:
        self._container = Container(header={self._MANIFEST_KEY: []})
        self._damaged_sections: frozenset[str] = frozenset()
        self._parse_problems: tuple[str, ...] = ()

    def add_field(self, name: str, compressed: Any) -> None:
        """Add one compressed field (a CompressedField)."""
        if any(e["name"] == name for e in self._container.header[self._MANIFEST_KEY]):
            raise ContainerError(f"archive already holds field {name!r}")
        self._container.add(f"field:{name}", compressed.payload)
        self._container.header[self._MANIFEST_KEY].append(
            {
                "name": name,
                "variant": compressed.variant,
                "shape": list(compressed.shape),
                "ratio": compressed.stats.ratio,
                "compressed_bytes": compressed.stats.compressed_bytes,
            }
        )

    def to_bytes(self) -> bytes:
        return self._container.to_bytes()

    # -- reading -----------------------------------------------------------

    @classmethod
    def from_bytes(cls, blob: bytes, *, salvage: bool = False) -> "Archive":
        """Parse a snapshot archive.

        With ``salvage=True`` a partially damaged stream still opens:
        sections with checksum failures are remembered (and reported by
        :meth:`extract_all`) instead of raising, as long as the header
        framing itself is readable.
        """
        arch = cls.__new__(cls)
        arch._damaged_sections = frozenset()
        arch._parse_problems = ()
        if salvage:
            result = Container.salvage(blob)
            arch._container = result.container
            arch._damaged_sections = result.damaged
            arch._parse_problems = result.problems
        else:
            arch._container = Container.from_bytes(blob)
        if cls._MANIFEST_KEY not in arch._container.header:
            raise ContainerError("not a snapshot archive (no manifest)")
        if not isinstance(arch._container.header[cls._MANIFEST_KEY], list):
            raise ContainerError("corrupt archive manifest")
        return arch

    @property
    def entries(self) -> list[ArchiveEntry]:
        with decode_guard("archive manifest"):
            return [
                ArchiveEntry(
                    name=e["name"],
                    variant=e["variant"],
                    shape=tuple(e["shape"]),
                    ratio=float(e["ratio"]),
                    compressed_bytes=int(e["compressed_bytes"]),
                )
                for e in self._container.header[self._MANIFEST_KEY]
            ]

    @property
    def field_names(self) -> list[str]:
        return [e.name for e in self.entries]

    def payload(self, name: str) -> bytes:
        """Raw compressed payload of one field (random access)."""
        return self._container.get(f"field:{name}")

    def extract(self, name: str, compressor: _Compressor) -> np.ndarray:
        """Decompress one field without touching the others."""
        entry = next((e for e in self.entries if e.name == name), None)
        if entry is None:
            raise ContainerError(f"archive has no field {name!r}")
        if entry.variant != compressor.name:
            raise ContainerError(
                f"field {name!r} was compressed with {entry.variant!r}, "
                f"not {compressor.name!r}"
            )
        if f"field:{name}" in self._damaged_sections:
            raise ContainerError(f"field {name!r} failed its checksum")
        return compressor.decompress(self.payload(name))

    def extract_all(
        self,
        resolver: Callable[[str], _Compressor] | None = None,
        *,
        strict: bool = True,
    ) -> ExtractionResult:
        """Decompress every field, with per-field damage recovery.

        ``resolver`` maps a manifest variant name to a compressor instance
        (default: the central codec registry,
        :func:`repro.codec.registry.get_codec`).  With ``strict=True`` the
        first damaged field raises; with ``strict=False`` every intact
        field is returned in ``ExtractionResult.fields`` and each failure
        becomes a structured :class:`FieldDamage` row instead of killing
        the whole snapshot.
        """
        if resolver is None:
            from ..codec.registry import get_codec as resolver

        fields: dict[str, np.ndarray] = {}
        damage: list[FieldDamage] = []

        def fail(name: str, variant: str, stage: str, exc: Exception) -> None:
            if strict:
                raise exc
            damage.append(
                FieldDamage(
                    name=name, variant=variant, stage=stage, error=str(exc)
                )
            )

        raw_manifest = self._container.header[self._MANIFEST_KEY]
        for i, raw in enumerate(raw_manifest):
            try:
                with decode_guard("archive manifest entry"):
                    name = str(raw["name"])
                    variant = str(raw["variant"])
            except ContainerError as exc:
                fail(f"<manifest entry {i}>", "?", "manifest", exc)
                continue
            section = f"field:{name}"
            if section in self._damaged_sections:
                fail(
                    name,
                    variant,
                    "container",
                    ContainerError(f"field {name!r} failed its checksum"),
                )
                continue
            if not self._container.has(section):
                fail(
                    name,
                    variant,
                    "container",
                    ContainerError(f"field {name!r} payload section missing"),
                )
                continue
            try:
                compressor = resolver(variant)
                fields[name] = compressor.decompress(
                    self._container.get(section)
                )
            except ReproError as exc:
                fail(name, variant, "decode", exc)
        return ExtractionResult(
            fields=fields,
            damage=tuple(damage),
            problems=self._parse_problems,
        )

    @classmethod
    def build(
        cls,
        fields: Mapping[str, np.ndarray],
        compressor: _Compressor,
        eb: float = 1e-3,
        mode: str = "vr_rel",
    ) -> "Archive":
        """Compress every field of a snapshot with one compressor."""
        arch = cls()
        for name, data in fields.items():
            arch.add_field(name, compressor.compress(data, eb, mode))
        return arch
