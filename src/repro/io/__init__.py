"""Binary IO: SDRB-style raw field files and the compressed container."""

from .archive import Archive, ArchiveEntry, ExtractionResult, FieldDamage
from .container import (
    Container,
    ContainerReport,
    ContainerSection,
    SalvageResult,
    SectionStatus,
)
from .sdrb import read_raw_field, write_raw_field

__all__ = [
    "Archive",
    "ArchiveEntry",
    "Container",
    "ContainerReport",
    "ContainerSection",
    "ExtractionResult",
    "FieldDamage",
    "SalvageResult",
    "SectionStatus",
    "read_raw_field",
    "write_raw_field",
]
