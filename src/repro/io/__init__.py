"""Binary IO: SDRB-style raw field files and the compressed container."""

from .archive import Archive, ArchiveEntry
from .container import Container, ContainerSection
from .sdrb import read_raw_field, write_raw_field

__all__ = [
    "Archive",
    "ArchiveEntry",
    "Container",
    "ContainerSection",
    "read_raw_field",
    "write_raw_field",
]
