"""Compressed-stream container.

A compressed field is a set of named byte sections (quant codes, border
stream, outlier stream, Huffman table, ...) plus a small typed header
(variant name, shape, dtype, error bound).  The format is deliberately
simple — length-prefixed sections — because its job is bookkeeping, not
entropy: all actual compression happens before bytes reach the container.

Layout (little-endian):

```
magic  "WSZC"            4 bytes
version u16              container format version (1)
header_json_len u32      UTF-8 JSON header
header_json
n_sections u16
per section: name_len u8, name, payload_len u64, payload
```
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

from ..errors import ContainerError

__all__ = ["Container", "ContainerSection"]

_MAGIC = b"WSZC"
_VERSION = 1


@dataclass(frozen=True)
class ContainerSection:
    name: str
    payload: bytes

    def __post_init__(self) -> None:
        if not self.name or len(self.name) > 255:
            raise ContainerError(f"bad section name {self.name!r}")


@dataclass
class Container:
    """An ordered collection of named sections plus a JSON-typed header."""

    header: dict
    sections: list[ContainerSection] = field(default_factory=list)

    def add(self, name: str, payload: bytes) -> None:
        if any(s.name == name for s in self.sections):
            raise ContainerError(f"duplicate section {name!r}")
        self.sections.append(ContainerSection(name, payload))

    def get(self, name: str) -> bytes:
        for s in self.sections:
            if s.name == name:
                return s.payload
        raise ContainerError(f"missing section {name!r}")

    def has(self, name: str) -> bool:
        return any(s.name == name for s in self.sections)

    @property
    def payload_bytes(self) -> int:
        """Total size of section payloads (excludes header/framing)."""
        return sum(len(s.payload) for s in self.sections)

    def to_bytes(self) -> bytes:
        header_json = json.dumps(self.header, sort_keys=True).encode()
        out = bytearray(_MAGIC)
        out += struct.pack("<HI", _VERSION, len(header_json))
        out += header_json
        out += struct.pack("<H", len(self.sections))
        for s in self.sections:
            name_b = s.name.encode()
            out += struct.pack("<B", len(name_b))
            out += name_b
            out += struct.pack("<Q", len(s.payload))
            out += s.payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Container":
        if blob[:4] != _MAGIC:
            raise ContainerError("bad container magic")
        version, hlen = struct.unpack_from("<HI", blob, 4)
        if version != _VERSION:
            raise ContainerError(f"unsupported container version {version}")
        pos = 10
        try:
            header = json.loads(blob[pos : pos + hlen].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ContainerError("corrupt container header") from exc
        pos += hlen
        (n_sections,) = struct.unpack_from("<H", blob, pos)
        pos += 2
        sections: list[ContainerSection] = []
        for _ in range(n_sections):
            (nlen,) = struct.unpack_from("<B", blob, pos)
            pos += 1
            name = blob[pos : pos + nlen].decode()
            pos += nlen
            (plen,) = struct.unpack_from("<Q", blob, pos)
            pos += 8
            if pos + plen > len(blob):
                raise ContainerError(f"truncated section {name!r}")
            sections.append(ContainerSection(name, bytes(blob[pos : pos + plen])))
            pos += plen
        return cls(header=header, sections=sections)
