"""Compressed-stream container.

A compressed field is a set of named byte sections (quant codes, border
stream, outlier stream, Huffman table, ...) plus a small typed header
(variant name, shape, dtype, error bound).  The format is deliberately
simple — length-prefixed sections — because its job is bookkeeping, not
entropy: all actual compression happens before bytes reach the container.

Format v2 (default) adds end-to-end integrity: a CRC32 digest over the
header framing, a CRC32 per section (covering the section name *and*
payload, so payloads cannot be silently re-homed), an end-of-stream
sentinel, and a whole-stream CRC32, so a single flipped bit anywhere in
the stream is detected.  v1 streams (written before the integrity layer)
are still read bit-exactly.

Layout (little-endian):

```
magic  "WSZC"            4 bytes
version u16              container format version (1 or 2)
header_json_len u32      UTF-8 JSON header
header_json
n_sections u16
header_crc u32           v2 only: CRC32 of every byte above
per section:
    name_len u8, name
    payload_len u64
    payload_crc u32      v2 only: CRC32 of name + payload
    payload
sentinel "WSZE"          v2 only
stream_crc u32           v2 only: CRC32 of every byte above
```

``from_bytes`` verifies all framing, lengths and checksums, rejects
trailing garbage, and raises only :class:`ContainerError` (or its
:class:`ChecksumError` subtype) — never ``struct.error`` / ``IndexError``
/ ``UnicodeDecodeError``.  :meth:`Container.scan` is the non-raising
variant that produces a structured damage report, and
:meth:`Container.salvage` recovers the intact sections of a partially
damaged stream.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

from ..errors import ChecksumError, ContainerError

__all__ = [
    "Container",
    "ContainerSection",
    "ContainerReport",
    "SectionStatus",
    "SalvageResult",
]

_MAGIC = b"WSZC"
_SENTINEL = b"WSZE"
_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class ContainerSection:
    name: str
    payload: bytes

    def __post_init__(self) -> None:
        if not self.name or len(self.name) > 255:
            raise ContainerError(f"bad section name {self.name!r}")


@dataclass(frozen=True)
class SectionStatus:
    """Per-section verdict from :meth:`Container.scan`."""

    name: str
    length: int
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class ContainerReport:
    """Structured integrity report for a container stream."""

    ok: bool
    version: int
    n_sections: int
    sections: tuple[SectionStatus, ...]
    problems: tuple[str, ...]


@dataclass(frozen=True)
class SalvageResult:
    """Best-effort parse of a damaged stream: what survived, what did not."""

    container: "Container"
    damaged: frozenset[str]
    problems: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.damaged and not self.problems


class _Cursor:
    """Bounds-checked reader over a byte blob; raises only ContainerError."""

    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.blob) - self.pos

    def take(self, n: int, what: str) -> bytes:
        if n < 0 or self.pos + n > len(self.blob):
            raise ContainerError(f"truncated container: {what}")
        out = self.blob[self.pos : self.pos + n]
        self.pos += n
        return out

    def unpack(self, fmt: str, what: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt), what))


@dataclass
class Container:
    """An ordered collection of named sections plus a JSON-typed header."""

    header: dict
    sections: list[ContainerSection] = field(default_factory=list)
    version: int = _VERSION

    def add(self, name: str, payload: bytes) -> None:
        if any(s.name == name for s in self.sections):
            raise ContainerError(f"duplicate section {name!r}")
        self.sections.append(ContainerSection(name, payload))

    def get(self, name: str) -> bytes:
        for s in self.sections:
            if s.name == name:
                return s.payload
        raise ContainerError(f"missing section {name!r}")

    def has(self, name: str) -> bool:
        return any(s.name == name for s in self.sections)

    @property
    def payload_bytes(self) -> int:
        """Total size of section payloads (excludes header/framing)."""
        return sum(len(s.payload) for s in self.sections)

    def to_bytes(self, version: int | None = None) -> bytes:
        v = self.version if version is None else version
        if v not in _SUPPORTED_VERSIONS:
            raise ContainerError(f"cannot write container version {v}")
        header_json = json.dumps(self.header, sort_keys=True).encode()
        out = bytearray(_MAGIC)
        out += struct.pack("<HI", v, len(header_json))
        out += header_json
        out += struct.pack("<H", len(self.sections))
        if v >= 2:
            out += struct.pack("<I", zlib.crc32(out))
        for s in self.sections:
            name_b = s.name.encode()
            out += struct.pack("<B", len(name_b))
            out += name_b
            out += struct.pack("<Q", len(s.payload))
            if v >= 2:
                out += struct.pack("<I", zlib.crc32(s.payload, zlib.crc32(name_b)))
            out += s.payload
        if v >= 2:
            out += _SENTINEL
            out += struct.pack("<I", zlib.crc32(out))
        return bytes(out)

    # -- reading -----------------------------------------------------------

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Container":
        """Parse and fully verify a container stream (strict)."""
        container, damaged, problems = cls._parse(blob, strict=True)
        assert not damaged and not problems  # strict mode raises instead
        return container

    @classmethod
    def salvage(cls, blob: bytes) -> SalvageResult:
        """Best-effort parse: keep intact sections, report the damage.

        Header framing must still be readable (magic, version, JSON header);
        per-section checksum failures are recorded in ``damaged`` instead of
        raising, and a framing breakdown mid-stream keeps every section
        recovered up to that point.
        """
        container, damaged, problems = cls._parse(blob, strict=False)
        return SalvageResult(
            container=container,
            damaged=frozenset(damaged),
            problems=tuple(problems),
        )

    @classmethod
    def scan(cls, blob: bytes) -> ContainerReport:
        """Non-raising integrity check producing a structured report."""
        try:
            container, damaged, problems = cls._parse(blob, strict=False)
        except ContainerError as exc:
            return ContainerReport(
                ok=False,
                version=0,
                n_sections=0,
                sections=(),
                problems=(str(exc),),
            )
        sections = tuple(
            SectionStatus(
                name=s.name,
                length=len(s.payload),
                ok=s.name not in damaged,
                detail="checksum mismatch" if s.name in damaged else "",
            )
            for s in container.sections
        )
        return ContainerReport(
            ok=not damaged and not problems,
            version=container.version,
            n_sections=len(container.sections),
            sections=sections,
            problems=tuple(problems),
        )

    @classmethod
    def _parse(
        cls, blob: bytes, *, strict: bool
    ) -> tuple["Container", list[str], list[str]]:
        """Shared parser.  ``strict`` raises at the first problem; lenient
        mode records checksum problems (continuing) and framing problems
        (terminal) instead.  Framing/structure errors before the header is
        decoded always raise — there is nothing to salvage.
        """
        damaged: list[str] = []
        problems: list[str] = []

        def flag(msg: str, *, checksum: bool = False) -> None:
            if strict:
                raise ChecksumError(msg) if checksum else ContainerError(msg)
            problems.append(msg)

        cur = _Cursor(blob)
        if cur.take(4, "magic") != _MAGIC:
            raise ContainerError("bad container magic")
        (version,) = cur.unpack("<H", "version field")
        if version not in _SUPPORTED_VERSIONS:
            raise ContainerError(f"unsupported container version {version}")
        (hlen,) = cur.unpack("<I", "header length")
        hbytes = cur.take(hlen, "header JSON")
        try:
            header = json.loads(hbytes.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ContainerError("corrupt container header") from exc
        if not isinstance(header, dict):
            raise ContainerError("container header is not a JSON object")
        (n_sections,) = cur.unpack("<H", "section count")
        if version >= 2:
            crc_end = cur.pos
            (hcrc,) = cur.unpack("<I", "header checksum")
            if hcrc != zlib.crc32(blob[:crc_end]):
                if strict:
                    raise ChecksumError("container header checksum mismatch")
                problems.append("container header checksum mismatch")

        sections: list[ContainerSection] = []
        seen: set[str] = set()
        try:
            for k in range(n_sections):
                (nlen,) = cur.unpack("<B", f"section {k} name length")
                name_b = cur.take(nlen, f"section {k} name")
                try:
                    name = name_b.decode()
                except UnicodeDecodeError as exc:
                    raise ContainerError(
                        f"section {k} name is not valid UTF-8"
                    ) from exc
                (plen,) = cur.unpack("<Q", f"section {name!r} length")
                stored_crc = None
                if version >= 2:
                    (stored_crc,) = cur.unpack(
                        "<I", f"section {name!r} checksum"
                    )
                payload = bytes(cur.take(plen, f"section {name!r} payload"))
                if name in seen:
                    raise ContainerError(f"duplicate section {name!r}")
                seen.add(name)
                if stored_crc is not None and stored_crc != zlib.crc32(
                    payload, zlib.crc32(name_b)
                ):
                    if strict:
                        raise ChecksumError(
                            f"section {name!r} checksum mismatch"
                        )
                    damaged.append(name)
                sections.append(ContainerSection(name, payload))
            if version >= 2:
                if cur.take(4, "end-of-stream sentinel") != _SENTINEL:
                    raise ContainerError("missing end-of-stream sentinel")
                crc_end = cur.pos
                (scrc,) = cur.unpack("<I", "stream checksum")
                if scrc != zlib.crc32(blob[:crc_end]):
                    flag("stream checksum mismatch", checksum=True)
            if cur.pos != len(blob):
                flag(
                    f"{len(blob) - cur.pos} bytes of trailing garbage "
                    "after container"
                )
        except ContainerError as exc:
            if strict:
                raise
            problems.append(str(exc))
        container = cls(header=header, sections=sections, version=version)
        return container, damaged, problems
