"""SDRB-style raw binary field IO.

The Scientific Data Reduction Benchmarks distribute fields as headerless
little-endian float32 dumps (``.dat`` / ``.f32``); dimensions travel out of
band, exactly as in the artifact's command lines (``-2 3600 1800`` etc.).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ShapeError

__all__ = ["read_raw_field", "write_raw_field"]


def write_raw_field(path: str | Path, data: np.ndarray) -> None:
    """Dump a field as headerless little-endian binary, C order."""
    arr = np.ascontiguousarray(data)
    arr.astype(arr.dtype.newbyteorder("<")).tofile(str(path))


def read_raw_field(
    path: str | Path, shape: tuple[int, ...], dtype: np.dtype = np.float32
) -> np.ndarray:
    """Read a headerless binary field of known shape/dtype."""
    dtype = np.dtype(dtype).newbyteorder("<")
    arr = np.fromfile(str(path), dtype=dtype)
    expected = int(np.prod(shape))
    if arr.size != expected:
        raise ShapeError(
            f"{path}: file holds {arr.size} values, shape {shape} needs {expected}"
        )
    return arr.reshape(shape).astype(dtype.newbyteorder("="))
