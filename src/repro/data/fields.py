"""Spectral synthesis of Gaussian random fields.

Real simulation fields have power-law spectra: most energy at large scales,
smooth locally — exactly the correlation structure prediction-based
compressors exploit.  :func:`gaussian_random_field` filters white noise in
Fourier space with amplitude ``k**(-beta/2)`` so the power spectrum falls
as ``k**-beta``; larger ``beta`` = smoother field = better Lorenzo
prediction.  Everything is vectorized FFT work (no Python loops).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, DatasetError

__all__ = ["radial_wavenumber", "gaussian_random_field", "depth_invariant_web"]


def radial_wavenumber(shape: tuple[int, ...]) -> np.ndarray:
    """|k| on the FFT grid of ``shape`` (cycles per box, unnormalized)."""
    if not shape or any(n < 1 for n in shape):
        raise ConfigError(f"bad field shape {shape}")
    axes = [np.fft.fftfreq(n) * n for n in shape]
    grids = np.meshgrid(*axes, indexing="ij", sparse=True)
    k2 = sum(g.astype(np.float64) ** 2 for g in grids)
    return np.sqrt(k2)


def gaussian_random_field(
    shape: tuple[int, ...],
    *,
    beta: float = 3.0,
    seed: int = 0,
    kmin: float = 1.0,
) -> np.ndarray:
    """Zero-mean, unit-variance GRF with power spectrum ``k**-beta``.

    ``kmin`` floors the wavenumber inside the amplitude law so the largest
    scales stay finite; the DC mode is zeroed (zero mean by construction).
    """
    if beta < 0:
        raise ConfigError(f"beta must be >= 0, got {beta}")
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spectrum = np.fft.fftn(white)
    k = radial_wavenumber(shape)
    amp = np.maximum(k, kmin) ** (-beta / 2.0)
    amp.reshape(-1)[0] = 0.0  # kill DC
    field = np.fft.ifftn(spectrum * amp).real
    std = field.std()
    if std == 0:
        raise DatasetError("degenerate field: zero variance (shape too small?)")
    return ((field - field.mean()) / std).astype(np.float64)


def depth_invariant_web(
    shape: tuple[int, int, int],
    *,
    beta: float = 2.2,
    seed: int = 0,
    depth_span: tuple[float, float] = (1.0, 0.9),
) -> np.ndarray:
    """A rough cross-section pattern nearly constant along the first axis.

    Real simulation fields carry fine structure that is *coherent across
    adjacent planes* (terrain-locked weather, line-of-sight filaments): a
    multidimensional predictor cancels it through the plane-neighbour term
    while a 1D rowwise fit must chase it point by point.  This component is
    what separates the Lorenzo predictor from Order-{0,1,2} curve fitting
    on the synthetic 3D datasets (Figure 1 / Table 1 behaviour).
    """
    nz = shape[0]
    cross = gaussian_random_field(shape[1:], beta=beta, seed=seed)
    zmod = np.linspace(depth_span[0], depth_span[1], nz)[:, None, None]
    return cross[None, :, :] * zmod
