"""Hurricane-ISABEL-like 3D fields (paper Table 4: 100x500x500, 20 fields).

ISABEL is a storm simulation: velocity fields carry a coherent vortex,
cloud moisture is non-negative with large exactly-zero regions (the
GhostSZ exact-hit structure — see :mod:`repro.data.cesm`), temperature has
a strong vertical (first-axis) lapse plus frontal structure.  Shapes
follow the paper's axis order (z, y, x) with z the short dimension, which
is also what makes waveSZ's pipeline depth Λ small on this dataset
(Table 5's Hurricane slowdown).
"""

from __future__ import annotations

import numpy as np

from .fields import depth_invariant_web, gaussian_random_field

__all__ = ["cloudf48", "uf48", "vf48", "tcf48", "pf48", "qvaporf48", "wf48"]

_DEFAULT_SHAPE = (40, 100, 100)


def _white(shape: tuple[int, ...], seed: int) -> np.ndarray:
    return np.random.default_rng(seed ^ 0x5EED).standard_normal(shape)


def _grid(shape: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    nz, ny, nx = shape
    z = np.linspace(0.0, 1.0, nz)[:, None, None]
    y = np.linspace(-1, 1, ny)[None, :, None]
    x = np.linspace(-1, 1, nx)[None, None, :]
    return z, y, x


def _vortex(shape: tuple[int, int, int], component: str, seed: int) -> np.ndarray:
    """Rankine-like rotating wind around the domain centre + turbulence."""
    _, y, x = _grid(shape)
    r2 = x**2 + y**2 + 0.05
    radial_profile = np.exp(-2.0 * r2) / r2
    tangential = (x if component == "u" else -y) * radial_profile
    z_decay = np.linspace(1.0, 0.35, shape[0])[:, None, None]
    turb = gaussian_random_field(shape, beta=4.0, seed=seed)
    web = depth_invariant_web(shape, beta=2.2, seed=seed + 10)
    base = 30.0 * tangential * z_decay + 1.5 * turb + 2.0 * web
    vr = float(base.max() - base.min())
    return base + 1e-3 * vr * _white(shape, seed)


def cloudf48(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 201) -> np.ndarray:
    """Cloud moisture (kg/kg): non-negative, ~80 % exactly zero."""
    g = gaussian_random_field(shape, beta=3.5, seed=seed)
    base = np.clip(g - 0.8 + 5e-4 * _white(shape, seed), 0.0, None) * 2e-3
    return base.astype(np.float32)


def uf48(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 202) -> np.ndarray:
    """Zonal wind (m/s) with the vortex signature."""
    return _vortex(shape, "u", seed).astype(np.float32)


def vf48(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 203) -> np.ndarray:
    """Meridional wind (m/s) with the vortex signature."""
    return _vortex(shape, "v", seed).astype(np.float32)


def tcf48(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 204) -> np.ndarray:
    """Temperature (C): vertical lapse + warm core + fronts + turbulence."""
    nz, ny, nx = shape
    g = gaussian_random_field(shape, beta=4.5, seed=seed)
    z, y, x = _grid(shape)
    lapse = 25.0 - 85.0 * z
    core = 8.0 * np.exp(-6.0 * (x**2 + y**2))
    front = 5.0 * np.tanh(25.0 * (0.6 * x + 0.8 * y - 0.2))
    web = depth_invariant_web(shape, beta=2.2, seed=seed + 10)
    base = lapse + core + front + 1.0 * g + 1.5 * web
    vr = float(base.max() - base.min())
    return (base + 5e-4 * vr * _white(shape, seed)).astype(np.float32)


def pf48(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 205) -> np.ndarray:
    """Pressure perturbation (Pa): smooth with a deep central low."""
    g = gaussian_random_field(shape, beta=5.0, seed=seed)
    _, y, x = _grid(shape)
    web = depth_invariant_web(shape, beta=2.0, seed=seed + 10)
    base = -4000.0 * np.exp(-5.0 * (x**2 + y**2)) + 300.0 * g + 250.0 * web
    vr = float(base.max() - base.min())
    return (base + 5e-4 * vr * _white(shape, seed)).astype(np.float32)


def qvaporf48(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 206) -> np.ndarray:
    """Water vapour mixing ratio (kg/kg): exponential decay with height,
    moist core, non-negative."""
    nz, ny, nx = shape
    g = gaussian_random_field(shape, beta=3.8, seed=seed)
    z, y, x = _grid(shape)
    column = 0.02 * np.exp(-3.0 * z)
    core = 1.0 + 0.8 * np.exp(-5.0 * (x**2 + y**2))
    base = np.clip(column * core * (1.0 + 0.15 * g), 0.0, None)
    vr = float(base.max()) or 1.0
    return (base + 5e-4 * vr * np.abs(_white(shape, seed))).astype(np.float32)


def wf48(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 207) -> np.ndarray:
    """Vertical wind (m/s): small-scale convective cells around the
    eyewall — the roughest field of the set."""
    nz, ny, nx = shape
    g = gaussian_random_field(shape, beta=2.8, seed=seed)
    _, y, x = _grid(shape)
    r2 = x**2 + y**2
    eyewall = np.exp(-60.0 * (np.sqrt(r2) - 0.25) ** 2)
    base = 2.5 * g * (0.3 + eyewall)
    vr = float(base.max() - base.min())
    return (base + 1e-3 * vr * _white(shape, seed)).astype(np.float32)
