"""NYX-cosmology-like 3D fields (paper Table 4: 512^3, 6 fields).

NYX snapshots contain baryon density (log-normal, power-law spectrum),
temperature correlated with density, large-scale velocities, and a
particle-deposited dark-matter density whose void cells are *exactly*
zero (CIC deposition of no particles) — the constant structure the
GhostSZ previous-value fit exploits.  The log-normal amplitude is kept
moderate (sigma ~1) so the bulk of the field varies on the scale of the
VR-REL bound rather than sitting flat far below it.
"""

from __future__ import annotations

import numpy as np

from .fields import depth_invariant_web, gaussian_random_field

__all__ = ["baryon_density", "temperature", "dark_matter_density",
           "velocity_x", "velocity_y", "velocity_z"]

_DEFAULT_SHAPE = (64, 64, 64)


def _white(shape: tuple[int, ...], seed: int) -> np.ndarray:
    return np.random.default_rng(seed ^ 0x5EED).standard_normal(shape)


def baryon_density(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 301) -> np.ndarray:
    """Baryon density (mean-normalized): log-normal, smooth web."""
    g = gaussian_random_field(shape, beta=4.0, seed=seed)
    web = depth_invariant_web(shape, beta=2.0, seed=seed + 10)
    # Shift the web to be non-negative so density stays positive.
    base = np.exp(1.0 * g) + 2.0 * (web - web.min())
    vr = float(base.max() - base.min())
    return (base + 5e-4 * vr * np.abs(_white(shape, seed))).astype(np.float32)


def dark_matter_density(
    shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 302
) -> np.ndarray:
    """Dark-matter density: clustered, with exactly-zero void cells."""
    g = gaussian_random_field(shape, beta=3.5, seed=seed)
    web = depth_invariant_web(shape, beta=2.2, seed=seed + 10)
    base = np.clip(np.exp(1.2 * g) - 0.5 + 0.3 * web, 0.0, None)
    vr = float(base.max()) or 1.0
    noise = 5e-4 * vr * np.abs(_white(shape, seed))
    return (base + noise * (base > 0)).astype(np.float32)


def temperature(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 303) -> np.ndarray:
    """Gas temperature (K): density power law + scatter."""
    rho = baryon_density(shape, seed=301).astype(np.float64)
    g = gaussian_random_field(shape, beta=4.0, seed=seed)
    web = depth_invariant_web(shape, beta=2.2, seed=seed + 10)
    base = 1e4 * rho**0.6 * np.exp(0.2 * g) + 3e3 * web
    vr = float(base.max() - base.min())
    return (base + 5e-4 * vr * np.abs(_white(shape, seed))).astype(np.float32)


def velocity_x(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 304) -> np.ndarray:
    """Peculiar velocity (km/s): large-scale coherent flows."""
    g = gaussian_random_field(shape, beta=4.0, seed=seed)
    web = depth_invariant_web(shape, beta=2.2, seed=seed + 10)
    base = 350.0 * g + 60.0 * web
    vr = float(base.max() - base.min())
    return (base + 7e-4 * vr * _white(shape, seed)).astype(np.float32)


def velocity_y(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 305) -> np.ndarray:
    """Peculiar velocity, y component (independent large-scale modes)."""
    g = gaussian_random_field(shape, beta=4.0, seed=seed)
    web = depth_invariant_web(shape, beta=2.2, seed=seed + 10)
    base = 350.0 * g + 60.0 * web
    vr = float(base.max() - base.min())
    return (base + 7e-4 * vr * _white(shape, seed)).astype(np.float32)


def velocity_z(shape: tuple[int, int, int] = _DEFAULT_SHAPE, seed: int = 306) -> np.ndarray:
    """Peculiar velocity, z component (slightly rougher spectrum)."""
    g = gaussian_random_field(shape, beta=3.7, seed=seed)
    web = depth_invariant_web(shape, beta=2.2, seed=seed + 10)
    base = 350.0 * g + 60.0 * web
    vr = float(base.max() - base.min())
    return (base + 7e-4 * vr * _white(shape, seed)).astype(np.float32)
