"""Dataset registry mirroring paper Table 4.

Each :class:`DatasetSpec` carries the paper's metadata (dims, field count)
plus the scaled-down reproduction fields actually generated (DESIGN.md §6).
``load_field(dataset, field, scale=...)`` scales the repro dims by an
integer factor when a larger run is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import DatasetError
from . import cesm, hurricane, nyx

__all__ = ["FieldSpec", "DatasetSpec", "DATASETS", "list_datasets", "load_field"]


@dataclass(frozen=True)
class FieldSpec:
    name: str
    generator: Callable[..., np.ndarray]
    description: str


@dataclass(frozen=True)
class DatasetSpec:
    name: str
    paper_dims: tuple[int, ...]
    paper_fields: int
    repro_dims: tuple[int, ...]
    fields: tuple[FieldSpec, ...]
    description: str

    def field(self, name: str) -> FieldSpec:
        for f in self.fields:
            if f.name == name:
                return f
        raise DatasetError(
            f"dataset {self.name!r} has no field {name!r}; "
            f"available: {[f.name for f in self.fields]}"
        )

    @property
    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]


DATASETS: dict[str, DatasetSpec] = {
    "CESM-ATM": DatasetSpec(
        name="CESM-ATM",
        paper_dims=(1800, 3600),
        paper_fields=79,
        repro_dims=(180, 360),
        description="2D climate simulation (CESM atmosphere model)",
        fields=(
            FieldSpec("CLDLOW", cesm.cldlow, "low cloud fraction, [0,1] saturated"),
            FieldSpec("CLDHGH", cesm.cldhgh, "high cloud fraction, patchy"),
            FieldSpec("TS", cesm.ts, "surface temperature (K)"),
            FieldSpec("PRECT", cesm.prect, "precipitation rate (m/s), heavy tail"),
            FieldSpec("FLNS", cesm.flns, "net surface longwave flux (W/m^2)"),
            FieldSpec("PSL", cesm.psl, "sea-level pressure (Pa), very smooth"),
            FieldSpec("ICEFRAC", cesm.icefrac, "sea-ice fraction, polar saturated"),
            FieldSpec("U10", cesm.u10, "10 m wind speed with storm tracks"),
        ),
    ),
    "Hurricane": DatasetSpec(
        name="Hurricane",
        paper_dims=(100, 500, 500),
        paper_fields=20,
        repro_dims=(40, 100, 100),
        description="3D hurricane ISABEL simulation",
        fields=(
            FieldSpec("CLOUDf48", hurricane.cloudf48, "cloud moisture, mostly zero"),
            FieldSpec("Uf48", hurricane.uf48, "zonal wind with vortex"),
            FieldSpec("Vf48", hurricane.vf48, "meridional wind with vortex"),
            FieldSpec("TCf48", hurricane.tcf48, "temperature with lapse + warm core"),
            FieldSpec("Pf48", hurricane.pf48, "pressure perturbation"),
            FieldSpec("QVAPORf48", hurricane.qvaporf48, "water vapour, exp. lapse"),
            FieldSpec("Wf48", hurricane.wf48, "vertical wind, convective cells"),
        ),
    ),
    "NYX": DatasetSpec(
        name="NYX",
        paper_dims=(512, 512, 512),
        paper_fields=6,
        repro_dims=(64, 64, 64),
        description="3D NYX cosmology simulation",
        fields=(
            FieldSpec("baryon_density", nyx.baryon_density, "log-normal density"),
            FieldSpec(
                "dark_matter_density", nyx.dark_matter_density, "clustered density"
            ),
            FieldSpec("temperature", nyx.temperature, "density-correlated T"),
            FieldSpec("velocity_x", nyx.velocity_x, "large-scale velocity"),
            FieldSpec("velocity_y", nyx.velocity_y, "large-scale velocity (y)"),
            FieldSpec("velocity_z", nyx.velocity_z, "large-scale velocity (z)"),
        ),
    ),
}


def list_datasets() -> list[str]:
    return list(DATASETS)


def load_field(
    dataset: str, field: str, *, scale: int = 1, seed_offset: int = 0
) -> np.ndarray:
    """Generate one field, optionally scaled up by an integer factor."""
    try:
        spec = DATASETS[dataset]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {dataset!r}; available: {list(DATASETS)}"
        ) from None
    if scale < 1:
        raise DatasetError(f"scale must be >= 1, got {scale}")
    fs = spec.field(field)
    shape = tuple(int(n * scale) for n in spec.repro_dims)
    kwargs: dict = {"shape": shape}
    if seed_offset:
        # Generators take `seed=`; offset it for multi-snapshot workloads.
        import inspect

        default_seed = inspect.signature(fs.generator).parameters["seed"].default
        kwargs["seed"] = default_seed + seed_offset
    return fs.generator(**kwargs)
