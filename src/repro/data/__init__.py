"""Synthetic stand-ins for the SDRB evaluation datasets.

The paper evaluates on three SDRB datasets (Table 4): 2D CESM-ATM climate,
3D Hurricane ISABEL, 3D NYX cosmology — multi-gigabyte downloads we cannot
ship.  This package generates spectrally-shaped Gaussian random fields with
the per-dataset statistics that drive the paper's comparisons (DESIGN.md §3
substitution 1): smoothness (Lorenzo vs curve-fit accuracy, Figure 1/Table
1), saturated constant regions in cloud-fraction fields (GhostSZ's PSNR
edge, Table 8/Figure 9), log-normal density tails (NYX ratios).

All generators are deterministic in their seed.
"""

from .fields import gaussian_random_field, radial_wavenumber
from .registry import DATASETS, DatasetSpec, FieldSpec, list_datasets, load_field

__all__ = [
    "gaussian_random_field",
    "radial_wavenumber",
    "DATASETS",
    "DatasetSpec",
    "FieldSpec",
    "list_datasets",
    "load_field",
]
