"""CESM-ATM-like 2D climate fields (paper Table 4: 1800x3600, 79 fields).

Generator design (calibrated in DESIGN.md §3):

* spectra are steep (``beta`` 4-5) so fields are smooth at the pixel scale
  — at 1/10 the paper's grid resolution, steeper spectra stand in for the
  smoothness a finer grid would provide;
* every field carries "mantissa noise" of order the 1e-3 VR-REL bound —
  the nearly-random trailing mantissa bits the paper's introduction calls
  out — which sets the quantization-code entropy in the regime that makes
  the code stream Huffman/gzip-compressible without being trivial;
* cloud fractions are clamped to [0,1] *after* the noise, producing
  large exactly-constant saturated regions: the structure behind GhostSZ's
  concentrated compression errors (Figure 9) and higher PSNR (Table 8).
"""

from __future__ import annotations

import numpy as np

from .fields import gaussian_random_field

__all__ = ["cldlow", "cldhgh", "ts", "prect", "flns", "psl", "icefrac", "u10"]


def _white(shape: tuple[int, ...], seed: int) -> np.ndarray:
    return np.random.default_rng(seed ^ 0x5EED).standard_normal(shape)


def cldlow(shape: tuple[int, int] = (180, 360), seed: int = 101) -> np.ndarray:
    """Low-cloud fraction: smooth field clamped to [0,1], ~55 % saturated."""
    g = gaussian_random_field(shape, beta=4.5, seed=seed)
    return np.clip(0.45 + 0.9 * g + 1e-3 * _white(shape, seed), 0.0, 1.0).astype(
        np.float32
    )


def cldhgh(shape: tuple[int, int] = (180, 360), seed: int = 102) -> np.ndarray:
    """High-cloud fraction: patchier spectrum, mostly clear sky."""
    g = gaussian_random_field(shape, beta=4.0, seed=seed)
    return np.clip(0.30 + 0.7 * g + 1e-3 * _white(shape, seed), 0.0, 1.0).astype(
        np.float32
    )


def _zonal_rough(shape: tuple[int, int], seed: int, beta: float = 1.5) -> np.ndarray:
    """Longitude-locked rough structure, nearly constant along latitude.

    The 2D analogue of :func:`repro.data.fields.depth_invariant_web`:
    the Lorenzo N-term cancels it, a 1D rowwise fit cannot.
    """
    rough = gaussian_random_field((shape[1],), beta=beta, seed=seed)
    latmod = (1.0 + 0.1 * np.cos(np.linspace(0, np.pi, shape[0])))[:, None]
    return rough[None, :] * latmod


def ts(shape: tuple[int, int] = (180, 360), seed: int = 103) -> np.ndarray:
    """Surface temperature (K): latitudinal gradient + smooth anomaly."""
    g = gaussian_random_field(shape, beta=5.0, seed=seed)
    lat = np.cos(np.linspace(-np.pi / 2, np.pi / 2, shape[0]))[:, None]
    base = 250.0 + 45.0 * lat + 6.0 * g + 3.0 * _zonal_rough(shape, seed + 10)
    vr = float(base.max() - base.min())
    return (base + 7e-4 * vr * _white(shape, seed)).astype(np.float32)


def prect(shape: tuple[int, int] = (180, 360), seed: int = 104) -> np.ndarray:
    """Precipitation rate (m/s): heavy-tailed, non-negative."""
    g = gaussian_random_field(shape, beta=3.8, seed=seed)
    base = 2e-8 * np.exp(1.4 * g)
    vr = float(base.max() - base.min())
    return (base + 5e-4 * vr * np.abs(_white(shape, seed))).astype(np.float32)


def flns(shape: tuple[int, int] = (180, 360), seed: int = 105) -> np.ndarray:
    """Net surface longwave flux (W/m^2): smooth mid-range field."""
    g = gaussian_random_field(shape, beta=4.5, seed=seed)
    base = 60.0 + 25.0 * g + 12.0 * _zonal_rough(shape, seed + 10)
    vr = float(base.max() - base.min())
    return (base + 7e-4 * vr * _white(shape, seed)).astype(np.float32)


def psl(shape: tuple[int, int] = (180, 360), seed: int = 106) -> np.ndarray:
    """Sea-level pressure (Pa): very smooth large-scale field."""
    g = gaussian_random_field(shape, beta=5.0, seed=seed)
    base = 101325.0 + 1200.0 * g + 500.0 * _zonal_rough(shape, seed + 10)
    vr = float(base.max() - base.min())
    return (base + 5e-4 * vr * _white(shape, seed)).astype(np.float32)


def icefrac(shape: tuple[int, int] = (180, 360), seed: int = 107) -> np.ndarray:
    """Sea-ice fraction: saturated at 0 over most of the globe, 1 at the
    poles — the most extreme constant-region field in the set."""
    g = gaussian_random_field(shape, beta=4.0, seed=seed)
    lat = np.abs(np.linspace(-1, 1, shape[0]))[:, None]
    base = 3.0 * (lat - 0.72) + 0.5 * g + 1e-3 * _white(shape, seed)
    return np.clip(base, 0.0, 1.0).astype(np.float32)


def u10(shape: tuple[int, int] = (180, 360), seed: int = 108) -> np.ndarray:
    """10 m wind speed (m/s): non-negative with storm-track bands."""
    g = gaussian_random_field(shape, beta=3.8, seed=seed)
    band = 4.0 * np.exp(-((np.linspace(-1, 1, shape[0])[:, None] ** 2 - 0.25) ** 2) * 40)
    base = np.abs(5.0 + band + 3.0 * g)
    vr = float(base.max() - base.min())
    return (base + 7e-4 * vr * _white(shape, seed)).astype(np.float32)
