"""Horizontal scaling for the store: consistent hashing, replication,
failover.

``repro.shard`` turns N plain ``wavesz serve --store`` servers into one
logical :class:`~repro.store.ArrayStore`:

    from repro.shard import ShardGateway, ShardMap

    gw = ShardGateway(ShardMap.from_addresses(
        "127.0.0.1:8201,127.0.0.1:8202,127.0.0.1:8203", replicas=2))
    gw.put("run42.TS", field, codec="wavesz", eb=1e-3, n_tiles=12)
    part = gw.read_slice("run42.TS", (slice(10, 20),)).data  # bit-exact

Tile objects are placed on the :class:`ShardRing` by content digest and
written to ``replicas`` shards; manifests replicate to the owners of
``m:<name>``.  Reads fail over down the owner list, repair stale or
missing replicas as they go, and stay bit-exact with the single-store
path because both are built from the same tile compress/decode/assemble
functions.  :class:`GatewayServer` (``wavesz shard serve``) exposes a
gateway over the same wire protocol as the service, so existing clients
need no changes.
"""

from .cluster import LocalShardCluster
from .gateway import GatewayGCResult, ShardGateway, ShardPutResult, manifest_key
from .ring import DEFAULT_VNODES, ShardInfo, ShardMap, ShardRing
from .server import GatewayServer, serve_gateway

__all__ = [
    "LocalShardCluster",
    "ShardRing",
    "ShardInfo",
    "ShardMap",
    "ShardGateway",
    "ShardPutResult",
    "GatewayGCResult",
    "GatewayServer",
    "serve_gateway",
    "manifest_key",
    "DEFAULT_VNODES",
]
