"""In-process shard clusters for tests, benchmarks and chaos runs.

:class:`LocalShardCluster` runs N real :class:`CompressionServer`
instances — each with its own :class:`~repro.store.ArrayStore` root —
on one background asyncio loop, and hands out :class:`ShardMap` /
:class:`~repro.shard.gateway.ShardGateway` objects wired to them.
Individual shards can be stopped (abruptly or drained) and restarted on
the *same* port with the *same* store directory, which is exactly the
shard-loss-and-return scenario the failover and read-repair paths exist
for.  Everything is real sockets on loopback; only the process boundary
is elided.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Any

from ..service.server import CompressionServer
from .gateway import ShardGateway
from .ring import ShardMap

__all__ = ["LocalShardCluster"]


class LocalShardCluster:
    """N loopback shard servers with stable ports across restarts."""

    def __init__(
        self,
        roots: list[str | Path],
        *,
        replicas: int = 2,
        workers: int = 1,
        host: str = "127.0.0.1",
    ) -> None:
        if not roots:
            raise ValueError("a cluster needs at least one shard root")
        self.roots = [Path(r) for r in roots]
        self.replicas = min(replicas, len(self.roots))
        self.workers = workers
        self.host = host
        self.ports: list[int | None] = [None] * len(self.roots)
        self.servers: list[CompressionServer | None] = [None] * len(self.roots)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            loop = asyncio.new_event_loop()
            ready = threading.Event()

            def runner() -> None:
                asyncio.set_event_loop(loop)
                ready.set()
                loop.run_forever()

            self._thread = threading.Thread(target=runner, daemon=True)
            self._thread.start()
            if not ready.wait(10):  # pragma: no cover - startup failure
                raise RuntimeError("cluster loop failed to start")
            self._loop = loop
        return self._loop

    def _run(self, coro: Any, timeout: float = 30.0) -> Any:
        loop = self._ensure_loop()
        return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout)

    def start(self) -> "LocalShardCluster":
        for i in range(len(self.roots)):
            if self.servers[i] is None:
                self.start_shard(i)
        return self

    def start_shard(self, i: int) -> None:
        """(Re)start shard ``i`` on its previous port, same store root."""
        assert self.servers[i] is None, f"shard {i} already running"
        srv = CompressionServer(
            host=self.host,
            port=self.ports[i] or 0,
            workers=self.workers,
            pool_kind="thread",
            store_root=str(self.roots[i]),
        )
        self._run(srv.start())
        self.ports[i] = srv.port
        self.servers[i] = srv

    def stop_shard(self, i: int, *, drain: bool = False) -> None:
        """Take shard ``i`` down; its port stays reserved for restart."""
        srv = self.servers[i]
        if srv is None:
            return
        self.servers[i] = None
        self._run(srv.stop(drain=drain, deadline_s=2.0))

    def close(self) -> None:
        for i in range(len(self.roots)):
            try:
                self.stop_shard(i)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(10)
            self._loop.close()
            self._loop = None
            self._thread = None

    def __enter__(self) -> "LocalShardCluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- views -------------------------------------------------------------

    @property
    def addresses(self) -> list[str]:
        assert all(p is not None for p in self.ports), "cluster not started"
        return [f"{self.host}:{p}" for p in self.ports]

    def shard_map(self) -> ShardMap:
        return ShardMap.from_addresses(self.addresses, replicas=self.replicas)

    def gateway(self, **kwargs: Any) -> ShardGateway:
        return ShardGateway(self.shard_map(), **kwargs)

    def shard_id(self, i: int) -> str:
        return self.addresses[i]
