"""A TCP front for one :class:`~repro.shard.gateway.ShardGateway`.

``GatewayServer`` speaks the same length-prefixed frame protocol as the
compression service, so a plain
:class:`~repro.service.server.ServiceClient` works against it unchanged:
``store_put`` / ``store_read`` / ``store_slice`` / ``store_ls`` /
``store_gc`` hit the replicated sharded store, ``shard_map`` hands out
the cluster topology (how shard-aware clients bootstrap), and ``health``
aggregates per-shard liveness, latency and failover counters.

The gateway object is blocking and single-threaded by contract, so the
server funnels every op through one ``asyncio.Lock`` + ``to_thread`` —
concurrency across shards happens *inside* the gateway's own fan-out,
not across requests.  ``wavesz shard serve`` is the CLI entry point.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from .. import __version__
from ..errors import ReproError, ServiceError
from ..service.server import CompressionServer, _pack, _read_frame
from .gateway import ShardGateway

__all__ = ["GatewayServer", "serve_gateway"]


class GatewayServer:
    """Asyncio TCP server delegating the store ops to a shard gateway."""

    def __init__(
        self,
        gateway: ShardGateway,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._lock = asyncio.Lock()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.gateway.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header, body = await _read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                response = await self._dispatch(header, body)
                writer.write(response)
                await writer.drain()
        except ServiceError as exc:
            try:
                writer.write(_pack({
                    "ok": False, "error": "protocol", "detail": str(exc),
                }))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - races
                pass

    async def _gw(self, fn, *args: Any, **kwargs: Any) -> Any:
        async with self._lock:
            return await asyncio.to_thread(fn, *args, **kwargs)

    async def _dispatch(self, header: dict, body: bytes) -> bytes:
        op = header.get("op")
        try:
            if op == "ping":
                return _pack({"ok": True, "version": __version__,
                              "role": "shard-gateway"})
            if op == "shard_map":
                return _pack({
                    "ok": True, "shard_map": self.gateway.map.to_dict(),
                })
            if op == "health":
                status = await self._gw(self.gateway.status)
                snap = self.gateway.metrics.snapshot()
                return _pack({
                    "ok": True,
                    "status": (
                        "ok" if status["shards_up"] == status["n_shards"]
                        else "degraded" if status["shards_up"] else "down"
                    ),
                    "version": __version__,
                    "gauges": snap.gauges,
                    "events": snap.events,
                    **status,
                })
            if op == "store_put":
                data = CompressionServer._parse_field(header, body)
                r = await self._gw(
                    self.gateway.put,
                    str(header.get("name", "")),
                    data,
                    str(header.get("codec", "wavesz")),
                    float(header.get("eb", 1e-3)),
                    str(header.get("mode", "vr_rel")),
                    n_tiles=int(header.get("n_tiles", 4)),
                )
                return _pack({
                    "ok": True,
                    "name": r.name,
                    "codec": r.codec,
                    "n_tiles": r.n_tiles,
                    "new_objects": r.new_objects,
                    "dedup_objects": r.dedup_objects,
                    "stored_bytes": r.stored_bytes,
                    "dedup_bytes": r.dedup_bytes,
                    "ratio": r.ratio,
                    "version": r.version,
                    "replicas": r.replicas,
                    "degraded": r.degraded,
                    "per_shard": r.per_shard,
                })
            if op == "store_read":
                result = await self._gw(
                    self.gateway.read,
                    str(header.get("name", "")),
                    strict=bool(header.get("strict", True)),
                )
                return self._pack_read(result)
            if op == "store_slice":
                raw = header.get("slices")
                if not isinstance(raw, list):
                    raise ServiceError(
                        f"store_slice needs a per-axis slices list, got {raw!r}"
                    )
                window = tuple(
                    None if s is None else (s[0], s[1])
                    if isinstance(s, list) and len(s) == 2 else s
                    for s in raw
                )
                result = await self._gw(
                    self.gateway.read_slice,
                    str(header.get("name", "")),
                    window,
                    strict=bool(header.get("strict", True)),
                )
                return self._pack_read(result)
            if op == "store_ls":
                rows = await self._gw(self.gateway.ls)
                for r in rows:
                    r["shape"] = list(r["shape"])
                return _pack({"ok": True, "datasets": rows})
            if op == "store_gc":
                r = await self._gw(self.gateway.gc)
                return _pack({
                    "ok": True,
                    "removed": r.n_removed,
                    "reclaimed_bytes": r.reclaimed_bytes,
                    "kept": r.kept,
                    "tmp_removed": 0,
                    "per_shard": r.per_shard,
                })
            return _pack({"ok": False, "error": f"unknown op {op!r}"})
        except ReproError as exc:
            return _pack({
                "ok": False,
                "error": type(exc).__name__,
                "detail": str(exc),
                "op": str(op),
                "req_id": str(header.get("req_id", "-")),
            })

    @staticmethod
    def _pack_read(result: Any) -> bytes:
        out = result.data
        return _pack(
            {
                "ok": True,
                "shape": list(out.shape),
                "dtype": str(out.dtype),
                "tiles": list(result.tile_indices),
                "damaged": list(result.damaged_tiles),
            },
            np.ascontiguousarray(out).astype(
                out.dtype.newbyteorder("<")
            ).tobytes(),
        )


async def serve_gateway(
    gateway: ShardGateway, host: str = "127.0.0.1", port: int = 8124
) -> None:
    """Run a gateway server until cancelled (the ``wavesz shard serve``
    body); SIGTERM closes the listener and the per-shard clients."""
    import signal

    server = GatewayServer(gateway, host, port)
    await server.start()
    print(
        f"wavesz shard gateway listening on {server.host}:{server.port} "
        f"({len(gateway.map.shard_ids)} shard(s), "
        f"replicas={gateway.map.replicas})",
        flush=True,
    )
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, stop_requested.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - win
        pass
    serve_task = asyncio.create_task(server.serve_forever())
    stop_task = asyncio.create_task(stop_requested.wait())
    try:
        done, _ = await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop_task in done:
            serve_task.cancel()
    finally:
        for t in (serve_task, stop_task):
            t.cancel()
        await server.stop()
