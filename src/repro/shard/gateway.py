"""The shard gateway: one logical :class:`~repro.store.ArrayStore` over N.

:class:`ShardGateway` fronts N plain ``wavesz serve --store`` servers and
speaks the shard-facing wire primitives (``store_put_object``,
``store_get_object``, ``store_put_manifest``, ...) to each.  Placement is
the :class:`~repro.shard.ring.ShardRing`: a tile object lives on the
``replicas`` shards owning its content digest, a dataset manifest on the
shards owning ``m:<name>``.  The read and write paths reuse the exact
tile functions the local store is built from
(:func:`~repro.store.compress_field_tiles`,
:func:`~repro.store.decode_tile_blob`,
:func:`~repro.store.assemble_tiles`), so a sharded read is bit-exact
with a single-store read by construction.

Failure semantics:

* **put** — every tile must land on at least one replica *before* the
  manifest is written anywhere (old-or-new: a put that fails leaves the
  previous version fully readable), and the manifest must land on at
  least one of its owners to ack.  Writes that reach fewer than
  ``replicas`` copies still ack but are flagged ``degraded`` and counted
  (``gateway.degraded_writes``).
* **read** — manifests are read from all owners, the highest version
  wins (ties broken by canonical-JSON digest), stale or missing replicas
  are repaired in the background of the read (``gateway.read_repairs``).
  Tiles fail over down the owner list (``gateway.failovers``); a replica
  that is alive but missing/corrupt gets the winning bytes written back.
  With one shard down and ``replicas >= 2`` every read succeeds; with
  ``replicas=1`` a ``strict=False`` read salvages and reports lost tile
  indices exactly like the local damage path (stage ``"missing"``).

Each shard gets its own :class:`~repro.service.resilience.RetryPolicy`
and :class:`~repro.service.resilience.CircuitBreaker`, so one sick shard
trips fast without poisoning calls to its peers.  Per-shard telemetry
exports as ``shard.<id>.up`` / ``.latency_ms`` / ``.failovers`` gauges
on the gateway's :class:`~repro.service.metrics.MetricsRegistry`.

A gateway instance is not thread-safe (its per-shard clients own plain
sockets); use one instance per thread.  Within one call it fans out to
shards in parallel, one worker per shard.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from ..errors import (
    ChecksumError,
    CircuitOpenError,
    ConfigError,
    ReproError,
    ServiceError,
    StoreError,
    TransportError,
)
from ..service.metrics import MetricsRegistry
from ..service.resilience import CircuitBreaker, RetryPolicy
from ..service.server import ServiceClient
from ..store import TileCache, assemble_tiles, compress_field_tiles, decode_tile_blob
from ..store.cache import DEFAULT_CACHE_BYTES
from ..store.store import ArrayStore, StoreReadResult
from ..tiling import TileGrid, normalize_slices
from .ring import DEFAULT_VNODES, ShardMap, ShardRing

__all__ = ["ShardGateway", "ShardPutResult", "GatewayGCResult", "manifest_key"]

#: Errors that mean "this shard is down / unreachable", as opposed to
#: alive-but-missing-data.  ServiceTimeoutError subclasses TransportError.
_DOWN = (TransportError, CircuitOpenError, ConnectionError, OSError)


def manifest_key(name: str) -> str:
    """The ring key a dataset's manifest replicas are placed by.

    Prefixed so a manifest and a tile digest can never collide on the
    ring, and so placement depends only on the dataset name.
    """
    return f"m:{name}"


class _ShardDown(Exception):
    """Internal: a call failed because the shard is unreachable."""

    def __init__(self, shard_id: str, cause: BaseException) -> None:
        super().__init__(f"shard {shard_id} is unreachable: {cause}")
        self.shard_id = shard_id
        self.cause = cause


@dataclass(frozen=True)
class ShardPutResult:
    """Outcome of one replicated put, PutResult-compatible where shared."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    codec: str
    eb_abs: float
    tile_digests: tuple[str, ...]
    version: int
    replicas: int
    new_objects: int  # unique digests that did not exist anywhere
    dedup_objects: int  # unique digests every replica already had
    stored_bytes: int  # bytes physically written cluster-wide (all copies)
    dedup_bytes: int  # bytes existing copies saved us
    compressed_bytes: int  # one logical copy (sum of tile payloads)
    original_bytes: int
    degraded: bool  # acked with fewer than `replicas` copies somewhere
    per_shard: dict[str, int] = field(default_factory=dict)  # objects written

    @property
    def n_tiles(self) -> int:
        return len(self.tile_digests)

    @property
    def ratio(self) -> float:
        """Compression ratio of one logical copy (replication excluded)."""
        return self.original_bytes / max(1, self.compressed_bytes)


@dataclass(frozen=True)
class GatewayGCResult:
    """Aggregate of one cluster-wide gc pass."""

    n_removed: int
    reclaimed_bytes: int
    kept: int
    per_shard: dict[str, dict[str, int]] = field(default_factory=dict)
    tmp_removed: tuple[str, ...] = ()  # GCResult-shape compat (CLI)


class ShardGateway:
    """One logical store spread over the shards of a :class:`ShardMap`."""

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        timeout: float = 30.0,
        vnodes: int = DEFAULT_VNODES,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        metrics: MetricsRegistry | None = None,
        retry_factory: Callable[[str], RetryPolicy] | None = None,
        breaker_factory: Callable[[str], CircuitBreaker] | None = None,
        socket_factory: Callable[..., Any] | None = None,
    ) -> None:
        self.map = shard_map
        self.ring: ShardRing = shard_map.ring(vnodes=vnodes)
        self.timeout = timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = TileCache(
            cache_bytes, metrics=self.metrics, gauge_prefix="gateway.cache"
        )
        self._socket_factory = socket_factory
        self._retry_factory = retry_factory or (
            # fail over to a replica quickly instead of retrying one
            # shard for seconds: 2 tries, short jittered pause.
            lambda sid: RetryPolicy(attempts=2, base_s=0.02, cap_s=0.2)
        )
        self._breaker_factory = breaker_factory or (
            lambda sid: CircuitBreaker(failure_threshold=3, reset_after_s=2.0)
        )
        # Breakers outlive client objects: a shard whose *connection*
        # cannot even be built must still trip and cool down.
        self._breakers = {
            sid: self._breaker_factory(sid) for sid in self.map.shard_ids
        }
        self._clients: dict[str, ServiceClient] = {}
        self._latency_ms: dict[str, float] = {}
        self._failovers: dict[str, int] = dict.fromkeys(self.map.shard_ids, 0)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self.map.shard_ids)),
            thread_name_prefix="shard-gw",
        )
        self.decode_calls = 0  # parity with ArrayStore telemetry

    # -- construction ------------------------------------------------------

    @classmethod
    def from_any(
        cls, addresses: str | Iterable[str], *, replicas: int = 2, **kwargs: Any
    ) -> "ShardGateway":
        """Build a gateway from ``host:port[,host:port...]`` addresses.

        A single address is asked for its ``shard_map`` op first — so
        pointing at any member of a configured cluster (or at a gateway
        server) yields the full topology.  A server that has no shard
        map, or a multi-address list, becomes the topology directly with
        the given replication factor.
        """
        if isinstance(addresses, str):
            addresses = [a.strip() for a in addresses.split(",") if a.strip()]
        else:
            addresses = [str(a).strip() for a in addresses]
        if not addresses:
            raise ConfigError("no shard addresses given")
        if len(addresses) == 1:
            probe_map = ShardMap.from_addresses(addresses, replicas=1)
            info = probe_map.shards[0]
            try:
                with ServiceClient(
                    info.host, info.port,
                    retry=RetryPolicy(attempts=2, base_s=0.02, cap_s=0.2),
                ) as probe:
                    fetched = probe.shard_map()
            except _DOWN as exc:
                raise TransportError(
                    f"cannot reach {info.id} to fetch the shard map: {exc}"
                ) from exc
            except ServiceError:
                fetched = None  # plain single server: treat as 1-shard map
            if fetched is not None:
                return cls(ShardMap.from_dict(fetched), **kwargs)
        return cls(ShardMap.from_addresses(addresses, replicas=replicas), **kwargs)

    # -- per-shard plumbing ------------------------------------------------

    def _client(self, sid: str) -> ServiceClient:
        c = self._clients.get(sid)
        if c is not None:
            return c
        breaker = self._breakers[sid]
        breaker.allow()  # raises CircuitOpenError while cooling down
        info = self.map.shard(sid)
        kwargs: dict[str, Any] = {}
        if self._socket_factory is not None:
            kwargs["socket_factory"] = self._socket_factory
        try:
            c = ServiceClient(
                info.host, info.port, self.timeout,
                retry=self._retry_factory(sid),
                breaker=breaker,
                **kwargs,
            )
        except (ConnectionError, OSError) as exc:
            breaker.record_failure()
            raise TransportError(
                f"shard {sid} refused a connection: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self._clients[sid] = c
        return c

    def _call(self, sid: str, fn: Callable[[ServiceClient], Any]) -> Any:
        """One shard call with up/latency telemetry and down-classification.

        Raises :class:`_ShardDown` for transport-level failures; typed
        application errors (StoreError, ChecksumError, ...) pass through
        untouched — the shard answered, it just doesn't have the goods.
        """
        t0 = time.perf_counter()
        try:
            result = fn(self._client(sid))
        except _DOWN as exc:
            self._clients.pop(sid, None)
            self.metrics.set_gauge(f"shard.{sid}.up", 0.0)
            raise _ShardDown(sid, exc) from exc
        ms = (time.perf_counter() - t0) * 1e3
        prev = self._latency_ms.get(sid)
        ewma = ms if prev is None else 0.8 * prev + 0.2 * ms
        self._latency_ms[sid] = ewma
        self.metrics.set_gauges({
            f"shard.{sid}.up": 1.0,
            f"shard.{sid}.latency_ms": round(ewma, 3),
        })
        return result

    def _note_failover(self, sid: str) -> None:
        self._failovers[sid] = self._failovers.get(sid, 0) + 1
        self.metrics.incr("gateway.failovers")
        self.metrics.set_gauge(
            f"shard.{sid}.failovers", float(self._failovers[sid])
        )

    def _fanout(self, tasks: dict[str, Callable[[], Any]]) -> dict[str, Any]:
        """Run one task per shard concurrently; exceptions are returned,
        not raised (each shard's client is only ever touched by its own
        worker, so parallelism never shares a socket)."""
        futures = {
            sid: self._pool.submit(fn) for sid, fn in tasks.items()
        }
        out: dict[str, Any] = {}
        for sid, fut in futures.items():
            try:
                out[sid] = fut.result()
            except BaseException as exc:  # noqa: BLE001 - collected, re-raised by callers
                out[sid] = exc
        return out

    # -- put ---------------------------------------------------------------

    def put(
        self,
        name: str,
        field_data: np.ndarray,
        codec: str = "wavesz",
        eb: float = 1e-3,
        mode: str = "vr_rel",
        *,
        n_tiles: int = 4,
    ) -> ShardPutResult:
        """Replicated put: tiles to their owners first, manifest last.

        Ack requires every tile on >= 1 replica and the manifest on >= 1
        of its owners; anything short of the full replication factor
        acks ``degraded`` and is counted.  A put that raises leaves any
        previous version fully intact (old-or-new).
        """
        ArrayStore._check_name(name)
        manifest, payloads = compress_field_tiles(
            field_data, codec, eb, mode, n_tiles=n_tiles
        )
        manifest["name"] = name
        R = self.map.replicas

        # phase 1: every unique payload to its owner shards, shard-parallel
        by_shard: dict[str, list[str]] = {}
        owners_of = {d: self.ring.owners(d, R) for d in payloads}
        for d, owners in owners_of.items():
            for sid in owners:
                by_shard.setdefault(sid, []).append(d)

        def write_objects(sid: str, digests: list[str]):
            def task() -> dict[str, bool]:
                stored: dict[str, bool] = {}
                for d in digests:
                    _, fresh = self._call(
                        sid, lambda c, d=d: c.store_put_object(payloads[d], d)
                    )
                    stored[d] = fresh
                return stored
            return task

        results = self._fanout(
            {sid: write_objects(sid, ds) for sid, ds in by_shard.items()}
        )

        ok_copies: dict[str, int] = dict.fromkeys(payloads, 0)
        fresh_copies: dict[str, int] = dict.fromkeys(payloads, 0)
        per_shard: dict[str, int] = {}
        degraded = False
        for sid, res in results.items():
            if isinstance(res, BaseException):
                degraded = True
                continue
            per_shard[sid] = sum(1 for fresh in res.values() if fresh)
            for d, fresh in res.items():
                ok_copies[d] += 1
                fresh_copies[d] += int(fresh)
        lost = [d for d, n in ok_copies.items() if n == 0]
        if lost:
            raise StoreError(
                f"put {name!r} failed: {len(lost)} tile object(s) could not "
                f"be written to any replica (first: {lost[0][:12]}...)"
            )
        if any(n < len(owners_of[d]) for d, n in ok_copies.items()):
            degraded = True

        # phase 2: version, then the manifest to its owner shards
        m_owners = self.ring.owners(manifest_key(name), R)
        versions: list[int] = []
        for sid in m_owners:
            try:
                existing = self._call(
                    sid, lambda c: c.store_get_manifest(name)
                )
                versions.append(int(existing.get("version", 1)))
            except (StoreError, _ShardDown):
                continue
        manifest["version"] = (max(versions) + 1) if versions else 1

        m_results = self._fanout({
            sid: (lambda s=sid: self._call(
                s, lambda c: c.store_put_manifest(name, manifest)
            ))
            for sid in m_owners
        })
        m_ok = [sid for sid, r in m_results.items()
                if not isinstance(r, BaseException)]
        if not m_ok:
            raise StoreError(
                f"put {name!r} failed: manifest unwritable on all "
                f"{len(m_owners)} owner shard(s)"
            )
        if len(m_ok) < len(m_owners):
            degraded = True
        if degraded:
            self.metrics.incr("gateway.degraded_writes")

        new_objects = sum(1 for d in payloads if fresh_copies[d] > 0)
        stored_bytes = sum(
            len(payloads[d]) * fresh_copies[d] for d in payloads
        )
        dedup_bytes = sum(
            len(payloads[d]) * (ok_copies[d] - fresh_copies[d])
            for d in payloads
        )
        return ShardPutResult(
            name=name,
            compressed_bytes=sum(manifest["tile_bytes"]),
            shape=tuple(manifest["shape"]),
            dtype=manifest["dtype"],
            codec=manifest["codec"],
            eb_abs=manifest["eb_abs"],
            tile_digests=tuple(manifest["tiles"]),
            version=int(manifest["version"]),
            replicas=R,
            new_objects=new_objects,
            dedup_objects=len(payloads) - new_objects,
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            original_bytes=int(manifest["original_bytes"]),
            degraded=degraded,
            per_shard=per_shard,
        )

    # -- manifests ---------------------------------------------------------

    @staticmethod
    def _canonical_digest(m: dict[str, Any]) -> str:
        return hashlib.sha256(
            json.dumps(m, sort_keys=True).encode()
        ).hexdigest()

    def _load_manifest(self, name: str) -> dict[str, Any]:
        """Read all replicas, pick the winner, repair the stragglers.

        Winner = highest ``version``; ties break on the canonical JSON
        digest so every client converges on the same copy.  Owners that
        answered with a missing/stale/corrupt manifest get the winner
        written back (read-repair) before the read proceeds.
        """
        owners = self.ring.owners(manifest_key(name), self.map.replicas)
        replies = self._fanout({
            sid: (lambda s=sid: self._call(
                s, lambda c: c.store_get_manifest(name)
            ))
            for sid in owners
        })
        winner: dict[str, Any] | None = None
        repair: list[str] = []
        missing: list[str] = []
        down = 0
        for sid in owners:
            r = replies[sid]
            if isinstance(r, _ShardDown):
                down += 1
            elif isinstance(r, StoreError):
                missing.append(sid)
            elif isinstance(r, BaseException):
                repair.append(sid)  # corrupt / unreadable replica
            else:
                if winner is None or self._newer(r, winner):
                    winner = r
        if winner is None:
            if down == len(owners):
                raise StoreError(
                    f"no dataset {name!r}: all {len(owners)} manifest "
                    f"owner shard(s) are unreachable"
                )
            raise StoreError(f"sharded store has no dataset {name!r}")
        wd = self._canonical_digest(winner)
        for sid in owners:
            r = replies[sid]
            if isinstance(r, dict) and self._canonical_digest(r) != wd:
                repair.append(sid)  # stale version on an alive shard
        repair.extend(missing)
        for sid in repair:
            try:
                self._call(
                    sid, lambda c: c.store_put_manifest(name, winner)
                )
                self.metrics.incr("gateway.read_repairs")
            except (_ShardDown, ReproError):
                continue  # repair is best-effort; the read already has truth
        return winner

    def _newer(self, a: dict[str, Any], b: dict[str, Any]) -> bool:
        va, vb = int(a.get("version", 1)), int(b.get("version", 1))
        if va != vb:
            return va > vb
        return self._canonical_digest(a) > self._canonical_digest(b)

    # -- read --------------------------------------------------------------

    def _fetch_tile(
        self, m: dict[str, Any], grid: TileGrid, index: int,
        prefetched: dict[str, bytes],
    ) -> np.ndarray:
        """One decoded tile: cache, prefetched blob, or owner-list walk.

        Failover walks the digest's owner preference order; a replica
        that is alive but missing (StoreError) or corrupt (Checksum /
        Container) is repaired with the good bytes once some replica
        delivers.  Raises StoreError when no replica can produce the
        tile — the same class the local store raises for a missing
        object, so ``strict=False`` salvage classifies it ``missing``.
        """
        digest = m["tiles"][index]
        cached = self.cache.get(digest)
        if cached is not None:
            return cached

        owners = self.ring.owners(digest, self.map.replicas)
        blob = prefetched.get(digest)
        tile: np.ndarray | None = None
        repair_missing: list[str] = []
        repair_corrupt: list[str] = []
        checksum_exc: ChecksumError | None = None
        if blob is not None:
            try:
                tile = decode_tile_blob(m, grid, index, blob)
            except ReproError as exc:
                # the prefetch came from the primary: it handed us bad
                # bytes, so fail over below and repair it on success.
                repair_corrupt.append(owners[0])
                if isinstance(exc, ChecksumError):
                    checksum_exc = exc
                blob = None
        if tile is None:
            for round_i, sid in enumerate(owners):
                if sid in repair_corrupt:
                    continue  # already proven bad
                try:
                    candidate = self._call(
                        sid, lambda c: c.store_get_object(digest)
                    )
                    tile = decode_tile_blob(m, grid, index, candidate)
                    blob = candidate
                    if round_i > 0:
                        self._note_failover(owners[0])
                    break
                except _ShardDown:
                    continue
                except StoreError:
                    repair_missing.append(sid)
                except ChecksumError as exc:
                    checksum_exc = exc
                    repair_corrupt.append(sid)
                except ReproError:
                    repair_corrupt.append(sid)
        if tile is None or blob is None:
            if checksum_exc is not None and not repair_missing:
                raise checksum_exc  # every reachable copy is corrupt
            raise StoreError(
                f"object {digest} is unavailable: no replica of "
                f"{len(owners)} could produce it"
            )
        self.decode_calls += 1
        self.cache.put(digest, tile)
        for sid in repair_missing:
            self._repair_object(sid, digest, blob, overwrite=False)
        for sid in repair_corrupt:
            self._repair_object(sid, digest, blob, overwrite=True)
        return tile

    def _repair_object(
        self, sid: str, digest: str, blob: bytes, *, overwrite: bool
    ) -> None:
        try:
            self._call(
                sid,
                lambda c: c.store_put_object(blob, digest, overwrite=overwrite),
            )
            self.metrics.incr("gateway.read_repairs")
        except (_ShardDown, ReproError):
            pass  # best-effort; the next read will try again

    def _prefetch(
        self, m: dict[str, Any], tiles: Iterable[int]
    ) -> tuple[dict[str, bytes], list[str]]:
        """Bulk-fetch uncached tile blobs, shard-parallel, primary first.

        Returns ``(blobs, needed)`` — ``needed`` is every digest the
        read could not serve from cache, cached by the caller to decide
        whether an anti-entropy sweep is worth an extra round trip.
        Failures here are silent — the per-tile walk in
        :meth:`_fetch_tile` handles failover and repair serially.
        """
        needed: list[str] = []
        seen: set[str] = set()
        for t in tiles:
            d = m["tiles"][t]
            if d not in seen and self.cache.get(d) is None:
                seen.add(d)
                needed.append(d)
        if not needed:
            return {}, []
        by_shard: dict[str, list[str]] = {}
        for d in needed:
            by_shard.setdefault(self.ring.owner(d), []).append(d)

        def fetch(sid: str, digests: list[str]):
            def task() -> dict[str, bytes]:
                got: dict[str, bytes] = {}
                for d in digests:
                    try:
                        got[d] = self._call(
                            sid, lambda c, d=d: c.store_get_object(d)
                        )
                    except _ShardDown:
                        break  # the rest of this shard's list would fail too
                    except ReproError:
                        continue  # missing/corrupt here: the walk fails over
                return got
            return task

        results = self._fanout(
            {sid: fetch(sid, ds) for sid, ds in by_shard.items()}
        )
        blobs: dict[str, bytes] = {}
        for res in results.values():
            if isinstance(res, dict):
                blobs.update(res)
        return blobs, needed

    def _anti_entropy(
        self, digests: list[str], blobs: dict[str, bytes]
    ) -> None:
        """Restore missing replicas of the digests a read just touched.

        The failover walk only repairs copies it had to *visit*; a tile
        served happily by its primary never reveals that a secondary
        (say, a shard that was down during the put) is missing it.  One
        batched ``store_has_objects`` per owner shard closes that gap:
        a full read after a shard returns re-converges every replica it
        owns.  Entirely best-effort — a read never fails because its
        repairs could not be written.
        """
        want: dict[str, list[str]] = {}
        for d in digests:
            for sid in self.ring.owners(d, self.map.replicas):
                want.setdefault(sid, []).append(d)
        replies = self._fanout({
            sid: (lambda s=sid, ds=ds: self._call(
                s, lambda c: c.store_has_objects(ds)
            ))
            for sid, ds in want.items()
        })
        for sid, have in replies.items():
            if isinstance(have, BaseException):
                continue
            for d in want[sid]:
                if have.get(d):
                    continue
                blob = blobs.get(d)
                if blob is None:
                    blob = self._fetch_blob_from_owner(d, skip=sid)
                if blob is not None:
                    self._repair_object(sid, d, blob, overwrite=False)

    def _fetch_blob_from_owner(
        self, digest: str, *, skip: str
    ) -> bytes | None:
        for sid in self.ring.owners(digest, self.map.replicas):
            if sid == skip:
                continue
            try:
                return self._call(
                    sid, lambda c: c.store_get_object(digest)
                )
            except (_ShardDown, ReproError):
                continue
        return None

    def read(self, name: str, *, strict: bool = True) -> StoreReadResult:
        """Reassemble the full field from the cluster, bit-exact."""
        m = self._load_manifest(name)
        grid = TileGrid.from_starts(m["shape"], m["band_starts"])
        window = tuple(slice(0, d) for d in grid.shape)
        return self._assemble(m, grid, window, range(grid.n_tiles), strict)

    def read_slice(
        self, name: str, slices, *, strict: bool = True
    ) -> StoreReadResult:
        """Read a sub-window, touching only the shards that own its tiles."""
        m = self._load_manifest(name)
        grid = TileGrid.from_starts(m["shape"], m["band_starts"])
        window = normalize_slices(grid.shape, slices)
        return self._assemble(
            m, grid, window, grid.overlapping(window[0]), strict
        )

    def _assemble(
        self, m: dict[str, Any], grid: TileGrid, window, tiles, strict: bool
    ) -> StoreReadResult:
        tiles = list(tiles)
        prefetched, needed = self._prefetch(m, tiles)
        result = assemble_tiles(
            m, grid, window, tiles,
            lambda t: self._fetch_tile(m, grid, t, prefetched),
            strict=strict,
        )
        if result.damaged:
            self.metrics.incr("gateway.degraded_reads")
        if needed:
            # the read touched the wire anyway: one has_objects round
            # trip per owner shard re-converges replicas a failover
            # walk would never visit.  Fully-cached reads skip this.
            self._anti_entropy(needed, prefetched)
        return result

    # -- listing / gc / health --------------------------------------------

    def ls(self) -> list[dict[str, Any]]:
        """Merged dataset listing (one row per name) from reachable shards."""
        replies = self._fanout({
            sid: (lambda s=sid: self._call(s, lambda c: c.store_ls()))
            for sid in self.map.shard_ids
        })
        rows: dict[str, dict[str, Any]] = {}
        for sid in self.map.shard_ids:
            r = replies[sid]
            if isinstance(r, BaseException):
                continue
            for row in r:
                rows.setdefault(row["name"], row)
        return [rows[k] for k in sorted(rows)]

    def names(self) -> tuple[str, ...]:
        return tuple(r["name"] for r in self.ls())

    def gc(self) -> GatewayGCResult:
        """Cluster-wide gc: union every manifest's tiles, then sweep.

        Refuses (``StoreError``) unless every shard is reachable — a
        manifest on an unreachable shard may be the only reference to
        tiles held here, and sweeping those would turn a transient
        outage into data loss.
        """
        listings = self._fanout({
            sid: (lambda s=sid: self._call(s, lambda c: c.store_ls()))
            for sid in self.map.shard_ids
        })
        down = [sid for sid, r in listings.items()
                if isinstance(r, BaseException)]
        if down:
            raise StoreError(
                f"gc refused: shard(s) {', '.join(sorted(down))} are "
                f"unreachable and may hold the only manifest referencing "
                f"live objects"
            )
        refs: set[str] = set()
        for sid, rows in listings.items():
            for row in rows:
                try:
                    m = self._call(
                        sid, lambda c, n=row["name"]: c.store_get_manifest(n)
                    )
                except (_ShardDown, ReproError) as exc:
                    raise StoreError(
                        f"gc refused: manifest {row['name']!r} on shard "
                        f"{sid} is unreadable: {exc}"
                    ) from exc
                refs.update(m["tiles"])
        sweeps = self._fanout({
            sid: (lambda s=sid: self._call(
                s, lambda c: c.store_gc(refs=sorted(refs))
            ))
            for sid in self.map.shard_ids
        })
        per_shard: dict[str, dict[str, int]] = {}
        n_removed = reclaimed = kept = 0
        for sid, r in sweeps.items():
            if isinstance(r, BaseException):
                raise StoreError(f"gc sweep failed on shard {sid}: {r}")
            per_shard[sid] = {
                "removed": int(r["removed"]),
                "reclaimed_bytes": int(r["reclaimed_bytes"]),
                "kept": int(r["kept"]),
            }
            n_removed += int(r["removed"])
            reclaimed += int(r["reclaimed_bytes"])
            kept += int(r["kept"])
        return GatewayGCResult(
            n_removed=n_removed, reclaimed_bytes=reclaimed, kept=kept,
            per_shard=per_shard,
        )

    def status(self) -> dict[str, Any]:
        """Probe every shard's health op; refresh the per-shard gauges."""
        replies = self._fanout({
            sid: (lambda s=sid: self._call(s, lambda c: c.health()))
            for sid in self.map.shard_ids
        })
        shards: dict[str, Any] = {}
        up = 0
        for sid in self.map.shard_ids:
            r = replies[sid]
            if isinstance(r, BaseException):
                shards[sid] = {"up": False, "error": str(r)}
            else:
                up += 1
                shards[sid] = {
                    "up": True,
                    "status": r.get("status"),
                    "store": r.get("store"),
                    "latency_ms": round(self._latency_ms.get(sid, 0.0), 3),
                    "failovers": self._failovers.get(sid, 0),
                }
        return {
            "replicas": self.map.replicas,
            "n_shards": len(self.map.shard_ids),
            "shards_up": up,
            "shards": shards,
        }

    def close(self) -> None:
        self._pool.shutdown(wait=False)
        for c in self._clients.values():
            c.close()
        self._clients.clear()

    def __enter__(self) -> "ShardGateway":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
