"""Consistent-hash placement: the ring and the cluster topology map.

:class:`ShardRing` answers one question — *which shards own this key?* —
with the classic consistent-hashing construction: every shard projects
``vnodes`` points onto a 64-bit circle (SHA-256 of ``"<shard>#<i>"``),
a key hashes to a point, and its owners are the first ``n`` *distinct*
shards found walking clockwise.  Two properties matter to the store
gateway built on top:

* **uniformity** — with enough virtual nodes the key space splits close
  to evenly (the property suite pins the tolerance), so tile placement
  balances bytes across shards without any central allocation table;
* **bounded rebalance** — adding or removing one shard only moves the
  keys in the arcs that shard's points cover, ≈ ``1/N`` of the space,
  so cluster membership changes re-home a bounded slice of the data
  instead of reshuffling everything (the failure mode of ``hash % N``).

:class:`ShardMap` is the deployment topology the ring is derived from:
shard ids with their TCP addresses plus the replication factor, JSON
round-trippable because clients fetch it over the wire (the gateway's
``shard_map`` op) before going shard-direct.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..errors import ConfigError

__all__ = ["ShardRing", "ShardInfo", "ShardMap", "DEFAULT_VNODES"]

#: Virtual nodes per shard.  64 keeps the max/min shard span under ~2x
#: for small clusters while the ring build stays microseconds.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """Map a label onto the 64-bit hash circle."""
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big"
    )


class ShardRing:
    """An immutable consistent-hash ring over a set of shard ids."""

    def __init__(
        self, shard_ids: Iterable[str], *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        ids = list(dict.fromkeys(shard_ids))
        if not ids:
            raise ConfigError("a shard ring needs at least one shard")
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.shard_ids = tuple(ids)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for sid in ids:
            for i in range(vnodes):
                points.append((_point(f"{sid}#{i}"), sid))
        points.sort()
        self._points = points
        self._keys = [p for p, _ in points]

    @property
    def n_shards(self) -> int:
        return len(self.shard_ids)

    def owners(self, key: str, n: int = 1) -> tuple[str, ...]:
        """The first ``n`` distinct shards clockwise from ``key``'s point.

        ``owners(key, 1)[0]`` is the primary; the rest are the replica
        preference order.  ``n`` beyond the shard count is clamped — a
        3-shard ring asked for 5 owners returns all 3.
        """
        if n < 1:
            raise ConfigError(f"owner count must be >= 1, got {n}")
        n = min(n, self.n_shards)
        start = bisect_right(self._keys, _point(key))
        found: list[str] = []
        for i in range(len(self._points)):
            sid = self._points[(start + i) % len(self._points)][1]
            if sid not in found:
                found.append(sid)
                if len(found) == n:
                    break
        return tuple(found)

    def owner(self, key: str) -> str:
        return self.owners(key, 1)[0]

    def with_shard(self, shard_id: str) -> "ShardRing":
        """A new ring with ``shard_id`` added (membership change)."""
        return ShardRing(self.shard_ids + (shard_id,), vnodes=self.vnodes)

    def without_shard(self, shard_id: str) -> "ShardRing":
        """A new ring with ``shard_id`` removed (membership change)."""
        return ShardRing(
            (s for s in self.shard_ids if s != shard_id), vnodes=self.vnodes
        )


@dataclass(frozen=True)
class ShardInfo:
    """One shard's identity and TCP address."""

    id: str
    host: str
    port: int

    def to_dict(self) -> dict[str, Any]:
        return {"id": self.id, "host": self.host, "port": int(self.port)}


@dataclass(frozen=True)
class ShardMap:
    """The cluster topology: shards, replication factor, map version."""

    shards: tuple[ShardInfo, ...]
    replicas: int = 2
    version: int = 1

    def __post_init__(self) -> None:
        if not self.shards:
            raise ConfigError("a shard map needs at least one shard")
        ids = [s.id for s in self.shards]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate shard ids in map: {ids}")
        if not 1 <= self.replicas <= len(self.shards):
            raise ConfigError(
                f"replication factor {self.replicas} needs between 1 and "
                f"{len(self.shards)} shards"
            )

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(s.id for s in self.shards)

    def shard(self, shard_id: str) -> ShardInfo:
        for s in self.shards:
            if s.id == shard_id:
                return s
        raise ConfigError(f"shard map has no shard {shard_id!r}")

    def ring(self, *, vnodes: int = DEFAULT_VNODES) -> ShardRing:
        return ShardRing(self.shard_ids, vnodes=vnodes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": [s.to_dict() for s in self.shards],
            "replicas": int(self.replicas),
            "version": int(self.version),
        }

    @classmethod
    def from_dict(cls, d: Any) -> "ShardMap":
        if not isinstance(d, dict) or not isinstance(d.get("shards"), list):
            raise ConfigError(f"bad shard map payload {d!r}")
        try:
            shards = tuple(
                ShardInfo(str(s["id"]), str(s["host"]), int(s["port"]))
                for s in d["shards"]
            )
            return cls(
                shards=shards,
                replicas=int(d.get("replicas", 2)),
                version=int(d.get("version", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"bad shard map payload: {exc}") from exc

    @classmethod
    def from_addresses(
        cls, addresses: str | Sequence[str], *, replicas: int = 2
    ) -> "ShardMap":
        """Build a map from ``host:port`` addresses (or one comma list).

        Shard ids are the address strings themselves, so placement is
        stable under reordering and across independently built clients.
        """
        if isinstance(addresses, str):
            addresses = [a for a in addresses.split(",") if a.strip()]
        shards = []
        for addr in addresses:
            addr = addr.strip()
            host, sep, port_s = addr.rpartition(":")
            if not sep or not host:
                raise ConfigError(
                    f"shard address {addr!r} is not host:port"
                )
            try:
                port = int(port_s)
            except ValueError as exc:
                raise ConfigError(
                    f"shard address {addr!r} has a bad port"
                ) from exc
            shards.append(ShardInfo(addr, host, port))
        return cls(
            shards=tuple(shards),
            replicas=min(replicas, len(shards)) if shards else replicas,
        )
