"""Static byte-aligned rANS coder over a 2^12-normalized frequency table.

The coder implements the range variant of asymmetric numeral systems
(Duda 2013) in the byte-aligned form cuSZ-style pipelines use for
data-parallel code streams: a single 32-bit state per lane, renormalized
one byte at a time against a per-symbol threshold, with all symbol
probabilities quantized to ``f/4096``.

Layout decisions, fixed by the wire format:

* **Probability scale.**  ``PROB_BITS = 12`` — every distinct symbol
  gets an integer frequency ``f >= 1`` with ``sum(f) == 4096``
  (:func:`normalize_freqs`, deterministic largest-remainder rounding, so
  both kernel modes build byte-identical tables).
* **State interval.**  ``x in [2^23, 2^31)``.  Encoding a symbol first
  renormalizes while ``x >= f << 19`` (emitting the low byte), then maps
  ``x -> (x // f) << 12 | (x % f) + cum``.  With ``f >= 1`` at most two
  bytes move per symbol per direction, and after the decode transform
  the byte need is a pure function of the state (``0`` if ``x >= 2^23``,
  ``1`` if ``x >= 2^15``, else ``2``) — which is what makes the decode
  loop vectorizable across lanes.
* **Interleaved lanes.**  Lane ``j`` of ``N`` owns tokens ``j, j+N,
  j+2N, ...``.  The encoder walks steps last-to-first and lanes
  high-to-low appending bytes low-first, then reverses the whole buffer;
  the decoder walks steps first-to-last and lanes low-to-high consuming
  bytes in order.  The two walks are exact LIFO mirrors, so a decoder
  must end with every lane back at ``RANS_L`` and zero bytes left —
  both are checked, turning most corruptions into :class:`RansError`.
* **Blob layout** (assembled by :func:`encode_tokens`): ``u32 n_lanes``,
  then ``n_lanes`` little-endian ``u32`` final states, then the byte
  stream.  ``n_lanes = clamp(m // 128, 1, 2048)`` keeps the per-lane
  state overhead near 0.25 bits/token while giving the numpy decode
  ~128 vectorized steps regardless of stream length.

The per-step loops are registered as ``rans.encode`` / ``rans.decode``
kernel twins (PR 5 pattern): the scalar reference lives here next to the
format, the vectorized fast path in :mod:`repro.kernels.rans_fast`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..errors import RansError
from ..kernels.dispatch import register_kernel, resolve

__all__ = [
    "PROB_BITS",
    "PROB_SCALE",
    "RANS_L",
    "MAX_SYMBOLS",
    "RansTable",
    "normalize_freqs",
    "pick_lanes",
    "encode_tokens",
    "decode_tokens",
]

PROB_BITS = 12
PROB_SCALE = 1 << PROB_BITS
RANS_L = 1 << 23  # lower bound of the state interval [L, 2^31)
#: A table needs every symbol's frequency >= 1 out of 4096, so alphabets
#: beyond 4096 distinct symbols cannot be rANS-coded at this precision —
#: the entropy stage falls back to Huffman for them.
MAX_SYMBOLS = PROB_SCALE

_TABLE_MAGIC = b"RNS1"
# Target tokens per lane: sets the vectorized step count (~64).  Each
# lane costs 4 state bytes on the wire but each *step* costs fixed numpy
# dispatch overhead, which dominates encode time on mid-size streams —
# 64 is the measured sweet spot where the state overhead stays <0.5 bits
# per token while the step count stops being the bottleneck.
_LANE_TOKENS = 64
_MAX_LANES = 2048  # encoder cap; decoder tolerates up to the sanity cap
_MAX_LANES_DECODE = 1 << 16


def normalize_freqs(counts: np.ndarray) -> np.ndarray:
    """Quantize positive counts to integer frequencies summing to 4096.

    Deterministic largest-remainder rounding: floor-scale with a floor of
    1, hand the missing mass to the largest remainders (stable order),
    and on overshoot take the excess back from the largest frequencies.
    Shared by both kernel modes so tables are byte-identical.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if counts.size > MAX_SYMBOLS:
        raise RansError(
            f"{counts.size} distinct symbols exceed the {MAX_SYMBOLS}-slot "
            "rANS probability table"
        )
    if (counts <= 0).any():
        raise RansError("every symbol frequency must be positive")
    total = int(counts.sum())
    scaled = np.maximum(1, counts * PROB_SCALE // total)
    diff = PROB_SCALE - int(scaled.sum())
    if diff > 0:
        # floor rounding loses < 1 slot per symbol, so diff < n_symbols
        remainders = counts * PROB_SCALE - scaled * total
        order = np.argsort(-remainders, kind="stable")
        scaled[order[:diff]] += 1
    elif diff < 0:
        need = -diff
        for i in np.argsort(-scaled, kind="stable"):
            if need == 0:
                break
            give = min(need, int(scaled[i]) - 1)
            scaled[i] -= give
            need -= give
        if need:  # pragma: no cover - impossible while n <= 4096
            raise RansError("cannot normalize frequency table to 4096")
    return scaled


@dataclass(frozen=True)
class RansTable:
    """A normalized (symbol, frequency) table: the shipped model.

    ``symbols`` is strictly increasing int64, ``freqs`` the matching
    frequencies with ``sum == 4096`` (both empty only for an empty
    stream).
    """

    symbols: np.ndarray
    freqs: np.ndarray

    @classmethod
    def from_counts(cls, values: np.ndarray, counts: np.ndarray) -> "RansTable":
        """Build the table from a ``symbol_histogram``-style pair."""
        values = np.asarray(values, dtype=np.int64)
        if values.size and (np.diff(values) <= 0).any():
            raise RansError("histogram values must be strictly increasing")
        if values.size and (
            int(values[0]) < 0 or int(values[-1]) >= 1 << 32
        ):
            raise RansError("rANS symbols must fit an unsigned 32-bit slot")
        return cls(symbols=values, freqs=normalize_freqs(counts))

    def cum(self) -> np.ndarray:
        """Exclusive prefix sum of the frequencies."""
        out = np.zeros(self.freqs.size, dtype=np.int64)
        np.cumsum(self.freqs[:-1], out=out[1:])
        return out

    def slot_map(self) -> np.ndarray:
        """slot (0..4095) -> symbol index; total freq 4096 covers it."""
        return np.repeat(
            np.arange(self.symbols.size, dtype=np.int64), self.freqs
        )

    def to_bytes(self) -> bytes:
        return (
            _TABLE_MAGIC
            + struct.pack("<I", self.symbols.size)
            + self.symbols.astype("<u4").tobytes()
            + self.freqs.astype("<u2").tobytes()
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RansTable":
        if len(blob) < 8 or blob[:4] != _TABLE_MAGIC:
            raise RansError("bad rANS table magic")
        n = struct.unpack_from("<I", blob, 4)[0]
        if n > MAX_SYMBOLS:
            raise RansError(f"rANS table declares {n} symbols (max {MAX_SYMBOLS})")
        if len(blob) != 8 + 6 * n:
            raise RansError(
                f"rANS table holds {len(blob)} bytes, needs {8 + 6 * n}"
            )
        symbols = np.frombuffer(blob, dtype="<u4", count=n, offset=8).astype(
            np.int64
        )
        freqs = np.frombuffer(
            blob, dtype="<u2", count=n, offset=8 + 4 * n
        ).astype(np.int64)
        if n:
            if (np.diff(symbols) <= 0).any():
                raise RansError("rANS table symbols not strictly increasing")
            if (freqs < 1).any():
                raise RansError("rANS table carries a zero frequency")
            if int(freqs.sum()) != PROB_SCALE:
                raise RansError(
                    f"rANS table frequencies total {int(freqs.sum())}, "
                    f"expected {PROB_SCALE}"
                )
        return cls(symbols=symbols, freqs=freqs)


def pick_lanes(m: int) -> int:
    """Deterministic lane count for an ``m``-token stream."""
    return max(1, min(_MAX_LANES, m // _LANE_TOKENS))


# -- kernel twins -------------------------------------------------------


def _encode_reference(
    idx: np.ndarray, freqs: np.ndarray, cum: np.ndarray, n_lanes: int
) -> tuple[np.ndarray, bytes]:
    """Scalar interleaved encode: steps last-to-first, lanes high-to-low."""
    states = [RANS_L] * n_lanes
    out = bytearray()
    m = idx.size
    n_steps = -(-m // n_lanes)
    for step in range(n_steps - 1, -1, -1):
        base = step * n_lanes
        hi = min(n_lanes, m - base)
        for lane in range(hi - 1, -1, -1):
            s = int(idx[base + lane])
            f = int(freqs[s])
            c = int(cum[s])
            x = states[lane]
            limit = f << 19
            while x >= limit:
                out.append(x & 0xFF)
                x >>= 8
            states[lane] = ((x // f) << PROB_BITS) + (x % f) + c
    return np.array(states, dtype=np.uint32), bytes(out[::-1])


def _decode_reference(
    stream: bytes,
    states: np.ndarray,
    m: int,
    freqs: np.ndarray,
    cum: np.ndarray,
    slot_map: np.ndarray,
) -> np.ndarray:
    """Scalar interleaved decode, mirroring :func:`_encode_reference`."""
    x = [int(v) for v in states]
    n_lanes = len(x)
    out = np.empty(m, dtype=np.int64)
    pos = 0
    end = len(stream)
    mask = PROB_SCALE - 1
    for t in range(m):
        lane = t % n_lanes
        xi = x[lane]
        slot = xi & mask
        s = int(slot_map[slot])
        xi = int(freqs[s]) * (xi >> PROB_BITS) + slot - int(cum[s])
        while xi < RANS_L:
            if pos >= end:
                raise RansError("rANS byte stream exhausted mid-decode")
            xi = (xi << 8) | stream[pos]
            pos += 1
        x[lane] = xi
        out[t] = s
    if pos != end:
        raise RansError(f"rANS stream carries {end - pos} trailing bytes")
    if any(v != RANS_L for v in x):
        raise RansError("rANS lanes do not terminate at the coder lower bound")
    return out


register_kernel(
    "rans.encode", _encode_reference, fast="repro.kernels.rans_fast:encode_stream"
)
register_kernel(
    "rans.decode", _decode_reference, fast="repro.kernels.rans_fast:decode_stream"
)


# -- host API -----------------------------------------------------------


def encode_tokens(tokens: np.ndarray, table: RansTable) -> bytes:
    """Encode a token stream against ``table`` into the lane blob."""
    tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
    m = tokens.size
    if m == 0:
        return struct.pack("<I", 0)
    nsym = table.symbols.size
    if nsym == 0:
        raise RansError("cannot encode tokens against an empty rANS table")
    idx = np.searchsorted(table.symbols, tokens)
    idx = np.minimum(idx, nsym - 1)
    if (table.symbols[idx] != tokens).any():
        raise RansError("token stream carries a symbol outside the table")
    n_lanes = pick_lanes(m)
    states, stream = resolve("rans.encode")(
        idx, table.freqs, table.cum(), n_lanes
    )
    return (
        struct.pack("<I", n_lanes)
        + np.asarray(states, dtype="<u4").tobytes()
        + stream
    )


def decode_tokens(blob: bytes, table: RansTable, m: int) -> np.ndarray:
    """Decode ``m`` tokens from a lane blob produced by :func:`encode_tokens`."""
    if len(blob) < 4:
        raise RansError("rANS blob shorter than its lane header")
    n_lanes = struct.unpack_from("<I", blob)[0]
    if m == 0:
        if n_lanes != 0 or len(blob) != 4:
            raise RansError("empty token stream carries a non-empty blob")
        return np.empty(0, dtype=np.int64)
    if n_lanes < 1 or n_lanes > _MAX_LANES_DECODE:
        raise RansError(f"implausible rANS lane count {n_lanes}")
    if len(blob) < 4 + 4 * n_lanes:
        raise RansError("rANS blob truncated inside its lane states")
    if table.symbols.size == 0:
        raise RansError("empty rANS table cannot decode a non-empty stream")
    states = np.frombuffer(blob, dtype="<u4", count=n_lanes, offset=4).astype(
        np.int64
    )
    if (states < RANS_L).any() or (states >= 1 << 31).any():
        raise RansError("rANS lane state outside the coder interval")
    stream = blob[4 + 4 * n_lanes:]
    out_idx = resolve("rans.decode")(
        stream, states, m, table.freqs, table.cum(), table.slot_map()
    )
    return table.symbols[out_idx]
