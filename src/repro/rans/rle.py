"""Zero-run RLE pre-pass for quantization-code streams.

The dual-quant code distribution is dominated by one symbol — the
quantizer radius, i.e. "residual 0" — in long raster runs.  Per-symbol
entropy coding pays >= some fraction of a bit for every one of those
positions; collapsing each maximal run into run tokens first shrinks the
token stream the rANS coder sees by the run factor.

Wire scheme (fixed):

* ``run_symbol`` is the stream's most frequent code (the prober's
  histogram argmax), recorded in the container header.
* Every maximal run of ``run_symbol`` of length ``L`` becomes
  ``ceil(L / 255)`` *run tokens* — the token value is ``run_symbol``
  itself — each consuming one ``u8`` length byte in 1..255 (all 255
  except the last chunk).  Other codes pass through as literal tokens.
* The length bytes travel as their own (gzip-when-smaller) section;
  expansion is ``np.repeat(tokens, counts)`` with the run tokens'
  counts gathered from that side stream.

Activation is a deterministic host-level rule (:func:`should_rle`):
collapse only when the run symbol covers at least half the stream
*and* averages runs of length >= 2 — otherwise the run tokens plus
length bytes would cost more than they save.

``rle.collapse`` / ``rle.expand`` are kernel twins: scalar reference
here, vectorized fast path in :mod:`repro.kernels.rans_fast`.
"""

from __future__ import annotations

import numpy as np

from ..errors import RansError
from ..kernels.dispatch import register_kernel, resolve

__all__ = [
    "RUN_MAX",
    "run_stats",
    "should_rle",
    "rle_collapse",
    "rle_expand",
]

RUN_MAX = 255  # a run length byte is u8 and never zero


def run_stats(codes: np.ndarray, run_symbol: int) -> tuple[int, int]:
    """``(occurrences, run_tokens)`` of ``run_symbol`` in ``codes``.

    ``run_tokens`` counts the post-split chunks (runs longer than
    :data:`RUN_MAX` split), i.e. exactly the number of length bytes a
    collapse would emit.
    """
    mask = codes == run_symbol
    n_r = int(mask.sum())
    if n_r == 0:
        return 0, 0
    idx = np.flatnonzero(mask)
    brk = np.flatnonzero(np.diff(idx) > 1)
    starts = idx[np.concatenate(([0], brk + 1))]
    ends = idx[np.concatenate((brk, [idx.size - 1]))]
    lens = ends - starts + 1
    k = int(((lens + RUN_MAX - 1) // RUN_MAX).sum())
    return n_r, k


def should_rle(n: int, n_r: int, k: int) -> bool:
    """Deterministic activation rule for the RLE pre-pass."""
    return n_r > 0 and 2 * n_r >= n and n_r >= 2 * k


def _collapse_reference(
    codes: np.ndarray, run_symbol: int
) -> tuple[np.ndarray, np.ndarray]:
    """Scalar collapse: one pass, runs chunked to <= RUN_MAX."""
    tokens: list[int] = []
    runs: list[int] = []
    n = codes.size
    i = 0
    while i < n:
        c = int(codes[i])
        if c != run_symbol:
            tokens.append(c)
            i += 1
            continue
        j = i
        while j < n and codes[j] == run_symbol:
            j += 1
        length = j - i
        while length > 0:
            chunk = min(length, RUN_MAX)
            tokens.append(run_symbol)
            runs.append(chunk)
            length -= chunk
        i = j
    return (
        np.array(tokens, dtype=np.int64),
        np.array(runs, dtype=np.uint8),
    )


def _expand_reference(
    tokens: np.ndarray, runs: np.ndarray, run_symbol: int
) -> np.ndarray:
    """Scalar expand, validating the length stream against the tokens."""
    out: list[int] = []
    r = 0
    for t in tokens.tolist():
        if t == run_symbol:
            if r >= runs.size:
                raise RansError("run-length stream exhausted mid-expand")
            length = int(runs[r])
            r += 1
            if length < 1:
                raise RansError("zero-length run in the RLE side stream")
            out.extend([t] * length)
        else:
            out.append(t)
    if r != runs.size:
        raise RansError(
            f"RLE side stream carries {runs.size - r} unused run lengths"
        )
    return np.array(out, dtype=np.int64)


register_kernel(
    "rle.collapse", _collapse_reference, fast="repro.kernels.rans_fast:collapse_runs"
)
register_kernel(
    "rle.expand", _expand_reference, fast="repro.kernels.rans_fast:expand_runs"
)


def rle_collapse(
    codes: np.ndarray, run_symbol: int
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse via the active kernel: ``(tokens int64, run lengths u8)``."""
    return resolve("rle.collapse")(
        np.asarray(codes, dtype=np.int64).reshape(-1), int(run_symbol)
    )


def rle_expand(
    tokens: np.ndarray, runs: np.ndarray, run_symbol: int
) -> np.ndarray:
    """Expand via the active kernel; raises :class:`RansError` on mismatch."""
    return resolve("rle.expand")(
        np.asarray(tokens, dtype=np.int64).reshape(-1),
        np.asarray(runs, dtype=np.uint8).reshape(-1),
        int(run_symbol),
    )
